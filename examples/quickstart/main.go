// Quickstart: run a small generated workload on the paper's heterogeneous
// Grid'5000 platform twice — once without reallocation and once with the
// cancellation algorithm and the MinMin heuristic — and print the paper's
// four evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gridrealloc "gridrealloc"
)

func main() {
	// 1. Generate a slice of the paper's April scenario (the busiest month).
	trace, err := gridrealloc.GenerateScenario("apr", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs of the April scenario\n", trace.Len())

	// 2. Reference run: MCT mapping at submission time, no reallocation.
	base := gridrealloc.ScenarioConfig{
		Scenario:      "apr",
		Heterogeneity: "heterogeneous",
		Policy:        "CBF",
		Trace:         trace,
	}
	baseline, err := gridrealloc.RunScenario(base)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Same workload with hourly reallocation (Algorithm 2: cancel every
	// waiting job and re-place them with the MinMin heuristic).
	withRealloc := base
	withRealloc.Algorithm = "realloc-cancel"
	withRealloc.Heuristic = "MinMin"
	result, err := gridrealloc.RunScenario(withRealloc)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare the two runs on the paper's metrics.
	cmp, err := gridrealloc.Compare(baseline, result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline mean response time: %.0f s\n", gridrealloc.Summarize(baseline).MeanResponseTime)
	fmt.Printf("realloc  mean response time: %.0f s\n", gridrealloc.Summarize(result).MeanResponseTime)
	fmt.Printf("\npaper metrics (reallocation vs baseline):\n")
	fmt.Printf("  jobs impacted by reallocation: %.2f%%\n", cmp.ImpactedPercent)
	fmt.Printf("  number of reallocations:       %d\n", cmp.Reallocations)
	fmt.Printf("  jobs finishing earlier:        %.2f%%\n", cmp.EarlierPercent)
	fmt.Printf("  relative avg response time:    %.3f (below 1.0 means reallocation helped)\n", cmp.RelativeResponseTime)
}
