// Custom-heuristic example: implement a user-defined reallocation heuristic
// against the core.Heuristic interface and plug it into the simulation
// driver directly (the typed API under internal/core gives full control when
// the string-based façade is not enough).
//
// The heuristic implemented here, "WidestFirst", reallocates the widest jobs
// first, on the theory that moving a wide job frees the most contiguous
// space on its origin cluster.
//
//	go run ./examples/customheuristic
package main

import (
	"fmt"
	"log"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// widestFirst orders candidates by decreasing processor count, breaking ties
// by submission order.
type widestFirst struct{}

func (widestFirst) Name() string { return "WidestFirst" }

func (widestFirst) Select(cands []core.Candidate, _ []core.Estimate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		switch {
		case cands[i].Job.Procs > cands[best].Job.Procs:
			best = i
		case cands[i].Job.Procs == cands[best].Job.Procs &&
			cands[i].Job.Submit < cands[best].Job.Submit:
			best = i
		}
	}
	return best
}

func main() {
	trace, err := workload.Scenario("apr", 0.05, 99)
	if err != nil {
		log.Fatal(err)
	}
	plat := platform.Grid5000(platform.Heterogeneous)
	fmt.Printf("April scenario slice (%d jobs) on %s\n\n", trace.Len(), plat)

	baselineCfg := core.Config{
		Platform:       plat,
		Policy:         batch.FCFS,
		Trace:          trace,
		ClampOversized: true,
	}
	baseline, err := core.Run(baselineCfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(h core.Heuristic) metrics.Comparison {
		cfg := baselineCfg
		cfg.Realloc = core.ReallocConfig{
			Algorithm: core.WithoutCancellation,
			Heuristic: h,
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := metrics.Compare(baseline, res)
		if err != nil {
			log.Fatal(err)
		}
		return cmp
	}

	fmt.Printf("%-14s %12s %10s %8s\n", "heuristic", "rel. resp.", "earlier %", "moves")
	for _, h := range []core.Heuristic{core.MCT(), core.MinMin(), widestFirst{}} {
		cmp := run(h)
		fmt.Printf("%-14s %12.3f %10.2f %8d\n", h.Name(), cmp.RelativeResponseTime, cmp.EarlierPercent, cmp.Reallocations)
	}
	fmt.Println("\nWidestFirst is the user-defined heuristic; the paper's heuristics are built in.")
}
