// Heterogeneous-platform example: compare the two reallocation algorithms of
// the paper (Algorithm 1 without cancellation and Algorithm 2 with
// cancellation) with every heuristic on a bursty workload running on the
// heterogeneous Grid'5000 platform (Lyon 20% and Toulouse 40% faster than
// Bordeaux), and print a ranking by relative average response time.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"sort"

	gridrealloc "gridrealloc"
)

func main() {
	trace, err := gridrealloc.GenerateScenario("mar", 0.03, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("March scenario slice: %d jobs on the heterogeneous Grid'5000 platform, FCFS everywhere\n\n", trace.Len())

	base := gridrealloc.ScenarioConfig{
		Scenario:      "mar",
		Heterogeneity: "heterogeneous",
		Policy:        "FCFS",
		Trace:         trace,
	}
	baseline, err := gridrealloc.RunScenario(base)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		label    string
		relResp  float64
		earlier  float64
		impacted float64
		moves    int64
	}
	var rows []row
	for _, algorithm := range []string{"realloc", "realloc-cancel"} {
		for _, heuristic := range gridrealloc.HeuristicNames() {
			cfg := base
			cfg.Algorithm = algorithm
			cfg.Heuristic = heuristic
			res, err := gridrealloc.RunScenario(cfg)
			if err != nil {
				log.Fatal(err)
			}
			cmp, err := gridrealloc.Compare(baseline, res)
			if err != nil {
				log.Fatal(err)
			}
			label := heuristic
			if algorithm == "realloc-cancel" {
				label += "-C"
			}
			rows = append(rows, row{
				label:    label,
				relResp:  cmp.RelativeResponseTime,
				earlier:  cmp.EarlierPercent,
				impacted: cmp.ImpactedPercent,
				moves:    cmp.Reallocations,
			})
		}
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].relResp < rows[j].relResp })
	fmt.Printf("%-14s %12s %10s %10s %8s\n", "heuristic", "rel. resp.", "earlier %", "impacted %", "moves")
	for _, r := range rows {
		fmt.Printf("%-14s %12.3f %10.2f %10.2f %8d\n", r.label, r.relResp, r.earlier, r.impacted, r.moves)
	}
	fmt.Println("\n\"-C\" marks the cancellation algorithm (Algorithm 2); a relative response time")
	fmt.Println("below 1.0 means the impacted jobs finished faster than without reallocation.")
}
