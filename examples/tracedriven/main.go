// Trace-driven example: write a synthetic trace to disk in Standard Workload
// Format, read it back (the same path works for real Grid'5000 or Parallel
// Workload Archive logs), replay it through the grid simulator with hourly
// reallocation and report the outcome per originating site.
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "gridrealloc-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pwa-g5k.swf")

	// 1. Generate a slice of the six-month mixed scenario and store it as an
	// SWF file, exactly as one would store a real archive log.
	generated, err := gridrealloc.GenerateScenario("pwa-g5k", 0.005, 123)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteSWF(f, generated); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%d jobs)\n", path, generated.Len())

	// 2. Read the trace back from disk. Any SWF file can be dropped in here.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := workload.ReadSWF(in, "pwa-g5k")
	in.Close()
	if err != nil {
		log.Fatal(err)
	}
	stats := workload.Stats(trace)
	fmt.Printf("read back %d jobs, mean runtime %.0f s, mean walltime %.0f s (over-estimation x%.1f)\n\n",
		stats.Jobs, stats.MeanRuntime, stats.MeanWalltime, stats.MeanOverestimate)

	// 3. Replay the trace on the paper's second platform (Bordeaux + CTC +
	// SDSC) with Algorithm 1 and the Sufferage heuristic.
	cfg := gridrealloc.ScenarioConfig{
		Scenario:      "pwa-g5k",
		Heterogeneity: "heterogeneous",
		Policy:        "CBF",
		Trace:         trace,
		Algorithm:     "realloc",
		Heuristic:     "Sufferage",
	}
	result, err := gridrealloc.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum := gridrealloc.Summarize(result)
	fmt.Printf("simulation finished: %d/%d jobs completed, %d reallocations over %d hourly passes\n",
		sum.Completed, sum.Jobs, sum.Reallocations, sum.ReallocationEvents)
	fmt.Printf("mean response time %.0f s, makespan %d s\n\n", sum.MeanResponseTime, sum.Makespan)

	// 4. Per-destination-cluster accounting.
	perCluster := map[string]int{}
	for _, rec := range result.SortedRecords() {
		if rec.Completion >= 0 {
			perCluster[rec.Cluster]++
		}
	}
	fmt.Println("jobs executed per cluster:")
	for _, name := range []string{"bordeaux", "ctc", "sdsc"} {
		fmt.Printf("  %-10s %d\n", name, perCluster[name])
	}
}
