package main

import "testing"

func TestFigure1(t *testing.T) {
	if err := run([]string{"-figure", "1"}); err != nil {
		t.Fatalf("figure 1 reproduction failed: %v", err)
	}
}

func TestFigure2(t *testing.T) {
	if err := run([]string{"-figure", "2"}); err != nil {
		t.Fatalf("figure 2 reproduction failed: %v", err)
	}
}

func TestBothFigures(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("default (both figures) failed: %v", err)
	}
}
