package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "1"}, &buf); err != nil {
		t.Fatalf("figure 1 reproduction failed: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatalf("figure 1 output missing its title:\n%s", buf.String())
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "2"}, &buf); err != nil {
		t.Fatalf("figure 2 reproduction failed: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatalf("figure 2 output missing its title:\n%s", buf.String())
	}
}

func TestBothFigures(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatalf("default (both figures) failed: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Figure 2") {
		t.Fatalf("default run should render both figures:\n%s", out)
	}
}

// failingWriter errors on every write, standing in for a full disk.
type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

var _ io.Writer = failingWriter{}

func TestRunReportsWriteFailure(t *testing.T) {
	err := run([]string{"-figure", "1"}, failingWriter{})
	if err == nil {
		t.Fatal("run succeeded despite every write failing")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error should carry the write failure, got: %v", err)
	}
}
