// Command ganttdemo reproduces the paper's two illustrative figures as ASCII
// Gantt charts:
//
//   - Figure 1: a task finishes before its walltime on cluster 1; at the next
//     reallocation event the meta-scheduler moves two waiting tasks to
//     cluster 2 where their estimated completion time is better.
//   - Figure 2: the side effects of a reallocation — the job inserted on the
//     destination cluster back-fills, another job finishes early, and a large
//     job behind it ends up delayed while other jobs finish earlier.
//
// Run with -figure 1 or -figure 2 (default: both).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/cli"
	"gridrealloc/internal/core"
	"gridrealloc/internal/gantt"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ganttdemo:", err)
		os.Exit(1)
	}
}

// run renders the figures to the given writer; a failed write (full disk,
// closed pipe) surfaces as an error so main exits non-zero instead of
// reporting success over a truncated chart.
func run(args []string, stdout io.Writer) error {
	w := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("ganttdemo", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure to reproduce: 1, 2, or 0 for both")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *figure == 0 || *figure == 1 {
		if err := figure1(w); err != nil {
			return err
		}
	}
	if *figure == 0 || *figure == 2 {
		if err := figure2(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// chartOf renders the snapshot of a cluster (running jobs as '#', planned
// waiting reservations as '~').
func chartOf(title string, s *server.Server) gantt.Chart {
	snap := s.Scheduler().Snapshot()
	chart := gantt.Chart{Title: title, Cores: s.Spec().Cores}
	for _, r := range snap.Running {
		chart.Bars = append(chart.Bars, gantt.Bar{Label: jobLabel(r.JobID), Start: r.Start, End: r.End, Procs: r.Procs})
	}
	for _, w := range snap.Waiting {
		chart.Bars = append(chart.Bars, gantt.Bar{Label: jobLabel(w.JobID), Start: w.Start, End: w.End, Procs: w.Procs, Waiting: true})
	}
	return chart
}

// jobLabel maps the numeric job IDs of the demo scenarios onto the letters
// used by the paper's figures.
func jobLabel(id int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	if id >= 1 && id <= len(letters) {
		return string(letters[id-1])
	}
	return fmt.Sprintf("%d", id)
}

func mustSubmit(s *server.Server, id int, submit, runtime, walltime int64, procs int, now int64) error {
	j := workload.Job{ID: id, Submit: submit, Runtime: runtime, Walltime: walltime, Procs: procs}
	return s.Submit(j, now, 0)
}

// figure1 rebuilds the scenario of Figure 1: two homogeneous clusters; jobs
// a..g run or wait; f finishes before its walltime at time t, which lets the
// local scheduler pull j forward, and at the reallocation event t1 the
// meta-scheduler moves h and i to cluster 2 where they complete earlier.
func figure1(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 1: example of reallocation between two clusters ===")
	c1, err := server.New(platform.ClusterSpec{Name: "cluster-1", Cores: 4, Speed: 1}, batch.CBF)
	if err != nil {
		return err
	}
	c2, err := server.New(platform.ClusterSpec{Name: "cluster-2", Cores: 4, Speed: 1}, batch.CBF)
	if err != nil {
		return err
	}
	servers := []*server.Server{c1, c2}

	// Cluster 1: a, b, c running; f runs but will finish well before its
	// walltime; h, i, j wait behind them.
	if err := mustSubmit(c1, 1, 0, 40, 40, 1, 0); err != nil { // a
		return err
	}
	if err := mustSubmit(c1, 2, 0, 60, 60, 1, 0); err != nil { // b
		return err
	}
	if err := mustSubmit(c1, 3, 0, 30, 30, 1, 0); err != nil { // c
		return err
	}
	if err := mustSubmit(c1, 6, 0, 20, 80, 1, 0); err != nil { // f: walltime 80, finishes at 20
		return err
	}
	if err := mustSubmit(c1, 8, 5, 50, 50, 2, 5); err != nil { // h
		return err
	}
	if err := mustSubmit(c1, 9, 6, 40, 40, 2, 6); err != nil { // i
		return err
	}
	if err := mustSubmit(c1, 10, 7, 30, 30, 1, 7); err != nil { // j
		return err
	}
	// Cluster 2: d, e, g running with plenty of idle cores.
	if err := mustSubmit(c2, 4, 0, 50, 50, 1, 0); err != nil { // d
		return err
	}
	if err := mustSubmit(c2, 5, 0, 35, 35, 1, 0); err != nil { // e
		return err
	}
	if err := mustSubmit(c2, 7, 0, 25, 25, 1, 0); err != nil { // g
		return err
	}

	// Advance both clusters to t = 30: f has finished early (20 seconds of
	// real execution against a walltime reservation of 80 seconds).
	for _, s := range servers {
		if _, err := s.Scheduler().Advance(30); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n-- before reallocation (t = 30; task f finished long before its walltime) --")
	fmt.Fprintln(w, gantt.SideBySide(0, 140, 2, chartOf("cluster-1", c1), chartOf("cluster-2", c2)))

	// Reallocation event at t1 = 30 (Algorithm 1, MCT order).
	agent, err := core.NewAgent(servers, core.MCTMapping(), core.ReallocConfig{
		Algorithm: core.WithoutCancellation,
		Heuristic: core.MCT(),
		Period:    3600,
		MinGain:   1, // the illustrative scenario works in tens of seconds
	})
	if err != nil {
		return err
	}
	moves, err := agent.Reallocate(30)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- reallocation at t1 = 30 moved %d task(s) (h and i go to cluster 2) --\n\n", moves)
	fmt.Fprintln(w, gantt.SideBySide(0, 140, 2, chartOf("cluster-1", c1), chartOf("cluster-2", c2)))
	return nil
}

// figure2 rebuilds the scenario of Figure 2: a reallocated task is inserted
// on cluster 1 and back-filled; a task there finishes earlier than its
// walltime, and because of the newly inserted task the large task behind it
// is delayed while tasks on cluster 2 are advanced.
func figure2(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 2: side effects of a reallocation ===")
	c1, err := server.New(platform.ClusterSpec{Name: "cluster-1", Cores: 6, Speed: 1}, batch.CBF)
	if err != nil {
		return err
	}
	c2, err := server.New(platform.ClusterSpec{Name: "cluster-2", Cores: 6, Speed: 1}, batch.CBF)
	if err != nil {
		return err
	}

	// Cluster 1: a running job with an over-estimated walltime (declares 60,
	// really takes 20) and a large waiting job behind it.
	if err := mustSubmit(c1, 1, 0, 20, 60, 4, 0); err != nil { // a: finishes at 20, reservation until 60
		return err
	}
	if err := mustSubmit(c1, 2, 0, 40, 40, 5, 0); err != nil { // b: large job, waits for the full width
		return err
	}
	// Cluster 2: two waiting jobs behind a running one.
	if err := mustSubmit(c2, 3, 0, 50, 50, 6, 0); err != nil { // c: occupies everything
		return err
	}
	if err := mustSubmit(c2, 4, 0, 30, 30, 3, 0); err != nil { // d: waits
		return err
	}
	if err := mustSubmit(c2, 5, 0, 25, 25, 3, 0); err != nil { // e: waits, candidate for reallocation
		return err
	}
	for _, s := range []*server.Server{c1, c2} {
		if _, err := s.Scheduler().Advance(0); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n-- before the reallocation event (t = 0) --")
	fmt.Fprintln(w, gantt.SideBySide(0, 120, 2, chartOf("cluster-1", c1), chartOf("cluster-2", c2)))

	// Reallocation at t = 0: task e moves to cluster 1 where it back-fills
	// next to a (cluster 1 still has 2 idle cores until 60 by the plan).
	agent, err := core.NewAgent([]*server.Server{c1, c2}, core.MCTMapping(), core.ReallocConfig{
		Algorithm: core.WithoutCancellation,
		Heuristic: core.MaxGain(),
		MinGain:   1,
	})
	if err != nil {
		return err
	}
	moves, err := agent.Reallocate(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- reallocation at t = 0 moved %d task(s) --\n\n", moves)
	fmt.Fprintln(w, gantt.SideBySide(0, 120, 2, chartOf("cluster-1", c1), chartOf("cluster-2", c2)))

	// Now task a finishes early (t = 20): the newly inserted task delays the
	// large task b (it cannot start before the reallocated task's
	// reservation frees enough cores), while cluster 2's remaining queue is
	// advanced.
	for _, s := range []*server.Server{c1, c2} {
		if _, err := s.Scheduler().Advance(20); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "-- after task a finishes early at t = 20: the large task on cluster 1 is delayed, cluster 2 advanced --")
	fmt.Fprintln(w, gantt.SideBySide(0, 120, 2, chartOf("cluster-1", c1), chartOf("cluster-2", c2)))
	return nil
}
