package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"gridrealloc/internal/workload"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-table1", "-fraction", "0.002"}, io.Discard); err != nil {
		t.Fatalf("tracegen -table1 failed: %v", err)
	}
}

func TestRunMergedTraceToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "jan.swf")
	if err := run([]string{"-scenario", "jan", "-fraction", "0.003", "-out", out}, io.Discard); err != nil {
		t.Fatalf("tracegen failed: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("output SWF not written: %v", err)
	}
	defer f.Close()
	trace, err := workload.ReadSWF(f, "jan")
	if err != nil {
		t.Fatalf("output SWF unreadable: %v", err)
	}
	if trace.Len() == 0 {
		t.Fatal("output SWF is empty")
	}
}

func TestRunPerSite(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scenario", "pwa-g5k", "-fraction", "0.001", "-per-site", "-out-dir", dir}, io.Discard); err != nil {
		t.Fatalf("tracegen per-site failed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("expected 3 per-site SWF files, found %d", len(entries))
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "december"}, io.Discard); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", "december", "-per-site", "-out-dir", t.TempDir()}, io.Discard); err == nil {
		t.Fatal("unknown per-site scenario accepted")
	}
}
