// Command tracegen generates the calibrated synthetic traces that substitute
// for the Grid'5000 and Parallel Workload Archive traces of the paper, and
// writes them in Standard Workload Format (SWF). It can also print the
// reproduction of Table 1 (jobs per month per site).
//
// Examples:
//
//	tracegen -table1
//	tracegen -scenario apr -fraction 1.0 -out apr.swf
//	tracegen -scenario pwa-g5k -fraction 0.1 -per-site -out-dir traces/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gridrealloc/internal/cli"
	"gridrealloc/internal/experiment"
	"gridrealloc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given writer; a failed write (full
// disk, closed pipe) surfaces as an error so main exits non-zero instead
// of reporting success over truncated output.
func run(args []string, stdout io.Writer) error {
	w := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "print the Table 1 reproduction (paper counts vs generated counts) and exit")
		scenario = fs.String("scenario", "jan", "scenario to generate: jan..jun or pwa-g5k")
		fraction = fs.Float64("fraction", 1.0, "fraction of the paper's job counts to generate")
		seed     = fs.Uint64("seed", 42, "random seed")
		out      = fs.String("out", "", "write the merged scenario trace to this SWF file (default: stdout summary only)")
		perSite  = fs.Bool("per-site", false, "write one SWF file per site instead of the merged trace")
		outDir   = fs.String("out-dir", ".", "directory for per-site SWF files")
		stats    = fs.Bool("stats", true, "print trace statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table1 {
		text, err := experiment.Table1(*fraction, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, text)
		return w.Err()
	}

	name := workload.ScenarioName(*scenario)
	if *perSite {
		traces, err := siteTraces(name, *fraction, *seed)
		if err != nil {
			return err
		}
		for _, tr := range traces {
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.swf", *scenario, tr.Name))
			if err := writeSWF(path, tr); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d jobs)\n", path, tr.Len())
		}
		return w.Err()
	}

	trace, err := workload.Scenario(name, *fraction, *seed)
	if err != nil {
		return err
	}
	if *stats {
		printStats(w, trace)
	}
	if *out != "" {
		if err := writeSWF(*out, trace); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d jobs)\n", *out, trace.Len())
	}
	return w.Err()
}

func siteTraces(name workload.ScenarioName, fraction float64, seed uint64) ([]*workload.Trace, error) {
	if name == workload.PWAG5K {
		return workload.PWAScenario(fraction, seed)
	}
	for _, m := range workload.Months() {
		if m.String() == string(name) {
			return workload.MonthScenario(m, fraction, seed)
		}
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}

func writeSWF(path string, tr *workload.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteSWF(f, tr); err != nil {
		f.Close()
		return err
	}
	// Close flushes buffered writes; dropping its error could report a
	// truncated trace file as written.
	return f.Close()
}

func printStats(w io.Writer, tr *workload.Trace) {
	s := workload.Stats(tr)
	fmt.Fprintf(w, "scenario %q\n", s.Name)
	fmt.Fprintf(w, "  jobs:                %d\n", s.Jobs)
	for _, sc := range workload.SiteCounts(tr) {
		fmt.Fprintf(w, "    %-12s %d\n", sc.Site, sc.Jobs)
	}
	fmt.Fprintf(w, "  span:                %d s\n", s.SpanSeconds)
	fmt.Fprintf(w, "  mean processors:     %.1f (max %d)\n", s.MeanProcs, s.MaxProcs)
	fmt.Fprintf(w, "  mean runtime:        %.0f s\n", s.MeanRuntime)
	fmt.Fprintf(w, "  mean walltime:       %.0f s (over-estimation x%.2f)\n", s.MeanWalltime, s.MeanOverestimate)
	fmt.Fprintf(w, "  bad jobs (runtime > walltime): %d\n", s.BadJobs)
}
