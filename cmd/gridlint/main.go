// Command gridlint runs the gridrealloc invariant analyzers (directives,
// resetcomplete, stateversion, poollife, determinism, sweepowner,
// refbalance — see internal/lint) over the module and prints one line per
// diagnostic:
//
//	path/to/file.go:line:col: analyzer: message
//
// Usage:
//
//	gridlint [-root dir] [-json] [packages]
//	gridlint [-root dir] [-json] -suppressions [-baseline file] [packages]
//
// With no package arguments (or the pattern "./..."), every package of the
// module is analyzed. Package arguments may be import paths
// ("gridrealloc/internal/batch") or ./-relative directories
// ("./internal/batch").
//
// -json switches stdout to machine-readable output: an array of
// {file, line, col, analyzer, message} objects (or, under -suppressions, a
// directive -> count object).
//
// -suppressions counts the suite's suppression directives
// (keep-across-reset, allow-retain, unordered-ok, ref-transferred) instead
// of reporting diagnostics, prints the counts in LINT_SUPPRESSIONS format,
// and fails when a count exceeds the committed baseline — the suppression
// budget only ratchets down.
//
// Exit status: 0 when the tree is clean (or within the suppression budget),
// 1 when diagnostics were reported (or the budget is exceeded), 2 when the
// tree could not be loaded.
//
// The tool is a standalone driver rather than a `go vet -vettool`: the
// vettool protocol requires golang.org/x/tools' unitchecker, which this
// dependency-free module does not import. The analyzers themselves follow
// the x/tools analysis shape, so migrating to a vettool is mechanical if
// the module ever takes on the dependency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gridrealloc/internal/cli"
	"gridrealloc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	out := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rootFlag := fs.String("root", "", "module root directory (default: nearest parent with go.mod)")
	jsonFlag := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	suppFlag := fs.Bool("suppressions", false, "count suppression directives against the committed baseline instead of reporting diagnostics")
	baselineFlag := fs.String("baseline", "", "suppression baseline file (default: <root>/"+suppressionBaselineFile+")")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, module, err := resolveModule(*rootFlag)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}

	loader := lint.NewLoader(root, module)
	paths, err := resolvePatterns(loader, root, module, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	prog, err := loader.Load(paths...)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}

	if *suppFlag {
		code := runSuppressions(prog, root, *baselineFlag, *jsonFlag, out, stderr)
		if err := out.Err(); err != nil {
			fmt.Fprintf(stderr, "gridlint: writing output: %v\n", err)
			return 2
		}
		return code
	}

	diags, err := lint.RunAnalyzers(prog, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	if *jsonFlag {
		if err := writeDiagnosticsJSON(out, root, diags); err != nil {
			fmt.Fprintf(stderr, "gridlint: encoding diagnostics: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n",
				relativeTo(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if err := out.Err(); err != nil {
		fmt.Fprintf(stderr, "gridlint: writing output: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relativeTo shortens a diagnostic filename to a root-relative path when the
// file lives under the module root.
func relativeTo(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// jsonDiagnostic is the -json wire shape of one diagnostic. The field set
// mirrors the text format (and the CI problem matcher's capture groups).
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeDiagnosticsJSON emits the diagnostics as a JSON array — always an
// array, never null, so consumers can index a clean run's output.
func writeDiagnosticsJSON(out io.Writer, root string, diags []lint.Diagnostic) error {
	payload := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		payload = append(payload, jsonDiagnostic{
			File:     relativeTo(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// resolveModule locates the module root (the given directory, or the
// nearest parent of the working directory containing go.mod) and reads the
// module path from its go.mod.
func resolveModule(root string) (dir, module string, err error) {
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", "", err
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			return "", "", err
		}
	}
	root, err = filepath.Abs(root)
	if err != nil {
		return "", "", err
	}
	module, err = modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", "", err
	}
	return root, module, nil
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (use -root)", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// resolvePatterns turns the command-line package arguments into import
// paths. No arguments, ".", or "./..." select the whole module.
func resolvePatterns(loader *lint.Loader, root, module string, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var paths []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "." || arg == module:
			return loader.ModulePackages()
		case strings.HasPrefix(arg, "./"):
			rel := filepath.Clean(strings.TrimPrefix(arg, "./"))
			if rel == "." {
				paths = append(paths, module)
			} else {
				paths = append(paths, module+"/"+filepath.ToSlash(rel))
			}
		default:
			paths = append(paths, arg)
		}
	}
	return paths, nil
}
