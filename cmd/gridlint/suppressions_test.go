package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyModule writes a minimal module whose only source trips the
// determinism analyzer (one time.Now call) and carries one unordered-ok
// suppression, and returns its root.
func dirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module dirty\n\ngo 1.24\n")
	write("main.go", `package main

import "time"

func main() {
	_ = time.Now()
	m := map[int]int{1: 1}
	//gridlint:unordered-ok the loop only sums values
	for _, v := range m {
		_ = v
	}
}
`)
	return dir
}

func TestRunJSONDiagnostics(t *testing.T) {
	dir := dirtyModule(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", dir, "-json", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "main.go" || d.Analyzer != "determinism" || d.Line == 0 || d.Col == 0 ||
		!strings.Contains(d.Message, "time.Now") {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", moduleRoot(t), "-json", "gridrealloc/internal/cli"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestSuppressionsMissingBaseline(t *testing.T) {
	dir := dirtyModule(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exited %d, want 1 without a baseline\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "no suppression baseline") {
		t.Fatalf("stderr should explain the missing baseline:\n%s", errBuf.String())
	}
	// stdout stays regeneration-ready: baseline format with the one
	// counted suppression.
	if !strings.Contains(out.String(), "unordered-ok 1") {
		t.Fatalf("counts output missing unordered-ok 1:\n%s", out.String())
	}
}

func TestSuppressionsWithinAndOverBudget(t *testing.T) {
	dir := dirtyModule(t)
	baseline := filepath.Join(dir, suppressionBaselineFile)
	writeBaseline := func(content string) {
		t.Helper()
		if err := os.WriteFile(baseline, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	writeBaseline("# budget\nallow-retain 0\nkeep-across-reset 0\nref-transferred 0\nunordered-ok 1\n")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("within budget exited %d, want 0\nstderr:\n%s", code, errBuf.String())
	}

	writeBaseline("unordered-ok 0\n")
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("over budget exited %d, want 1\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "over the budget") {
		t.Fatalf("stderr should name the exceeded budget:\n%s", errBuf.String())
	}
}

func TestSuppressionsSlackIsNotedNotFatal(t *testing.T) {
	dir := dirtyModule(t)
	baseline := filepath.Join(dir, suppressionBaselineFile)
	if err := os.WriteFile(baseline, []byte("unordered-ok 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("under budget exited %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "ratchet") {
		t.Fatalf("stderr should nudge toward ratcheting down:\n%s", errBuf.String())
	}
}

func TestSuppressionsStaleBaselineEntry(t *testing.T) {
	dir := dirtyModule(t)
	baseline := filepath.Join(dir, suppressionBaselineFile)
	if err := os.WriteFile(baseline, []byte("unordered-ok 1\nnosuchdirective 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("stale entry exited %d, want 1\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "nosuchdirective") {
		t.Fatalf("stderr should name the stale entry:\n%s", errBuf.String())
	}
}

func TestSuppressionsJSON(t *testing.T) {
	dir := dirtyModule(t)
	baseline := filepath.Join(dir, suppressionBaselineFile)
	if err := os.WriteFile(baseline, []byte("unordered-ok 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", "-json", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("exited %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	var counts map[string]int
	if err := json.Unmarshal(out.Bytes(), &counts); err != nil {
		t.Fatalf("-suppressions -json output is not an object: %v\n%s", err, out.String())
	}
	if counts["unordered-ok"] != 1 || counts["allow-retain"] != 0 {
		t.Fatalf("unexpected counts: %v", counts)
	}
}

func TestReadSuppressionBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		t.Helper()
		p := filepath.Join(dir, suppressionBaselineFile)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct{ name, content string }{
		{"missing count", "unordered-ok\n"},
		{"non-numeric count", "unordered-ok many\n"},
		{"negative count", "unordered-ok -1\n"},
		{"duplicate entry", "unordered-ok 1\nunordered-ok 2\n"},
	} {
		if _, err := readSuppressionBaseline(write(tc.content)); err == nil {
			t.Errorf("%s: baseline accepted, want error", tc.name)
		}
	}
	p := write("# comment\n\nallow-retain 2\nunordered-ok 7\n")
	budget, err := readSuppressionBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if budget["allow-retain"] != 2 || budget["unordered-ok"] != 7 || len(budget) != 2 {
		t.Fatalf("parsed budget = %v", budget)
	}
}

// TestCommittedBaselineMatchesTree keeps LINT_SUPPRESSIONS honest: the
// committed budget must cover the tree exactly as `gridlint -suppressions`
// counts it. Type-checks the whole module, so skipped in -short.
func TestCommittedBaselineMatchesTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-root", moduleRoot(t), "-suppressions", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("suppression budget check exited %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errBuf.String())
	}
}
