package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridrealloc/internal/lint"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestRunCleanPackage(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", moduleRoot(t), "gridrealloc/internal/cli"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("gridlint on internal/cli exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean package produced diagnostics:\n%s", out.String())
	}
}

func TestRunWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow; run without -short")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", moduleRoot(t), "./..."}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("gridlint over the module exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
}

func TestRunDirtyTree(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module dirty\n\ngo 1.24\n")
	writeFile("main.go", `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	var out, errBuf bytes.Buffer
	code := run([]string{"-root", dir, "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("gridlint on a time.Now call exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "determinism") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("diagnostic line missing analyzer or message:\n%s", out.String())
	}
}

func TestRunBadRoot(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-root", t.TempDir()}, io.Discard, &errBuf); code != 2 {
		t.Fatalf("gridlint without a go.mod exited %d, want 2 (stderr: %s)", code, errBuf.String())
	}
}

func TestResolvePatterns(t *testing.T) {
	root := moduleRoot(t)
	loader := lint.NewLoader(root, "gridrealloc")
	paths, err := resolvePatterns(loader, root, "gridrealloc", []string{"./internal/cli", "gridrealloc/internal/lint"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gridrealloc/internal/cli", "gridrealloc/internal/lint"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("resolvePatterns = %v, want %v", paths, want)
	}
	all, err := resolvePatterns(loader, root, "gridrealloc", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("./... resolved to only %d packages: %v", len(all), all)
	}
}
