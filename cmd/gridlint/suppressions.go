package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gridrealloc/internal/lint"
)

// suppressionBaselineFile is the committed budget file at the module root.
// Each line is "<directive-word> <count>"; '#' comments and blank lines are
// ignored. Regenerate with: gridlint -suppressions > LINT_SUPPRESSIONS
// (only when a new suppression has been reviewed and accepted — the budget
// is meant to ratchet down, not drift up).
const suppressionBaselineFile = "LINT_SUPPRESSIONS"

// runSuppressions implements gridlint -suppressions: print the current
// per-directive suppression counts (in baseline file format, so stdout can
// regenerate the file) and compare them against the committed budget.
// Exit status: 0 within budget, 1 when a count exceeds its budget or the
// baseline is missing, 2 on a malformed baseline.
func runSuppressions(prog *lint.Program, root, baselinePath string, asJSON bool, out, stderr io.Writer) int {
	counts := lint.CountSuppressions(prog)
	words := make([]string, 0, len(counts))
	//gridlint:unordered-ok words are sorted right below
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)

	if asJSON {
		// encoding/json emits map keys sorted, so the output is stable.
		if err := json.NewEncoder(out).Encode(counts); err != nil {
			fmt.Fprintf(stderr, "gridlint: encoding counts: %v\n", err)
			return 2
		}
	} else {
		for _, w := range words {
			fmt.Fprintf(out, "%s %d\n", w, counts[w])
		}
	}

	if baselinePath == "" {
		baselinePath = filepath.Join(root, suppressionBaselineFile)
	}
	budget, err := readSuppressionBaseline(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(stderr,
				"gridlint: no suppression baseline at %s; commit one with: gridlint -suppressions > %s\n",
				baselinePath, suppressionBaselineFile)
			return 1
		}
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}

	exceeded := false
	for _, w := range words {
		have, budgeted := counts[w], budget[w]
		switch {
		case have > budgeted:
			fmt.Fprintf(stderr,
				"gridlint: //gridlint:%s suppressions grew to %d, over the budget of %d; remove one or ratchet %s up in review\n",
				w, have, budgeted, suppressionBaselineFile)
			exceeded = true
		case have < budgeted:
			fmt.Fprintf(stderr,
				"gridlint: note: //gridlint:%s suppressions dropped to %d, under the budget of %d; ratchet %s down\n",
				w, have, budgeted, suppressionBaselineFile)
		}
	}
	for _, w := range sortedKeys(budget) {
		if _, known := counts[w]; !known {
			fmt.Fprintf(stderr,
				"gridlint: %s budgets unknown directive %q; remove the stale line\n",
				suppressionBaselineFile, w)
			exceeded = true
		}
	}
	if exceeded {
		return 1
	}
	return 0
}

// readSuppressionBaseline parses a LINT_SUPPRESSIONS file into a
// word -> budget map.
func readSuppressionBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	budget := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<directive> <count>\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, fields[1])
		}
		if _, dup := budget[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate entry for %q", path, i+1, fields[0])
		}
		budget[fields[0]] = n
	}
	return budget, nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//gridlint:unordered-ok keys are sorted before return
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
