package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTableReducedCampaign(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-fraction", "0.004",
		"-scenarios", "jan,apr",
		"-table", "8",
		"-quiet",
		"-csv", csv,
	}, &buf)
	if err != nil {
		t.Fatalf("experiments run failed: %v", err)
	}
	if !strings.Contains(buf.String(), "heuristics:") {
		t.Fatalf("closing heuristics note missing from output:\n%s", buf.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	content := string(data)
	if !strings.HasPrefix(content, "table,policy,heuristic") {
		t.Fatalf("CSV header missing:\n%s", content)
	}
	if !strings.Contains(content, "8,FCFS,Mct") {
		t.Fatalf("CSV rows missing:\n%s", content)
	}
}

func TestRunTable1Flag(t *testing.T) {
	err := run([]string{
		"-fraction", "0.002",
		"-scenarios", "jan",
		"-table", "2",
		"-table1",
		"-quiet",
	}, io.Discard)
	if err != nil {
		t.Fatalf("experiments -table1 failed: %v", err)
	}
}

func TestRunInvalidTable(t *testing.T) {
	if err := run([]string{"-fraction", "0.002", "-scenarios", "jan", "-table", "42", "-quiet"}, io.Discard); err == nil {
		t.Fatal("invalid table number accepted")
	}
}
