// Command experiments runs the simulation campaign of the paper's evaluation
// section and prints Tables 2 through 17 in the paper's layout, plus the
// Section 4.3 comparison of the two reallocation algorithms. The campaign
// can be scaled down with -fraction for a quick run; -fraction 1.0
// reproduces the paper's trace sizes (the full 364-simulation campaign takes
// on the order of an hour on a laptop).
//
// Examples:
//
//	experiments -fraction 0.02                 # quick pass over all tables
//	experiments -fraction 1.0 -csv out.csv     # full-scale campaign
//	experiments -table 8 -fraction 0.05        # a single table
//	experiments -compare -fraction 0.05        # Section 4.3 comparison only
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gridrealloc/internal/cli"
	"gridrealloc/internal/core"
	"gridrealloc/internal/experiment"
	"gridrealloc/internal/workload"
)

func main() {
	// SIGINT or SIGTERM cancels the campaign context: cells already simulating
	// finish, the partial progress is reported to stderr, and the process exits
	// non-zero instead of discarding an hour of completed simulations
	// silently.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the campaign without cancellation (the test-suite entry
// point).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx executes the campaign against the given writer; a failed write
// (full disk, closed pipe) surfaces as an error so main exits non-zero
// instead of reporting a campaign nobody saw. Progress keeps going to
// stderr.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	w := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fraction  = fs.Float64("fraction", 0.02, "fraction of the paper's trace sizes (1.0 = full scale)")
		seed      = fs.Uint64("seed", 42, "random seed for the synthetic traces")
		tableID   = fs.Int("table", 0, "print only this table (2..17); 0 prints all")
		compare   = fs.Bool("compare", false, "print the Section 4.3 algorithm comparison")
		table1    = fs.Bool("table1", false, "also print the Table 1 reproduction")
		csvPath   = fs.String("csv", "", "write all tables as CSV to this file")
		scenarios = fs.String("scenarios", "", "comma-separated subset of scenarios (default: all seven)")
		parallel  = fs.Int("parallel", 0, "number of concurrent simulations (0 = one per CPU)")
		quiet     = fs.Bool("quiet", false, "suppress progress output")
		period    = fs.Int64("period", 0, "override the reallocation period in seconds (0 = paper default 3600)")
		minGain   = fs.Int64("min-gain", 0, "override the Algorithm 1 improvement threshold in seconds (0 = paper default 60)")

		outageCluster   = fs.String("outage-cluster", "", "cluster hit by the campaign's capacity window (default: each platform's first cluster)")
		outageStart     = fs.Int64("outage-start", 0, "start of the capacity window in trace seconds")
		outageDuration  = fs.Int64("outage-duration", 0, "length of the capacity window in seconds (0 = only scenario-variant defaults apply)")
		outageSeverity  = fs.Float64("outage-severity", 0, "fraction of cores lost during the window, in (0,1]; sweep severities by running one campaign per value")
		outageAnnounced = fs.Bool("outage-announced", false, "treat the window as announced maintenance instead of a surprise outage")
		outagePolicy    = fs.String("outage-policy", "", "displaced running jobs are killed (default) or requeued: kill or requeue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.CampaignConfig{
		Fraction:      *fraction,
		Seed:          *seed,
		Parallelism:   *parallel,
		ReallocPeriod: *period,
		MinGain:       *minGain,
	}
	if *outageDuration > 0 || *outageSeverity > 0 || *outageStart > 0 || *outageAnnounced || *outagePolicy != "" || *outageCluster != "" {
		cfg.Outage = &experiment.OutageSpec{
			Cluster:   *outageCluster,
			Start:     *outageStart,
			Duration:  *outageDuration,
			Severity:  *outageSeverity,
			Announced: *outageAnnounced,
			Policy:    *outagePolicy,
		}
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *scenarios != "" {
		for _, s := range strings.Split(*scenarios, ",") {
			cfg.Scenarios = append(cfg.Scenarios, workload.ScenarioName(strings.TrimSpace(s)))
		}
	}

	if *table1 {
		text, err := experiment.Table1(*fraction, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, text)
	}

	fmt.Fprintf(os.Stderr, "running campaign (fraction=%.3f, %d scenario(s))...\n", *fraction, len(cfg.Scenarios))
	camp, stats, err := experiment.RunCtx(ctx, cfg)
	if err != nil {
		// Surface what the interrupted (or failed) campaign did complete:
		// the experiments of every finished cell are in camp, and the stats
		// say how many cells never ran.
		if camp != nil {
			fmt.Fprintf(os.Stderr, "campaign aborted: %d experiments from %d of %d cells completed (%d cells skipped)\n",
				camp.Experiments, stats.Completed, stats.Tasks, stats.Skipped)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign done: %d experiments\n", camp.Experiments)

	ids := make([]int, 0, 16)
	if *tableID != 0 {
		ids = append(ids, *tableID)
	} else {
		for _, spec := range experiment.Tables() {
			ids = append(ids, spec.ID)
		}
	}

	var csv strings.Builder
	for _, id := range ids {
		table, err := camp.BuildTable(id)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, table.Format())
		csv.WriteString(table.CSV())
	}

	if *compare || *tableID == 0 {
		fmt.Fprintln(w, experiment.FormatComparison(camp.CompareAlgorithms()))
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	// Closing note: remind how the heuristic names map to the paper.
	fmt.Fprintf(w, "heuristics: %s (\"-C\" marks the cancellation algorithm, Algorithm 2)\n",
		strings.Join(heuristicNames(), ", "))
	return w.Err()
}

func heuristicNames() []string {
	names := make([]string, 0, 6)
	for _, h := range core.Heuristics() {
		names = append(names, h.Name())
	}
	return names
}
