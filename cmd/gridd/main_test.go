package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/faultinject"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/scenario"
	"gridrealloc/internal/service"
)

// syncBuf is a concurrency-safe writer the daemon goroutine logs into while
// the test polls for the listen address.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// waitForAddr polls the daemon's output for the bound address.
func waitForAddr(t *testing.T, buf *syncBuf) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never printed its listen address; output: %q", buf.String())
	return ""
}

// testCampaign returns a small deterministic scenario batch.
func testCampaign(n int) []scenario.Config {
	algorithms := []string{"none", "realloc", "realloc-cancel"}
	cfgs := make([]scenario.Config, n)
	for i := range cfgs {
		cfgs[i] = scenario.Config{
			Scenario:      "jan",
			TraceFraction: 0.01,
			Algorithm:     algorithms[i%len(algorithms)],
			Seed:          uint64(i + 1),
		}
	}
	return cfgs
}

// referenceDigests runs the batch in-process: the digests a campaign served
// over HTTP must reproduce bit for bit.
func referenceDigests(t *testing.T, cfgs []scenario.Config) []string {
	t.Helper()
	want, _, err := runner.RunCtx(context.Background(), len(cfgs), runner.Options{Workers: 2},
		func(_ context.Context, i int, sim *core.Simulator) (string, error) {
			runCfg, err := scenario.BuildRunConfig(cfgs[i])
			if err != nil {
				return "", err
			}
			res, err := sim.Run(runCfg)
			if err != nil {
				return "", err
			}
			return res.Digest(), nil
		})
	if err != nil {
		t.Fatalf("in-process reference campaign: %v", err)
	}
	return want
}

func TestRunCtxRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-platform", "banana"},
		{"-policy", "banana"},
		{"-addr", "256.256.256.256:http"},
	}
	for _, args := range cases {
		if err := runCtx(context.Background(), args, io.Discard); err == nil {
			t.Errorf("runCtx(%v) accepted bad input", args)
		}
	}
}

func TestRunCtxServesAndDrainsCleanly(t *testing.T) {
	snap := leakcheck.Take()
	var buf syncBuf
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runCtx(ctx, []string{"-addr", "127.0.0.1:0"}, &buf) }()
	addr := waitForAddr(t, &buf)
	client := &service.Client{Base: "http://" + addr}

	status, err := client.Healthz(context.Background())
	if err != nil || status != "ok" {
		t.Fatalf("healthz = %q, %v", status, err)
	}
	if _, err := client.Submit(context.Background(), service.SubmitRequest{
		Cluster: "bordeaux",
		Job:     service.JobPayload{ID: 1, Runtime: 60, Walltime: 120, Procs: 8},
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	cfgs := testCampaign(4)
	want := referenceDigests(t, cfgs)
	digests := make([]string, len(cfgs))
	trailer, err := client.Campaign(context.Background(), service.CampaignRequest{Scenarios: cfgs},
		func(line service.CampaignLine) {
			if line.Index >= 0 && line.Index < len(digests) {
				digests[line.Index] = line.Digest
			}
		})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if trailer.Health != "clean" {
		t.Fatalf("trailer = %+v", trailer)
	}
	for i := range want {
		if digests[i] != want[i] {
			t.Fatalf("task %d digest over HTTP %q != in-process %q", i, digests[i], want[i])
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	client.CloseIdle()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCtxDegradedDrainWhenCampaignsCancelled(t *testing.T) {
	var buf syncBuf
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- runCtx(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-allow-fault-injection",
			"-drain", "400ms",
		}, &buf)
	}()
	addr := waitForAddr(t, &buf)
	client := &service.Client{Base: "http://" + addr}
	defer client.CloseIdle()

	// A campaign whose plan contains a Slow fault with no task timeout: the
	// faulted task blocks until the campaign is cancelled, so the daemon
	// cannot drain cleanly and must take the degraded exit path.
	firstLine := make(chan struct{})
	var once sync.Once
	campaignDone := make(chan struct{})
	go func() {
		defer close(campaignDone)
		_, _ = client.Campaign(context.Background(), service.CampaignRequest{
			Scenarios: testCampaign(6),
			FaultSeed: 11,
			Faulted:   3, // fault kinds cycle Panic, Transient, Slow — one blocking task guaranteed
		}, func(service.CampaignLine) { once.Do(func() { close(firstLine) }) })
	}()
	select {
	case <-firstLine:
	case <-time.After(15 * time.Second):
		t.Fatal("campaign never streamed a line")
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errDegraded) {
			t.Fatalf("drain with a wedged campaign returned %v, want errDegraded", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	<-campaignDone
}

// TestGriddEndToEnd is the CI smoke: build the real binary, boot it, replay
// a concurrent campaign mix against the live socket — one tenant with an
// injected panic plan, one healthy tenant checked for digest parity, one
// slow reader that abandons its stream — then SIGTERM and require a clean
// drain (exit status 0).
func TestGriddEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "gridd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-allow-fault-injection",
		"-write-timeout", "1s",
		"-campaigns", "3",
		"-drain", "8s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout from daemon; stderr: %s", stderr.String())
	}
	m := listenLine.FindStringSubmatch(sc.Text())
	if m == nil {
		t.Fatalf("unexpected first line %q", sc.Text())
	}
	go func() { // keep draining stdout so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	addr := m[1]
	client := &service.Client{Base: "http://" + addr}
	defer client.CloseIdle()

	cfgs := testCampaign(8)
	want := referenceDigests(t, cfgs)
	plan := faultinject.NewPlan(21, len(cfgs), 4) // one fault of each kind, incl. a panic
	const maxRetries = 2

	var wg sync.WaitGroup
	errs := make(chan error, 3)

	// Tenant 1: the faulted campaign.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lines := make([]*service.CampaignLine, len(cfgs))
		trailer, err := client.Campaign(context.Background(), service.CampaignRequest{
			Scenarios:     cfgs,
			TaskTimeoutMs: 300,
			MaxRetries:    maxRetries,
			FaultSeed:     plan.Seed(),
			Faulted:       4,
		}, func(line service.CampaignLine) {
			l := line
			if l.Index >= 0 && l.Index < len(lines) {
				lines[l.Index] = &l
			}
		})
		if err != nil {
			errs <- fmt.Errorf("faulted campaign: %w", err)
			return
		}
		if expect := plan.Expected(maxRetries); trailer.Stats != expect {
			errs <- fmt.Errorf("faulted campaign stats %+v, plan expected %+v", trailer.Stats, expect)
			return
		}
		for i, line := range lines {
			if line == nil {
				errs <- fmt.Errorf("faulted campaign: no line for task %d", i)
				return
			}
			switch plan.Fault(i).Kind {
			case faultinject.None, faultinject.Transient:
				if line.Digest != want[i] {
					errs <- fmt.Errorf("faulted campaign: task %d digest %q != %q", i, line.Digest, want[i])
					return
				}
			case faultinject.Panic, faultinject.PoisonReset:
				if !line.Panic {
					errs <- fmt.Errorf("faulted campaign: task %d not marked as panic: %+v", i, line)
					return
				}
			case faultinject.Slow:
				if !line.Timeout {
					errs <- fmt.Errorf("faulted campaign: task %d not marked as timeout: %+v", i, line)
					return
				}
			}
		}
	}()

	// Tenant 2: a healthy campaign that must stay bit-identical.
	wg.Add(1)
	go func() {
		defer wg.Done()
		digests := make([]string, len(cfgs))
		trailer, err := client.Campaign(context.Background(), service.CampaignRequest{Scenarios: cfgs},
			func(line service.CampaignLine) {
				if line.Index >= 0 && line.Index < len(digests) {
					digests[line.Index] = line.Digest
				}
			})
		if err != nil {
			errs <- fmt.Errorf("healthy campaign: %w", err)
			return
		}
		if trailer.Health != "clean" {
			errs <- fmt.Errorf("healthy campaign trailer: %+v", trailer)
			return
		}
		for i := range want {
			if digests[i] != want[i] {
				errs <- fmt.Errorf("healthy campaign: task %d digest %q != %q", i, digests[i], want[i])
				return
			}
		}
	}()

	// Tenant 3: the slow reader — opens a campaign whose Slow fault keeps
	// the stream alive, never reads it, then walks away.
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := `{"scenarios":[{"scenario":"jan","trace_fraction":0.01,"seed":1},` +
			`{"scenario":"jan","trace_fraction":0.01,"seed":2},` +
			`{"scenario":"jan","trace_fraction":0.01,"seed":3}],"fault_seed":9,"faulted":3}`
		resp, err := http.Post("http://"+addr+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			errs <- fmt.Errorf("slow reader: %w", err)
			return
		}
		time.Sleep(500 * time.Millisecond) // stall without reading
		resp.Body.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Wait for the daemon to fully quiesce (the abandoned stream's handler
	// must finish and return its lease) so SIGTERM finds nothing in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := client.Stats(context.Background())
		if err == nil && stats.CampaignsRunning == 0 && stats.Leases.Leased == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never quiesced: %+v, err=%v", stats, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr: %s", stderr.String())
	}
	cmd.Process = nil
}
