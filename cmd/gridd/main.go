// Command gridd is the grid-reallocation daemon: an HTTP/JSON front over
// the restricted cluster-frontal API of the paper (submit, cancel, estimate,
// list — the middleware may only observe and re-submit, never command the
// local batch schedulers) plus a campaign endpoint that streams simulation
// results as NDJSON. Concurrent campaigns share one bounded pool of pooled
// simulators through the service lease manager; admission control sheds
// excess load with 429 instead of queueing without bound.
//
// The daemon is built to survive hostile traffic: request bodies are
// size-capped and strictly decoded, every request runs under a deadline,
// a panicking handler answers 500 and quarantines its simulator without
// taking the process down, and slow readers are cut by per-write deadlines.
//
// SIGTERM or SIGINT starts a graceful drain: the daemon stops accepting
// work, gives in-flight campaigns half the drain budget to finish, then
// cancels them and flushes partial results. Exit status 0 means a clean
// drain, 3 means the drain was degraded (campaigns cancelled or budget
// exceeded), 1 means a startup or serve failure.
//
// Example:
//
//	gridd -addr 127.0.0.1:8080 -scenario jan -platform homogeneous \
//	      -policy FCFS -sims 4 -campaigns 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridrealloc/internal/cli"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/service"
)

func main() {
	// Both SIGTERM (the supervisor's stop) and SIGINT (a human's ^C) start
	// the graceful drain; a second signal kills immediately because
	// NotifyContext unregisters on the first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := runCtx(ctx, os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errDegraded):
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(3)
	default:
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

// errDegraded marks a drain that had to cancel in-flight campaigns or blew
// its budget; main maps it to exit status 3 so supervisors can tell a
// degraded stop from a clean one.
var errDegraded = errors.New("degraded drain")

// runCtx boots the daemon, serves until ctx is cancelled (a signal in
// production), then drains. It prints the bound address to stdout as
// "gridd: listening on <addr>" so callers binding port 0 can find it.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	out := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		scen     = fs.String("scenario", "jan", "workload scenario whose platform the frontal clusters serve")
		variant  = fs.String("platform", "homogeneous", "platform variant: homogeneous or heterogeneous")
		policy   = fs.String("policy", "FCFS", "local batch policy of every frontal cluster: FCFS or CBF")
		sims     = fs.Int("sims", 4, "bound on pooled simulators shared by all campaigns")
		camps    = fs.Int("campaigns", 2, "bound on concurrently running campaigns")
		pend     = fs.Int("pending", 4, "bound on campaigns queued for admission before 429 load-shedding")
		reqTO    = fs.Duration("request-timeout", 5*time.Second, "per-request deadline for the frontal endpoints and campaign admission")
		campTO   = fs.Duration("campaign-timeout", 5*time.Minute, "deadline for one whole campaign including streaming")
		writeTO  = fs.Duration("write-timeout", 10*time.Second, "per-write deadline cutting slow readers off a campaign stream")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		maxBody  = fs.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxScen  = fs.Int("max-scenarios", 4096, "bound on scenarios in one campaign request")
		allowInj = fs.Bool("allow-fault-injection", false, "accept campaign requests carrying a fault-injection plan (test harnesses only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	variantV, err := platform.ParseHeterogeneity(*variant)
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		Platform:             platform.ForScenario(*scen, variantV),
		Policy:               *policy,
		Sims:                 *sims,
		MaxCampaigns:         *camps,
		MaxPending:           *pend,
		RequestTimeout:       *reqTO,
		CampaignTimeout:      *campTO,
		WriteTimeout:         *writeTO,
		DrainBudget:          *drain,
		MaxBodyBytes:         *maxBody,
		MaxCampaignScenarios: *maxScen,
		AllowFaultInjection:  *allowInj,
		Now:                  time.Now,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: svc.Handler(),
		// Slowloris guard: a client must finish its request header quickly;
		// bodies are bounded separately by MaxBytesReader + the per-request
		// deadline inside the service.
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(out, "gridd: listening on %s\n", ln.Addr())
	if err := out.Err(); err != nil {
		_ = ln.Close()
		return err
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admission, let campaigns finish or cancel them
	// within the budget, then close the listener and in-flight connections.
	drainErr := svc.Drain(context.Background())
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	_ = hs.Shutdown(sctx)
	cancel()
	<-serveErr
	if drainErr != nil {
		return fmt.Errorf("%w: %v", errDegraded, drainErr)
	}
	return out.Err()
}
