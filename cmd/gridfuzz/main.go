// Command gridfuzz fans randomized scenarios over a worker pool and runs
// the internal/harness invariant oracle on each: digest determinism,
// parallel == sequential sweeps, incremental-vs-from-scratch profile
// consistency, capacity-ceiling reservations, queue seniority, job
// conservation, SWF round-trips and zero-capacity inertness, over random
// traces, random 1–16 cluster platforms and multi-window capacity
// timelines.
//
// Scenario seeds are derived from -seed so that the i-th scenario's seed is
// congruent to i modulo 72; the generator maps that residue onto the full
// (policy, algorithm, heuristic, outage policy) grid, so any run of at
// least 72 scenarios covers every combination at least once — and the run
// fails if it somehow does not.
//
// -faults switches to the fault-injection oracle: a seeded fault plan
// (panics, transient errors, slow tasks, poisoned simulators) is installed
// into the campaign runner's workers and the harness asserts the campaign
// degrades gracefully — non-faulted scenarios stay bit-identical to a
// fault-free run, transient retries converge, quarantined simulators never
// re-enter the pool, and no goroutines leak.
//
// Examples:
//
//	gridfuzz -n 500 -seed 42 -parallel 8
//	gridfuzz -replay 6490219575032832022    # re-run one failing scenario
//	gridfuzz -faults 50 -seed 42            # fault-injection campaign
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"syscall"

	"gridrealloc/internal/cli"
	"gridrealloc/internal/core"
	"gridrealloc/internal/harness"
	"gridrealloc/internal/runner"
)

func main() {
	// SIGINT or SIGTERM cancels the campaign context: in-flight scenarios
	// finish, the summary (and the lowest failing seed, if any scenario failed)
	// still prints, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridfuzz:", err)
		os.Exit(1)
	}
}

// scenarioSeed derives the i-th scenario seed from the base seed. The value
// is mixed through SplitMix64 so scenarios are unrelated, then snapped to
// the residue i mod 72 that selects the configuration-grid entry — the seed
// alone still reproduces the whole scenario (gridfuzz -replay <seed>).
func scenarioSeed(base uint64, i int) uint64 {
	combos := uint64(len(harness.Combos()))
	x := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	z -= z % combos
	if z > math.MaxUint64-(combos-1) {
		z -= combos
	}
	return z + uint64(i)%combos
}

// failure records one oracle violation.
type failure struct {
	index int
	seed  uint64
	spec  string
	err   error
}

// run executes the fuzz campaign without cancellation (the test-suite entry
// point).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx executes the fuzz campaign against the given writer; a failed
// write (full disk, closed pipe) surfaces as an error so main exits
// non-zero instead of reporting a green run nobody saw. Cancelling ctx
// (SIGINT) stops the campaign after the in-flight scenarios finish; the
// coverage summary and the lowest failing seed found so far still print.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	out := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("gridfuzz", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		n        = fs.Int("n", 500, "number of random scenarios to generate and check")
		seed     = fs.Uint64("seed", 42, "base seed; scenario i derives its own seed from it")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker pool size (each worker checks whole scenarios)")
		replay   = fs.String("replay", "", "re-run the single scenario with this exact seed and exit")
		faults   = fs.Int("faults", 0, "run the fault-injection oracle instead: inject this many seeded faults into a campaign of -n scenarios")
		verbose  = fs.Bool("v", false, "print every scenario, not just failures and the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The replay flag is a string so that every uint64 is a replayable seed
	// — 0 included (it sits in the committed fuzz corpus); a numeric flag's
	// zero value would be indistinguishable from "not set".
	if *replay != "" {
		seed, err := strconv.ParseUint(*replay, 10, 64)
		if err != nil {
			return fmt.Errorf("-replay wants a decimal uint64 seed: %w", err)
		}
		spec := harness.Generate(seed)
		fmt.Fprintf(out, "replaying %s\n", spec)
		if err := harness.Check(spec); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		fmt.Fprintf(out, "seed %d: all oracle invariants hold\n", seed)
		return out.Err()
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *parallel <= 0 {
		*parallel = 1
	}
	if *faults > 0 {
		return runFaults(out, *seed, *n, *faults, *parallel)
	}

	var (
		failures                                 []failure
		combos                                   = make(map[string]int)
		multiWin, hetero, withWindows, totalJobs int
	)
	workers := *parallel
	if workers > *n {
		workers = *n
	}
	// The campaign fans out over the shared grid runner: each worker owns a
	// pooled simulator that every oracle run of every scenario it checks
	// reuses, and outcomes stream into the aggregation as they complete.
	type outcome struct {
		seed uint64
		spec *harness.Spec
		err  error
	}
	stats, cerr := runner.StreamCtx(ctx, *n, runner.Options{Workers: workers},
		func(_ context.Context, i int, sim *core.Simulator) (outcome, error) {
			s := scenarioSeed(*seed, i)
			spec := harness.Generate(s)
			return outcome{seed: s, spec: spec, err: harness.CheckOn(sim, spec)}, nil
		},
		func(i int, o outcome, _ error) {
			spec := o.spec
			combos[spec.Combo.String()]++
			if spec.CapacityWindows >= 2 {
				multiWin++
			}
			if spec.CapacityWindows >= 1 {
				withWindows++
			}
			if spec.Heterogeneous {
				hetero++
			}
			totalJobs += spec.Trace.Len()
			if o.err != nil {
				failures = append(failures, failure{index: i, seed: o.seed, spec: spec.String(), err: o.err})
				fmt.Fprintf(out, "FAIL #%d %s\n  %v\n", i, spec, o.err)
			} else if *verbose {
				fmt.Fprintf(out, "ok   #%d %s\n", i, spec)
			}
		})

	grid := harness.Combos()
	missing := make([]string, 0)
	for _, c := range grid {
		if combos[c.String()] == 0 {
			missing = append(missing, c.String())
		}
	}
	checked := int(stats.Completed + stats.Failed)
	fmt.Fprintf(out, "checked %d scenarios (base seed %d, %d workers, %d jobs total)\n",
		checked, *seed, workers, totalJobs)
	fmt.Fprintf(out, "coverage: %d/%d config combinations, %d heterogeneous platforms, %d with capacity windows (%d with >= 2)\n",
		len(grid)-len(missing), len(grid), hetero, withWindows, multiWin)

	if len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].index < failures[b].index })
		first := failures[0]
		return fmt.Errorf("%d scenario(s) failed; first (minimal) failing seed: %d at index %d — reproduce with: gridfuzz -replay %d\n  %s\n  %v",
			len(failures), first.seed, first.index, first.seed, first.spec, first.err)
	}
	if cerr != nil {
		// A cancelled campaign cannot claim grid coverage; report what ran
		// (the failure path above already printed the lowest failing seed).
		if errors.Is(cerr, context.Canceled) {
			return fmt.Errorf("interrupted after %d of %d scenarios (%d skipped); no oracle violations in the scenarios that ran",
				checked, *n, stats.Skipped)
		}
		return cerr
	}
	if *n >= len(grid) && len(missing) > 0 {
		return fmt.Errorf("%d scenarios should cover all %d config combinations but %d are missing (generator bug): %v",
			*n, len(grid), len(missing), missing)
	}
	// The interesting-region counters are drawn with probabilities that make
	// zero hits over a grid-sized campaign statistically impossible
	// (heterogeneous platforms ~55%, multi-window timelines ~30% per
	// scenario); an empty count there means the generator regressed, not
	// that the dice were unlucky.
	if *n >= len(grid) {
		if hetero == 0 {
			return fmt.Errorf("%d scenarios produced no heterogeneous platform (generator bug)", *n)
		}
		if multiWin == 0 {
			return fmt.Errorf("%d scenarios produced none with >= 2 capacity windows (generator bug)", *n)
		}
	}
	fmt.Fprintln(out, "all oracle invariants hold")
	return out.Err()
}

// runFaults executes the fault-injection oracle mode (-faults): inject
// `faults` seeded faults into a campaign of n scenarios and assert the
// runner degrades gracefully (see harness.CheckFaultTolerance). The seed
// reproduces the exact same fault plan, so a red run is replayed with the
// same flags.
func runFaults(out *cli.ErrWriter, seed uint64, n, faults, parallel int) error {
	report, err := harness.CheckFaultTolerance(harness.FaultCampaignConfig{
		Seed:      seed,
		Scenarios: n,
		Faulted:   faults,
		Workers:   parallel,
	})
	if err != nil {
		return fmt.Errorf("fault-injection campaign (seed %d, %d scenarios, %d faults): %w", seed, n, faults, err)
	}
	s := report.Stats
	fmt.Fprintf(out, "fault campaign: %d scenarios, %d injected faults (seed %d): %d panics, %d transients, %d slow, %d poisoned resets\n",
		report.Scenarios, report.Faulted, seed, report.Panics, report.Transients, report.Slows, report.Poisons)
	fmt.Fprintf(out, "runner degraded gracefully: %d completed, %d failed, %d panics recovered, %d retries, %d timeouts, %d simulators quarantined\n",
		s.Completed, s.Failed, s.RecoveredPanics, s.Retries, s.Timeouts, s.DiscardedSims)
	fmt.Fprintln(out, "all fault-tolerance invariants hold")
	return out.Err()
}
