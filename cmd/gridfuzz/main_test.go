package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gridrealloc/internal/harness"
)

// TestScenarioSeedResidues pins the coverage mechanism: the i-th derived
// seed must be congruent to i modulo the grid size, because Generate maps
// that residue onto the (policy, algorithm, heuristic, outage policy) grid.
func TestScenarioSeedResidues(t *testing.T) {
	combos := uint64(len(harness.Combos()))
	for _, base := range []uint64{0, 42, 1 << 60} {
		for i := 0; i < 300; i++ {
			s := scenarioSeed(base, i)
			if s%combos != uint64(i)%combos {
				t.Fatalf("base %d index %d: seed %d has residue %d, want %d", base, i, s, s%combos, uint64(i)%combos)
			}
		}
	}
	if scenarioSeed(1, 5) == scenarioSeed(2, 5) {
		t.Fatal("different base seeds produced the same scenario seed")
	}
}

// TestGridfuzzCoversTheGrid runs a small-but-complete campaign: one pass
// over the 72-combination grid plus change, fanned over a worker pool, and
// asserts full combo coverage plus the interesting-region counters.
func TestGridfuzzCoversTheGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("gridfuzz campaign runs dozens of simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-seed", "42", "-parallel", "8"}, &buf); err != nil {
		t.Fatalf("gridfuzz failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "72/72 config combinations") {
		t.Fatalf("80 scenarios did not cover the grid:\n%s", out)
	}
	if !strings.Contains(out, "all oracle invariants hold") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestGridfuzzReplay(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-replay", "42"}, &buf); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "seed 42: all oracle invariants hold") {
		t.Fatalf("unexpected replay output:\n%s", buf.String())
	}

	// Seed 0 is a legitimate scenario (it sits in the fuzz corpus); -replay
	// must actually replay it, not fall through to a full campaign.
	buf.Reset()
	if err := run([]string{"-replay", "0"}, &buf); err != nil {
		t.Fatalf("replay of seed 0 failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "seed 0: all oracle invariants hold") ||
		strings.Contains(buf.String(), "checked") {
		t.Fatalf("-replay 0 did not replay the single scenario:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-replay", "not-a-seed"}, &buf); err == nil {
		t.Fatal("non-numeric -replay accepted")
	}
}

// TestGridfuzzFaultMode runs the fault-injection oracle through the CLI
// path and pins its success output.
func TestGridfuzzFaultMode(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign waits out slow-fault deadlines")
	}
	var buf bytes.Buffer
	if err := run([]string{"-faults", "6", "-n", "24", "-seed", "42", "-parallel", "4"}, &buf); err != nil {
		t.Fatalf("fault campaign failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"fault campaign: 24 scenarios, 6 injected faults (seed 42)",
		"runner degraded gracefully:",
		"all fault-tolerance invariants hold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestGridfuzzInterrupted is the SIGINT contract: a cancelled context stops
// the campaign, the summary still prints, and the exit is non-zero.
func TestGridfuzzInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "SIGINT" lands before the campaign starts
	var buf bytes.Buffer
	err := runCtx(ctx, []string{"-n", "50", "-seed", "42", "-parallel", "2"}, &buf)
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("cancellation error does not say interrupted: %v", err)
	}
	if !strings.Contains(buf.String(), "checked") {
		t.Fatalf("cancelled campaign did not print its summary:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "all oracle invariants hold") {
		t.Fatalf("cancelled campaign claimed a full green run:\n%s", buf.String())
	}
}

func TestGridfuzzRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "0"}, &buf); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if err := run([]string{"-nonsense"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
