package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridrealloc/internal/workload"
)

func TestRunGeneratedScenario(t *testing.T) {
	err := run([]string{
		"-scenario", "jan", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc", "-heuristic", "MinMin",
		"-compare", "-jobs",
	}, io.Discard)
	if err != nil {
		t.Fatalf("gridsim run failed: %v", err)
	}
}

func TestRunFromSWF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	trace, err := workload.Scenario("feb", 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSWF(f, trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-swf", path, "-batch", "CBF", "-algorithm", "none"}, io.Discard); err != nil {
		t.Fatalf("gridsim SWF run failed: %v", err)
	}
}

// TestRunMultiScenarioCampaign exercises the comma-separated campaign mode:
// several scenarios fanned over the pooled runner, with baselines and
// comparisons.
func TestRunMultiScenarioCampaign(t *testing.T) {
	err := run([]string{
		"-scenario", "jan, feb", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc-cancel", "-heuristic", "Mct",
		"-parallel", "2", "-compare",
	}, io.Discard)
	if err != nil {
		t.Fatalf("gridsim campaign failed: %v", err)
	}
	// Without -compare the campaign prints plain summaries.
	if err := run([]string{"-scenario", "jan,feb", "-fraction", "0.003", "-algorithm", "none"}, io.Discard); err != nil {
		t.Fatalf("gridsim campaign without compare failed: %v", err)
	}
}

// TestRunCampaignInterrupted is the SIGINT contract in miniature: a
// cancelled context must stop the campaign, report how many runs completed
// and exit with an error instead of pretending the campaign ran.
func TestRunCampaignInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "SIGINT" lands before the campaign starts
	var buf bytes.Buffer
	err := runCtx(ctx, []string{
		"-scenario", "jan,feb,mar", "-fraction", "0.003", "-algorithm", "none",
	}, &buf)
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("cancellation error does not say interrupted: %v", err)
	}
	// The single-scenario path ignores cancellation only in so far as one
	// simulation is the unit of work; the campaign path must skip instead.
	if strings.Contains(buf.String(), "summary:") {
		t.Fatalf("cancelled-before-start campaign still printed summaries:\n%s", buf.String())
	}
}

// TestRunMultiScenarioRejectsBadInput covers the campaign-mode error paths:
// -swf cannot pair with a scenario list, and a bad scenario in the list
// surfaces as the lowest-index failure.
func TestRunMultiScenarioRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scenario", "jan,feb", "-swf", "whatever.swf"}, io.Discard); err == nil {
		t.Fatal("-swf with a scenario list accepted")
	}
	if err := run([]string{"-scenario", "jan,definitely-not-a-month", "-fraction", "0.003"}, io.Discard); err == nil {
		t.Fatal("unknown scenario in the list accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-batch", "EASYGOING"}, io.Discard); err == nil {
		t.Fatal("unknown batch policy accepted")
	}
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-algorithm", "teleport"}, io.Discard); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-swf", "/does/not/exist.swf"}, io.Discard); err == nil {
		t.Fatal("missing SWF file accepted")
	}
}

// TestRunPrintsSummary pins the shape of the human output: the trace line,
// the summary block and the paper metrics must all reach the writer.
func TestRunPrintsSummary(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scenario", "jan", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc", "-heuristic", "MinMin", "-compare",
	}, &buf)
	if err != nil {
		t.Fatalf("gridsim run failed: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace \"jan\":",
		"run summary:",
		"baseline summary:",
		"paper metrics vs baseline:",
		"number of reallocations:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// failingWriter rejects every write, standing in for a full disk.
type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestRunReportsWriteFailure is the exit-non-zero-on-any-failure-path
// contract: when stdout writes fail, run must return an error rather than
// pretend the report was delivered.
func TestRunReportsWriteFailure(t *testing.T) {
	err := run([]string{"-scenario", "jan", "-fraction", "0.003", "-algorithm", "none"}, failingWriter{})
	if err == nil {
		t.Fatal("run succeeded despite every stdout write failing")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error does not surface the write failure: %v", err)
	}
}
