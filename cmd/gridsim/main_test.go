package main

import (
	"os"
	"path/filepath"
	"testing"

	"gridrealloc/internal/workload"
)

func TestRunGeneratedScenario(t *testing.T) {
	err := run([]string{
		"-scenario", "jan", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc", "-heuristic", "MinMin",
		"-compare", "-jobs",
	})
	if err != nil {
		t.Fatalf("gridsim run failed: %v", err)
	}
}

func TestRunFromSWF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	trace, err := workload.Scenario("feb", 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSWF(f, trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-swf", path, "-batch", "CBF", "-algorithm", "none"}); err != nil {
		t.Fatalf("gridsim SWF run failed: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-batch", "EASYGOING"}); err == nil {
		t.Fatal("unknown batch policy accepted")
	}
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-algorithm", "teleport"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-swf", "/does/not/exist.swf"}); err == nil {
		t.Fatal("missing SWF file accepted")
	}
}
