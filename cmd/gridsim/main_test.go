package main

import (
	"os"
	"path/filepath"
	"testing"

	"gridrealloc/internal/workload"
)

func TestRunGeneratedScenario(t *testing.T) {
	err := run([]string{
		"-scenario", "jan", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc", "-heuristic", "MinMin",
		"-compare", "-jobs",
	})
	if err != nil {
		t.Fatalf("gridsim run failed: %v", err)
	}
}

func TestRunFromSWF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	trace, err := workload.Scenario("feb", 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSWF(f, trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-swf", path, "-batch", "CBF", "-algorithm", "none"}); err != nil {
		t.Fatalf("gridsim SWF run failed: %v", err)
	}
}

// TestRunMultiScenarioCampaign exercises the comma-separated campaign mode:
// several scenarios fanned over the pooled runner, with baselines and
// comparisons.
func TestRunMultiScenarioCampaign(t *testing.T) {
	err := run([]string{
		"-scenario", "jan, feb", "-fraction", "0.003", "-seed", "5",
		"-platform", "homogeneous", "-batch", "FCFS",
		"-algorithm", "realloc-cancel", "-heuristic", "Mct",
		"-parallel", "2", "-compare",
	})
	if err != nil {
		t.Fatalf("gridsim campaign failed: %v", err)
	}
	// Without -compare the campaign prints plain summaries.
	if err := run([]string{"-scenario", "jan,feb", "-fraction", "0.003", "-algorithm", "none"}); err != nil {
		t.Fatalf("gridsim campaign without compare failed: %v", err)
	}
}

// TestRunMultiScenarioRejectsBadInput covers the campaign-mode error paths:
// -swf cannot pair with a scenario list, and a bad scenario in the list
// surfaces as the lowest-index failure.
func TestRunMultiScenarioRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scenario", "jan,feb", "-swf", "whatever.swf"}); err == nil {
		t.Fatal("-swf with a scenario list accepted")
	}
	if err := run([]string{"-scenario", "jan,definitely-not-a-month", "-fraction", "0.003"}); err == nil {
		t.Fatal("unknown scenario in the list accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-batch", "EASYGOING"}); err == nil {
		t.Fatal("unknown batch policy accepted")
	}
	if err := run([]string{"-scenario", "jan", "-fraction", "0.002", "-algorithm", "teleport"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-swf", "/does/not/exist.swf"}); err == nil {
		t.Fatal("missing SWF file accepted")
	}
}
