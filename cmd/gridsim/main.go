// Command gridsim runs grid simulations: one workload scenario on one
// platform variant, with a chosen local batch policy and reallocation
// configuration, and prints the user- and system-centric metrics (plus the
// comparison against the no-reallocation baseline when requested).
//
// -scenario also accepts a comma-separated list; such a multi-scenario
// campaign fans out over the pooled campaign runner (-parallel workers, each
// reusing one simulator across its runs), streams per-scenario progress to
// stderr as runs finish, and prints the summaries in list order.
//
// Examples:
//
//	gridsim -scenario apr -fraction 0.05 -platform heterogeneous -batch CBF \
//	        -algorithm realloc-cancel -heuristic MinMin -compare
//
//	gridsim -scenario jan,feb,mar,apr -fraction 0.05 -parallel 4 \
//	        -algorithm realloc-cancel -heuristic MinMin -compare
//
//	gridsim -swf trace.swf -batch FCFS -algorithm realloc -heuristic Mct
//
//	gridsim -scenario jan-outage -outage-policy requeue \
//	        -algorithm realloc-cancel -heuristic MinMin -compare
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/cli"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/workload"
)

func main() {
	// SIGINT or SIGTERM cancels the context instead of killing the process: an
	// interrupted multi-scenario campaign still prints the summaries of the
	// scenarios it completed before exiting non-zero. A second signal kills
	// immediately (signal.NotifyContext unregisters on the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

// run executes the tool without cancellation (the test-suite entry point).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx executes the tool against the given writer; a failed write (full
// disk, closed pipe) surfaces as an error so main exits non-zero instead of
// reporting success over truncated output. Cancelling ctx interrupts a
// multi-scenario campaign after the in-flight scenarios finish.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	out := cli.NewErrWriter(stdout)
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	var (
		scenario  = fs.String("scenario", "jan", "workload scenario (jan..jun, pwa-g5k, capacity variants such as jan-maint/jan-outage), or a comma-separated list for a multi-scenario campaign")
		parallel  = fs.Int("parallel", 0, "worker pool size for multi-scenario campaigns (0 = one per CPU)")
		fraction  = fs.Float64("fraction", 0.05, "fraction of the paper's trace size to generate")
		seed      = fs.Uint64("seed", 42, "random seed for the synthetic trace")
		swfPath   = fs.String("swf", "", "replay this SWF trace instead of generating one")
		variant   = fs.String("platform", "heterogeneous", "platform variant: homogeneous or heterogeneous")
		batchPol  = fs.String("batch", "CBF", "local batch policy: FCFS or CBF")
		algorithm = fs.String("algorithm", "none", "reallocation algorithm: none, realloc or realloc-cancel")
		heuristic = fs.String("heuristic", "Mct", "reallocation heuristic: Mct, MinMin, MaxMin, MaxGain, MaxRelGain, Sufferage")
		mapping   = fs.String("mapping", "MCT", "initial mapping policy: MCT, Random or RoundRobin")
		period    = fs.Int64("period", 3600, "reallocation period in seconds")
		minGain   = fs.Int64("min-gain", 60, "minimum completion-time improvement (s) for Algorithm 1")
		compare   = fs.Bool("compare", false, "also run the no-reallocation baseline and print the paper's metrics")
		jobsOut   = fs.Bool("jobs", false, "print the per-job records")

		outageCluster   = fs.String("outage-cluster", "", "cluster hit by the capacity window (default: the platform's first cluster)")
		outageStart     = fs.Int64("outage-start", 0, "start of the capacity window in trace seconds")
		outageDuration  = fs.Int64("outage-duration", 0, "length of the capacity window in seconds (0 disables the explicit window)")
		outageSeverity  = fs.Float64("outage-severity", 0, "fraction of cores lost during the window, in (0,1] (<=0 means a full outage)")
		outageAnnounced = fs.Bool("outage-announced", false, "treat the window as an announced maintenance window the scheduler plans around")
		outagePolicy    = fs.String("outage-policy", "kill", "what happens to running jobs displaced by an outage: kill or requeue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scenarios := splitScenarios(*scenario)
	if len(scenarios) == 1 {
		// Normalise a single-element list ("jan," or " jan ") so the
		// single-scenario path accepts the same syntax the campaign does.
		*scenario = scenarios[0]
	}
	if len(scenarios) > 1 {
		if *swfPath != "" {
			return fmt.Errorf("-swf replays one trace; it cannot be combined with a multi-scenario list")
		}
		base := gridrealloc.ScenarioConfig{
			Heterogeneity:        *variant,
			Policy:               *batchPol,
			TraceFraction:        *fraction,
			Seed:                 *seed,
			Algorithm:            *algorithm,
			Heuristic:            *heuristic,
			Mapping:              *mapping,
			ReallocPeriodSeconds: *period,
			MinGainSeconds:       *minGain,

			OutageCluster:         *outageCluster,
			OutageStartSeconds:    *outageStart,
			OutageDurationSeconds: *outageDuration,
			OutageSeverity:        *outageSeverity,
			OutageAnnounced:       *outageAnnounced,
			OutagePolicy:          *outagePolicy,
		}
		if err := runCampaign(ctx, out, scenarios, base, *parallel, *compare); err != nil {
			return err
		}
		return out.Err()
	}

	var trace *gridrealloc.Trace
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = workload.ReadSWF(f, *swfPath)
		if err != nil {
			return err
		}
	} else {
		var err error
		trace, err = gridrealloc.GenerateScenario(*scenario, *fraction, *seed)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "trace %q: %d jobs\n", trace.Name, trace.Len())

	cfg := gridrealloc.ScenarioConfig{
		Scenario:             *scenario,
		Heterogeneity:        *variant,
		Policy:               *batchPol,
		Trace:                trace,
		Seed:                 *seed,
		Algorithm:            *algorithm,
		Heuristic:            *heuristic,
		Mapping:              *mapping,
		ReallocPeriodSeconds: *period,
		MinGainSeconds:       *minGain,

		OutageCluster:         *outageCluster,
		OutageStartSeconds:    *outageStart,
		OutageDurationSeconds: *outageDuration,
		OutageSeverity:        *outageSeverity,
		OutageAnnounced:       *outageAnnounced,
		OutagePolicy:          *outagePolicy,
	}
	result, err := gridrealloc.RunScenario(cfg)
	if err != nil {
		return err
	}
	printSummary(out, "run", gridrealloc.Summarize(result))
	if result.OutageKills > 0 || result.OutageRequeues > 0 {
		fmt.Fprintf(out, "  outage displacements: %d killed, %d requeued\n", result.OutageKills, result.OutageRequeues)
	}

	if *compare {
		baseCfg := cfg
		baseCfg.Algorithm = "none"
		baseline, err := gridrealloc.RunScenario(baseCfg)
		if err != nil {
			return err
		}
		printSummary(out, "baseline", gridrealloc.Summarize(baseline))
		cmp, err := gridrealloc.Compare(baseline, result)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\npaper metrics vs baseline:\n")
		fmt.Fprintf(out, "  jobs impacted:           %.2f%% (%d of %d)\n", cmp.ImpactedPercent, cmp.ImpactedJobs, cmp.TotalJobs)
		fmt.Fprintf(out, "  number of reallocations: %d\n", cmp.Reallocations)
		fmt.Fprintf(out, "  jobs finishing earlier:  %.2f%%\n", cmp.EarlierPercent)
		fmt.Fprintf(out, "  relative response time:  %.3f\n", cmp.RelativeResponseTime)
		if *jobsOut {
			fmt.Fprintf(out, "\nimpacted jobs (delta < 0 means earlier with reallocation):\n")
			for _, d := range metrics.Deltas(baseline, result) {
				fmt.Fprintf(out, "  job %-6d %+8d s  (%d reallocations)\n", d.JobID, d.Delta, d.Reallocations)
			}
		}
	} else if *jobsOut {
		fmt.Fprintf(out, "\nper-job records:\n")
		for _, rec := range result.SortedRecords() {
			fmt.Fprintf(out, "  job %-6d cluster=%-10s submit=%-8d start=%-8d completion=%-8d realloc=%d\n",
				rec.JobID, rec.Cluster, rec.Submit, rec.Start, rec.Completion, rec.Reallocations)
		}
	}
	return out.Err()
}

// splitScenarios parses the -scenario value as a comma-separated list,
// dropping empty elements.
func splitScenarios(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runCampaign executes the multi-scenario mode: one configuration per listed
// scenario (plus its no-reallocation baseline when compare is set), fanned
// over the pooled campaign runner. Progress streams to stderr in completion
// order; the summaries print to stdout in list order once all runs finished.
// When ctx is cancelled mid-campaign (SIGINT), the scenarios whose runs all
// completed are still summarised before the cancellation error is returned.
func runCampaign(ctx context.Context, out io.Writer, scenarios []string, base gridrealloc.ScenarioConfig, parallel int, compare bool) error {
	perScenario := 1
	if compare {
		perScenario = 2
	}
	cfgs := make([]gridrealloc.ScenarioConfig, 0, perScenario*len(scenarios))
	for _, sc := range scenarios {
		cfg := base
		cfg.Scenario = sc
		cfgs = append(cfgs, cfg)
		if compare {
			baseline := cfg
			baseline.Algorithm = "none"
			cfgs = append(cfgs, baseline)
		}
	}

	results := make([]*gridrealloc.Result, len(cfgs))
	var firstErr runner.FirstError
	stats, cerr := gridrealloc.RunScenariosStreamCtx(ctx, cfgs, parallel, func(i int, res *gridrealloc.Result, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "failed %s: %v\n", cfgs[i].Scenario, err)
			firstErr.Observe(i, err)
			return
		}
		results[i] = res
		kind := "run"
		if cfgs[i].Algorithm == "none" && compare {
			kind = "baseline"
		}
		fmt.Fprintf(os.Stderr, "done %s (%s: %d jobs, makespan %d s)\n", cfgs[i].Scenario, kind, len(res.Jobs), res.Makespan)
	})
	if err := firstErr.Err(); err != nil {
		return fmt.Errorf("scenario %s: %w", cfgs[firstErr.Index()].Scenario, err)
	}

	printed := 0
	for si, sc := range scenarios {
		res := results[si*perScenario]
		if res == nil {
			// Skipped (or still pending at cancellation): nothing to report.
			continue
		}
		if compare && results[si*perScenario+1] == nil {
			continue
		}
		printed++
		printSummary(out, sc, gridrealloc.Summarize(res))
		if res.OutageKills > 0 || res.OutageRequeues > 0 {
			fmt.Fprintf(out, "  outage displacements: %d killed, %d requeued\n", res.OutageKills, res.OutageRequeues)
		}
		if compare {
			baseline := results[si*perScenario+1]
			cmp, err := gridrealloc.Compare(baseline, res)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  vs baseline: impacted %.2f%%, reallocations %d, earlier %.2f%%, relative response %.3f\n",
				cmp.ImpactedPercent, cmp.Reallocations, cmp.EarlierPercent, cmp.RelativeResponseTime)
		}
	}
	if cerr != nil {
		if errors.Is(cerr, context.Canceled) {
			return fmt.Errorf("interrupted: %d of %d runs completed, %d scenario(s) summarised above, %d runs skipped",
				stats.Completed, stats.Tasks, printed, stats.Skipped)
		}
		return cerr
	}
	return nil
}

func printSummary(out io.Writer, label string, s gridrealloc.Summary) {
	fmt.Fprintf(out, "\n%s summary:\n", label)
	fmt.Fprintf(out, "  jobs completed:      %d / %d (%d killed at walltime)\n", s.Completed, s.Jobs, s.Killed)
	fmt.Fprintf(out, "  mean response time:  %.1f s (median %.1f s)\n", s.MeanResponseTime, s.MedianResponseTime)
	fmt.Fprintf(out, "  mean wait time:      %.1f s\n", s.MeanWaitTime)
	fmt.Fprintf(out, "  makespan:            %d s\n", s.Makespan)
	fmt.Fprintf(out, "  reallocations:       %d (over %d passes)\n", s.Reallocations, s.ReallocationEvents)
}
