package gridrealloc_test

import (
	"testing"

	gridrealloc "gridrealloc"
)

// The tests in this file check that the reproduction preserves the *shape*
// of the paper's findings (Section 4 and the conclusion), not its absolute
// numbers: reallocation is beneficial on average, the cancellation algorithm
// (Algorithm 2) beats the algorithm without cancellation on the average
// response time of impacted jobs, the number of migrations stays small
// relative to the trace, and more jobs finish earlier than later.
//
// They run on a 15% slice of the February and April scenarios; the
// submission window scales with the slice so the offered load matches the
// full-scale traces.

type shapeResult struct {
	cmpAlg1 gridrealloc.Comparison
	cmpAlg2 gridrealloc.Comparison
	jobs    int
}

func runShape(t *testing.T, scenario, het, policy string) shapeResult {
	t.Helper()
	trace, err := gridrealloc.GenerateScenario(scenario, 0.15, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := gridrealloc.ScenarioConfig{
		Scenario:      scenario,
		Heterogeneity: het,
		Policy:        policy,
		Trace:         trace,
	}
	baseline, err := gridrealloc.RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}

	alg1 := base
	alg1.Algorithm = "realloc"
	alg1.Heuristic = "MinMin"
	resAlg1, err := gridrealloc.RunScenario(alg1)
	if err != nil {
		t.Fatal(err)
	}
	cmp1, err := gridrealloc.Compare(baseline, resAlg1)
	if err != nil {
		t.Fatal(err)
	}

	alg2 := base
	alg2.Algorithm = "realloc-cancel"
	alg2.Heuristic = "MinMin"
	resAlg2, err := gridrealloc.RunScenario(alg2)
	if err != nil {
		t.Fatal(err)
	}
	cmp2, err := gridrealloc.Compare(baseline, resAlg2)
	if err != nil {
		t.Fatal(err)
	}
	return shapeResult{cmpAlg1: cmp1, cmpAlg2: cmp2, jobs: trace.Len()}
}

// TestPaperShapeLoadedMonth checks the paper's headline findings on the
// loaded April scenario (the month where the paper reports its largest
// gains, close to a factor of four with cancellation).
func TestPaperShapeLoadedMonth(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests replay sizeable traces")
	}
	sr := runShape(t, "apr", "homogeneous", "FCFS")

	// Reallocation touches a visible share of the jobs on the loaded month.
	if sr.cmpAlg1.ImpactedPercent < 2 {
		t.Errorf("Algorithm 1 impacted only %.2f%% of jobs on the loaded month", sr.cmpAlg1.ImpactedPercent)
	}
	if sr.cmpAlg2.ImpactedPercent < 5 {
		t.Errorf("Algorithm 2 impacted only %.2f%% of jobs on the loaded month", sr.cmpAlg2.ImpactedPercent)
	}
	// The paper: reallocation improves the average response time of the
	// impacted jobs, and cancellation improves it further (up to ~4x).
	if sr.cmpAlg1.RelativeResponseTime >= 1.05 {
		t.Errorf("Algorithm 1 relative response time = %.3f, expected a gain on the loaded month", sr.cmpAlg1.RelativeResponseTime)
	}
	if sr.cmpAlg2.RelativeResponseTime >= sr.cmpAlg1.RelativeResponseTime {
		t.Errorf("cancellation (%.3f) did not beat no-cancellation (%.3f) on the loaded month",
			sr.cmpAlg2.RelativeResponseTime, sr.cmpAlg1.RelativeResponseTime)
	}
	if sr.cmpAlg2.RelativeResponseTime > 0.75 {
		t.Errorf("cancellation gain %.3f is far from the paper's large April gains", sr.cmpAlg2.RelativeResponseTime)
	}
	// More impacted jobs finish earlier than later with cancellation.
	if sr.cmpAlg2.EarlierPercent <= 50 {
		t.Errorf("only %.2f%% of impacted jobs finish earlier with cancellation", sr.cmpAlg2.EarlierPercent)
	}
	// Reallocations stay a small fraction of the jobs (paper: 2.3% on
	// average, 5.8% with cancellation, max 28.8%).
	if float64(sr.cmpAlg1.Reallocations) > 0.35*float64(sr.jobs) {
		t.Errorf("Algorithm 1 performed %d migrations for %d jobs", sr.cmpAlg1.Reallocations, sr.jobs)
	}
	if float64(sr.cmpAlg2.Reallocations) > 0.60*float64(sr.jobs) {
		t.Errorf("Algorithm 2 performed %d migrations for %d jobs", sr.cmpAlg2.Reallocations, sr.jobs)
	}
	t.Logf("apr/homogeneous/FCFS: alg1 relResp=%.3f impacted=%.1f%%; alg2 relResp=%.3f impacted=%.1f%% earlier=%.1f%%",
		sr.cmpAlg1.RelativeResponseTime, sr.cmpAlg1.ImpactedPercent,
		sr.cmpAlg2.RelativeResponseTime, sr.cmpAlg2.ImpactedPercent, sr.cmpAlg2.EarlierPercent)
}

// TestPaperShapeLightMonthNotHarmed checks that on a lightly loaded month
// the mechanism stays essentially neutral-to-beneficial (the paper: "in the
// other cases, the reallocation mechanism is beneficial most of the time").
func TestPaperShapeLightMonthNotHarmed(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests replay sizeable traces")
	}
	sr := runShape(t, "feb", "heterogeneous", "CBF")
	if sr.cmpAlg1.RelativeResponseTime > 1.15 {
		t.Errorf("Algorithm 1 degraded the light month by %.3f", sr.cmpAlg1.RelativeResponseTime)
	}
	if sr.cmpAlg2.RelativeResponseTime > 1.15 {
		t.Errorf("Algorithm 2 degraded the light month by %.3f", sr.cmpAlg2.RelativeResponseTime)
	}
	t.Logf("feb/heterogeneous/CBF: alg1 relResp=%.3f, alg2 relResp=%.3f, moves %d/%d",
		sr.cmpAlg1.RelativeResponseTime, sr.cmpAlg2.RelativeResponseTime,
		sr.cmpAlg1.Reallocations, sr.cmpAlg2.Reallocations)
}
