package gridrealloc_test

// Reuse-equivalence harness: the Reset contract of the pooled simulator says
// a reused Simulator is observationally identical to a fresh one. These
// tests prove it the strong way — per-configuration result digests over the
// full 72-configuration A/B grid on one pooled simulator (so every
// configuration runs on buffers dirtied by a different one), and over a
// sample of randomized harness scenarios whose platforms and capacity
// timelines vary wildly from run to run.

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/core"
	"gridrealloc/internal/harness"
)

// configDigest folds one run into its own hex digest for per-config
// comparison.
func configDigest(cfg gridrealloc.ScenarioConfig, res *gridrealloc.Result) string {
	h := sha256.New()
	digestResult(h, cfg, res)
	return hex.EncodeToString(h.Sum(nil))
}

// TestSimulatorReuseDigest72Grid runs the 72-configuration grid twice — once
// with a fresh simulator per configuration, once on a single pooled
// simulator reused across all 72 — and requires every per-configuration
// digest to match bit-for-bit. The parallel runner path is checked on top:
// RunScenarios with several workers must reproduce the same digests.
func TestSimulatorReuseDigest72Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the 72-configuration grid three times")
	}
	cfgs := abConfigs()
	fresh := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		res, err := gridrealloc.RunScenario(cfg)
		if err != nil {
			t.Fatalf("fresh %s/%s/%s/%s/%s: %v", cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, err)
		}
		fresh[i] = configDigest(cfg, res)
	}

	pooled := gridrealloc.NewSimulator()
	for i, cfg := range cfgs {
		res, err := pooled.RunScenario(cfg)
		if err != nil {
			t.Fatalf("pooled %s/%s/%s/%s/%s: %v", cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, err)
		}
		if d := configDigest(cfg, res); d != fresh[i] {
			t.Fatalf("config %d (%s/%s/%s/%s/%s) diverged on the reused simulator:\n  fresh  %s\n  pooled %s",
				i, cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, fresh[i], d)
		}
	}

	results, err := gridrealloc.RunScenarios(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if d := configDigest(cfg, results[i]); d != fresh[i] {
			t.Fatalf("config %d diverged through the parallel runner:\n  fresh  %s\n  runner %s", i, fresh[i], d)
		}
	}
}

// TestSimulatorReuseDigestHarnessSeeds drives one pooled simulator through a
// sample of randomized harness scenarios — platforms of different sizes,
// capacity timelines, policies and algorithms back to back — and compares
// each run's digest against a fresh simulator's. This is the reuse analogue
// of the fuzz oracle's determinism property, pinned to fixed seeds so it
// runs in the default test suite.
func TestSimulatorReuseDigestHarnessSeeds(t *testing.T) {
	pooled := core.NewSimulator()
	for i := 0; i < 24; i++ {
		seed := uint64(9000 + i*31)
		spec := harness.Generate(seed)
		freshCfg, err := harness.OracleConfig(spec, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		freshRes, err := core.Run(freshCfg)
		if err != nil {
			t.Fatalf("seed %d fresh: %v", seed, err)
		}
		pooledCfg, err := harness.OracleConfig(spec, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		pooledRes, err := pooled.Run(pooledCfg)
		if err != nil {
			t.Fatalf("seed %d pooled: %v", seed, err)
		}
		if f, p := harness.Digest(freshRes), harness.Digest(pooledRes); f != p {
			t.Fatalf("seed %d (%s) diverged on the reused simulator:\n  fresh  %s\n  pooled %s", seed, spec, f, p)
		}
	}
}
