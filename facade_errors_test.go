package gridrealloc_test

import (
	"strings"
	"testing"

	gridrealloc "gridrealloc"
)

// tinyTrace builds a two-job custom trace for the error-path tests.
func tinyTrace(t *testing.T) *gridrealloc.Trace {
	t.Helper()
	tr := &gridrealloc.Trace{Name: "tiny", Jobs: []gridrealloc.Job{
		{ID: 1, Submit: 0, Runtime: 60, Walltime: 120, Procs: 2},
		{ID: 2, Submit: 30, Runtime: 30, Walltime: 60, Procs: 1},
	}}
	return tr
}

func TestRunScenarioRejectsUnknownHeterogeneity(t *testing.T) {
	for _, het := range []string{"hetero", "Heterogeneous", "mixed", "homo"} {
		_, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario:      "jan",
			Heterogeneity: het,
			TraceFraction: 0.002,
		})
		if err == nil || !strings.Contains(err.Error(), "heterogeneity") {
			t.Fatalf("heterogeneity %q: err = %v, want heterogeneity error", het, err)
		}
	}
	// The two valid spellings and the empty default still run.
	for _, het := range []string{"", "homogeneous", "heterogeneous"} {
		if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario:      "jan",
			Heterogeneity: het,
			TraceFraction: 0.002,
		}); err != nil {
			t.Fatalf("heterogeneity %q rejected: %v", het, err)
		}
	}
}

// A custom Trace paired with a Scenario is a supported combination — the
// scenario only selects the platform — but the name must still be a real
// scenario: before this was validated, any typo silently simulated
// Grid'5000.
func TestRunScenarioCustomTraceScenarioNames(t *testing.T) {
	res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
		Scenario: "jan",
		Trace:    tinyTrace(t),
	})
	if err != nil {
		t.Fatalf("custom trace + known scenario: %v", err)
	}
	if res.Scenario != "tiny" {
		t.Fatalf("result scenario = %q, want the custom trace name", res.Scenario)
	}
	if res.PlatformName != "grid5000-homogeneous" {
		t.Fatalf("platform = %q, want the scenario's default platform", res.PlatformName)
	}

	for _, name := range []string{"jann", "jan-typo", "pwa", "pwa-g5k-maint"} {
		_, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: name,
			Trace:    tinyTrace(t),
		})
		if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
			t.Fatalf("scenario %q with custom trace: err = %v, want unknown-scenario error", name, err)
		}
	}

	// An explicit Platform overrides the scenario pairing entirely.
	plat := gridrealloc.Platform{Name: "p", Clusters: []gridrealloc.ClusterSpec{{Name: "c", Cores: 8, Speed: 1}}}
	res, err = gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
		Trace:    tinyTrace(t),
		Platform: &plat,
	})
	if err != nil {
		t.Fatalf("custom trace + platform: %v", err)
	}
	if res.PlatformName != "p" {
		t.Fatalf("platform = %q, want the explicit one", res.PlatformName)
	}
}

func TestRunScenarioOutageFieldRanges(t *testing.T) {
	base := gridrealloc.ScenarioConfig{Scenario: "jan", TraceFraction: 0.002}

	// A negative start with an explicit window is outside the timeline.
	cfg := base
	cfg.OutageStartSeconds = -100
	cfg.OutageDurationSeconds = 600
	if _, err := gridrealloc.RunScenario(cfg); err == nil || !strings.Contains(err.Error(), "negative time") {
		t.Fatalf("negative start: err = %v, want negative-time error", err)
	}

	// Outage knobs without a duration (and without a -maint/-outage
	// scenario) place no window; that must be an error, not a silently
	// static run.
	cfg = base
	cfg.OutageSeverity = 0.5
	if _, err := gridrealloc.RunScenario(cfg); err == nil || !strings.Contains(err.Error(), "places no window") {
		t.Fatalf("severity without duration: err = %v, want places-no-window error", err)
	}
	cfg = base
	cfg.OutageDurationSeconds = -600
	if _, err := gridrealloc.RunScenario(cfg); err == nil || !strings.Contains(err.Error(), "places no window") {
		t.Fatalf("negative duration: err = %v, want places-no-window error", err)
	}

	// A window on a cluster the platform does not have.
	cfg = base
	cfg.OutageCluster = "nancy"
	cfg.OutageDurationSeconds = 600
	if _, err := gridrealloc.RunScenario(cfg); err == nil || !strings.Contains(err.Error(), "nancy") {
		t.Fatalf("unknown cluster: err = %v, want it named", err)
	}

	// Severity outside (0,1] is documented to mean a full outage, not an
	// error; pin that decision.
	cfg = base
	cfg.OutageDurationSeconds = 600
	cfg.OutageSeverity = 7.5
	res, err := gridrealloc.RunScenario(cfg)
	if err != nil {
		t.Fatalf("severity 7.5 rejected: %v", err)
	}
	if res == nil {
		t.Fatal("no result")
	}

	// An unknown outage policy string is rejected.
	cfg = base
	cfg.OutagePolicy = "murder"
	if _, err := gridrealloc.RunScenario(cfg); err == nil || !strings.Contains(err.Error(), "outage policy") {
		t.Fatalf("unknown outage policy: err = %v, want outage-policy error", err)
	}
}
