package harness

import (
	"strings"
	"testing"

	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
)

func TestCombosEnumerateFullGrid(t *testing.T) {
	combos := Combos()
	if len(combos) != 72 {
		t.Fatalf("got %d combos, want 72 (2 policies x 3 algorithms x 6 heuristics x 2 outage policies)", len(combos))
	}
	seen := make(map[string]bool, len(combos))
	for _, c := range combos {
		if seen[c.String()] {
			t.Fatalf("duplicate combo %s", c)
		}
		seen[c.String()] = true
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1<<63 + 17} {
		a, b := Generate(seed), Generate(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: specs differ:\n  %s\n  %s", seed, a, b)
		}
		if a.Trace.Len() != b.Trace.Len() {
			t.Fatalf("seed %d: trace sizes differ", seed)
		}
		for i := range a.Trace.Jobs {
			if a.Trace.Jobs[i] != b.Trace.Jobs[i] {
				t.Fatalf("seed %d: job %d differs: %+v vs %+v", seed, i, a.Trace.Jobs[i], b.Trace.Jobs[i])
			}
		}
		if got, want := a.Combo.String(), Combos()[seed%72].String(); got != want {
			t.Fatalf("seed %d: combo %s, want grid entry %s", seed, got, want)
		}
	}
}

func TestGenerateStaysInBounds(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		s := Generate(seed)
		if s.Trace.Len() < 1 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if n := len(s.Platform.Clusters); n < 1 || n > 16 {
			t.Fatalf("seed %d: %d clusters", seed, n)
		}
		if err := s.Platform.Validate(); err != nil {
			t.Fatalf("seed %d: invalid platform: %v", seed, err)
		}
		if s.SweepWorkers < 2 {
			t.Fatalf("seed %d: sweep workers %d", seed, s.SweepWorkers)
		}
		if s.ReallocPeriod < 600 {
			t.Fatalf("seed %d: realloc period %d", seed, s.ReallocPeriod)
		}
		if s.MaintenanceWindows+s.OutageWindows != s.CapacityWindows {
			t.Fatalf("seed %d: window counts inconsistent", seed)
		}
	}
}

// TestOracleAcceptsSampleSeeds runs the full oracle over a spread of seeds;
// this is the harness's own smoke test (cmd/gridfuzz and the fuzz target
// cover volume).
func TestOracleAcceptsSampleSeeds(t *testing.T) {
	seeds := []uint64{0, 1, 7, 42, 97, 1234}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		s := Generate(seed)
		if err := Check(s); err != nil {
			t.Errorf("seed %d (%s): %v", seed, s, err)
		}
	}
}

// TestOracleCatchesBrokenDigest sanity-checks the oracle itself: a spec
// whose two runs genuinely differ (mutated between runs) must be reported.
// The cheapest controlled breakage is a conservation violation: hand the
// checker a result missing one record.
func TestOracleCatchesMissingJob(t *testing.T) {
	s := Generate(3) // any seed
	cfg, err := s.config(1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := s.Trace.Jobs[0].ID
	delete(res.Jobs, victim)
	if err := checkConservation(s, res); err == nil {
		t.Fatal("conservation check accepted a result with a dropped job")
	}
	// And a record that claims to finish before it starts.
	res2, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := res2.Jobs[victim]
	rec.Completion = rec.Start - 1
	if err := checkConservation(s, res2); err == nil || !strings.Contains(err.Error(), "before its start") {
		t.Fatalf("conservation check missed inverted times: %v", err)
	}
}

// TestDigestSensitivity pins that the digest reacts to every per-job field
// it claims to cover.
func TestDigestSensitivity(t *testing.T) {
	s := Generate(5)
	cfg, err := s.config(1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Digest(res)
	id := s.Trace.Jobs[0].ID
	res.Jobs[id].Completion++
	if Digest(res) == base {
		t.Fatal("digest ignores completion times")
	}
	res.Jobs[id].Completion--
	res.Jobs[id].Killed = !res.Jobs[id].Killed
	if Digest(res) == base {
		t.Fatal("digest ignores the kill flag")
	}
}

// TestZeroCapacityInertnessProperty verifies the inertness invariant on a
// platform that definitely has windows removed: stripping every window and
// flipping the outage policy must not change the digest of a windowless
// run.
func TestStrippedTimelinesAreWindowless(t *testing.T) {
	s := Generate(11)
	stripped := s.Platform
	stripped.Clusters = append([]platform.ClusterSpec(nil), s.Platform.Clusters...)
	for i := range stripped.Clusters {
		stripped.Clusters[i].Capacity = nil
	}
	s.Platform = stripped
	s.CapacityWindows, s.MaintenanceWindows, s.OutageWindows = 0, 0, 0
	if err := Check(s); err != nil {
		t.Fatalf("windowless variant failed the oracle: %v", err)
	}
}
