package harness

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/faultinject"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/scenario"
	"gridrealloc/internal/service"
)

// ServiceFaultConfig parameterises the service-leg fault oracle: the same
// graceful-degradation properties as CheckFaultTolerance, but asserted
// through a live gridd service over HTTP, with concurrent tenants sharing
// the simulator lease pool.
type ServiceFaultConfig struct {
	// Seed derives the scenario grid and the fault plan.
	Seed uint64
	// Scenarios is the campaign size (default 24).
	Scenarios int
	// Faulted is how many task indexes of the faulted tenant's campaign
	// carry an injected fault (default max(4, Scenarios/8)).
	Faulted int
	// Workers is each campaign's requested worker count (default 2).
	Workers int
	// Sims bounds the service's shared lease pool (default 4).
	Sims int
	// Tenants is how many healthy campaigns run concurrently with the
	// faulted one (default 2). One extra tenant always connects and
	// disconnects mid-stream to exercise the abandoned-stream path.
	Tenants int
	// TaskTimeout is the per-task deadline slow faults run into (default
	// 2s).
	TaskTimeout time.Duration
	// MaxRetries bounds transient-fault retries (default 3).
	MaxRetries int
	// DrainBudget bounds the final graceful drain (default 10s).
	DrainBudget time.Duration
}

func (c ServiceFaultConfig) withDefaults() ServiceFaultConfig {
	if c.Scenarios <= 0 {
		c.Scenarios = 24
	}
	if c.Faulted <= 0 {
		c.Faulted = c.Scenarios / 8
		if c.Faulted < 4 {
			c.Faulted = 4
		}
	}
	if c.Faulted > c.Scenarios {
		c.Faulted = c.Scenarios
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Sims <= 0 {
		c.Sims = 4
	}
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 10 * time.Second
	}
	return c
}

// ServiceFaultReport summarises a passed service fault-tolerance run.
type ServiceFaultReport struct {
	// Scenarios, Faulted and Tenants echo the effective shape.
	Scenarios, Faulted, Tenants int
	// Panics, Transients, Slows, Poisons break the injected faults down.
	Panics, Transients, Slows, Poisons int
	// Stats is the faulted campaign's trailer stats (they matched the
	// plan's expectation exactly, or the check failed).
	Stats runner.RunStats
	// Quarantined is how many simulators the lease pool retired.
	Quarantined int64
	// Addr is the loopback address the service ran on.
	Addr string
}

// serviceScenarios derives the deterministic scenario grid of a service
// oracle run: small fast traces cycling through the paper's algorithms and
// heuristics, seeded per index so every task's digest is independent.
func serviceScenarios(seed uint64, n int) []scenario.Config {
	algorithms := []string{"none", "realloc", "realloc-cancel"}
	heuristics := []string{"Mct", "MinMin", "MaxMin", "MaxGain", "MaxRelGain", "Sufferage"}
	cfgs := make([]scenario.Config, n)
	for i := range cfgs {
		cfgs[i] = scenario.Config{
			Scenario:      "jan",
			TraceFraction: 0.01,
			Algorithm:     algorithms[i%len(algorithms)],
			Heuristic:     heuristics[i%len(heuristics)],
			Seed:          faultSeed(seed, i),
		}
	}
	return cfgs
}

// CheckServiceFaultTolerance boots a gridd service on a loopback socket and
// asserts the daemon's graceful-degradation contract end to end:
//
//   - a faulted tenant's campaign (seeded panics, transients, slow tasks
//     and poison-resets) degrades exactly as planned: non-faulted and
//     transient tasks stream digests bit-identical to an in-process
//     runner campaign on the same configurations, panicking tasks are
//     flagged and their leases quarantined, slow tasks hit the per-task
//     deadline, and the trailer stats equal the plan's expectation counter
//     for counter;
//   - healthy tenants running concurrently over the same lease pool are
//     untouched: every one of their digests is bit-identical to the
//     in-process reference (a poisoned simulator crossing tenants would
//     diverge here);
//   - a tenant that disconnects mid-stream neither wedges the daemon nor
//     strands a lease;
//   - the final drain is clean (all leases home, campaigns finished) and
//     leakcheck finds zero leaked goroutines once the listener closes.
func CheckServiceFaultTolerance(cfg ServiceFaultConfig) (ServiceFaultReport, error) {
	cfg = cfg.withDefaults()
	n := cfg.Scenarios
	cfgs := serviceScenarios(cfg.Seed, n)

	// In-process reference digests: what every healthy tenant (and the
	// faulted tenant's unfaulted tasks) must reproduce over HTTP.
	want, _, err := runner.RunCtx(context.Background(), n, runner.Options{Workers: cfg.Workers},
		func(_ context.Context, i int, sim *core.Simulator) (string, error) {
			runCfg, err := scenario.BuildRunConfig(cfgs[i])
			if err != nil {
				return "", err
			}
			res, err := sim.Run(runCfg)
			if err != nil {
				return "", err
			}
			return res.Digest(), nil
		})
	if err != nil {
		return ServiceFaultReport{}, fmt.Errorf("in-process reference campaign: %w", err)
	}

	plan := faultinject.NewPlan(cfg.Seed, n, cfg.Faulted)
	report := ServiceFaultReport{
		Scenarios:  n,
		Faulted:    len(plan.FaultedIndexes()),
		Tenants:    cfg.Tenants,
		Panics:     plan.CountByKind(faultinject.Panic),
		Transients: plan.CountByKind(faultinject.Transient),
		Slows:      plan.CountByKind(faultinject.Slow),
		Poisons:    plan.CountByKind(faultinject.PoisonReset),
	}

	snap := leakcheck.Take()
	svc, err := service.New(service.Config{
		Sims:                cfg.Sims,
		MaxCampaigns:        cfg.Tenants + 2, // faulted + healthy + disconnector all run concurrently
		MaxPending:          2,
		CampaignTimeout:     5 * time.Minute,
		DrainBudget:         cfg.DrainBudget,
		AllowFaultInjection: true,
		Now:                 time.Now,
	})
	if err != nil {
		return report, fmt.Errorf("service boot: %w", err)
	}
	// Plain net.Listen + http.Server rather than httptest: the harness is a
	// non-test package (cmd/gridfuzz links it) and must not register
	// httptest's flags or depend on testing helpers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return report, fmt.Errorf("listen: %w", err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	report.Addr = ln.Addr().String()
	client := &service.Client{Base: "http://" + report.Addr}

	failure := runServiceTenants(client, cfgs, want, plan, cfg, &report)

	// Graceful drain: every lease must come home and the drain must be
	// clean — the campaigns above all completed before it began.
	drainErr := svc.Drain(context.Background())
	_ = hs.Shutdown(context.Background())
	<-serveDone
	client.CloseIdle()
	report.Quarantined = svc.Leases().Stats().Quarantined
	if failure != nil {
		return report, failure
	}
	if drainErr != nil {
		return report, fmt.Errorf("drain after idle campaigns must be clean: %w", drainErr)
	}
	if out := svc.Leases().Outstanding(); out != 0 {
		return report, fmt.Errorf("%d leases still outstanding after drain", out)
	}
	if want, got := int64(report.Panics+report.Poisons), report.Quarantined; got != want {
		return report, fmt.Errorf("quarantined %d simulators, plan injected %d panics", got, want)
	}
	if err := snap.Check(); err != nil {
		return report, fmt.Errorf("after drain: %w", err)
	}
	return report, nil
}

// runServiceTenants drives the concurrent tenants against the live socket
// and verifies every stream; it returns the first failure.
func runServiceTenants(client *service.Client, cfgs []scenario.Config, want []string,
	plan *faultinject.Plan, cfg ServiceFaultConfig, report *ServiceFaultReport) error {
	n := len(cfgs)
	ctx := context.Background()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// The faulted tenant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lines := make([]*service.CampaignLine, n)
		trailer, err := client.Campaign(ctx, service.CampaignRequest{
			Scenarios:     cfgs,
			Workers:       cfg.Workers,
			TaskTimeoutMs: cfg.TaskTimeout.Milliseconds(),
			MaxRetries:    cfg.MaxRetries,
			FaultSeed:     plan.Seed(),
			Faulted:       cfg.Faulted,
		}, func(line service.CampaignLine) {
			l := line
			if l.Index >= 0 && l.Index < n {
				lines[l.Index] = &l
			}
		})
		if err != nil {
			fail(fmt.Errorf("faulted tenant: %w", err))
			return
		}
		mu.Lock()
		report.Stats = trailer.Stats
		mu.Unlock()
		if expect := plan.Expected(cfg.MaxRetries); trailer.Stats != expect {
			fail(fmt.Errorf("faulted tenant stats do not match the plan:\n  expected %+v\n  observed %+v",
				expect, trailer.Stats))
			return
		}
		for i := 0; i < n; i++ {
			line := lines[i]
			if line == nil {
				fail(fmt.Errorf("faulted tenant: no stream line for task %d", i))
				return
			}
			switch f := plan.Fault(i); f.Kind {
			case faultinject.None, faultinject.Transient:
				if line.Error != "" {
					fail(fmt.Errorf("faulted tenant: task %d (%s) failed over HTTP: %s", i, f.Kind, line.Error))
					return
				}
				if line.Digest != want[i] {
					fail(fmt.Errorf("faulted tenant: task %d (%s) digest diverged from in-process run:\n  in-process %s\n  over HTTP  %s",
						i, f.Kind, want[i], line.Digest))
					return
				}
			case faultinject.Panic, faultinject.PoisonReset:
				if !line.Panic || line.Error == "" {
					fail(fmt.Errorf("faulted tenant: task %d (%s) not flagged as a recovered panic: %+v", i, f.Kind, line))
					return
				}
			case faultinject.Slow:
				if !line.Timeout || line.Error == "" {
					fail(fmt.Errorf("faulted tenant: task %d (slow) not flagged as a timeout: %+v", i, line))
					return
				}
			}
		}
	}()

	// Healthy tenants share the same lease pool concurrently.
	for tnt := 0; tnt < cfg.Tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			digests := make([]string, n)
			trailer, err := client.Campaign(ctx, service.CampaignRequest{
				Scenarios: cfgs,
				Workers:   cfg.Workers,
			}, func(line service.CampaignLine) {
				if line.Index >= 0 && line.Index < n {
					digests[line.Index] = line.Digest
				}
			})
			if err != nil {
				fail(fmt.Errorf("healthy tenant %d: %w", tnt, err))
				return
			}
			if trailer.Health != "clean" || trailer.Stats.Completed != int64(n) {
				fail(fmt.Errorf("healthy tenant %d degraded: %+v", tnt, trailer.Stats))
				return
			}
			for i := range digests {
				if digests[i] != want[i] {
					fail(fmt.Errorf("healthy tenant %d: task %d digest diverged (quarantine leak across tenants?):\n  in-process %s\n  over HTTP  %s",
						tnt, i, want[i], digests[i]))
					return
				}
			}
		}(tnt)
	}

	// The disconnecting tenant: walks away after the first streamed line.
	// Either outcome of the race is legitimate — a short stream may be fully
	// delivered before the cancellation bites — so no error is asserted
	// here; the robustness contract is checked downstream (clean drain, no
	// stranded lease, zero leaked goroutines, healthy tenants unaffected).
	wg.Add(1)
	go func() {
		defer wg.Done()
		dctx, cancel := context.WithCancel(ctx)
		defer cancel()
		_, _ = client.Campaign(dctx, service.CampaignRequest{
			Scenarios: cfgs,
			Workers:   cfg.Workers,
		}, func(service.CampaignLine) { cancel() })
	}()

	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
