package harness

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/faultinject"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
)

// FaultCampaignConfig parameterises one fault-tolerance oracle campaign.
// Zero values select defaults suitable for CI smoke runs.
type FaultCampaignConfig struct {
	// Seed derives both the scenario specs and the fault plan; the same
	// seed reproduces the exact same faulted campaign.
	Seed uint64
	// Scenarios is the campaign size (default 72, one pass over the
	// configuration grid's worth of scenarios).
	Scenarios int
	// Faulted is how many task indexes carry an injected fault (default
	// max(4, Scenarios/8) so every fault kind appears).
	Faulted int
	// Workers bounds the campaign pool (default one per CPU).
	Workers int
	// TaskTimeout is the per-task deadline slow faults run into. The
	// default (2s) is two orders of magnitude above a harness scenario's
	// normal runtime, so legitimate tasks never trip it, while each Slow
	// fault burns exactly one deadline.
	TaskTimeout time.Duration
	// MaxRetries bounds transient-fault retries (default 3, enough for
	// every planned transient to converge).
	MaxRetries int
}

func (c FaultCampaignConfig) withDefaults() FaultCampaignConfig {
	if c.Scenarios <= 0 {
		c.Scenarios = 72
	}
	if c.Faulted <= 0 {
		c.Faulted = c.Scenarios / 8
		if c.Faulted < 4 {
			c.Faulted = 4
		}
	}
	if c.Faulted > c.Scenarios {
		c.Faulted = c.Scenarios
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	return c
}

// FaultReport summarises a passed fault-tolerance campaign.
type FaultReport struct {
	// Scenarios and Faulted echo the effective campaign shape.
	Scenarios int
	Faulted   int
	// Panics, Transients, Slows, Poisons break the injected faults down by
	// kind.
	Panics, Transients, Slows, Poisons int
	// Stats is the faulted campaign's RunStats (they matched the plan's
	// expectation exactly, or Check would have failed).
	Stats runner.RunStats
	// CancelStats is the RunStats of the cancellation leg (a fault-free
	// rerun cancelled after its first completed task).
	CancelStats runner.RunStats
}

// faultSeed derives the i-th scenario seed of a fault campaign. SplitMix64
// mixing keeps scenarios unrelated; unlike gridfuzz's residue-snapped
// derivation there is no grid-coverage constraint here, the faults are the
// point.
func faultSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CheckFaultTolerance is the harness's fault-injection oracle mode: it runs
// one campaign of random scenarios through the runner under a seeded fault
// plan and asserts graceful degradation end to end —
//
//   - non-faulted scenarios produce digests bit-identical to a fault-free
//     campaign (in particular, tasks after a quarantined simulator run on a
//     clean replacement: a poisoned simulator that re-entered the pool
//     would diverge here);
//   - transient faults converge: their tasks retry and still produce the
//     fault-free digest;
//   - panicking and poisoning tasks fail with a structured
//     *runner.TaskError carrying the scenario seed and (for panics) the
//     stack; slow tasks fail with the per-task deadline;
//   - the campaign's RunStats match the plan's expectation exactly,
//     counter for counter;
//   - no goroutine leaks: the pool drains completely, both after the
//     faulted campaign and after a cancelled rerun (which must also emit
//     only bit-identical results for the tasks it completed).
//
// The returned FaultReport summarises what was injected and observed; any
// violated property is returned as an error naming it.
func CheckFaultTolerance(cfg FaultCampaignConfig) (FaultReport, error) {
	cfg = cfg.withDefaults()
	n := cfg.Scenarios
	specs := make([]*Spec, n)
	for i := range specs {
		specs[i] = Generate(faultSeed(cfg.Seed, i))
	}
	task := func(ctx context.Context, i int, sim *core.Simulator) (string, error) {
		runCfg, err := OracleConfig(specs[i], 1, false)
		if err != nil {
			return "", err
		}
		res, err := sim.Run(runCfg)
		if err != nil {
			return "", err
		}
		// The incremental digest was folded during the run; no record
		// post-pass. Poisoned-reset perturbations stay visible because the
		// fold is sealed after the quarantine bump.
		return res.Digest(), nil
	}

	// Fault-free reference campaign on the same pooled runner: the digests
	// every non-faulted (and every converged transient) task must hit.
	baseOpts := runner.Options{Workers: cfg.Workers}
	want, _, err := runner.RunCtx(context.Background(), n, baseOpts, task)
	if err != nil {
		return FaultReport{}, fmt.Errorf("fault-free reference campaign: %w", err)
	}

	plan := faultinject.NewPlan(cfg.Seed, n, cfg.Faulted)
	report := FaultReport{
		Scenarios:  n,
		Faulted:    len(plan.FaultedIndexes()),
		Panics:     plan.CountByKind(faultinject.Panic),
		Transients: plan.CountByKind(faultinject.Transient),
		Slows:      plan.CountByKind(faultinject.Slow),
		Poisons:    plan.CountByKind(faultinject.PoisonReset),
	}

	snap := leakcheck.Take()
	opts := runner.Options{
		Workers:      cfg.Workers,
		TaskTimeout:  cfg.TaskTimeout,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: time.Millisecond,
		SeedOf:       func(i int) uint64 { return specs[i].Seed },
		Hook:         plan,
	}
	got := make([]string, n)
	taskErrs := make([]error, n)
	stats, cerr := runner.StreamCtx(context.Background(), n, opts, task,
		func(i int, d string, err error) {
			got[i] = d
			taskErrs[i] = err
		})
	if cerr != nil {
		return report, fmt.Errorf("faulted campaign was cancelled unexpectedly: %w", cerr)
	}
	report.Stats = stats

	for i := 0; i < n; i++ {
		f := plan.Fault(i)
		switch f.Kind {
		case faultinject.None, faultinject.Transient:
			// Transients must converge within MaxRetries (the plan draws
			// Failures <= MaxRetries), so both classes end bit-identical.
			if taskErrs[i] != nil {
				return report, fmt.Errorf("task %d (%s fault, seed %d) failed instead of completing: %w",
					i, f.Kind, specs[i].Seed, taskErrs[i])
			}
			if got[i] != want[i] {
				return report, fmt.Errorf("task %d (%s fault, seed %d) diverged from the fault-free campaign:\n  fault-free %s\n  faulted    %s",
					i, f.Kind, specs[i].Seed, want[i], got[i])
			}
		case faultinject.Panic, faultinject.PoisonReset:
			var te *runner.TaskError
			if !errors.As(taskErrs[i], &te) {
				return report, fmt.Errorf("task %d (%s fault) did not fail with a *runner.TaskError: %v",
					i, f.Kind, taskErrs[i])
			}
			if !errors.Is(te, runner.ErrTaskPanic) {
				return report, fmt.Errorf("task %d (%s fault) error does not wrap ErrTaskPanic: %v", i, f.Kind, te)
			}
			if te.Index != i || te.Seed != specs[i].Seed {
				return report, fmt.Errorf("task %d (%s fault): TaskError carries index %d seed %d, want index %d seed %d",
					i, f.Kind, te.Index, te.Seed, i, specs[i].Seed)
			}
			if te.Stack == "" {
				return report, fmt.Errorf("task %d (%s fault): recovered panic lost its stack", i, f.Kind)
			}
		case faultinject.Slow:
			if !errors.Is(taskErrs[i], context.DeadlineExceeded) {
				return report, fmt.Errorf("task %d (slow fault) did not fail with the task deadline: %v", i, taskErrs[i])
			}
		}
	}

	if expect := plan.Expected(cfg.MaxRetries); stats != expect {
		return report, fmt.Errorf("RunStats do not match the injected plan:\n  expected %+v\n  observed %+v", expect, stats)
	}
	if err := snap.Check(); err != nil {
		return report, fmt.Errorf("after faulted campaign: %w", err)
	}

	// Cancellation leg: a fault-free rerun cancelled as soon as its first
	// task completes. Whatever subset finishes must still be bit-identical,
	// the stats must account for every task, and the pool must drain
	// without leaking a goroutine.
	snap = leakcheck.Take()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelErr error
	cstats, cerr := runner.StreamCtx(cctx, n, baseOpts, task,
		func(i int, d string, err error) {
			cancel()
			if err != nil && cancelErr == nil {
				cancelErr = fmt.Errorf("cancelled campaign: task %d failed: %w", i, err)
			}
			if err == nil && d != want[i] && cancelErr == nil {
				cancelErr = fmt.Errorf("cancelled campaign: task %d diverged:\n  fault-free %s\n  cancelled  %s", i, want[i], d)
			}
		})
	if cancelErr != nil {
		return report, cancelErr
	}
	if !errors.Is(cerr, context.Canceled) {
		return report, fmt.Errorf("cancelled campaign did not report cancellation: %v", cerr)
	}
	if total := cstats.Completed + cstats.Failed + cstats.Skipped; total != int64(n) {
		return report, fmt.Errorf("cancelled campaign lost tasks: completed %d + failed %d + skipped %d != %d",
			cstats.Completed, cstats.Failed, cstats.Skipped, n)
	}
	if cstats.Failed != 0 {
		return report, fmt.Errorf("cancelled fault-free campaign failed %d tasks", cstats.Failed)
	}
	report.CancelStats = cstats
	if err := snap.Check(); err != nil {
		return report, fmt.Errorf("after cancelled campaign: %w", err)
	}
	return report, nil
}
