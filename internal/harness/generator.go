package harness

import (
	"fmt"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/stats"
	"gridrealloc/internal/workload"
)

// Combo is one point of the discrete configuration grid: the local batch
// policy, the reallocation algorithm, the heuristic ordering its candidates
// and the policy for jobs displaced by an unannounced outage.
type Combo struct {
	Policy       batch.Policy
	Algorithm    core.Algorithm
	Heuristic    string
	OutagePolicy batch.OutagePolicy
}

// String renders the combo as "CBF/realloc-cancel/MinMin/requeue".
func (c Combo) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", c.Policy, c.Algorithm, c.Heuristic, c.OutagePolicy)
}

// Combos enumerates the full discrete grid in a fixed order: 2 policies x 3
// algorithms x 6 heuristics x 2 outage policies = 72 combinations. Generate
// picks entry seed % len(Combos()), so a caller that hands out seeds with
// cycling residues (cmd/gridfuzz does) covers every combination exactly
// once per 72 scenarios while each seed alone still fully determines its
// scenario.
func Combos() []Combo {
	var out []Combo
	for _, pol := range []batch.Policy{batch.FCFS, batch.CBF} {
		for _, alg := range []core.Algorithm{core.NoReallocation, core.WithoutCancellation, core.WithCancellation} {
			for _, h := range core.Heuristics() {
				for _, op := range []batch.OutagePolicy{batch.KillDisplaced, batch.RequeueDisplaced} {
					out = append(out, Combo{Policy: pol, Algorithm: alg, Heuristic: h.Name(), OutagePolicy: op})
				}
			}
		}
	}
	return out
}

// Spec is one fully-determined random scenario: everything the oracle needs
// to run the simulator, plus the coverage attributes cmd/gridfuzz reports.
type Spec struct {
	// Seed is the value the whole spec was derived from; Generate(Seed)
	// reproduces it exactly.
	Seed uint64
	// Trace is the workload.
	Trace *workload.Trace
	// Platform is the random multi-cluster grid, capacity timelines
	// included.
	Platform platform.Platform
	// Combo is the discrete configuration point (seed % 72).
	Combo Combo
	// MappingName is the initial mapping policy ("MCT", "Random",
	// "RoundRobin").
	MappingName string
	// ReallocPeriod and MinGain parameterise the reallocation mechanism in
	// seconds.
	ReallocPeriod int64
	MinGain       int64
	// SweepWorkers is the worker-pool bound the parallel determinism check
	// compares against the sequential sweep (always >= 2).
	SweepWorkers int

	// Coverage attributes derived from the drawn platform.

	// CapacityWindows is the total number of capacity windows across all
	// clusters; MaintenanceWindows + OutageWindows == CapacityWindows.
	CapacityWindows    int
	MaintenanceWindows int
	OutageWindows      int
	// Heterogeneous reports whether cluster speeds differ.
	Heterogeneous bool
}

// String is the one-line form gridfuzz prints per scenario.
func (s *Spec) String() string {
	return fmt.Sprintf("seed %d: %d jobs on %s, %s, map %s, period %ds, windows %d (%d maint / %d outage), sweep %d",
		s.Seed, s.Trace.Len(), s.Platform.String(), s.Combo, s.MappingName,
		s.ReallocPeriod, s.CapacityWindows, s.MaintenanceWindows, s.OutageWindows, s.SweepWorkers)
}

// Generate derives a complete scenario from one seed. The discrete combo is
// seed % 72 (see Combos); every continuous choice comes from independent
// splits of one deterministic RNG, so the same seed always yields the same
// scenario regardless of Go version or map iteration order.
func Generate(seed uint64) *Spec {
	combos := Combos()
	spec := &Spec{Seed: seed, Combo: combos[seed%uint64(len(combos))]}
	rng := stats.NewRNG(seed)
	traceRNG := rng.Split()
	platRNG := rng.Split()
	knobRNG := rng.Split()

	spec.Trace = generateTrace(traceRNG)
	spec.Platform = generatePlatform(platRNG, spec.Trace.LastSubmit())
	for _, c := range spec.Platform.Clusters {
		for _, ev := range c.Capacity {
			spec.CapacityWindows++
			if ev.Kind == platform.Maintenance {
				spec.MaintenanceWindows++
			} else {
				spec.OutageWindows++
			}
		}
	}
	spec.Heterogeneous = !spec.Platform.Homogeneous()

	spec.MappingName = []string{"MCT", "MCT", "Random", "RoundRobin"}[knobRNG.Intn(4)]
	spec.ReallocPeriod = 600 + knobRNG.Int63n(7200)
	spec.MinGain = 30 + knobRNG.Int63n(600)
	spec.SweepWorkers = 2 + knobRNG.Intn(7)
	return spec
}

// generateTrace draws a workload: either raw random jobs (including edge
// shapes the calibrated generator never emits: zero runtimes, walltime
// underestimates, simultaneous submissions, single-job traces) or a random
// SiteProfile through the production generator.
func generateTrace(rng *stats.RNG) *workload.Trace {
	if rng.Bool(0.35) {
		return generateProfileTrace(rng)
	}
	n := 1 + rng.Intn(140)
	span := int64(6*3600) + rng.Int63n(3*86400)
	jobs := make([]workload.Job, 0, n)
	for i := 0; i < n; i++ {
		runtime := rng.Int63n(8 * 3600)
		walltime := 1 + rng.Int63n(12*3600)
		if rng.Bool(0.15) {
			// Bad job: recorded runtime exceeds the request; the batch
			// system kills it at the walltime.
			walltime = 1 + runtime/2
		}
		submit := rng.Int63n(span)
		if rng.Bool(0.1) && len(jobs) > 0 {
			// Submission burst: reuse the previous instant.
			submit = jobs[len(jobs)-1].Submit
		}
		jobs = append(jobs, workload.Job{
			ID:       i + 1,
			Submit:   submit,
			Runtime:  runtime,
			Walltime: walltime,
			Procs:    1 + rng.Intn(64),
			User:     1 + rng.Intn(10),
			Site:     "random",
		})
	}
	tr, err := workload.NewTrace("random", jobs)
	if err != nil {
		// The generator only emits valid jobs; a failure here is a harness
		// bug worth crashing on.
		panic(fmt.Sprintf("harness: generated invalid trace: %v", err))
	}
	return tr
}

// generateProfileTrace draws a random SiteProfile and runs the calibrated
// synthetic generator, covering the diurnal/burst arrival machinery the raw
// job generator bypasses.
func generateProfileTrace(rng *stats.RNG) *workload.Trace {
	p := workload.SiteProfile{
		Site:                  "fuzzsite",
		Jobs:                  10 + rng.Intn(130),
		Duration:              int64(12*3600) + rng.Int63n(3*86400),
		MaxProcs:              4 + rng.Intn(61),
		MeanRuntime:           300 + rng.Int63n(3300),
		SerialFraction:        rng.Float64(),
		PowerOfTwoFraction:    rng.Float64(),
		BurstFraction:         rng.Float64() * 0.8,
		BurstSize:             1 + rng.Intn(40),
		OverestimationMax:     1 + rng.Float64()*5,
		ExactWalltimeFraction: rng.Float64() * 0.4,
		BadJobFraction:        rng.Float64() * 0.1,
		Users:                 1 + rng.Intn(30),
	}
	p.MaxRuntime = p.MeanRuntime + rng.Int63n(8*3600)
	tr, err := workload.GenerateSite(p, rng.Uint64())
	if err != nil {
		panic(fmt.Sprintf("harness: generated invalid profile: %v", err))
	}
	return tr
}

// generatePlatform draws 1–16 clusters of mixed sizes and speeds, each with
// a 0–3 window capacity timeline mixing maintenance and outages inside the
// workload's submission span (windows after the last submission would be
// inert).
func generatePlatform(rng *stats.RNG, span int64) platform.Platform {
	if span < 8 {
		span = 8
	}
	n := 1 + rng.Intn(16)
	heterogeneous := rng.Bool(0.55)
	clusters := make([]platform.ClusterSpec, 0, n)
	for i := 0; i < n; i++ {
		spec := platform.ClusterSpec{
			Name:  fmt.Sprintf("c%02d", i),
			Cores: 4 + rng.Intn(61),
			Speed: 1.0,
		}
		if heterogeneous {
			// Quantised speeds in [0.5, 2.0]; exact decimals keep scaled
			// durations reproducible in logs.
			spec.Speed = 0.5 + float64(rng.Intn(16))*0.1
		}
		spec.Capacity = generateTimeline(rng, spec.Cores, span)
		clusters = append(clusters, spec)
	}
	p := platform.Platform{Name: "fuzz", Clusters: clusters}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("harness: generated invalid platform: %v", err))
	}
	return p
}

// generateTimeline draws 0–3 sorted, non-overlapping capacity windows for
// one cluster. Severities span full outages (0 cores) to one lost core, and
// each window is independently announced or not.
func generateTimeline(rng *stats.RNG, cores int, span int64) []platform.CapacityEvent {
	count := rng.Choice([]float64{0.40, 0.25, 0.22, 0.13})
	if count == 0 {
		return nil
	}
	events := make([]platform.CapacityEvent, 0, count)
	cursor := rng.Int63n(span/2 + 1)
	for i := 0; i < count; i++ {
		length := 1 + rng.Int63n(span/4+1)
		ev := platform.CapacityEvent{
			Start: cursor,
			End:   cursor + length,
			Cores: rng.Intn(cores), // 0 (full outage) .. cores-1 (one core lost)
			Kind:  platform.Maintenance,
		}
		if rng.Bool(0.5) {
			ev.Kind = platform.Outage
		}
		events = append(events, ev)
		// Leave a gap before the next window so timelines stay
		// non-overlapping.
		cursor = ev.End + 1 + rng.Int63n(span/4+1)
	}
	return events
}
