package harness

import (
	"testing"
	"time"
)

func TestCheckServiceFaultTolerance(t *testing.T) {
	rep, err := CheckServiceFaultTolerance(ServiceFaultConfig{
		Seed:        0xD1E7,
		Scenarios:   12,
		Faulted:     4, // one fault of each kind
		Tenants:     2,
		TaskTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("service fault oracle failed: %v\nreport: %+v", err, rep)
	}
	if rep.Panics < 1 || rep.Transients < 1 || rep.Slows < 1 || rep.Poisons < 1 {
		t.Fatalf("plan did not cover every fault kind: %+v", rep)
	}
	if rep.Stats.RecoveredPanics != int64(rep.Panics+rep.Poisons) {
		t.Fatalf("trailer stats disagree with the plan breakdown: %+v", rep)
	}
	if rep.Quarantined != int64(rep.Panics+rep.Poisons) {
		t.Fatalf("lease pool quarantined %d simulators, want %d", rep.Quarantined, rep.Panics+rep.Poisons)
	}
}

// TestServiceFaultConfigDefaults pins the oracle's effective shape.
func TestServiceFaultConfigDefaults(t *testing.T) {
	c := ServiceFaultConfig{}.withDefaults()
	if c.Scenarios != 24 || c.Faulted != 4 || c.Workers != 2 || c.Sims != 4 || c.Tenants != 2 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.TaskTimeout <= 0 || c.MaxRetries != 3 || c.DrainBudget <= 0 {
		t.Fatalf("defaults = %+v", c)
	}
	// Faulted can never exceed the campaign size.
	if got := (ServiceFaultConfig{Scenarios: 3, Faulted: 99}).withDefaults().Faulted; got != 3 {
		t.Fatalf("faulted clamp = %d", got)
	}
	// Large campaigns scale the faulted share to n/8.
	if got := (ServiceFaultConfig{Scenarios: 80}).withDefaults().Faulted; got != 10 {
		t.Fatalf("faulted share = %d", got)
	}
}
