// Package harness is the randomized trust layer of the simulator: a seeded
// generator that draws arbitrary scenarios from the whole configuration
// space — random synthetic traces, random platforms of 1–16 clusters with
// mixed sizes and speeds, multi-window capacity timelines mixing announced
// maintenance with unannounced outages, every batch policy, reallocation
// algorithm, heuristic and outage policy — paired with an invariant oracle
// that runs each scenario through the full simulator and checks the
// properties every refactor must preserve:
//
//   - determinism: the same spec produces a bit-identical result digest on
//     every run;
//   - parallel == sequential: sweeping with N workers (and the fan-out
//     threshold forced to 1) produces the same digest as one worker, and a
//     run with invariant verification enabled the same digest as one
//     without — the checks and the parallelism are behaviour-neutral;
//   - scheduler consistency: batch.CheckInvariants (which includes the
//     incremental-vs-from-scratch profile cross-check, the capacity-ceiling
//     reservation bound and the queue seniority ordering that outage
//     requeues rely on) holds after every reallocation pass, at every
//     capacity-window boundary (start and end), and at the end of the run;
//   - job conservation: every submitted job finishes exactly once (killed
//     or not), no record is dropped, times are ordered, and the outage
//     kill/requeue counters agree with the per-job records and the
//     configured policy;
//   - SWF round-trip: the generated trace survives WriteSWF + ReadSWF with
//     every simulated field intact;
//   - zero-capacity inertness: on platforms without capacity windows the
//     outage policy is irrelevant — flipping it cannot change the digest.
//
// The paper's fixed 364-run campaign (and the 72-configuration A/B digest
// grid derived from it) exercises seven hand-picked workloads; the harness
// exists so that sharding, batching and async refactors can be trusted over
// scenarios nobody enumerated. Entry points: Generate builds a Spec from a
// seed, Check runs the oracle, the FuzzScenario fuzz target mutates seeds,
// and cmd/gridfuzz fans seeds over a worker pool
// (gridfuzz -n 500 -seed 42 -parallel 8; gridfuzz -replay <seed>
// reproduces one failure).
package harness
