package harness

import (
	"testing"
	"time"
)

// TestCheckFaultTolerance runs the full fault oracle on a small campaign and
// checks the report accounts for every injected fault.
func TestCheckFaultTolerance(t *testing.T) {
	cfg := FaultCampaignConfig{
		Seed:        42,
		Scenarios:   16,
		Faulted:     6,
		Workers:     4,
		TaskTimeout: 2 * time.Second,
		MaxRetries:  3,
	}
	report, err := CheckFaultTolerance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenarios != 16 || report.Faulted != 6 {
		t.Fatalf("report shape: %+v", report)
	}
	if got := report.Panics + report.Transients + report.Slows + report.Poisons; got != 6 {
		t.Fatalf("fault kinds sum to %d, want 6: %+v", got, report)
	}
	// Six faults cycle through the four kinds, so every recovery path ran.
	if report.Panics == 0 || report.Transients == 0 || report.Slows == 0 || report.Poisons == 0 {
		t.Fatalf("a fault kind was never injected: %+v", report)
	}
	if report.Stats.Tasks != 16 {
		t.Fatalf("stats tasks = %d", report.Stats.Tasks)
	}
	if !report.Stats.Degraded() {
		t.Fatalf("faulted campaign reported no degradation: %+v", report.Stats)
	}
	if report.CancelStats.Skipped == 0 && report.CancelStats.Completed == 16 {
		t.Logf("cancellation leg completed all tasks before the cancel landed (legal, just fast)")
	}
}

// TestCheckFaultToleranceDeterministic checks the oracle is replayable: the
// same seed produces the same injected-fault breakdown and the same stats.
func TestCheckFaultToleranceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full oracle campaigns")
	}
	cfg := FaultCampaignConfig{Seed: 7, Scenarios: 12, Faulted: 4, Workers: 3}
	a, err := CheckFaultTolerance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckFaultTolerance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Panics != b.Panics || a.Transients != b.Transients || a.Slows != b.Slows || a.Poisons != b.Poisons {
		t.Fatalf("fault breakdown not reproducible: %+v vs %+v", a, b)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats not reproducible:\n  %+v\n  %+v", a.Stats, b.Stats)
	}
}

// TestFaultCampaignDefaults pins the zero-value configuration the CI smoke
// step relies on.
func TestFaultCampaignDefaults(t *testing.T) {
	c := FaultCampaignConfig{}.withDefaults()
	if c.Scenarios != 72 || c.Faulted != 9 || c.MaxRetries != 3 || c.TaskTimeout != 2*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	tiny := FaultCampaignConfig{Scenarios: 2}.withDefaults()
	if tiny.Faulted != 2 {
		t.Fatalf("Faulted not clamped to Scenarios: %+v", tiny)
	}
}
