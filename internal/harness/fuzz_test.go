package harness

import "testing"

// FuzzScenario is the native fuzz entry point of the randomized harness:
// every mutated seed becomes a complete scenario (trace, platform, capacity
// timelines, configuration) that must pass the whole oracle. The seed
// corpus pins one representative of each interesting region — baseline and
// both reallocation algorithms, FCFS and CBF, kill and requeue, windowless
// and multi-window platforms; the fuzzer mutates from there.
//
//	go test -fuzz=FuzzScenario -fuzztime=60s ./internal/harness
//
// A failing input is a seed; reproduce it outside the fuzzer with
// `gridfuzz -replay <seed>`.
func FuzzScenario(f *testing.F) {
	for _, seed := range []uint64{0, 1, 5, 17, 42, 71, 72, 113, 1001, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		s := Generate(seed)
		if err := Check(s); err != nil {
			t.Fatalf("%s\noracle: %v", s, err)
		}
	})
}
