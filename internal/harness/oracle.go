package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/workload"
)

// Digest folds a run's complete observable outcome — every job's submit,
// start, completion, cluster, width, reallocation/requeue counts and kill
// flag, plus the run-level totals — into one hex SHA-256. Two runs are
// considered identical exactly when their digests match.
//
// This is the post-pass formulation: it walks and formats the sorted
// records after the run. The campaign oracle (CheckOn) compares the
// incremental core.Result.Digest instead, which the event loop folds as
// records become final; Digest stays as the independent reference the
// oracle cross-checks against and as the digest for hand-built or mutated
// Results (see TestDigestSensitivity), which never pass through a run's
// incremental fold.
func Digest(res *core.Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "run makespan=%d moves=%d events=%d kills=%d requeues=%d\n",
		res.Makespan, res.TotalReallocations, res.ReallocationEvents, res.OutageKills, res.OutageRequeues)
	for _, rec := range res.SortedRecords() {
		fmt.Fprintf(h, "job %d submit=%d start=%d completion=%d cluster=%s procs=%d realloc=%d requeues=%d killed=%v\n",
			rec.JobID, rec.Submit, rec.Start, rec.Completion, rec.Cluster, rec.Procs, rec.Reallocations, rec.Requeues, rec.Killed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// config assembles the core configuration for one oracle run of the spec.
// Each run needs its own config: a MappingPolicy instance is stateful (the
// Random policy owns an RNG, RoundRobin a cursor), so reusing one across
// runs would make the second run legitimately different — the first
// "non-determinism" this harness ever flagged was exactly that mistake.
func (s *Spec) config(sweepWorkers int, verify bool) (core.Config, error) {
	heur, err := core.HeuristicByName(s.Combo.Heuristic)
	if err != nil {
		return core.Config{}, err
	}
	mapping, err := core.MappingByName(s.MappingName, s.Seed)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Platform: s.Platform,
		Policy:   s.Combo.Policy,
		Trace:    s.Trace,
		Mapping:  mapping,
		Realloc: core.ReallocConfig{
			Algorithm: s.Combo.Algorithm,
			Heuristic: heur,
			Period:    s.ReallocPeriod,
			MinGain:   s.MinGain,
			// Threshold 1 forces even tiny sweeps through the configured
			// pool, otherwise random scenarios would almost never exercise
			// the parallel path.
			SweepWorkers:   sweepWorkers,
			SweepThreshold: 1,
		},
		OutagePolicy:     s.Combo.OutagePolicy,
		ClampOversized:   true,
		VerifyInvariants: verify,
	}, nil
}

// OracleConfig assembles the core configuration one oracle run of the spec
// uses: the generated trace and platform, the spec's discrete combo, a fresh
// mapping-policy instance (stateful policies must not leak between runs),
// the given sweep worker count and the invariant-verification switch. The
// runner and reuse-equivalence tests use it to replay harness scenarios
// outside the full oracle.
func OracleConfig(s *Spec, sweepWorkers int, verify bool) (core.Config, error) {
	return s.config(sweepWorkers, verify)
}

// Check runs the spec through the full simulator and verifies the oracle's
// whole battery of invariants (see the package comment). It returns nil
// when every property holds, and a descriptive error naming the first
// violated property otherwise.
func Check(s *Spec) error {
	return CheckOn(core.NewSimulator(), s)
}

// CheckOn is Check running every oracle simulation on the given pooled
// simulator, the form the campaign runner uses: one simulator per worker,
// reused across all scenarios the worker checks. The reference run executes
// on a fresh simulator while every follow-up run reuses sim, so the
// determinism comparison doubles as a fresh-vs-reused equivalence check on
// every scenario the fuzz campaign draws.
func CheckOn(sim *core.Simulator, s *Spec) error {
	if err := checkSWFRoundTrip(s.Trace); err != nil {
		return fmt.Errorf("swf round-trip: %w", err)
	}

	// Reference run: sequential sweep, scheduler invariants verified after
	// every reallocation pass, at every capacity-window boundary, and at
	// the end
	// (incremental profile == from-scratch rebuild, reservations under the
	// capacity ceiling, FCFS/seniority queue ordering). Deliberately run on
	// a fresh simulator so the reused runs below are compared against an
	// unpooled reference.
	refCfg, err := s.config(1, true)
	if err != nil {
		return err
	}
	ref, err := core.Run(refCfg)
	if err != nil {
		return fmt.Errorf("verified sequential run: %w", err)
	}
	// All digest comparisons below use the incremental digest the event loop
	// folded during the run — no post-pass over the records. Its trust
	// anchor is this one reference-run cross-check: the recomputed fold must
	// match the lanes accumulated live (a record folded early, twice or
	// never shows up here), so equality of incremental digests downstream
	// carries the same weight as equality of post-pass digests.
	if err := ref.VerifyDigest(); err != nil {
		return fmt.Errorf("incremental digest self-check: %w", err)
	}
	refDigest := ref.Digest()

	if err := checkConservation(s, ref); err != nil {
		return fmt.Errorf("job conservation: %w", err)
	}

	// Determinism and reuse equivalence: the same configuration must
	// reproduce the digest bit-for-bit on the pooled simulator, whatever
	// earlier scenarios left in its buffers. The config is rebuilt rather
	// than reused, so the stateful mapping policy starts from its seed
	// again.
	againCfg, err := s.config(1, true)
	if err != nil {
		return err
	}
	again, err := sim.Run(againCfg)
	if err != nil {
		return fmt.Errorf("repeated run (pooled simulator): %w", err)
	}
	if d := again.Digest(); d != refDigest {
		return fmt.Errorf("determinism: fresh and pooled runs of one spec diverged: %s vs %s", refDigest, d)
	}

	// Verification is behaviour-neutral: the same sequential run with the
	// invariant checks (and their extra capacity-end wake events) disabled
	// must match the verified reference. Checked on its own so that a
	// verify-induced divergence is reported as exactly that, not blamed on
	// the parallel sweep below.
	plainCfg, err := s.config(1, false)
	if err != nil {
		return err
	}
	plain, err := sim.Run(plainCfg)
	if err != nil {
		return fmt.Errorf("unverified sequential run: %w", err)
	}
	if d := plain.Digest(); d != refDigest {
		return fmt.Errorf("verification neutrality: enabling invariant checks changed the digest: %s vs %s", refDigest, d)
	}

	// Parallel == sequential: fanning the sweep over SweepWorkers workers
	// must not change anything either (verification off on both sides of
	// this comparison).
	parCfg, err := s.config(s.SweepWorkers, false)
	if err != nil {
		return err
	}
	par, err := sim.Run(parCfg)
	if err != nil {
		return fmt.Errorf("parallel run (%d workers): %w", s.SweepWorkers, err)
	}
	if d := par.Digest(); d != refDigest {
		return fmt.Errorf("parallel sweep: %d workers diverged from sequential: %s vs %s", s.SweepWorkers, refDigest, d)
	}

	// Zero-capacity inertness: without capacity windows the outage policy
	// must be dead code — flipping it cannot change anything.
	if s.CapacityWindows == 0 {
		flipCfg, err := s.config(s.SweepWorkers, false)
		if err != nil {
			return err
		}
		flipCfg.OutagePolicy = batch.RequeueDisplaced
		if s.Combo.OutagePolicy == batch.RequeueDisplaced {
			flipCfg.OutagePolicy = batch.KillDisplaced
		}
		flipped, err := sim.Run(flipCfg)
		if err != nil {
			return fmt.Errorf("flipped-outage-policy run: %w", err)
		}
		if d := flipped.Digest(); d != refDigest {
			return fmt.Errorf("zero-capacity inertness: flipping the outage policy changed the digest: %s vs %s", refDigest, d)
		}
	}
	return nil
}

// checkSWFRoundTrip writes the trace in Standard Workload Format and reads
// it back: every field the simulator consumes must survive.
func checkSWFRoundTrip(tr *workload.Trace) error {
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, tr); err != nil {
		return err
	}
	back, err := workload.ReadSWF(&buf, tr.Name)
	if err != nil {
		return err
	}
	if back.Len() != tr.Len() {
		return fmt.Errorf("job count changed: %d -> %d", tr.Len(), back.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Runtime != b.Runtime ||
			a.Walltime != b.Walltime || a.Procs != b.Procs || a.User != b.User {
			return fmt.Errorf("job %d changed:\n  wrote %+v\n  read  %+v", a.ID, a, b)
		}
	}
	return nil
}

// checkConservation verifies that no job is lost or duplicated: one record
// per submitted job, every job finishes exactly once (jobs wider than the
// largest cluster are clamped, so nothing is unschedulable), start and
// completion times are ordered, and the outage counters agree with the
// per-job records and the configured policy.
func checkConservation(s *Spec, res *core.Result) error {
	if len(res.Jobs) != s.Trace.Len() {
		return fmt.Errorf("submitted %d jobs, recorded %d", s.Trace.Len(), len(res.Jobs))
	}
	finished, killed := 0, 0
	var requeues int64
	for _, j := range s.Trace.Jobs {
		rec, ok := res.Jobs[j.ID]
		if !ok {
			return fmt.Errorf("job %d has no record", j.ID)
		}
		if rec.Completion < 0 {
			return fmt.Errorf("job %d never finished (start=%d)", j.ID, rec.Start)
		}
		finished++
		if rec.Killed {
			killed++
		}
		if rec.Start < rec.Submit {
			return fmt.Errorf("job %d started at %d before its submission at %d", j.ID, rec.Start, rec.Submit)
		}
		if rec.Completion < rec.Start {
			return fmt.Errorf("job %d finished at %d before its start at %d", j.ID, rec.Completion, rec.Start)
		}
		if rec.Cluster == "" {
			return fmt.Errorf("job %d finished without a cluster", j.ID)
		}
		if _, ok := s.Platform.Cluster(rec.Cluster); !ok {
			return fmt.Errorf("job %d ran on unknown cluster %q", j.ID, rec.Cluster)
		}
		if rec.Requeues < 0 || rec.Reallocations < 0 {
			return fmt.Errorf("job %d has negative counters: %+v", j.ID, rec)
		}
		requeues += int64(rec.Requeues)
		if rec.Completion > res.Makespan {
			return fmt.Errorf("job %d finished at %d after the makespan %d", j.ID, rec.Completion, res.Makespan)
		}
	}
	if finished != s.Trace.Len() {
		return fmt.Errorf("submitted %d, finished %d", s.Trace.Len(), finished)
	}
	if requeues != res.OutageRequeues {
		return fmt.Errorf("per-job requeues sum to %d, run counted %d", requeues, res.OutageRequeues)
	}
	if res.OutageKills > int64(killed) {
		return fmt.Errorf("%d outage kills but only %d killed jobs", res.OutageKills, killed)
	}
	if s.Combo.OutagePolicy == batch.KillDisplaced && res.OutageRequeues != 0 {
		return fmt.Errorf("kill policy produced %d requeues", res.OutageRequeues)
	}
	if s.Combo.OutagePolicy == batch.RequeueDisplaced && res.OutageKills != 0 {
		return fmt.Errorf("requeue policy produced %d outage kills", res.OutageKills)
	}
	if s.CapacityWindows == 0 && (res.OutageKills != 0 || res.OutageRequeues != 0) {
		return fmt.Errorf("no capacity windows but %d kills / %d requeues", res.OutageKills, res.OutageRequeues)
	}
	if s.Combo.Algorithm == core.NoReallocation && res.TotalReallocations != 0 {
		return fmt.Errorf("no-reallocation run migrated %d jobs", res.TotalReallocations)
	}
	return nil
}
