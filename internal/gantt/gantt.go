// Package gantt renders cluster schedules as ASCII Gantt charts. It backs
// the reproduction of the paper's two illustrative figures (Figure 1, the
// reallocation of two tasks between clusters, and Figure 2, the side effects
// of a reallocation) and is also handy for debugging small scenarios.
package gantt

import (
	"fmt"
	"sort"
	"strings"
)

// Bar is one job drawn on the chart: a rectangle of Procs processors from
// Start to End.
type Bar struct {
	// Label is drawn inside the bar (usually the job ID or a letter).
	Label string
	// Start and End bound the bar in virtual seconds.
	Start, End int64
	// Procs is the height of the bar in processors.
	Procs int
	// Waiting marks bars that represent planned (not yet started)
	// reservations; they are drawn with a different fill character.
	Waiting bool
}

// Chart is the schedule of one cluster.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// Cores is the height of the chart in processors.
	Cores int
	// Bars are the jobs to draw.
	Bars []Bar
}

// Render draws the chart with the given horizontal resolution (seconds per
// character column) over the window [from, to). Bars are packed greedily
// onto processor rows in start order, which is sufficient for the
// illustrative figures; the drawing is a visualisation aid, not a scheduler.
func (c Chart) Render(from, to, secondsPerColumn int64) string {
	if secondsPerColumn <= 0 {
		secondsPerColumn = 1
	}
	if to <= from {
		return c.Title + "\n(empty window)\n"
	}
	cols := int((to - from + secondsPerColumn - 1) / secondsPerColumn)
	rows := c.Cores
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}

	bars := append([]Bar(nil), c.Bars...)
	sort.SliceStable(bars, func(i, j int) bool {
		if bars[i].Start != bars[j].Start {
			return bars[i].Start < bars[j].Start
		}
		return bars[i].Label < bars[j].Label
	})

	// rowFreeAt[r] is the first column still free on processor row r.
	rowFreeAt := make([]int, rows)
	for _, b := range bars {
		startCol := int((b.Start - from) / secondsPerColumn)
		endCol := int((b.End - from + secondsPerColumn - 1) / secondsPerColumn)
		if startCol < 0 {
			startCol = 0
		}
		if endCol > cols {
			endCol = cols
		}
		if endCol <= startCol || b.Procs <= 0 {
			continue
		}
		// Find b.Procs consecutive rows free from startCol on.
		placedRow := -1
		for r := 0; r+b.Procs <= rows; r++ {
			ok := true
			for k := r; k < r+b.Procs; k++ {
				if rowFreeAt[k] > startCol {
					ok = false
					break
				}
			}
			if ok {
				placedRow = r
				break
			}
		}
		if placedRow == -1 {
			continue // cannot draw; visualisation only
		}
		fill := byte('#')
		if b.Waiting {
			fill = byte('~')
		}
		for k := placedRow; k < placedRow+b.Procs; k++ {
			for col := startCol; col < endCol; col++ {
				grid[k][col] = fill
			}
			rowFreeAt[k] = endCol
		}
		// Write the label on the middle row of the bar.
		labelRow := placedRow + b.Procs/2
		label := b.Label
		if len(label) > endCol-startCol {
			label = label[:endCol-startCol]
		}
		copy(grid[labelRow][startCol:], label)
	}

	var sb strings.Builder
	sb.WriteString(c.Title + "\n")
	// Print top row = highest processor index, like the paper's figures.
	for r := rows - 1; r >= 0; r-- {
		fmt.Fprintf(&sb, "p%02d |%s|\n", r, string(grid[r]))
	}
	// Time axis.
	axis := make([]byte, cols)
	for i := range axis {
		axis[i] = '-'
	}
	sb.WriteString("     " + string(axis) + "\n")
	ticks := fmt.Sprintf("     t=%d", from)
	pad := cols - len(ticks) + 5
	if pad < 1 {
		pad = 1
	}
	ticks += strings.Repeat(" ", pad) + fmt.Sprintf("t=%d", to)
	sb.WriteString(ticks + "\n")
	return sb.String()
}

// SideBySide renders several charts one after the other, separated by a
// blank line, so two clusters can be compared as in the figures.
func SideBySide(from, to, secondsPerColumn int64, charts ...Chart) string {
	parts := make([]string, 0, len(charts))
	for _, c := range charts {
		parts = append(parts, c.Render(from, to, secondsPerColumn))
	}
	return strings.Join(parts, "\n")
}
