package gantt

import (
	"testing"

	"gridrealloc/internal/golden"
)

// figureCharts is a miniature of the paper's Figure 1 situation: two
// clusters, one loaded with running and planned work, the other nearly
// idle — the shape a reallocation improves. Running bars use '#', planned
// ones '~'; the golden pins fills, label placement, packing, clipping and
// the time axis.
func figureCharts() []Chart {
	loaded := Chart{
		Title: "cluster A (6 cores)",
		Cores: 6,
		Bars: []Bar{
			{Label: "J1", Start: 0, End: 40, Procs: 3},
			{Label: "J2", Start: 10, End: 60, Procs: 2},
			{Label: "J3", Start: 40, End: 90, Procs: 4, Waiting: true},
			{Label: "J4", Start: 60, End: 120, Procs: 2, Waiting: true}, // clipped at the window edge
		},
	}
	idle := Chart{
		Title: "cluster B (4 cores)",
		Cores: 4,
		Bars: []Bar{
			{Label: "K1", Start: 20, End: 35, Procs: 1},
		},
	}
	return []Chart{loaded, idle}
}

func TestGoldenRender(t *testing.T) {
	charts := figureCharts()
	golden.Compare(t, "render_loaded.golden", charts[0].Render(0, 100, 2))
	golden.Compare(t, "render_idle.golden", charts[1].Render(0, 100, 2))
	// Same chart at a coarser resolution: column rounding must stay stable.
	golden.Compare(t, "render_coarse.golden", charts[0].Render(0, 100, 10))
}

func TestGoldenSideBySide(t *testing.T) {
	charts := figureCharts()
	golden.Compare(t, "side_by_side.golden", SideBySide(0, 100, 2, charts...))
}
