package gantt

import (
	"strings"
	"testing"
)

func TestRenderBasicLayout(t *testing.T) {
	c := Chart{
		Title: "cluster-a",
		Cores: 4,
		Bars: []Bar{
			{Label: "a", Start: 0, End: 10, Procs: 2},
			{Label: "b", Start: 10, End: 20, Procs: 4},
		},
	}
	out := c.Render(0, 20, 1)
	if !strings.HasPrefix(out, "cluster-a\n") {
		t.Fatalf("title missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// 4 processor rows + axis + ticks + trailing newline split.
	rowLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "p0") || strings.HasPrefix(l, "p1") || strings.HasPrefix(l, "p2") || strings.HasPrefix(l, "p3") {
			rowLines++
		}
	}
	if rowLines != 4 {
		t.Fatalf("%d processor rows, want 4:\n%s", rowLines, out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bar drawn")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "t=0") || !strings.Contains(out, "t=20") {
		t.Fatal("time axis missing")
	}
}

func TestRenderWaitingBarsUseDifferentFill(t *testing.T) {
	c := Chart{
		Title: "c",
		Cores: 2,
		Bars: []Bar{
			{Label: "r", Start: 0, End: 5, Procs: 1},
			{Label: "w", Start: 5, End: 10, Procs: 1, Waiting: true},
		},
	}
	out := c.Render(0, 10, 1)
	if !strings.Contains(out, "#") || !strings.Contains(out, "~") {
		t.Fatalf("running and waiting fills not distinguished:\n%s", out)
	}
}

func TestRenderClipsToWindow(t *testing.T) {
	c := Chart{
		Title: "c",
		Cores: 1,
		Bars: []Bar{
			{Label: "x", Start: -50, End: 500, Procs: 1},
		},
	}
	out := c.Render(0, 10, 1)
	row := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "p00") {
			row = l
		}
	}
	if row == "" {
		t.Fatalf("no row rendered:\n%s", out)
	}
	// The row between the pipes must be exactly 10 columns.
	start := strings.Index(row, "|")
	end := strings.LastIndex(row, "|")
	if end-start-1 != 10 {
		t.Fatalf("row width %d, want 10: %q", end-start-1, row)
	}
}

func TestRenderEmptyWindowAndZeroResolution(t *testing.T) {
	c := Chart{Title: "c", Cores: 1}
	if out := c.Render(10, 10, 1); !strings.Contains(out, "empty window") {
		t.Fatalf("empty window not reported: %q", out)
	}
	// secondsPerColumn <= 0 falls back to 1 and must not panic.
	c.Bars = []Bar{{Label: "x", Start: 0, End: 3, Procs: 1}}
	out := c.Render(0, 3, 0)
	if !strings.Contains(out, "#") {
		t.Fatalf("zero resolution fallback broken:\n%s", out)
	}
}

func TestRenderSkipsUndrawableBars(t *testing.T) {
	c := Chart{
		Title: "c",
		Cores: 2,
		Bars: []Bar{
			{Label: "wide", Start: 0, End: 5, Procs: 5}, // taller than the chart
			{Label: "zero", Start: 5, End: 5, Procs: 1}, // empty window
			{Label: "ok", Start: 0, End: 5, Procs: 1},
		},
	}
	out := c.Render(0, 5, 1)
	if !strings.Contains(out, "ok") {
		t.Fatalf("valid bar missing:\n%s", out)
	}
}

func TestSideBySide(t *testing.T) {
	a := Chart{Title: "alpha", Cores: 1, Bars: []Bar{{Label: "x", Start: 0, End: 2, Procs: 1}}}
	b := Chart{Title: "beta", Cores: 1, Bars: []Bar{{Label: "y", Start: 2, End: 4, Procs: 1}}}
	out := SideBySide(0, 4, 1, a, b)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("both charts not rendered:\n%s", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "beta") {
		t.Fatal("charts rendered out of order")
	}
}

func TestBarsDoNotOverlapRows(t *testing.T) {
	// Two simultaneous 1-proc bars on a 2-core chart must land on different
	// rows, so both labels appear.
	c := Chart{
		Title: "c",
		Cores: 2,
		Bars: []Bar{
			{Label: "A", Start: 0, End: 10, Procs: 1},
			{Label: "B", Start: 0, End: 10, Procs: 1},
		},
	}
	out := c.Render(0, 10, 1)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("concurrent bars collided:\n%s", out)
	}
}
