package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/leakcheck"
)

func TestLeaseManagerReusesSimulators(t *testing.T) {
	m := NewLeaseManager(2)
	ctx := context.Background()
	a, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(a)
	b, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("released simulator was not reused")
	}
	m.Release(b)
	st := m.Stats()
	if st.Created != 1 || st.Acquires != 2 || st.Leased != 0 || st.Idle != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeaseManagerBoundsConcurrency(t *testing.T) {
	snap := leakcheck.Take()
	m := NewLeaseManager(1)
	ctx := context.Background()
	a, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *core.Simulator, 1)
	go func() {
		sim, err := m.Acquire(ctx)
		if err != nil {
			t.Errorf("second acquire: %v", err)
		}
		got <- sim
	}()
	select {
	case <-got:
		t.Fatal("second acquire did not block on a full pool")
	case <-time.After(50 * time.Millisecond):
	}
	m.Release(a)
	select {
	case sim := <-got:
		m.Release(sim)
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never unblocked after release")
	}
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseManagerQuarantineNeverReleases(t *testing.T) {
	m := NewLeaseManager(1)
	ctx := context.Background()
	bad, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m.Discard(bad)
	// Capacity must be preserved: the next acquire succeeds with a FRESH
	// simulator, never the quarantined one.
	next, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if next == bad {
		t.Fatal("quarantined simulator was re-leased")
	}
	m.Release(next)
	st := m.Stats()
	if st.Quarantined != 1 || st.Created != 2 || st.Capacity != 1 {
		t.Fatalf("stats = %+v", st)
	}
	table := m.Snapshot()
	if len(table) != 2 {
		t.Fatalf("lease table = %+v", table)
	}
	if table[0].State != LeaseQuarantined || table[1].State != LeaseIdle {
		t.Fatalf("lease table = %+v", table)
	}
}

func TestLeaseManagerCloseFailsAcquire(t *testing.T) {
	snap := leakcheck.Take()
	m := NewLeaseManager(1)
	ctx := context.Background()
	a, err := m.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A waiter blocked in line must be released with ErrDraining, not leak.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := m.Acquire(ctx)
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	if _, err := m.Acquire(ctx); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close acquire err = %v, want ErrDraining", err)
	}
	// Releasing after close still works so the drain accounting closes.
	m.Release(a)
	if n := m.Outstanding(); n != 0 {
		t.Fatalf("outstanding = %d after release", n)
	}
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseManagerAcquireHonoursContext(t *testing.T) {
	m := NewLeaseManager(1)
	a, err := m.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := m.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	m.Release(a)
}

func TestLeaseTablePrunesQuarantineHistory(t *testing.T) {
	m := NewLeaseManager(1)
	ctx := context.Background()
	for i := 0; i < quarantineHistory+10; i++ {
		sim, err := m.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		m.Discard(sim)
	}
	if n := len(m.Snapshot()); n > 1+quarantineHistory {
		t.Fatalf("lease table grew to %d rows, want <= %d", n, 1+quarantineHistory)
	}
	if st := m.Stats(); st.Quarantined != int64(quarantineHistory+10) {
		t.Fatalf("quarantined = %d, pruning must not lose the count", st.Quarantined)
	}
}
