package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// JobPayload is the wire form of a workload.Job.
type JobPayload struct {
	ID       int   `json:"id"`
	Submit   int64 `json:"submit"`
	Runtime  int64 `json:"runtime"`
	Walltime int64 `json:"walltime"`
	Procs    int   `json:"procs"`
	User     int   `json:"user,omitempty"`
}

func (p JobPayload) toJob() workload.Job {
	return workload.Job{ID: p.ID, Submit: p.Submit, Runtime: p.Runtime,
		Walltime: p.Walltime, Procs: p.Procs, User: p.User}
}

func payloadOf(j workload.Job) JobPayload {
	return JobPayload{ID: j.ID, Submit: j.Submit, Runtime: j.Runtime,
		Walltime: j.Walltime, Procs: j.Procs, User: j.User}
}

// SubmitRequest asks one cluster's batch system to enqueue a job at virtual
// time Now (clamped forward to the cluster's current virtual time).
type SubmitRequest struct {
	Cluster       string     `json:"cluster"`
	Now           int64      `json:"now"`
	Job           JobPayload `json:"job"`
	Reallocations int        `json:"reallocations,omitempty"`
}

// SubmitResponse acknowledges a submission at the effective virtual time.
type SubmitResponse struct {
	Cluster string `json:"cluster"`
	Now     int64  `json:"now"`
}

// CancelRequest removes a waiting job from one cluster's queue.
type CancelRequest struct {
	Cluster string `json:"cluster"`
	Now     int64  `json:"now"`
	JobID   int    `json:"job_id"`
}

// CancelResponse returns the cancelled job and its accumulated
// reallocation count, for resubmission elsewhere.
type CancelResponse struct {
	Cluster       string     `json:"cluster"`
	Now           int64      `json:"now"`
	Job           JobPayload `json:"job"`
	Reallocations int        `json:"reallocations"`
}

// EstimateRequest asks for the estimated completion time of a hypothetical
// submission.
type EstimateRequest struct {
	Cluster string     `json:"cluster"`
	Now     int64      `json:"now"`
	Job     JobPayload `json:"job"`
}

// EstimateResponse carries the estimate; OK is false when the job can never
// run on the cluster.
type EstimateResponse struct {
	Cluster string `json:"cluster"`
	Now     int64  `json:"now"`
	ECT     int64  `json:"ect"`
	OK      bool   `json:"ok"`
}

// WaitingPayload is the wire form of one waiting-queue entry.
type WaitingPayload struct {
	Job           JobPayload `json:"job"`
	EnqueuedAt    int64      `json:"enqueued_at"`
	PlannedStart  int64      `json:"planned_start"`
	PlannedEnd    int64      `json:"planned_end"`
	Reallocations int        `json:"reallocations"`
	QueuePosition int        `json:"queue_position"`
}

// ListResponse is the waiting queue of one cluster.
type ListResponse struct {
	Cluster string           `json:"cluster"`
	Now     int64            `json:"now"`
	Waiting []WaitingPayload `json:"waiting"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status string     `json:"status"`
	Leases LeaseStats `json:"leases"`
}

// StatsResponse is the /stats body: daemon counters, latency histograms,
// the lease table and per-cluster request load.
type StatsResponse struct {
	Draining          bool                 `json:"draining"`
	CampaignsAdmitted int64                `json:"campaigns_admitted"`
	CampaignsRunning  int                  `json:"campaigns_running"`
	CampaignsPending  int                  `json:"campaigns_pending"`
	Shed              int64                `json:"shed"`
	HandlerPanics     int64                `json:"handler_panics"`
	Leases            LeaseStats           `json:"leases"`
	LeaseTable        []LeaseInfo          `json:"lease_table"`
	Latency           LatencySnapshot      `json:"latency"`
	Clusters          []server.RequestLoad `json:"clusters"`
}

// LatencySnapshot carries the p50/p99 serving-latency summaries.
type LatencySnapshot struct {
	Submit   metrics.HistogramSnapshot `json:"submit"`
	Estimate metrics.HistogramSnapshot `json:"estimate"`
	Campaign metrics.HistogramSnapshot `json:"campaign"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP handler: the restricted cluster-frontal
// API, campaign submission and the health/stats endpoints, each wrapped in
// panic isolation.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.wrap(s.handleSubmit))
	mux.HandleFunc("POST /v1/cancel", s.wrap(s.handleCancel))
	mux.HandleFunc("POST /v1/estimate", s.wrap(s.handleEstimate))
	mux.HandleFunc("GET /v1/list", s.wrap(s.handleList))
	mux.HandleFunc("POST /v1/campaigns", s.wrap(s.handleCampaign))
	mux.HandleFunc("GET /healthz", s.wrap(s.handleHealthz))
	mux.HandleFunc("GET /stats", s.wrap(s.handleStats))
	return mux
}

// wrap is the per-connection panic isolation: a panicking handler is
// recovered into a 500 (when the response has not started) and counted;
// the process never dies with the tenant. Campaign worker panics never get
// here — the runner recovers them and quarantines the lease — so this guard
// catches only bugs in the HTTP layer itself, and still keeps every other
// connection alive.
func (s *Service) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.handlerPanic.Add(1)
				// Best effort: if the handler already streamed a body this
				// write is ignored by the server, and the connection is torn
				// down mid-stream, which the client sees as a broken stream
				// rather than a silent truncation.
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", v)})
			}
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeStrict reads one JSON value from the request body under the
// configured size cap, rejecting unknown fields and trailing garbage.
func (s *Service) decodeStrict(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	// A second value (or any non-space trailing bytes) is a malformed
	// request, not an extension point.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// rejectBody maps a decode failure to its status: 413 for an oversized
// body, 400 for everything malformed.
func rejectBody(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
}

// lookup resolves a cluster by name, answering 404 itself on a miss.
func (s *Service) lookup(w http.ResponseWriter, name string) *cluster {
	c, ok := s.byName[name]
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown cluster %q", name)})
		return nil
	}
	return c
}

// rejectIfDraining answers 503 once drain has begun so callers stop sending
// work; it reports whether the request was rejected.
func (s *Service) rejectIfDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrDraining.Error()})
		return true
	}
	return false
}

// advanceLocked clamps the requested virtual time forward to the cluster's
// current time (virtual time never rewinds) and advances the scheduler.
// The caller holds c.mu.
func advanceLocked(c *cluster, now int64) (int64, error) {
	if cur := c.srv.Scheduler().Now(); now < cur {
		now = cur
	}
	if _, err := c.srv.Scheduler().Advance(now); err != nil {
		return now, err
	}
	return now, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.submitHist.Observe(s.cfg.Now().Sub(start)) }()
	if s.rejectIfDraining(w) {
		return
	}
	var req SubmitRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		rejectBody(w, err)
		return
	}
	c := s.lookup(w, req.Cluster)
	if c == nil {
		return
	}
	c.mu.Lock()
	now, err := advanceLocked(c, req.Now)
	if err == nil {
		err = c.srv.Submit(req.Job.toJob(), now, req.Reallocations)
	}
	c.mu.Unlock()
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, server.ErrCannotRun) {
			code = http.StatusConflict
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Cluster: req.Cluster, Now: now})
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.submitHist.Observe(s.cfg.Now().Sub(start)) }()
	if s.rejectIfDraining(w) {
		return
	}
	var req CancelRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		rejectBody(w, err)
		return
	}
	c := s.lookup(w, req.Cluster)
	if c == nil {
		return
	}
	c.mu.Lock()
	now, err := advanceLocked(c, req.Now)
	var job workload.Job
	var reallocs int
	if err == nil {
		job, reallocs, err = c.srv.Cancel(req.JobID, now)
	}
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, CancelResponse{
		Cluster: req.Cluster, Now: now, Job: payloadOf(job), Reallocations: reallocs,
	})
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.estimateHist.Observe(s.cfg.Now().Sub(start)) }()
	if s.rejectIfDraining(w) {
		return
	}
	var req EstimateRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		rejectBody(w, err)
		return
	}
	c := s.lookup(w, req.Cluster)
	if c == nil {
		return
	}
	c.mu.Lock()
	now, err := advanceLocked(c, req.Now)
	var ect int64
	var ok bool
	if err == nil {
		ect, ok = c.srv.EstimateCompletion(req.Job.toJob(), now)
	}
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{Cluster: req.Cluster, Now: now, ECT: ect, OK: ok})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	c := s.lookup(w, r.URL.Query().Get("cluster"))
	if c == nil {
		return
	}
	c.mu.Lock()
	now := c.srv.Scheduler().Now()
	waiting := c.srv.WaitingJobs()
	c.mu.Unlock()
	resp := ListResponse{Cluster: c.srv.Name(), Now: now, Waiting: make([]WaitingPayload, 0, len(waiting))}
	for _, wj := range waiting {
		resp.Waiting = append(resp.Waiting, waitingPayloadOf(wj))
	}
	writeJSON(w, http.StatusOK, resp)
}

func waitingPayloadOf(wj batch.WaitingJob) WaitingPayload {
	return WaitingPayload{
		Job:           payloadOf(wj.Job),
		EnqueuedAt:    wj.EnqueuedAt,
		PlannedStart:  wj.PlannedStart,
		PlannedEnd:    wj.PlannedEnd,
		Reallocations: wj.Reallocations,
		QueuePosition: wj.QueuePosition,
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok", Leases: s.leases.Stats()}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Draining:          s.draining.Load(),
		CampaignsAdmitted: s.campaigns.Load(),
		CampaignsRunning:  len(s.running),
		CampaignsPending:  len(s.pending),
		Shed:              s.shed.Load(),
		HandlerPanics:     s.handlerPanic.Load(),
		Leases:            s.leases.Stats(),
		LeaseTable:        s.leases.Snapshot(),
		Latency: LatencySnapshot{
			Submit:   s.submitHist.Snapshot(),
			Estimate: s.estimateHist.Snapshot(),
			Campaign: s.campaignHist.Snapshot(),
		},
		Clusters: make([]server.RequestLoad, 0, len(s.clusters)),
	}
	for _, c := range s.clusters {
		c.mu.Lock()
		resp.Clusters = append(resp.Clusters, c.srv.Load())
		c.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// retryAfterSeconds is the Retry-After hint on 429 responses: long enough
// that a polite client backs off, short enough that shed work returns
// promptly once a campaign slot frees.
const retryAfterSeconds = 1

// shedResponse answers a load-shed arrival: 429 with a Retry-After hint.
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{Error: "at capacity: campaign queue full, retry later"})
}
