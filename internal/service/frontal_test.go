package service

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestFrontalCancelEstimateRoundTrip walks the full restricted-API cycle the
// paper's middleware is limited to: submit, list, estimate elsewhere, cancel
// and resubmit — the observe-and-resubmit reallocation primitive over HTTP.
func TestFrontalCancelEstimateRoundTrip(t *testing.T) {
	_, c := newTestService(t, nil)
	ctx := context.Background()
	job := JobPayload{ID: 7, Submit: 0, Runtime: 120, Walltime: 600, Procs: 16, User: 3}

	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Now: 10, Job: job}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	list, err := c.List(ctx, "bordeaux")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	// The cluster is empty, so the job starts immediately and the waiting
	// queue may or may not contain it depending on planning; what matters is
	// that the endpoint answers with the cluster's view.
	if list.Cluster != "bordeaux" {
		t.Fatalf("list = %+v", list)
	}

	est, err := c.Estimate(ctx, EstimateRequest{Cluster: "lyon", Now: 10, Job: JobPayload{ID: 8, Runtime: 60, Walltime: 300, Procs: 8}})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if !est.OK || est.ECT <= 0 {
		t.Fatalf("estimate = %+v", est)
	}
	// A job wider than the cluster can never run: OK must be false, not an
	// error (the middleware uses this to rule clusters out).
	est, err = c.Estimate(ctx, EstimateRequest{Cluster: "lyon", Now: 10, Job: JobPayload{ID: 9, Runtime: 60, Walltime: 300, Procs: 1 << 20}})
	if err != nil || est.OK {
		t.Fatalf("impossible estimate = %+v, %v", est, err)
	}
}

func TestFrontalErrorStatuses(t *testing.T) {
	_, c := newTestService(t, nil)
	ctx := context.Background()

	// Unknown cluster: 404 on every frontal endpoint.
	var apiErr *APIError
	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "nope", Job: JobPayload{ID: 1, Runtime: 1, Walltime: 2, Procs: 1}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("submit to unknown cluster: %v", err)
	}
	if !strings.Contains(apiErr.Error(), "unknown cluster") {
		t.Fatalf("APIError.Error() = %q", apiErr.Error())
	}
	if _, err := c.Estimate(ctx, EstimateRequest{Cluster: "nope", Job: JobPayload{ID: 1, Runtime: 1, Walltime: 2, Procs: 1}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("estimate on unknown cluster: %v", err)
	}
	if _, err := c.Cancel(ctx, CancelRequest{Cluster: "nope", JobID: 1}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("cancel on unknown cluster: %v", err)
	}
	if _, err := c.List(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("list of unknown cluster: %v", err)
	}

	// Cancelling a job that is not waiting: 422 with the scheduler's reason.
	if _, err := c.Cancel(ctx, CancelRequest{Cluster: "bordeaux", JobID: 999}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("cancel of unknown job: %v", err)
	}

	// A job no cluster could ever run: 409 (ErrCannotRun), distinct from 422.
	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Job: JobPayload{ID: 2, Runtime: 1, Walltime: 2, Procs: 1 << 20}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("impossible submit: %v", err)
	}
}

// TestFrontalRejectsDrainingAndReportsIt covers the draining frontal paths:
// every endpoint answers 503, /healthz flips to "draining", and the
// Draining accessor reports it.
func TestFrontalRejectsDrainingAndReportsIt(t *testing.T) {
	s, c := newTestService(t, nil)
	ctx := context.Background()
	if s.Draining() {
		t.Fatal("fresh service reports draining")
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	var apiErr *APIError
	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Job: JobPayload{ID: 1, Runtime: 1, Walltime: 2, Procs: 1}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %v", err)
	}
	if _, err := c.Cancel(ctx, CancelRequest{Cluster: "bordeaux", JobID: 1}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("cancel while draining: %v", err)
	}
	if _, err := c.Estimate(ctx, EstimateRequest{Cluster: "bordeaux", Job: JobPayload{ID: 1, Runtime: 1, Walltime: 2, Procs: 1}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("estimate while draining: %v", err)
	}
	if _, err := c.List(ctx, "bordeaux"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("list while draining: %v", err)
	}
	status, err := c.Healthz(ctx)
	if err != nil || status != "draining" {
		t.Fatalf("healthz while draining = %q, %v", status, err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}

// TestConfigDefaults pins every zero-value knob of the service Config.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if len(cfg.Platform.Clusters) == 0 || cfg.Policy != "FCFS" {
		t.Fatalf("platform/policy defaults: %+v", cfg)
	}
	if cfg.Sims != 4 || cfg.MaxCampaigns != 2 || cfg.MaxPending != 4 {
		t.Fatalf("pool defaults: %+v", cfg)
	}
	if cfg.RequestTimeout <= 0 || cfg.CampaignTimeout <= 0 || cfg.WriteTimeout <= 0 ||
		cfg.DrainBudget <= 0 || cfg.MaxBodyBytes != 8<<20 || cfg.MaxCampaignScenarios != 4096 {
		t.Fatalf("limit defaults: %+v", cfg)
	}
	// A negative MaxPending means "no queue at all", not the default.
	if got := (Config{MaxPending: -1}).withDefaults().MaxPending; got != 0 {
		t.Fatalf("MaxPending -1 -> %d, want 0", got)
	}
	// Now is deliberately NOT defaulted: New must fail without a clock.
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil clock")
	}
	// An invalid policy fails construction.
	if _, err := New(Config{Policy: "banana", Now: time.Now}); err == nil {
		t.Fatal("New accepted an invalid policy")
	}
}
