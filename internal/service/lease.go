// Package service is the gridd daemon's core: an HTTP/JSON front over the
// restricted cluster-frontal API (submit, cancel, estimate, list) and the
// campaign runner, hardened for hostile traffic. Many concurrent campaigns
// share one bounded pool of pooled simulators through the LeaseManager; the
// robustness layer — admission control with 429 load-shedding, per-request
// deadlines, strict body decoding, per-connection panic isolation,
// slow-reader write deadlines and graceful drain — lives here so cmd/gridd
// stays a thin flag-parsing shell.
package service

import (
	"context"
	"errors"
	"sync"

	"gridrealloc/internal/core"
)

// ErrDraining is returned by LeaseManager.Acquire (and surfaced by campaign
// admission) once the manager is closed: the daemon is draining and no new
// simulator work may start.
var ErrDraining = errors.New("service: draining, no new work accepted")

// LeaseState is the lifecycle state of one lease-table entry.
type LeaseState string

const (
	// LeaseIdle means the simulator is in the pool, ready to be leased.
	LeaseIdle LeaseState = "idle"
	// LeaseHeld means the simulator is leased to a campaign worker.
	LeaseHeld LeaseState = "leased"
	// LeaseQuarantined means the simulator panicked mid-task and is
	// permanently retired: the quarantine rule of the campaign runner,
	// enforced across tenants — no later campaign can ever lease it.
	LeaseQuarantined LeaseState = "quarantined"
)

// LeaseInfo is one row of the lease table exposed on /stats.
type LeaseInfo struct {
	// ID numbers simulators in creation order.
	ID int `json:"id"`
	// State is the entry's current lifecycle state.
	State LeaseState `json:"state"`
	// Leases counts how many times this simulator was handed out.
	Leases int64 `json:"leases"`
}

// LeaseStats summarises the lease manager for /stats and /healthz.
type LeaseStats struct {
	// Capacity is the bound on concurrently leased simulators.
	Capacity int `json:"capacity"`
	// Created counts simulators constructed over the manager's lifetime
	// (initial pool fills plus quarantine replacements).
	Created int64 `json:"created"`
	// Leased is the number of simulators currently held by workers.
	Leased int `json:"leased"`
	// Idle is the number of pooled simulators ready to lease (slots whose
	// simulator would be created on demand count too).
	Idle int `json:"idle"`
	// Quarantined counts simulators retired by the quarantine rule over the
	// manager's lifetime.
	Quarantined int64 `json:"quarantined"`
	// Acquires counts successful leases.
	Acquires int64 `json:"acquires"`
}

// quarantineHistory bounds how many quarantined rows the lease table keeps;
// older ones are pruned so a panic storm cannot grow the table without
// bound (the counters still account for every quarantine).
const quarantineHistory = 32

// LeaseManager is a bounded, concurrency-safe pool of core.Simulator leases
// implementing runner.SimSource, shared by every campaign the daemon runs.
// Capacity bounds how many simulators exist at once (memory, and through the
// runner's worker pool, CPU); Acquire blocks until a slot frees or the
// context/manager dies. Simulators are created lazily — a fresh slot costs
// nothing until first leased — and reused across campaigns and tenants,
// which is safe because a simulator run resets all pooled state (the Reset
// contract) and the only state no reset can vouch for, a panic interrupted
// mid-mutation, is exactly what Discard quarantines: a discarded simulator
// is retired forever and its slot reverts to create-on-demand, so the pool
// never shrinks and the poisoned instance is never re-leased, no matter
// which tenant leases next.
type LeaseManager struct {
	// tokens is the capacity semaphore: tokens available + leased count
	// always equals capacity. Release and Discard both return the token,
	// so a quarantine never shrinks the pool.
	tokens   chan struct{}
	closedCh chan struct{}

	mu          sync.Mutex
	closed      bool
	idle        []*core.Simulator // LIFO, so the warmest simulator is reused first
	nextID      int
	created     int64
	leased      int
	quarantined int64
	acquires    int64
	records     []*leaseRecord
	bySim       map[*core.Simulator]*leaseRecord
}

type leaseRecord struct {
	id     int
	state  LeaseState
	leases int64
}

// NewLeaseManager creates a manager bounding the pool to capacity
// simulators (clamped to at least 1).
func NewLeaseManager(capacity int) *LeaseManager {
	if capacity < 1 {
		capacity = 1
	}
	m := &LeaseManager{
		tokens:   make(chan struct{}, capacity),
		closedCh: make(chan struct{}),
		bySim:    make(map[*core.Simulator]*leaseRecord),
	}
	for i := 0; i < capacity; i++ {
		m.tokens <- struct{}{}
	}
	return m
}

// Acquire leases a simulator for exclusive use, blocking until a slot is
// free. It fails with ctx's error on cancellation and with ErrDraining once
// the manager is closed (including for acquirers already blocked in line).
func (m *LeaseManager) Acquire(ctx context.Context) (*core.Simulator, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.closedCh:
		return nil, ErrDraining
	case <-m.tokens:
	}
	m.mu.Lock()
	if m.closed {
		// Lost the race with Close: return the token untouched so the
		// occupancy invariant holds for the final drain accounting.
		m.mu.Unlock()
		m.tokens <- struct{}{}
		return nil, ErrDraining
	}
	var sim *core.Simulator
	if n := len(m.idle); n > 0 {
		sim = m.idle[n-1]
		m.idle[n-1] = nil
		m.idle = m.idle[:n-1]
	} else {
		sim = core.NewSimulator()
		m.created++
		rec := &leaseRecord{id: m.nextID}
		m.nextID++
		m.records = append(m.records, rec)
		m.bySim[sim] = rec
		m.pruneLocked()
	}
	rec := m.bySim[sim]
	rec.state = LeaseHeld
	rec.leases++
	m.leased++
	m.acquires++
	m.mu.Unlock()
	return sim, nil
}

// Release returns a healthy simulator to the pool for reuse.
func (m *LeaseManager) Release(sim *core.Simulator) {
	if sim == nil {
		return
	}
	m.mu.Lock()
	if rec, ok := m.bySim[sim]; ok {
		rec.state = LeaseIdle
		m.leased--
	}
	m.idle = append(m.idle, sim)
	m.mu.Unlock()
	m.tokens <- struct{}{}
}

// Discard quarantines a simulator after a recovered panic: the instance is
// retired forever (its lease-table row stays visible as "quarantined") and
// its slot reverts to create-on-demand, so pool capacity is preserved while
// the quarantine rule holds across every tenant.
func (m *LeaseManager) Discard(sim *core.Simulator) {
	if sim == nil {
		return
	}
	m.mu.Lock()
	if rec, ok := m.bySim[sim]; ok {
		rec.state = LeaseQuarantined
		delete(m.bySim, sim)
		m.leased--
	}
	m.quarantined++
	m.pruneLocked()
	m.mu.Unlock()
	// The token comes back without the simulator: the slot reverts to
	// create-on-demand, preserving capacity.
	m.tokens <- struct{}{}
}

// Close drains the manager: every current and future Acquire fails with
// ErrDraining. Leased simulators may still be Released or Discarded after
// Close. Closing twice is a no-op.
func (m *LeaseManager) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.closedCh)
	}
	m.mu.Unlock()
}

// Outstanding returns how many simulators are currently leased; zero after
// a drain means every lease came home.
func (m *LeaseManager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leased
}

// Stats returns the manager's counters.
func (m *LeaseManager) Stats() LeaseStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return LeaseStats{
		Capacity:    cap(m.tokens),
		Created:     m.created,
		Leased:      m.leased,
		Idle:        cap(m.tokens) - m.leased,
		Quarantined: m.quarantined,
		Acquires:    m.acquires,
	}
}

// Snapshot returns the lease table in simulator-creation order.
func (m *LeaseManager) Snapshot() []LeaseInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LeaseInfo, 0, len(m.records))
	for _, rec := range m.records {
		out = append(out, LeaseInfo{ID: rec.id, State: rec.state, Leases: rec.leases})
	}
	return out
}

// pruneLocked drops the oldest quarantined rows beyond the retained
// history, keeping the lease table bounded by capacity + quarantineHistory.
func (m *LeaseManager) pruneLocked() {
	over := len(m.records) - cap(m.tokens) - quarantineHistory
	if over <= 0 {
		return
	}
	kept := m.records[:0]
	for _, rec := range m.records {
		if over > 0 && rec.state == LeaseQuarantined {
			over--
			continue
		}
		kept = append(kept, rec)
	}
	m.records = kept
}
