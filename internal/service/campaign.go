package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"encoding/json"

	"gridrealloc/internal/core"
	"gridrealloc/internal/faultinject"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/scenario"
)

// CampaignRequest is the body of POST /v1/campaigns: a scenario batch plus
// the runner's fault-tolerance knobs. The fault_seed/faulted pair installs
// a seeded fault-injection plan and is rejected unless the daemon was
// started with fault injection allowed (test harnesses only).
type CampaignRequest struct {
	Scenarios      []scenario.Config `json:"scenarios"`
	Workers        int               `json:"workers,omitempty"`
	TaskTimeoutMs  int64             `json:"task_timeout_ms,omitempty"`
	MaxRetries     int               `json:"max_retries,omitempty"`
	RetryBackoffMs int64             `json:"retry_backoff_ms,omitempty"`
	FaultSeed      uint64            `json:"fault_seed,omitempty"`
	Faulted        int               `json:"faulted,omitempty"`
}

// CampaignLine is one NDJSON result line: the outcome of one scenario, in
// completion order.
type CampaignLine struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario,omitempty"`
	Seed     uint64 `json:"seed"`
	Digest   string `json:"digest,omitempty"`
	Makespan int64  `json:"makespan,omitempty"`
	Jobs     int    `json:"jobs,omitempty"`
	Error    string `json:"error,omitempty"`
	Panic    bool   `json:"panic,omitempty"`
	Timeout  bool   `json:"timeout,omitempty"`
}

// CampaignTrailer is the final NDJSON line of a campaign stream: Done is
// its discriminator (result lines never set it). A trailer with Cancelled
// or Draining set accompanies partial results flushed during shutdown.
type CampaignTrailer struct {
	Done      bool            `json:"done"`
	Stats     runner.RunStats `json:"stats"`
	Health    string          `json:"health"`
	Cancelled bool            `json:"cancelled,omitempty"`
	Draining  bool            `json:"draining,omitempty"`
	Error     string          `json:"error,omitempty"`
}

func (s *Service) handleCampaign(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.campaignHist.Observe(s.cfg.Now().Sub(start)) }()
	if s.rejectIfDraining(w) {
		return
	}
	var req CampaignRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		rejectBody(w, err)
		return
	}
	n := len(req.Scenarios)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "campaign needs at least one scenario"})
		return
	}
	if n > s.cfg.MaxCampaignScenarios {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("campaign of %d scenarios exceeds the %d bound", n, s.cfg.MaxCampaignScenarios)})
		return
	}
	if (req.FaultSeed != 0 || req.Faulted != 0) && !s.cfg.AllowFaultInjection {
		writeJSON(w, http.StatusForbidden,
			errorResponse{Error: "fault injection is not enabled on this daemon"})
		return
	}

	// Admission: wait at most the request timeout for a campaign slot, shed
	// with 429 when the pending queue is full too.
	actx, acancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	release, err := s.admit(actx)
	acancel()
	if err != nil {
		switch {
		case errors.Is(err, errShed), errors.Is(err, context.DeadlineExceeded):
			shedResponse(w)
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default: // client went away while queued
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		}
		return
	}
	defer release()

	// The campaign context: the client's connection, bounded by the
	// campaign budget, and cancelled when drain gives up waiting — the
	// runner then drains its workers and the partial results are flushed
	// below.
	cctx, cancel := context.WithTimeout(r.Context(), s.cfg.CampaignTimeout)
	defer cancel()
	stopLink := context.AfterFunc(s.campaignCtx, cancel)
	defer stopLink()

	cfgs := req.Scenarios
	opts := runner.Options{
		Workers:      clampWorkers(req.Workers, s.cfg.Sims),
		Sims:         s.leases,
		TaskTimeout:  time.Duration(req.TaskTimeoutMs) * time.Millisecond,
		MaxRetries:   req.MaxRetries,
		RetryBackoff: time.Duration(req.RetryBackoffMs) * time.Millisecond,
		SeedOf:       func(i int) uint64 { return cfgs[i].EffectiveSeed() },
	}
	if req.Faulted > 0 {
		opts.Hook = faultinject.NewPlan(req.FaultSeed, n, req.Faulted)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	var sendErr error
	send := func(v any) {
		if sendErr != nil {
			return
		}
		// A stalled reader must not pin a worker: every write (and flush)
		// runs under its own deadline, and a blown deadline cancels the
		// campaign so the remaining tasks are skipped, not streamed into
		// a dead socket. SetWriteDeadline errors (a recorder without
		// deadline support) are ignored — then the connection's lifetime
		// is the only bound, which is the pre-controller behaviour.
		_ = rc.SetWriteDeadline(s.cfg.Now().Add(s.cfg.WriteTimeout))
		if err := enc.Encode(v); err == nil {
			err = rc.Flush()
			if err == nil {
				return
			}
			sendErr = err
		} else {
			sendErr = err
		}
		cancel()
	}

	stats, cerr := runner.StreamCtx(cctx, n, opts,
		func(ctx context.Context, i int, sim *core.Simulator) (*core.Result, error) {
			runCfg, err := scenario.BuildRunConfig(cfgs[i])
			if err != nil {
				return nil, err
			}
			return sim.Run(runCfg)
		},
		func(i int, res *core.Result, err error) {
			send(campaignLine(i, cfgs[i], res, err))
		})

	trailer := CampaignTrailer{
		Done:      true,
		Stats:     stats,
		Health:    metrics.HealthOf(stats).Grade,
		Cancelled: cerr != nil,
		Draining:  s.draining.Load(),
	}
	if cerr != nil {
		trailer.Error = cerr.Error()
	}
	send(trailer)
}

// clampWorkers bounds a campaign's requested worker count by the simulator
// pool size: more workers than leases would only park goroutines in
// Acquire. Zero and negative ask for the pool size.
func clampWorkers(requested, sims int) int {
	if requested <= 0 || requested > sims {
		return sims
	}
	return requested
}

// campaignLine renders one task outcome, classifying structured failures so
// clients need no string matching: Panic marks recovered panics (the lease
// was quarantined), Timeout marks per-task deadline expiries.
func campaignLine(i int, cfg scenario.Config, res *core.Result, err error) CampaignLine {
	line := CampaignLine{Index: i, Scenario: cfg.Scenario, Seed: cfg.EffectiveSeed()}
	if err != nil {
		line.Error = err.Error()
		line.Panic = errors.Is(err, runner.ErrTaskPanic)
		line.Timeout = errors.Is(err, context.DeadlineExceeded)
		return line
	}
	if res != nil {
		line.Scenario = res.Scenario
		line.Digest = res.Digest()
		line.Makespan = res.Makespan
		line.Jobs = len(res.Jobs)
	}
	return line
}
