package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
)

// Config configures a Service. The zero value of every knob has a safe
// default; see withDefaults.
type Config struct {
	// Platform names the clusters the frontal endpoints serve. Empty means
	// the paper's Grid'5000 platform for the "jan" scenario.
	Platform platform.Platform
	// Policy is the local batch policy of every frontal cluster: "FCFS"
	// (default) or "CBF".
	Policy string

	// Sims bounds the shared simulator pool (default GOMAXPROCS via
	// runtime at construction is avoided to stay deterministic: default 4).
	Sims int
	// MaxCampaigns bounds concurrently running campaigns (default 2).
	MaxCampaigns int
	// MaxPending bounds campaigns queued for admission beyond the running
	// ones; an arrival past this bound is shed with 429 (default 4).
	MaxPending int

	// RequestTimeout bounds each frontal request (decode + serve); default
	// 5s.
	RequestTimeout time.Duration
	// CampaignTimeout bounds one whole campaign including streaming;
	// default 5m.
	CampaignTimeout time.Duration
	// WriteTimeout bounds every single NDJSON write so a stalled reader
	// cannot pin a worker; default 10s.
	WriteTimeout time.Duration
	// DrainBudget bounds graceful drain: in-flight campaigns get half of it
	// to finish on their own, then are cancelled and get the rest to flush
	// partial results; default 10s.
	DrainBudget time.Duration
	// MaxBodyBytes bounds request bodies via http.MaxBytesReader; default
	// 8 MiB (campaign bodies carry scenario lists).
	MaxBodyBytes int64
	// MaxCampaignScenarios bounds one campaign's scenario count; default
	// 4096.
	MaxCampaignScenarios int

	// AllowFaultInjection gates the campaign request's fault_seed/faulted
	// fields (the harness service oracle uses them); production daemons
	// leave it false and reject fault-injected requests.
	AllowFaultInjection bool

	// Now is the wall clock, injected so tests control time; nil means the
	// caller must supply one (cmd/gridd passes the real clock). It is used
	// only for latency accounting and write deadlines, never for
	// simulation time, which stays virtual and deterministic.
	Now func() time.Time
}

// withDefaults fills the zero knobs.
func (c Config) withDefaults() Config {
	if len(c.Platform.Clusters) == 0 {
		c.Platform = platform.ForScenario("jan", platform.Homogeneous)
	}
	if c.Policy == "" {
		c.Policy = "FCFS"
	}
	if c.Sims <= 0 {
		c.Sims = 4
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 2
	}
	if c.MaxPending < 0 {
		c.MaxPending = 0
	} else if c.MaxPending == 0 {
		c.MaxPending = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxCampaignScenarios <= 0 {
		c.MaxCampaignScenarios = 4096
	}
	return c
}

// cluster is one frontal cluster: a server.Server behind a mutex, since
// concurrent tenants may address the same cluster and the scheduler is not
// concurrency-safe. Virtual time only moves forward: requests carry their
// own "now" and are clamped to the scheduler's current time.
type cluster struct {
	mu  sync.Mutex
	srv *server.Server
}

// Service is the daemon core: frontal clusters, the shared lease pool,
// campaign admission and drain state. Create with New, expose with
// Handler, shut down with Drain.
type Service struct {
	cfg    Config
	leases *LeaseManager

	clusters []*cluster // platform order, for deterministic /stats
	byName   map[string]*cluster

	// running and pending are token semaphores: a campaign holds a running
	// token while executing; an arrival that cannot get one immediately
	// holds a pending token while waiting, and is shed when neither is
	// available.
	running chan struct{}
	pending chan struct{}

	// campaignCtx is cancelled when drain gives up on in-flight campaigns;
	// every campaign context is linked to it.
	campaignCtx    context.Context
	cancelCampaign context.CancelFunc

	drainOnce sync.Once
	drainCh   chan struct{} // closed when drain begins (stops admission)
	draining  atomic.Bool

	wg sync.WaitGroup // in-flight campaign handlers

	// Observability.
	submitHist   metrics.Histogram
	estimateHist metrics.Histogram
	campaignHist metrics.Histogram
	shed         atomic.Int64
	handlerPanic atomic.Int64
	campaigns    atomic.Int64 // total admitted
}

// New builds a Service from cfg. It fails only on an invalid platform or
// policy.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Now == nil {
		return nil, fmt.Errorf("service: Config.Now must be set (inject the wall clock)")
	}
	policy, err := batch.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		leases:  NewLeaseManager(cfg.Sims),
		byName:  make(map[string]*cluster, len(cfg.Platform.Clusters)),
		running: make(chan struct{}, cfg.MaxCampaigns),
		pending: make(chan struct{}, cfg.MaxPending),
		drainCh: make(chan struct{}),
	}
	s.campaignCtx, s.cancelCampaign = context.WithCancel(context.Background())
	for _, spec := range cfg.Platform.Clusters {
		srv, err := server.New(spec, policy)
		if err != nil {
			s.cancelCampaign()
			return nil, fmt.Errorf("service: cluster %s: %w", spec.Name, err)
		}
		c := &cluster{srv: srv}
		s.clusters = append(s.clusters, c)
		s.byName[spec.Name] = c
	}
	return s, nil
}

// Draining reports whether drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// BeginDrain stops admission: new campaigns and frontal requests are
// rejected with 503, queued admission waiters are released with ErrDraining
// and new lease acquisition fails. In-flight campaigns keep running.
func (s *Service) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Drain gracefully shuts the service down within the configured budget:
// stop admission, give in-flight campaigns half the budget to finish on
// their own, then cancel them (the runner drains workers and the handlers
// flush partial results) and wait out the rest. It returns nil when every
// campaign finished and every lease came home, and an error describing the
// degradation otherwise. ctx can abort the wait early.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	grace := s.cfg.DrainBudget / 2
	if !waitOr(ctx, done, grace) {
		// Campaigns did not finish on their own: cancel and let them flush.
		s.cancelCampaign()
		if !waitOr(ctx, done, s.cfg.DrainBudget-grace) {
			s.leases.Close()
			return fmt.Errorf("service: drain budget %v exceeded with campaigns still in flight", s.cfg.DrainBudget)
		}
		s.leases.Close()
		if n := s.leases.Outstanding(); n != 0 {
			return fmt.Errorf("service: drain finished with %d leases outstanding", n)
		}
		return fmt.Errorf("service: drain cancelled in-flight campaigns after %v grace", grace)
	}
	s.cancelCampaign()
	s.leases.Close()
	if n := s.leases.Outstanding(); n != 0 {
		return fmt.Errorf("service: drain finished with %d leases outstanding", n)
	}
	return nil
}

// waitOr waits for done up to d (or ctx), reporting whether done fired.
func waitOr(ctx context.Context, done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// Leases exposes the lease manager (the harness oracle inspects it).
func (s *Service) Leases() *LeaseManager { return s.leases }

// admit acquires a running-campaign token, queueing within the pending
// bound. It returns errShed when both bounds are full (the caller answers
// 429) and ErrDraining when drain begins or ctx dies while queued. On
// success the campaign is registered with the drain WaitGroup; release
// undoes both.
func (s *Service) admit(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	admitted := func() (func(), error) {
		s.wg.Add(1)
		// Re-check after registering: if drain began between the token
		// acquire and the Add, its WaitGroup wait may already have
		// returned, so this campaign must not run.
		if s.draining.Load() {
			s.wg.Done()
			<-s.running
			return nil, ErrDraining
		}
		s.campaigns.Add(1)
		return func() { s.wg.Done(); <-s.running }, nil
	}
	select {
	case s.running <- struct{}{}:
		return admitted()
	default:
	}
	select {
	case s.pending <- struct{}{}:
	default:
		s.shed.Add(1)
		return nil, errShed
	}
	defer func() { <-s.pending }()
	select {
	case s.running <- struct{}{}:
		return admitted()
	case <-s.drainCh:
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// errShed marks an arrival rejected by admission control; the HTTP layer
// maps it to 429 + Retry-After.
var errShed = fmt.Errorf("service: at capacity, retry later")
