package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/scenario"
)

// newTestService boots a Service behind httptest with fast test timeouts;
// mut tweaks the config before construction.
func newTestService(t *testing.T, mut func(*Config)) (*Service, *Client) {
	t.Helper()
	cfg := Config{
		Sims:            2,
		MaxCampaigns:    2,
		MaxPending:      2,
		RequestTimeout:  2 * time.Second,
		CampaignTimeout: 30 * time.Second,
		WriteTimeout:    5 * time.Second,
		DrainBudget:     2 * time.Second,
		Now:             time.Now,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// fastScenarios builds a small, quick campaign.
func fastScenarios(n int) []scenario.Config {
	cfgs := make([]scenario.Config, n)
	for i := range cfgs {
		cfgs[i] = scenario.Config{
			Scenario:      "jan",
			TraceFraction: 0.01,
			Algorithm:     "realloc",
			Heuristic:     "MinMin",
			Seed:          uint64(100 + i),
		}
	}
	return cfgs
}

// inProcessDigests runs the same configs through the runner directly — the
// reference the HTTP stream must match bit for bit.
func inProcessDigests(t *testing.T, cfgs []scenario.Config) []string {
	t.Helper()
	res, _, err := runner.RunCtx(context.Background(), len(cfgs), runner.Options{Workers: 1},
		func(_ context.Context, i int, sim *core.Simulator) (*core.Result, error) {
			runCfg, err := scenario.BuildRunConfig(cfgs[i])
			if err != nil {
				return nil, err
			}
			return sim.Run(runCfg)
		})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res))
	for i, r := range res {
		out[i] = r.Digest()
	}
	return out
}

func TestFrontalSubmitEstimateList(t *testing.T) {
	_, c := newTestService(t, nil)
	ctx := context.Background()
	job := JobPayload{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Procs: 4}

	est, err := c.Estimate(ctx, EstimateRequest{Cluster: "bordeaux", Now: 0, Job: job})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if !est.OK || est.ECT <= 0 {
		t.Fatalf("estimate = %+v", est)
	}

	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Now: 0, Job: job}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// A job submitted at time 0 on an empty cluster starts immediately, so
	// queue a second one wide enough to wait behind it.
	job2 := JobPayload{ID: 2, Submit: 0, Runtime: 100, Walltime: 200, Procs: 640}
	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Now: 0, Job: job2}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	list, err := c.List(ctx, "bordeaux")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	found := false
	for _, wj := range list.Waiting {
		if wj.Job.ID == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("job 2 not in waiting queue: %+v", list.Waiting)
	}

	cancelResp, err := c.Cancel(ctx, CancelRequest{Cluster: "bordeaux", Now: 1, JobID: 2})
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if cancelResp.Job.ID != 2 {
		t.Fatalf("cancel returned %+v", cancelResp)
	}

	// Unknown cluster is a 404, not a panic or a 500.
	_, err = c.Submit(ctx, SubmitRequest{Cluster: "nope", Job: job})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown cluster err = %v", err)
	}
}

func TestMalformedBodies(t *testing.T) {
	_, c := newTestService(t, func(cfg *Config) { cfg.MaxBodyBytes = 512 })
	httpc := c.httpc()
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := httpc.Post(c.Base+"/v1/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"cluster":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d", resp.StatusCode)
	}
	if resp := post(`{"cluster":"bordeaux","bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	if resp := post(`{"cluster":"bordeaux"} trailing`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data: status %d", resp.StatusCode)
	}
	big := `{"cluster":"` + strings.Repeat("x", 1024) + `"}`
	if resp := post(big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
}

func TestCampaignDigestParity(t *testing.T) {
	_, c := newTestService(t, nil)
	snap := leakcheck.Take()
	cfgs := fastScenarios(4)
	want := inProcessDigests(t, cfgs)

	got := make(map[int]CampaignLine, len(cfgs))
	trailer, err := c.Campaign(context.Background(), CampaignRequest{Scenarios: cfgs, Workers: 2},
		func(line CampaignLine) { got[line.Index] = line })
	if err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Health != "clean" || trailer.Stats.Completed != int64(len(cfgs)) {
		t.Fatalf("trailer = %+v", trailer)
	}
	for i, w := range want {
		line, ok := got[i]
		if !ok {
			t.Fatalf("no line for scenario %d", i)
		}
		if line.Digest != w {
			t.Fatalf("scenario %d digest %s over HTTP, %s in-process", i, line.Digest, w)
		}
		if line.Error != "" || line.Jobs == 0 || line.Makespan == 0 {
			t.Fatalf("line %d = %+v", i, line)
		}
	}
	// Latency accounting reached the histograms.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.Campaign.Count == 0 {
		t.Fatalf("campaign latency histogram empty: %+v", st.Latency)
	}
	if st.Leases.Quarantined != 0 || st.CampaignsAdmitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.httpc().CloseIdleConnections()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignFaultPathsAndQuarantine(t *testing.T) {
	s, c := newTestService(t, func(cfg *Config) { cfg.AllowFaultInjection = true })
	snap := leakcheck.Take()
	cfgs := fastScenarios(8)
	req := CampaignRequest{
		Scenarios:     cfgs,
		Workers:       2,
		TaskTimeoutMs: 300,
		MaxRetries:    3,
		FaultSeed:     7,
		Faulted:       4, // one of each kind: panic, transient, slow, poison-reset
	}
	var mu sync.Mutex
	panics, timeouts := 0, 0
	trailer, err := c.Campaign(context.Background(), req, func(line CampaignLine) {
		mu.Lock()
		if line.Panic {
			panics++
		}
		if line.Timeout {
			timeouts++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Cancelled {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.Stats.RecoveredPanics != 2 || trailer.Stats.Timeouts != 1 || trailer.Stats.DiscardedSims != 2 {
		t.Fatalf("stats = %+v", trailer.Stats)
	}
	if panics != 2 || timeouts != 1 {
		t.Fatalf("lines: %d panic, %d timeout", panics, timeouts)
	}
	if trailer.Health != "degraded" {
		t.Fatalf("health = %q", trailer.Health)
	}
	// The two panicked simulators are quarantined across tenants: visible
	// in the lease table, never idle again.
	st := s.Leases().Stats()
	if st.Quarantined != 2 {
		t.Fatalf("lease stats = %+v", st)
	}
	for _, row := range s.Leases().Snapshot() {
		if row.State == LeaseHeld {
			t.Fatalf("lease still held after campaign: %+v", row)
		}
	}
	c.httpc().CloseIdleConnections()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignFaultInjectionForbidden(t *testing.T) {
	_, c := newTestService(t, nil)
	_, err := c.Campaign(context.Background(),
		CampaignRequest{Scenarios: fastScenarios(1), Faulted: 1}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusForbidden {
		t.Fatalf("err = %v, want 403", err)
	}
}

func TestCampaignLoadShed(t *testing.T) {
	s, c := newTestService(t, func(cfg *Config) {
		cfg.MaxCampaigns = 1
		cfg.MaxPending = 1
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	snap := leakcheck.Take()
	// Occupy the only running slot and the only pending slot directly.
	releaseRunning, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.pending <- struct{}{}

	_, err = c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(1)}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429", err)
	}
	if apiErr.RetryAfter == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.shed.Load() == 0 {
		t.Fatal("shed counter did not move")
	}

	// Free the pending slot: an arrival now queues, then times out waiting
	// for the running slot — still shed as 429, not hung forever.
	<-s.pending
	_, err = c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(1)}, nil)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("queued arrival err = %v, want 429 after queue wait timeout", err)
	}

	// Once capacity frees, campaigns run again.
	releaseRunning()
	trailer, err := c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(1)}, nil)
	if err != nil || !trailer.Done {
		t.Fatalf("after release: trailer=%+v err=%v", trailer, err)
	}
	c.httpc().CloseIdleConnections()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicInHandlerIsIsolated(t *testing.T) {
	s, c := newTestService(t, nil)
	ts := httptest.NewServer(s.wrap(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if s.handlerPanic.Load() != 1 {
		t.Fatalf("handlerPanic = %d", s.handlerPanic.Load())
	}
	// The daemon keeps serving other tenants.
	if status, err := c.Healthz(context.Background()); err != nil || status != "ok" {
		t.Fatalf("healthz after panic: %q, %v", status, err)
	}
}

func TestMidStreamDisconnect(t *testing.T) {
	s, c := newTestService(t, func(cfg *Config) { cfg.AllowFaultInjection = true })
	snap := leakcheck.Take()
	// One slow task (no task timeout) keeps the campaign alive until the
	// client walks away; the disconnect must cancel the campaign, return
	// every lease and leak nothing.
	req := CampaignRequest{Scenarios: fastScenarios(6), Workers: 2, FaultSeed: 3, Faulted: 3}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstLine := make(chan struct{}, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Campaign(ctx, req, func(CampaignLine) {
			select {
			case firstLine <- struct{}{}:
			default:
			}
		})
		done <- err
	}()
	select {
	case <-firstLine:
	case <-time.After(10 * time.Second):
		t.Fatal("no campaign output within 10s")
	}
	cancel() // client disconnects mid-stream
	if err := <-done; err == nil {
		t.Fatal("client saw a complete stream despite disconnecting")
	}
	// The server side notices, cancels the campaign and returns the leases.
	deadline := time.Now().Add(5 * time.Second)
	for s.Leases().Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leases still outstanding after disconnect: %d", s.Leases().Outstanding())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status, err := c.Healthz(context.Background()); err != nil || status != "ok" {
		t.Fatalf("healthz after disconnect: %q, %v", status, err)
	}
	c.httpc().CloseIdleConnections()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainWhileStreaming(t *testing.T) {
	s, c := newTestService(t, func(cfg *Config) {
		cfg.AllowFaultInjection = true
		cfg.DrainBudget = 1 * time.Second
	})
	snap := leakcheck.Take()
	// The slow fault blocks its worker until drain cancels the campaign, so
	// the drain exercises the cancel-and-flush path, not the easy one.
	req := CampaignRequest{Scenarios: fastScenarios(6), Workers: 2, FaultSeed: 3, Faulted: 3}
	firstLine := make(chan struct{}, 1)
	type outcome struct {
		trailer CampaignTrailer
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		trailer, err := c.Campaign(context.Background(), req, func(CampaignLine) {
			select {
			case firstLine <- struct{}{}:
			default:
			}
		})
		done <- outcome{trailer, err}
	}()
	select {
	case <-firstLine:
	case <-time.After(10 * time.Second):
		t.Fatal("no campaign output within 10s")
	}

	drainErr := s.Drain(context.Background())
	if drainErr == nil {
		t.Fatal("drain reported clean although it had to cancel a campaign")
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("streaming client got error %v, want flushed partial results + trailer", out.err)
	}
	if !out.trailer.Done || !out.trailer.Cancelled || !out.trailer.Draining {
		t.Fatalf("trailer = %+v", out.trailer)
	}
	if out.trailer.Stats.Completed == 0 || out.trailer.Stats.Completed == out.trailer.Stats.Tasks {
		t.Fatalf("want partial results, got stats %+v", out.trailer.Stats)
	}

	// After drain: no leases out, everything answers 503.
	if n := s.Leases().Outstanding(); n != 0 {
		t.Fatalf("outstanding leases after drain: %d", n)
	}
	if status, _ := c.Healthz(context.Background()); status != "draining" {
		t.Fatalf("healthz = %q, want draining", status)
	}
	_, err := c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(1)}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("campaign after drain: %v, want 503", err)
	}
	_, err = c.Submit(context.Background(), SubmitRequest{Cluster: "bordeaux", Job: JobPayload{ID: 9, Procs: 1, Runtime: 1, Walltime: 1}})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %v, want 503", err)
	}
	c.httpc().CloseIdleConnections()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainCleanWhenIdle(t *testing.T) {
	s, c := newTestService(t, nil)
	trailer, err := c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(2)}, nil)
	if err != nil || !trailer.Done {
		t.Fatalf("trailer=%+v err=%v", trailer, err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain must be clean: %v", err)
	}
}

func TestCampaignRejectsEmptyAndOversized(t *testing.T) {
	_, c := newTestService(t, func(cfg *Config) { cfg.MaxCampaignScenarios = 3 })
	var apiErr *APIError
	_, err := c.Campaign(context.Background(), CampaignRequest{}, nil)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty campaign err = %v", err)
	}
	_, err = c.Campaign(context.Background(), CampaignRequest{Scenarios: fastScenarios(4)}, nil)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("oversized campaign err = %v", err)
	}
}

// TestVirtualTimeNeverRewinds pins the clamp: a request carrying an older
// virtual "now" is served at the scheduler's current time instead of
// corrupting the event order.
func TestVirtualTimeNeverRewinds(t *testing.T) {
	_, c := newTestService(t, nil)
	ctx := context.Background()
	job := JobPayload{ID: 1, Submit: 0, Runtime: 50, Walltime: 100, Procs: 1}
	if _, err := c.Submit(ctx, SubmitRequest{Cluster: "bordeaux", Now: 1000, Job: job}); err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimate(ctx, EstimateRequest{Cluster: "bordeaux", Now: 10, Job: JobPayload{ID: 2, Submit: 0, Runtime: 50, Walltime: 100, Procs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Now < 1000 {
		t.Fatalf("virtual time rewound to %d", est.Now)
	}
}
