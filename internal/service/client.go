package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal typed client for the gridd HTTP API, used by the
// harness service oracle, the gridd end-to-end tests and the CI smoke
// replay. It adds nothing beyond encoding: retries and backoff are the
// caller's business (the oracle wants to see raw 429s, not have them
// hidden).
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// CloseIdle closes the underlying transport's idle keep-alive connections;
// callers that leak-check after a drain call it so pooled connection
// goroutines do not read as leaks.
func (c *Client) CloseIdle() {
	c.httpc().CloseIdleConnections()
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status     int
	RetryAfter string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gridd: %d: %s", e.Status, e.Message)
}

// postJSON sends one JSON request and decodes one JSON response into out.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func apiError(resp *http.Response) error {
	var e errorResponse
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e); err == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{
		Status:     resp.StatusCode,
		RetryAfter: resp.Header.Get("Retry-After"),
		Message:    msg,
	}
}

// Submit enqueues a job on a cluster.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.postJSON(ctx, "/v1/submit", req, &out)
	return out, err
}

// Cancel removes a waiting job.
func (c *Client) Cancel(ctx context.Context, req CancelRequest) (CancelResponse, error) {
	var out CancelResponse
	err := c.postJSON(ctx, "/v1/cancel", req, &out)
	return out, err
}

// Estimate asks for a hypothetical completion time.
func (c *Client) Estimate(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	var out EstimateResponse
	err := c.postJSON(ctx, "/v1/estimate", req, &out)
	return out, err
}

// List returns one cluster's waiting queue.
func (c *Client) List(ctx context.Context, clusterName string) (ListResponse, error) {
	var out ListResponse
	code, err := c.getJSON(ctx, "/v1/list?cluster="+clusterName, &out)
	if err == nil && code != http.StatusOK {
		return out, &APIError{Status: code, Message: "list failed"}
	}
	return out, err
}

// Healthz returns the daemon health status string ("ok" or "draining").
func (c *Client) Healthz(ctx context.Context) (string, error) {
	var out HealthResponse
	if _, err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return "", err
	}
	return out.Status, nil
}

// Stats fetches the daemon counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	_, err := c.getJSON(ctx, "/stats", &out)
	return out, err
}

// Campaign streams one campaign: each result line is handed to emit as it
// arrives (nil emit discards), and the trailer is returned. A stream that
// ends without a trailer (the daemon died or cut the connection) returns
// an error alongside the lines seen so far.
func (c *Client) Campaign(ctx context.Context, req CampaignRequest, emit func(CampaignLine)) (CampaignTrailer, error) {
	var trailer CampaignTrailer
	body, err := json.Marshal(req)
	if err != nil {
		return trailer, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return trailer, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return trailer, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return trailer, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawTrailer := false
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		// The trailer is discriminated by its "done" field; result lines
		// never carry it.
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal([]byte(text), &probe); err != nil {
			return trailer, fmt.Errorf("gridd: bad stream line: %w", err)
		}
		if probe.Done {
			if err := json.Unmarshal([]byte(text), &trailer); err != nil {
				return trailer, fmt.Errorf("gridd: bad trailer: %w", err)
			}
			sawTrailer = true
			continue
		}
		var line CampaignLine
		if err := json.Unmarshal([]byte(text), &line); err != nil {
			return trailer, fmt.Errorf("gridd: bad result line: %w", err)
		}
		if emit != nil {
			emit(line)
		}
	}
	if err := sc.Err(); err != nil {
		return trailer, err
	}
	if !sawTrailer {
		return trailer, fmt.Errorf("gridd: campaign stream ended without a trailer")
	}
	return trailer, nil
}
