package server

import (
	"errors"
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

func newServer(t *testing.T, cores int, speed float64, policy batch.Policy) *Server {
	t.Helper()
	s, err := New(platform.ClusterSpec{Name: "front", Cores: cores, Speed: speed}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func job(id int, runtime, walltime int64, procs int) workload.Job {
	return workload.Job{ID: id, Submit: 0, Runtime: runtime, Walltime: walltime, Procs: procs}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(platform.ClusterSpec{Name: "", Cores: 1, Speed: 1}, batch.FCFS); err == nil {
		t.Fatal("invalid spec accepted")
	}
	s := newServer(t, 8, 1.0, batch.CBF)
	if s.Name() != "front" || s.Spec().Cores != 8 {
		t.Fatalf("accessors broken: %q %d", s.Name(), s.Spec().Cores)
	}
	if s.Scheduler().Policy() != batch.CBF {
		t.Fatal("policy not forwarded")
	}
}

func TestSubmitCancelRoundTrip(t *testing.T) {
	s := newServer(t, 4, 1.0, batch.FCFS)
	if err := s.Submit(job(1, 100, 1000, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scheduler().Advance(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 100, 200, 2), 0, 5); err != nil {
		t.Fatal(err)
	}
	waiting := s.WaitingJobs()
	if len(waiting) != 1 || waiting[0].Job.ID != 2 || waiting[0].Reallocations != 5 {
		t.Fatalf("waiting = %+v", waiting)
	}
	j, migrated, err := s.Cancel(2, 0)
	if err != nil || j.ID != 2 || migrated != 5 {
		t.Fatalf("cancel = %+v %d %v", j, migrated, err)
	}
	if len(s.WaitingJobs()) != 0 {
		t.Fatal("job still waiting after cancel")
	}
}

func TestSubmitTooWideWrapsError(t *testing.T) {
	s := newServer(t, 4, 1.0, batch.FCFS)
	err := s.Submit(job(1, 10, 20, 8), 0, 0)
	if !errors.Is(err, ErrCannotRun) {
		t.Fatalf("err = %v, want ErrCannotRun", err)
	}
	if !errors.Is(err, batch.ErrTooWide) {
		t.Fatalf("err = %v, should still wrap batch.ErrTooWide", err)
	}
	if s.Fits(job(2, 10, 20, 8)) {
		t.Fatal("Fits accepted an oversized job")
	}
	if !s.Fits(job(3, 10, 20, 4)) {
		t.Fatal("Fits rejected a valid job")
	}
}

func TestEstimateCompletionOkFlag(t *testing.T) {
	s := newServer(t, 4, 2.0, batch.FCFS)
	ect, ok := s.EstimateCompletion(job(1, 100, 600, 4), 0)
	if !ok {
		t.Fatal("estimate failed on an empty cluster")
	}
	// Walltime 600 scaled by speed 2.0 -> 300.
	if ect != 300 {
		t.Fatalf("ECT = %d, want 300", ect)
	}
	if _, ok := s.EstimateCompletion(job(2, 100, 600, 99), 0); ok {
		t.Fatal("estimate succeeded for an oversized job")
	}
}

func TestEstimateSnapshotForwarding(t *testing.T) {
	s := newServer(t, 4, 2.0, batch.FCFS)
	sn, err := s.EstimateSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	// The detached snapshot must agree with the live estimate.
	live, ok := s.EstimateCompletion(job(1, 100, 600, 4), 0)
	if !ok {
		t.Fatal("live estimate failed on an empty cluster")
	}
	fromSnap, err := sn.EstimateCompletion(job(1, 100, 600, 4))
	if err != nil || fromSnap != live {
		t.Fatalf("snapshot ECT = %d,%v want %d", fromSnap, err, live)
	}
}

func TestCurrentCompletionForwarding(t *testing.T) {
	s := newServer(t, 4, 1.0, batch.FCFS)
	if err := s.Submit(job(1, 100, 400, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scheduler().Advance(0); err != nil {
		t.Fatal(err)
	}
	if ect, err := s.CurrentCompletion(1); err != nil || ect != 400 {
		t.Fatalf("CurrentCompletion = %d,%v want 400", ect, err)
	}
	if _, err := s.CurrentCompletion(9); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestLoadCounters(t *testing.T) {
	s := newServer(t, 4, 1.0, batch.FCFS)
	_ = s.Submit(job(1, 10, 300, 1), 0, 0)
	_ = s.Submit(job(2, 10, 300, 1), 0, 0)
	_, _, _ = s.Cancel(2, 0)
	_, _ = s.EstimateCompletion(job(3, 10, 300, 1), 0)
	load := s.Load()
	if load.Cluster != "front" || load.Submissions != 2 || load.Cancellations != 1 || load.ECTQueries != 1 {
		t.Fatalf("load = %+v", load)
	}
}
