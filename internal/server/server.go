// Package server implements the cluster-frontal component of the paper's
// architecture: the process deployed on the front-end of each parallel
// resource that mediates between the grid middleware and the local batch
// system. It exposes exactly the restricted operations the paper allows the
// middleware to use — submission, cancellation of waiting jobs, estimation
// of completion times and listing of the waiting queue — and accounts for
// the requests it serves so that the experiment harness can report the load
// the reallocation mechanism puts on the local resource managers.
package server

import (
	"errors"
	"fmt"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// Server fronts one cluster's batch scheduler.
//
//gridlint:resettable
type Server struct {
	name  string
	spec  platform.ClusterSpec
	sched *batch.Scheduler
}

// New creates a server for the given cluster running the given batch policy.
func New(spec platform.ClusterSpec, policy batch.Policy) (*Server, error) {
	sched, err := batch.NewScheduler(spec, policy)
	if err != nil {
		return nil, err
	}
	return &Server{name: spec.Name, spec: spec, sched: sched}, nil
}

// Reset re-targets the server at a (possibly different) cluster spec and
// policy, resetting the underlying batch scheduler to its initial state while
// keeping its pooled buffers. A reset server is observationally identical to
// a freshly constructed one; the campaign runner resets one pooled server per
// cluster slot between scenarios instead of rebuilding the scheduler's
// profiles, indexes and pools each time.
func (s *Server) Reset(spec platform.ClusterSpec, policy batch.Policy) error {
	if err := s.sched.Reset(spec, policy); err != nil {
		return err
	}
	s.name = spec.Name
	s.spec = spec
	return nil
}

// Name returns the cluster name.
func (s *Server) Name() string { return s.name }

// Spec returns the cluster description.
func (s *Server) Spec() platform.ClusterSpec { return s.spec }

// Scheduler exposes the underlying batch scheduler; the simulation driver
// uses it to advance virtual time, and tests use it to check invariants.
func (s *Server) Scheduler() *batch.Scheduler { return s.sched }

// ErrCannotRun is returned when a job can never execute on this cluster.
var ErrCannotRun = errors.New("server: job cannot run on this cluster")

// Submit enqueues the job on the local batch system.
func (s *Server) Submit(j workload.Job, now int64, reallocations int) error {
	if err := s.sched.Submit(j, now, reallocations); err != nil {
		if errors.Is(err, batch.ErrTooWide) {
			return fmt.Errorf("%w: %w", ErrCannotRun, err)
		}
		return err
	}
	return nil
}

// Cancel removes a waiting job from the local queue and returns it together
// with its accumulated reallocation count.
func (s *Server) Cancel(jobID int, now int64) (workload.Job, int, error) {
	return s.sched.Cancel(jobID, now)
}

// EstimateCompletion returns the estimated completion time of a hypothetical
// submission of the job at time now. ok is false when the job can never run
// on this cluster. The error-free scheduler variant backs it: the mapping
// policy issues one of these per cluster per submission and a "cannot run
// here" must not cost an error allocation.
func (s *Server) EstimateCompletion(j workload.Job, now int64) (ect int64, ok bool) {
	return s.sched.TryEstimateCompletion(j, now)
}

// EstimateSnapshot returns a detached snapshot of the cluster's planned
// availability at time now. The meta-scheduler takes one snapshot per
// cluster per reallocation sweep and reuses it across every candidate job
// instead of issuing one EstimateCompletion request per (job, cluster) pair.
//
//gridlint:ref-acquire
func (s *Server) EstimateSnapshot(now int64) (*batch.EstimateSnapshot, error) {
	return s.sched.EstimateSnapshot(now)
}

// EstimateSnapshotInto refreshes a caller-owned snapshot in place,
// avoiding the allocation of EstimateSnapshot on the sweep hot path.
//
//gridlint:ref-acquire
func (s *Server) EstimateSnapshotInto(sn *batch.EstimateSnapshot, now int64) error {
	return s.sched.EstimateSnapshotInto(sn, now)
}

// CurrentCompletion returns the current predicted completion time of a job
// already held by this cluster.
func (s *Server) CurrentCompletion(jobID int) (int64, error) {
	return s.sched.CurrentCompletion(jobID)
}

// WaitingJobs lists the jobs currently waiting in the local queue.
func (s *Server) WaitingJobs() []batch.WaitingJob {
	return s.sched.WaitingJobs()
}

// Fits reports whether the job's processor request fits on this cluster.
func (s *Server) Fits(j workload.Job) bool { return s.sched.Fits(j) }

// RequestLoad summarises the number of requests the middleware has issued to
// this cluster's batch system, together with the scheduler-internal
// counters that show how much work the incremental plan machinery absorbed.
type RequestLoad struct {
	Cluster       string
	Submissions   int64
	Cancellations int64
	ECTQueries    int64
	// SnapshotHits is the number of ECT queries answered from a detached
	// per-sweep snapshot rather than a direct scheduler consultation.
	SnapshotHits int64
	// PlanRebuilds and PlanReuses count, respectively, full re-plans of the
	// waiting queue and observations served from the cached plan.
	PlanRebuilds int64
	PlanReuses   int64
}

// Load returns the request counters of the local batch system.
func (s *Server) Load() RequestLoad {
	sub, can, ect := s.sched.Counters()
	st := s.sched.ProfileStats()
	return RequestLoad{
		Cluster:       s.name,
		Submissions:   sub,
		Cancellations: can,
		ECTQueries:    ect,
		SnapshotHits:  st.SnapshotHits,
		PlanRebuilds:  st.PlanRebuilds,
		PlanReuses:    st.PlanReuses,
	}
}
