package cli

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// failAfter fails every write after the first n bytes have been accepted.
type failAfter struct {
	n   int
	got bytes.Buffer
}

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.got.Len()+len(p) > f.n {
		return 0, errDiskFull
	}
	return f.got.Write(p)
}

func TestErrWriterPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	ew := NewErrWriter(&buf)
	fmt.Fprintf(ew, "hello %d\n", 42)
	if ew.Err() != nil {
		t.Fatalf("unexpected error: %v", ew.Err())
	}
	if got := buf.String(); got != "hello 42\n" {
		t.Fatalf("wrote %q", got)
	}
}

func TestErrWriterRemembersFirstError(t *testing.T) {
	ew := NewErrWriter(&failAfter{n: 4})
	if _, err := ew.Write([]byte("ok")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := ew.Write([]byte("too long")); !errors.Is(err, errDiskFull) {
		t.Fatalf("want disk full, got %v", err)
	}
	// Later writes are suppressed but still report the original failure.
	if _, err := ew.Write([]byte("x")); !errors.Is(err, errDiskFull) {
		t.Fatalf("suppressed write: want disk full, got %v", err)
	}
	if !errors.Is(ew.Err(), errDiskFull) {
		t.Fatalf("Err() = %v, want disk full", ew.Err())
	}
}

func TestNewErrWriterIdempotent(t *testing.T) {
	var buf bytes.Buffer
	ew := NewErrWriter(&buf)
	if again := NewErrWriter(ew); again != ew {
		t.Fatal("wrapping an ErrWriter must return the same writer")
	}
}
