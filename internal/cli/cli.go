// Package cli holds the small amount of plumbing shared by the module's
// command-line tools. Its main job is making every failure path visible in
// the exit status: the mains print their results through an ErrWriter and
// check it before exiting, so a full disk or a closed pipe downstream turns
// into a non-zero exit instead of silently truncated output.
package cli

import "io"

// ErrWriter wraps an io.Writer and remembers the first write error. Once a
// write fails, subsequent writes are suppressed (they would fail the same
// way) and Err reports the original failure. The zero value is not usable;
// use NewErrWriter.
type ErrWriter struct {
	w   io.Writer
	err error
}

// NewErrWriter wraps w. If w is already an *ErrWriter it is returned
// unchanged, so layered helpers share one error slot.
func NewErrWriter(w io.Writer) *ErrWriter {
	if ew, ok := w.(*ErrWriter); ok {
		return ew
	}
	return &ErrWriter{w: w}
}

// Write implements io.Writer.
func (ew *ErrWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// Err returns the first write error, or nil.
func (ew *ErrWriter) Err() error { return ew.err }
