// Package stats bundles the small numeric helpers shared by the workload
// generators, the metric computations and the experiment tables: a
// deterministic splittable pseudo-random number generator, means and ratios
// guarded against empty inputs, and the rounding used when printing the
// paper-layout tables.
//
// The PRNG is implemented locally (SplitMix64 seeding a xoshiro256**-like
// core) rather than relying on math/rand global state so that every
// generator stream in the experiment harness is independent and reproducible
// regardless of evaluation order.
package stats

import (
	"math"
	"math/bits"
	"sort"
)

// RNG is a deterministic pseudo-random number generator. The zero value is
// not useful; construct one with NewRNG. It is not safe for concurrent use;
// each goroutine should derive its own stream with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to expand the seed into the four state words, as recommended
	// by the xoshiro authors: never seed the state with all zeros.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current one. The parent
// stream advances, so successive Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift bounded sampling with rejection: `Uint64() % n` would make
// the low residues of non-power-of-two bounds slightly more likely, a bias
// that is small but systematic across the millions of draws of a full-scale
// trace. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		// Reject draws from the truncated final interval. thresh is
		// (2^64 - n) % n, computed without 128-bit arithmetic.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Range returns a uniformly distributed int64 in [lo, hi]. It panics if
// hi < lo.
func (r *RNG) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("stats: Range with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// LogUniform returns a value distributed log-uniformly in [lo, hi], which is
// the classic model for parallel job runtimes (many short jobs, a heavy tail
// of long ones). It panics if lo <= 0 or hi < lo.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("stats: LogUniform requires 0 < lo <= hi")
	}
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Exponential returns a draw from an exponential distribution with the given
// mean. It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exponential requires mean > 0")
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to the weights. Non-positive weights are treated as zero. It
// panics if the slice is empty or all weights are zero.
func (r *RNG) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Choice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: Choice with all-zero weights")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInt64 returns the arithmetic mean of xs as a float64, or 0 for an
// empty slice.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Ratio returns num/den, or 0 when den is 0. It is used for the relative
// metrics of the paper where an empty comparison set must not divide by zero.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Percent returns 100*part/total, or 0 when total is 0.
func Percent(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}

// Round2 rounds to two decimal places, the precision used throughout the
// paper's tables.
func Round2(x float64) float64 {
	return math.Round(x*100) / 100
}

// Median returns the median of xs, or 0 for an empty slice. The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// StdDev returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CeilDiv returns ceil(a/b) for positive b. It panics if b <= 0.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("stats: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
