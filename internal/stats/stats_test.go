package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(12)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestUint64nUniformity(t *testing.T) {
	// With modulo reduction, a bound just above 2^63 maps almost the whole
	// 64-bit range onto its low residues, making them twice as likely —
	// the most extreme form of the bias that affects every
	// non-power-of-two bound. Lemire sampling with rejection must keep the
	// two halves of such a bound balanced.
	r := NewRNG(99)
	bound := uint64(1)<<63 + 1<<62 // 1.5 * 2^63
	const draws = 200000
	low := 0
	for i := 0; i < draws; i++ {
		v := r.Uint64n(bound)
		if v >= bound {
			t.Fatalf("Uint64n(%d) = %d out of range", bound, v)
		}
		if v < bound/2 {
			low++
		}
	}
	ratio := float64(low) / draws
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("low-half frequency %.4f, want ~0.5 (biased sampling?)", ratio)
	}
	// Small bounds stay exhaustively covered and balanced.
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Intn(3)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(3) value %d drawn %d times of 30000, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	r := NewRNG(13)
	sawLo, sawHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 5 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("Range never hit one of its bounds")
	}
}

func TestLogUniformBounds(t *testing.T) {
	r := NewRNG(14)
	for i := 0; i < 10000; i++ {
		v := r.LogUniform(10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(15)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(100)
	}
	mean := sum / float64(n)
	if mean < 95 || mean > 105 {
		t.Fatalf("exponential sample mean = %v, want ~100", mean)
	}
}

func TestBoolProbabilities(t *testing.T) {
	r := NewRNG(16)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.23 || p > 0.27 {
		t.Fatalf("Bool(0.25) frequency = %v", p)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 3)
	n := 90000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weight ratio = %v, want ~2", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	r := NewRNG(18)
	for _, weights := range [][]float64{nil, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", weights)
				}
			}()
			r.Choice(weights)
		}()
	}
}

func TestMeanAndMedian(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %v", got)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

func TestMeanInt64(t *testing.T) {
	if got := MeanInt64([]int64{2, 4}); got != 3 {
		t.Fatalf("MeanInt64 = %v", got)
	}
	if got := MeanInt64(nil); got != 0 {
		t.Fatalf("MeanInt64(nil) = %v", got)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio(1,0) = %v", got)
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Percent(1, 0); got != 0 {
		t.Fatalf("Percent(1,0) = %v", got)
	}
	if got := Percent(25, 200); got != 12.5 {
		t.Fatalf("Percent = %v", got)
	}
}

func TestRound2(t *testing.T) {
	cases := map[float64]float64{
		1.234:  1.23,
		1.235:  1.24, // round half away handled by math.Round on 123.5
		-2.567: -2.57,
		0:      0,
	}
	for in, want := range cases {
		if got := Round2(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("Round2(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMinMaxInt64(t *testing.T) {
	if MinInt64(2, 3) != 2 || MinInt64(3, 2) != 2 {
		t.Fatal("MinInt64 broken")
	}
	if MaxInt64(2, 3) != 3 || MaxInt64(3, 2) != 3 {
		t.Fatal("MaxInt64 broken")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 3, 4}, {9, 3, 3}, {0, 5, 0}, {-3, 5, 0}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv with zero divisor did not panic")
		}
	}()
	CeilDiv(1, 0)
}

// TestPropertyMeanBounds: the mean of any non-empty slice lies between its
// minimum and maximum.
func TestPropertyMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return Mean(clean) == 0
		}
		m := Mean(clean)
		lo, hi := clean[0], clean[0]
		for _, x := range clean {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLogUniformWithinBounds: draws always stay within [lo, hi] for
// random valid bounds.
func TestPropertyLogUniformWithinBounds(t *testing.T) {
	r := NewRNG(99)
	f := func(a, b uint32) bool {
		lo := float64(a%100000) + 1
		hi := lo + float64(b%100000) + 1
		v := r.LogUniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
