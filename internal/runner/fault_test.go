package runner_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrealloc/internal/core"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
)

// TestNegativeWorkersClamped is the regression test for the pool-sizing
// guard: a negative Workers value must behave exactly like zero (one worker
// per CPU), not reach the pool construction as a literal count.
func TestNegativeWorkersClamped(t *testing.T) {
	for _, w := range []int{-1, -8} {
		out, err := runner.Run(8, runner.Options{Workers: w}, func(i int, _ *core.Simulator) (int, error) {
			return i + 1, nil
		})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("Workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

// TestCancellationDrains pins the cancellation contract: after ctx is
// cancelled mid-campaign, StreamCtx still emits every started task's
// outcome, returns ctx.Canceled, accounts for every task in RunStats, and
// leaves no worker goroutine behind.
func TestCancellationDrains(t *testing.T) {
	const n = 64
	snap := leakcheck.Take()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var started atomic.Int64
	emitted := make(map[int]bool)
	stats, err := runner.StreamCtx(ctx, n, runner.Options{Workers: 4},
		func(ctx context.Context, i int, _ *core.Simulator) (int, error) {
			if started.Add(1) == 4 {
				// All four workers are mid-task: cancel, then let them go.
				// None may be abandoned — each must finish and emit.
				cancel()
				close(release)
			}
			<-release // hold every in-flight task until cancellation landed
			return i, nil
		},
		func(i int, v int, err error) {
			if emitted[i] {
				t.Errorf("task %d emitted twice", i)
			}
			emitted[i] = true
			if err != nil || v != i {
				t.Errorf("task %d: v=%d err=%v", i, v, err)
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if int64(len(emitted)) != stats.Completed {
		t.Fatalf("emitted %d outcomes, stats say %d completed", len(emitted), stats.Completed)
	}
	if got := stats.Completed + stats.Failed + stats.Skipped; got != n {
		t.Fatalf("stats lose tasks: completed %d + failed %d + skipped %d != %d",
			stats.Completed, stats.Failed, stats.Skipped, n)
	}
	if stats.Skipped == 0 {
		t.Fatalf("cancellation mid-campaign skipped nothing: %+v", stats)
	}
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPanicQuarantinesSimulator pins the quarantine rule: the panicking
// task's worker must continue on a fresh simulator, the panicked one never
// executes another task, and the error is a structured *TaskError.
func TestPanicQuarantinesSimulator(t *testing.T) {
	const n, bad = 12, 5
	var mu sync.Mutex
	taskSims := make(map[int]*core.Simulator, n)
	seedOf := func(i int) uint64 { return uint64(100 + i) }
	out, stats, err := runner.RunCtx(context.Background(), n,
		runner.Options{Workers: 1, SeedOf: seedOf},
		func(_ context.Context, i int, sim *core.Simulator) (int, error) {
			mu.Lock()
			taskSims[i] = sim
			mu.Unlock()
			if i == bad {
				panic("kaboom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("campaign with a panicking task returned nil error")
	}
	var te *runner.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err is not a *TaskError: %v", err)
	}
	if te.Index != bad || te.Seed != seedOf(bad) {
		t.Fatalf("TaskError = index %d seed %d, want index %d seed %d", te.Index, te.Seed, bad, seedOf(bad))
	}
	if !errors.Is(te, runner.ErrTaskPanic) {
		t.Fatalf("TaskError does not wrap ErrTaskPanic: %v", te)
	}
	if !strings.Contains(te.Stack, "fault_test.go") {
		t.Fatalf("TaskError stack does not reach the panic site:\n%s", te.Stack)
	}
	if !strings.Contains(te.Error(), fmt.Sprintf("seed %d", seedOf(bad))) {
		t.Fatalf("TaskError message does not carry the seed: %v", te)
	}
	// One worker, so before the panic every task shares one simulator and
	// after it every task shares the replacement — and the two differ.
	if taskSims[bad] != taskSims[0] {
		t.Fatal("panicking task did not run on the original pooled simulator")
	}
	if taskSims[bad+1] == taskSims[bad] {
		t.Fatal("quarantined simulator was reused after the panic")
	}
	if taskSims[n-1] != taskSims[bad+1] {
		t.Fatal("replacement simulator was not pooled for the remaining tasks")
	}
	for i, v := range out {
		if i != bad && v != i {
			t.Fatalf("task %d after the panic: out = %d", i, v)
		}
	}
	want := runner.RunStats{Tasks: n, Completed: n - 1, Failed: 1, RecoveredPanics: 1, DiscardedSims: 1}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

// TestTransientRetriesConverge pins the retry loop: a task failing
// transiently twice converges on its third attempt with two retries
// counted, while exhausted retries surface the transient error as final.
func TestTransientRetriesConverge(t *testing.T) {
	var attempts atomic.Int64
	out, stats, err := runner.RunCtx(context.Background(), 1,
		runner.Options{MaxRetries: 3, RetryBackoff: time.Microsecond},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			if attempts.Add(1) <= 2 {
				return 0, runner.Transient(errors.New("flaky"))
			}
			return 7, nil
		})
	if err != nil {
		t.Fatalf("converging transient failed: %v", err)
	}
	if out[0] != 7 || attempts.Load() != 3 {
		t.Fatalf("out=%v after %d attempts", out, attempts.Load())
	}
	want := runner.RunStats{Tasks: 1, Completed: 1, Retries: 2}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}

	// Exhaustion: MaxRetries attempts are retried, then the error is final.
	attempts.Store(0)
	_, stats, err = runner.RunCtx(context.Background(), 1,
		runner.Options{MaxRetries: 2},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			attempts.Add(1)
			return 0, runner.Transient(errors.New("always flaky"))
		})
	if err == nil || !runner.IsTransient(err) {
		t.Fatalf("exhausted retries: err = %v", err)
	}
	if attempts.Load() != 3 { // initial attempt + 2 retries
		t.Fatalf("%d attempts, want 3", attempts.Load())
	}
	want = runner.RunStats{Tasks: 1, Failed: 1, Retries: 2}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}

	// Non-transient errors must not retry at all.
	attempts.Store(0)
	_, _, err = runner.RunCtx(context.Background(), 1,
		runner.Options{MaxRetries: 5},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			attempts.Add(1)
			return 0, errors.New("deterministic")
		})
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("permanent error: err=%v after %d attempts", err, attempts.Load())
	}
}

// TestTaskTimeout pins the deadline path: a task overrunning TaskTimeout is
// recorded as a timeout and reported as a *TaskError wrapping
// context.DeadlineExceeded, while the campaign continues.
func TestTaskTimeout(t *testing.T) {
	seedOf := func(i int) uint64 { return uint64(i) * 11 }
	out, stats, err := runner.RunCtx(context.Background(), 3,
		runner.Options{Workers: 1, TaskTimeout: 5 * time.Millisecond, SeedOf: seedOf},
		func(ctx context.Context, i int, _ *core.Simulator) (int, error) {
			if i == 1 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return i, nil
		})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var te *runner.TaskError
	if !errors.As(err, &te) || te.Index != 1 || te.Seed != seedOf(1) {
		t.Fatalf("timeout error is not a located TaskError: %v", err)
	}
	if out[0] != 0 || out[2] != 2 {
		t.Fatalf("campaign did not continue past the timeout: %v", out)
	}
	want := runner.RunStats{Tasks: 3, Completed: 2, Failed: 1, Timeouts: 1}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

// TestFirstErrorConcurrent hammers Observe from many goroutines (the -race
// CI job turns any unsynchronised access into a failure) and checks the
// lowest-index error still wins.
func TestFirstErrorConcurrent(t *testing.T) {
	var f runner.FirstError
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := g*200 + i
				if idx%3 == 0 {
					f.Observe(idx, fmt.Errorf("err %d", idx))
				} else {
					f.Observe(idx, nil)
				}
				f.Index()
				f.Err()
			}
		}(g)
	}
	wg.Wait()
	if f.Index() != 0 {
		t.Fatalf("lowest failing index = %d, want 0", f.Index())
	}
	if f.Err() == nil || f.Err().Error() != "err 0" {
		t.Fatalf("winning error = %v", f.Err())
	}
}

// TestStreamCtxSingleWorkerCancel covers the inline (workers == 1) fast
// path: cancellation between tasks stops the loop and skips the rest.
func TestStreamCtxSingleWorkerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int
	stats, err := runner.StreamCtx(ctx, 10, runner.Options{Workers: 1},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			ran++
			if i == 2 {
				cancel()
			}
			return i, nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 || stats.Completed != 3 || stats.Skipped != 7 {
		t.Fatalf("ran %d tasks, stats %+v", ran, stats)
	}
}
