package runner_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"gridrealloc/internal/core"
	"gridrealloc/internal/leakcheck"
	"gridrealloc/internal/runner"
)

// countingSource is a SimSource that tracks every lease event and enforces
// the quarantine rule from the source's side: a Release of a simulator that
// was Discarded earlier, or of one the source never handed out, fails the
// test. failAfter bounds the number of successful Acquires (negative means
// unlimited); later acquires fail with errExhausted.
type countingSource struct {
	t         *testing.T
	mu        sync.Mutex
	acquired  int
	released  int
	discarded int
	failAfter int
	out       map[*core.Simulator]bool // currently leased
	dead      map[*core.Simulator]bool // quarantined forever
}

var errExhausted = errors.New("source exhausted")

func newCountingSource(t *testing.T, failAfter int) *countingSource {
	return &countingSource{
		t:         t,
		failAfter: failAfter,
		out:       make(map[*core.Simulator]bool),
		dead:      make(map[*core.Simulator]bool),
	}
}

func (s *countingSource) Acquire(ctx context.Context) (*core.Simulator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAfter >= 0 && s.acquired >= s.failAfter {
		return nil, errExhausted
	}
	s.acquired++
	sim := core.NewSimulator()
	s.out[sim] = true
	return sim, nil
}

func (s *countingSource) Release(sim *core.Simulator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead[sim] {
		s.t.Error("quarantined simulator released back to the source")
	}
	if !s.out[sim] {
		s.t.Error("released a simulator the source never leased")
	}
	delete(s.out, sim)
	s.released++
}

func (s *countingSource) Discard(sim *core.Simulator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.out[sim] {
		s.t.Error("discarded a simulator the source never leased")
	}
	delete(s.out, sim)
	s.dead[sim] = true
	s.discarded++
}

// TestSimSourceLeaseBalance pins the lease contract on the healthy path:
// every acquired simulator comes back through Release exactly once, nothing
// is discarded, and the pool never acquires more simulators than workers.
func TestSimSourceLeaseBalance(t *testing.T) {
	snap := leakcheck.Take()
	src := newCountingSource(t, -1)
	out, stats, err := runner.RunCtx(context.Background(), 16,
		runner.Options{Workers: 4, Sims: src},
		func(_ context.Context, i int, sim *core.Simulator) (int, error) {
			if sim == nil {
				t.Error("task ran without a simulator")
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if stats.Completed != 16 || stats.DiscardedSims != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.acquired == 0 || src.acquired > 4 {
		t.Fatalf("acquired %d simulators with 4 workers", src.acquired)
	}
	if src.released != src.acquired || src.discarded != 0 || len(src.out) != 0 {
		t.Fatalf("lease imbalance: acquired %d released %d discarded %d outstanding %d",
			src.acquired, src.released, src.discarded, len(src.out))
	}
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSimSourcePanicDiscardsToSource pins the quarantine hand-off: a panic
// routes the worker's simulator through Discard (never Release), the worker
// re-acquires a fresh one and finishes the campaign, and the final release
// balance accounts for every lease.
func TestSimSourcePanicDiscardsToSource(t *testing.T) {
	src := newCountingSource(t, -1)
	out, stats, err := runner.RunCtx(context.Background(), 4,
		runner.Options{Workers: 1, Sims: src},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		})
	if err == nil || !errors.Is(err, runner.ErrTaskPanic) {
		t.Fatalf("err = %v, want ErrTaskPanic", err)
	}
	if out[0] != 0 || out[2] != 2 || out[3] != 3 {
		t.Fatalf("out = %v", out)
	}
	if stats.Completed != 3 || stats.Failed != 1 || stats.DiscardedSims != 1 || stats.RecoveredPanics != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.acquired != 2 || src.discarded != 1 || src.released != 1 || len(src.out) != 0 {
		t.Fatalf("lease imbalance: acquired %d released %d discarded %d outstanding %d",
			src.acquired, src.released, src.discarded, len(src.out))
	}
}

// TestSimSourceAcquireFailureSkips pins the draining-source contract: when
// Acquire fails while the campaign context is live, remaining tasks are
// Skipped (not silently lost) and the acquire error becomes the campaign
// error.
func TestSimSourceAcquireFailureSkips(t *testing.T) {
	// One successful acquire, then the source dries up. Worker 0 runs task 0,
	// the task-1 panic quarantines its simulator, and the re-acquire fails:
	// tasks 2 and 3 must be skipped and the campaign error must surface the
	// source failure.
	src := newCountingSource(t, 1)
	stats, err := runner.StreamCtx(context.Background(), 4,
		runner.Options{Workers: 1, Sims: src},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		}, nil)
	if !errors.Is(err, errExhausted) {
		t.Fatalf("err = %v, want errExhausted", err)
	}
	if stats.Completed != 1 || stats.Failed != 1 || stats.Skipped != 2 {
		t.Fatalf("stats = %+v", stats)
	}

	// The collecting entry point must wrap the same error.
	src = newCountingSource(t, 0)
	_, stats, err = runner.RunCtx(context.Background(), 3,
		runner.Options{Workers: 2, Sims: src},
		func(_ context.Context, i int, _ *core.Simulator) (int, error) { return i, nil })
	if !errors.Is(err, errExhausted) {
		t.Fatalf("RunCtx err = %v, want errExhausted", err)
	}
	if !strings.Contains(err.Error(), "cancelled after 0 of 3") {
		t.Fatalf("RunCtx err = %v, want task accounting in message", err)
	}
	if stats.Skipped != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}
