package runner_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gridrealloc/internal/core"
	"gridrealloc/internal/harness"
	"gridrealloc/internal/runner"
)

// TestRunCollectsInIndexOrder checks that Run returns results indexed like
// the tasks regardless of worker count, and that workers actually reuse one
// simulator across tasks.
func TestRunCollectsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		sims := make(map[*core.Simulator]int)
		out, err := runner.Run(16, runner.Options{Workers: workers}, func(i int, sim *core.Simulator) (int, error) {
			mu.Lock()
			sims[sim]++
			mu.Unlock()
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		if len(sims) > workers {
			t.Fatalf("workers=%d: %d distinct simulators", workers, len(sims))
		}
		total := 0
		for _, n := range sims {
			total += n
		}
		if total != 16 {
			t.Fatalf("workers=%d: %d tasks executed", workers, total)
		}
	}
}

// TestRunReportsLowestIndexError checks the deterministic error convention:
// every task still runs, and the reported failure is the lowest-index one no
// matter how the workers interleave.
func TestRunReportsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	ran := make([]bool, 32)
	var mu sync.Mutex
	out, err := runner.Run(32, runner.Options{Workers: 8}, func(i int, _ *core.Simulator) (int, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 7 || i == 23 {
			return 0, fmt.Errorf("task %d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if want := "runner: task 7: task 7: boom"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("task %d skipped after failure", i)
		}
	}
	if out[8] != 8 {
		t.Fatalf("successful results dropped: out[8] = %d", out[8])
	}
}

// TestStreamEmitsEveryTaskOnce checks the streaming contract: one serialized
// emit per task.
func TestStreamEmitsEveryTaskOnce(t *testing.T) {
	seen := make(map[int]int)
	runner.Stream(20, runner.Options{Workers: 5}, func(i int, _ *core.Simulator) (int, error) {
		return i, nil
	}, func(i int, v int, err error) {
		if err != nil || v != i {
			t.Errorf("task %d: v=%d err=%v", i, v, err)
		}
		seen[i]++ // emit is serialized; no lock needed
	})
	if len(seen) != 20 {
		t.Fatalf("emitted %d of 20 tasks", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("task %d emitted %d times", i, n)
		}
	}
}

// TestParallelPooledDigestsMatchSequentialFresh is the runner's bit-identity
// property over real simulations: a batch of harness scenarios executed on
// parallel workers with pooled simulator reuse produces exactly the digests
// a fresh sequential execution produces. It is short-mode friendly so the
// -race CI job exercises the fan-out and the reuse path together.
func TestParallelPooledDigestsMatchSequentialFresh(t *testing.T) {
	const n = 6
	run := func(i int, sim *core.Simulator) (string, error) {
		spec := harness.Generate(uint64(1000 + i))
		cfg, err := harness.OracleConfig(spec, 1, false)
		if err != nil {
			return "", err
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return "", err
		}
		return harness.Digest(res), nil
	}
	fresh := make([]string, n)
	for i := range fresh {
		d, err := run(i, core.NewSimulator())
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = d
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 2} {
		pooled, err := runner.Run(n, runner.Options{Workers: workers}, run)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range fresh {
			if pooled[i] != fresh[i] {
				t.Fatalf("workers=%d: scenario %d diverged: fresh %s, pooled %s", workers, i, fresh[i], pooled[i])
			}
		}
	}
}
