// Package runner is the campaign execution engine: it runs large scenario
// sets over a bounded worker pool at hardware speed. Each worker owns one
// pooled core.Simulator that is reused across every task the worker picks up,
// so a campaign of thousands of scenarios pays the simulator construction
// cost (schedulers, profiles, heaps, pools, matrices) once per worker instead
// of once per scenario; results stream to the caller as tasks complete.
//
// The runner replaces the bespoke fan-out loops that cmd/experiments,
// cmd/gridsim and cmd/gridfuzz each used to roll: one scheduling discipline
// (an atomic task cursor over a fixed index range), one worker-owns-simulator
// reuse contract, and one deterministic error convention (the lowest-index
// failure wins, independent of worker count or interleaving). Task indexes
// fully determine task content for every caller, so a campaign's outcome is
// bit-identical no matter how many workers execute it — only wall-clock time
// changes.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gridrealloc/internal/core"
)

// Options configures a campaign execution.
type Options struct {
	// Workers bounds the worker pool; 0 or negative means one worker per
	// CPU (GOMAXPROCS). The pool never exceeds the task count.
	Workers int
}

// workers resolves the effective pool size for n tasks.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Stream runs fn(i, sim) for every task index i in [0, n) over the worker
// pool and delivers every outcome to emit as it completes. Each worker owns
// one pooled *core.Simulator, reused across all tasks it executes; fn must
// route its simulation runs through that simulator to benefit (and must not
// let it escape the call). emit is serialised — at most one invocation runs
// at a time — but arrives in completion order, not index order; callers that
// need index order collect into a slice by i (or use Run). A nil emit
// discards outcomes.
//
//gridlint:worker
func Stream[T any](n int, opts Options, fn func(i int, sim *core.Simulator) (T, error), emit func(i int, v T, err error)) {
	if n <= 0 {
		return
	}
	workers := opts.workers(n)
	if workers == 1 {
		// In-line fast path: no goroutine, no lock, same observable order.
		sim := core.NewSimulator()
		for i := 0; i < n; i++ {
			v, err := fn(i, sim)
			if emit != nil {
				emit(i, v, err)
			}
		}
		return
	}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sim := core.NewSimulator()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i, sim)
				if emit != nil {
					mu.Lock()
					emit(i, v, err)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
}

// FirstError folds streamed task outcomes into the runner's deterministic
// error convention: the lowest-index failure wins, independent of worker
// count and completion order. Stream callers that aggregate results
// themselves feed every outcome through Observe and read Err at the end,
// so the convention lives in one place.
type FirstError struct {
	index int
	err   error
	set   bool
}

// Observe records the outcome of task i; non-errors are ignored.
func (f *FirstError) Observe(i int, err error) {
	if err == nil {
		return
	}
	if !f.set || i < f.index {
		f.index, f.err, f.set = i, err, true
	}
}

// Index returns the index of the winning error, or -1 if none occurred.
func (f *FirstError) Index() int {
	if !f.set {
		return -1
	}
	return f.index
}

// Err returns the lowest-index error observed, or nil.
func (f *FirstError) Err() error { return f.err }

// Run is Stream collecting the outcomes into an index-ordered slice. Every
// task executes even after a failure (a campaign reports all results); the
// returned error is the lowest-index task error, which makes the reported
// failure deterministic regardless of worker count and interleaving.
func Run[T any](n int, opts Options, fn func(i int, sim *core.Simulator) (T, error)) ([]T, error) {
	out := make([]T, n)
	var first FirstError
	Stream(n, opts, fn, func(i int, v T, err error) {
		out[i] = v
		first.Observe(i, err)
	})
	if err := first.Err(); err != nil {
		return out, fmt.Errorf("runner: task %d: %w", first.Index(), err)
	}
	return out, nil
}
