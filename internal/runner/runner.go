// Package runner is the campaign execution engine: it runs large scenario
// sets over a bounded worker pool at hardware speed. Each worker owns one
// pooled core.Simulator that is reused across every task the worker picks up,
// so a campaign of thousands of scenarios pays the simulator construction
// cost (schedulers, profiles, heaps, pools, matrices) once per worker instead
// of once per scenario; results stream to the caller as tasks complete.
//
// The runner replaces the bespoke fan-out loops that cmd/experiments,
// cmd/gridsim and cmd/gridfuzz each used to roll: one scheduling discipline
// (an atomic task cursor over a fixed index range), one worker-owns-simulator
// reuse contract, and one deterministic error convention (the lowest-index
// failure wins, independent of worker count or interleaving). Task indexes
// fully determine task content for every caller, so a campaign's outcome is
// bit-identical no matter how many workers execute it — only wall-clock time
// changes.
//
// # Fault model
//
// A campaign is not all-or-nothing. The context-aware entry points
// (RunCtx, StreamCtx) degrade gracefully under four classes of fault:
//
//   - Cancellation: when the context is cancelled, workers finish their
//     in-flight task, stop claiming new indexes and drain; StreamCtx/RunCtx
//     return only after every worker goroutine has exited (no leaks), every
//     completed task has been emitted (partial results, still serialised),
//     and the lowest-index error convention still holds over the tasks that
//     ran. Unclaimed tasks are counted in RunStats.Skipped.
//
//   - Deadlines: Options.TaskTimeout derives a per-task context; a task
//     that fails once its deadline has expired is recorded as a timeout
//     (RunStats.Timeouts) and reported as a *TaskError wrapping
//     context.DeadlineExceeded. The campaign continues with the next task.
//
//   - Transient errors: an error marked with Transient is retried up to
//     Options.MaxRetries times with linear backoff (Options.RetryBackoff)
//     before it counts as the task's outcome; each retry is counted in
//     RunStats.Retries.
//
//   - Panics: a panicking task is recovered into a *TaskError carrying the
//     task index, its scenario seed (Options.SeedOf) and the stack. The
//     worker's pooled simulator is quarantined — a panic may have been
//     thrown mid-mutation, leaving state no Reset contract covers, so the
//     poisoned simulator is discarded and NEVER reused; the worker
//     continues on a fresh one (RunStats.RecoveredPanics,
//     RunStats.DiscardedSims). All other tasks still run.
//
// The recovery paths are provably exercised: internal/faultinject installs
// seeded fault plans through Options.Hook and the harness fault oracle
// asserts that non-faulted tasks produce digests bit-identical to a
// fault-free campaign while the RunStats counters match the plan exactly.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gridrealloc/internal/core"
)

// TaskFunc is the unit of campaign work: run task i on the worker's pooled
// simulator. ctx carries campaign cancellation and, when Options.TaskTimeout
// is set, the per-task deadline; long tasks should observe it where they
// can. The simulator must not escape the call.
type TaskFunc[T any] func(ctx context.Context, i int, sim *core.Simulator) (T, error)

// SimSource supplies pooled simulators to campaign workers. Acquire hands
// out a simulator for the exclusive use of one worker, blocking until one is
// available or ctx is done; Release returns a healthy simulator for reuse by
// later acquirers; Discard quarantines a simulator after a recovered panic —
// the source must never hand that simulator out again (it may replace the
// lost capacity however it likes). A source shared by concurrent campaigns
// must be safe for concurrent use. The zero source (Options.Sims nil) gives
// every worker a private fresh simulator, the standalone-campaign behaviour.
type SimSource interface {
	Acquire(ctx context.Context) (*core.Simulator, error)
	Release(sim *core.Simulator)
	Discard(sim *core.Simulator)
}

// freshSims is the default SimSource: a new private simulator per Acquire,
// dropped to the garbage collector on Release or Discard. It reproduces the
// runner's historical behaviour — one simulator per worker, replaced fresh
// after a panic quarantine.
type freshSims struct{}

func (freshSims) Acquire(ctx context.Context) (*core.Simulator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.NewSimulator(), nil
}

func (freshSims) Release(*core.Simulator) {}
func (freshSims) Discard(*core.Simulator) {}

// Hook intercepts task attempts inside runner workers. It exists for the
// seeded fault-injection harness (internal/faultinject): a hook may return
// an error (the attempt fails without running the task), panic (exercising
// the recover-and-quarantine path), block on ctx (exercising the deadline
// path) or mutate the simulator (exercising the poisoned-simulator
// quarantine). Production campaigns leave Options.Hook nil.
type Hook interface {
	// BeforeAttempt runs before attempt (0-based) of task on the given
	// worker's pooled simulator. A non-nil error becomes the attempt's
	// outcome and the task function is not called.
	BeforeAttempt(ctx context.Context, worker, task, attempt int, sim *core.Simulator) error
}

// Options configures a campaign execution.
type Options struct {
	// Workers bounds the worker pool; zero and negative values both mean
	// one worker per CPU (GOMAXPROCS). The pool never exceeds the task
	// count.
	Workers int
	// TaskTimeout, when positive, bounds each task attempt: the task runs
	// under a context with this deadline and a failure past the deadline is
	// recorded as a timeout. Zero means no per-task deadline.
	TaskTimeout time.Duration
	// MaxRetries is how many times a task attempt that failed with an error
	// marked Transient is retried before the error becomes the task's
	// outcome. Zero disables retries.
	MaxRetries int
	// RetryBackoff is the base delay between retries; attempt k waits
	// k*RetryBackoff (linear backoff), interruptible by cancellation. Zero
	// retries immediately.
	RetryBackoff time.Duration
	// SeedOf, when non-nil, maps a task index to the scenario seed recorded
	// in TaskError for panics and timeouts, so a faulted task is replayable
	// (gridfuzz -replay <seed>) straight from the error.
	SeedOf func(i int) uint64
	// Hook is the fault-injection test hook; nil in production.
	Hook Hook
	// Sims supplies the workers' pooled simulators. Nil means every worker
	// creates a private simulator (and a fresh replacement after a panic
	// quarantine) — the standalone-campaign behaviour. A shared SimSource
	// (the gridd lease manager) bounds and reuses simulators across
	// concurrent campaigns; when Acquire fails while the campaign context is
	// still live, the worker stops claiming tasks (the rest are Skipped) and
	// the acquire error is returned as the campaign error.
	Sims SimSource
}

// sims resolves the effective simulator source.
func (o Options) sims() SimSource {
	if o.Sims != nil {
		return o.Sims
	}
	return freshSims{}
}

// workers resolves the effective pool size for n tasks. Both zero and
// negative Workers values clamp to one worker per CPU — a negative value
// must never reach the pool sizing below, where it would be taken literally.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunStats counts the fault-tolerance events of one campaign execution.
// Tasks == Completed + Failed + Skipped always holds; a fault-free,
// uncancelled campaign has Completed == Tasks and zeros elsewhere.
type RunStats struct {
	// Tasks is the campaign size n.
	Tasks int64
	// Completed counts tasks whose final outcome was success.
	Completed int64
	// Failed counts tasks whose final outcome was an error (including
	// recovered panics and timeouts, after retries were exhausted).
	Failed int64
	// Skipped counts tasks never started, because the campaign was
	// cancelled first or because the simulator source refused to supply a
	// worker (a draining lease manager).
	Skipped int64
	// RecoveredPanics counts task attempts that panicked and were
	// recovered into a *TaskError.
	RecoveredPanics int64
	// Retries counts re-attempts of transiently failed tasks.
	Retries int64
	// Timeouts counts task failures attributed to the per-task deadline.
	Timeouts int64
	// DiscardedSims counts pooled simulators quarantined after a panic and
	// replaced with fresh ones (never returned to any pool).
	DiscardedSims int64
}

// Degraded reports whether the campaign hit any fault-handling path.
func (s RunStats) Degraded() bool {
	return s.Failed != 0 || s.Skipped != 0 || s.RecoveredPanics != 0 ||
		s.Retries != 0 || s.Timeouts != 0 || s.DiscardedSims != 0
}

// liveStats is the workers' shared, atomically updated view of RunStats.
type liveStats struct {
	completed, failed, recoveredPanics, retries, timeouts, discardedSims atomic.Int64
}

func (ls *liveStats) snapshot(n, executed int64) RunStats {
	return RunStats{
		Tasks:           n,
		Completed:       ls.completed.Load(),
		Failed:          ls.failed.Load(),
		Skipped:         n - executed,
		RecoveredPanics: ls.recoveredPanics.Load(),
		Retries:         ls.retries.Load(),
		Timeouts:        ls.timeouts.Load(),
		DiscardedSims:   ls.discardedSims.Load(),
	}
}

// ErrTaskPanic marks task errors that were recovered from a panic; test for
// it with errors.Is.
var ErrTaskPanic = errors.New("task panicked")

// TaskError is the structured per-task failure the fault paths produce: a
// recovered panic or a deadline timeout. Index is the task's campaign
// index, Seed its scenario seed when Options.SeedOf was provided (0
// otherwise), Stack the recovered goroutine stack (panics only), and Cause
// the underlying error — ErrTaskPanic-wrapped for panics,
// context.DeadlineExceeded-wrapped for timeouts.
type TaskError struct {
	Index int
	Seed  uint64
	Stack string
	Cause error
}

func (e *TaskError) Error() string {
	if e.Seed != 0 {
		return fmt.Sprintf("task %d (seed %d): %v", e.Index, e.Seed, e.Cause)
	}
	return fmt.Sprintf("task %d: %v", e.Index, e.Cause)
}

func (e *TaskError) Unwrap() error { return e.Cause }

// transientError marks an error as retryable; see Transient.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient marks err as retryable: a task attempt failing with a
// Transient-marked error is re-attempted up to Options.MaxRetries times.
// Use it for faults that a retry can plausibly clear (a contended external
// resource, an injected transient fault); deterministic failures should
// stay permanent. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable anywhere along its
// Unwrap chain.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// taskRunner is one worker's execution state: its leased simulator (nil
// until the first acquire, and again after a panic quarantine) and the
// shared campaign configuration. It is not shared between goroutines.
type taskRunner[T any] struct {
	id    int
	sim   *core.Simulator
	src   SimSource
	opts  *Options
	fn    TaskFunc[T]
	stats *liveStats
}

// release hands the worker's simulator (if it still holds one) back to the
// source at worker exit.
func (w *taskRunner[T]) release() {
	if w.sim != nil {
		w.src.Release(w.sim)
		w.sim = nil
	}
}

// acquire lazily leases the worker's simulator before a task is claimed. A
// worker entering a task always holds a simulator: the only path that drops
// it mid-task is the panic quarantine, and a recovered panic is never
// retried, so the re-acquire always happens here, between tasks.
func (w *taskRunner[T]) acquire(ctx context.Context) error {
	if w.sim != nil {
		return nil
	}
	sim, err := w.src.Acquire(ctx)
	if err != nil {
		return err
	}
	w.sim = sim
	return nil
}

func (w *taskRunner[T]) seedOf(i int) uint64 {
	if w.opts.SeedOf != nil {
		return w.opts.SeedOf(i)
	}
	return 0
}

// runTask executes task i to its final outcome: the first successful
// attempt, or the first non-retryable (or retry-exhausted) error.
func (w *taskRunner[T]) runTask(ctx context.Context, i int) (T, error) {
	for attempt := 0; ; attempt++ {
		v, err := w.attempt(ctx, i, attempt)
		if err == nil {
			w.stats.completed.Add(1)
			return v, nil
		}
		if !IsTransient(err) || attempt >= w.opts.MaxRetries || ctx.Err() != nil || !w.backoff(ctx, attempt) {
			w.stats.failed.Add(1)
			return v, err
		}
		w.stats.retries.Add(1)
	}
}

// backoff sleeps the linear retry delay for the given attempt, returning
// false if the campaign was cancelled while waiting.
func (w *taskRunner[T]) backoff(ctx context.Context, attempt int) bool {
	d := w.opts.RetryBackoff
	if d <= 0 {
		return true
	}
	t := time.NewTimer(time.Duration(attempt+1) * d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attempt runs one attempt of task i under the per-task deadline, recovering
// panics into *TaskError and quarantining the worker's simulator when one
// fires: a panic may have interrupted a mutation halfway, leaving state the
// Reset contract cannot see, so the poisoned simulator never executes
// another task — it is discarded to the source (which must never re-lease
// it) and the worker re-acquires before its next task.
func (w *taskRunner[T]) attempt(ctx context.Context, i, attempt int) (v T, err error) {
	tctx, cancel := ctx, func() {}
	if w.opts.TaskTimeout > 0 {
		tctx, cancel = context.WithTimeout(ctx, w.opts.TaskTimeout)
	}
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			w.stats.recoveredPanics.Add(1)
			w.stats.discardedSims.Add(1)
			if w.sim != nil {
				w.src.Discard(w.sim)
				w.sim = nil
			}
			var zero T
			v = zero
			err = &TaskError{
				Index: i,
				Seed:  w.seedOf(i),
				Stack: string(debug.Stack()),
				Cause: fmt.Errorf("%w: %v", ErrTaskPanic, r),
			}
		}
	}()
	if h := w.opts.Hook; h != nil {
		err = h.BeforeAttempt(tctx, w.id, i, attempt, w.sim)
	}
	if err == nil {
		v, err = w.fn(tctx, i, w.sim)
	}
	// A failure with the task deadline expired (and the campaign context
	// still live) is the deadline's fault, whatever error the task chose to
	// surface it as.
	if err != nil && tctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		w.stats.timeouts.Add(1)
		var zero T
		v = zero
		err = &TaskError{
			Index: i,
			Seed:  w.seedOf(i),
			Cause: fmt.Errorf("%w (task timeout %v)", context.DeadlineExceeded, w.opts.TaskTimeout),
		}
	}
	return v, err
}

// StreamCtx runs fn(ctx, i, sim) for every task index i in [0, n) over the
// worker pool and delivers every outcome to emit as it completes. Each
// worker owns one pooled *core.Simulator, reused across all tasks it
// executes; fn must route its simulation runs through that simulator to
// benefit (and must not let it escape the call). emit is serialised — at
// most one invocation runs at a time — but arrives in completion order, not
// index order; callers that need index order collect into a slice by i (or
// use RunCtx). A nil emit discards outcomes.
//
// Cancellation stops workers from claiming new tasks; in-flight tasks
// finish (observing ctx where they can) and their outcomes are still
// emitted. StreamCtx returns only once every worker has exited, with the
// campaign's RunStats and ctx.Err() (nil when the campaign ran to
// completion).
//
//gridlint:worker
func StreamCtx[T any](ctx context.Context, n int, opts Options, fn TaskFunc[T], emit func(i int, v T, err error)) (RunStats, error) {
	if n <= 0 {
		return RunStats{}, ctx.Err()
	}
	stats := &liveStats{}
	src := opts.sims()
	var executed atomic.Int64
	// The first simulator-acquire failure observed while the campaign
	// context was still live; it becomes the campaign error so a draining
	// lease manager is reported instead of silently skipping the tail.
	var srcMu sync.Mutex
	var srcErr error
	recordSrcErr := func(err error) {
		srcMu.Lock()
		if srcErr == nil {
			srcErr = err
		}
		srcMu.Unlock()
	}
	finish := func() (RunStats, error) {
		err := ctx.Err()
		if err == nil {
			srcMu.Lock()
			err = srcErr
			srcMu.Unlock()
		}
		return stats.snapshot(int64(n), executed.Load()), err
	}
	workers := opts.workers(n)
	if workers == 1 {
		// In-line fast path: no goroutine, no lock, same observable order.
		w := &taskRunner[T]{id: 0, src: src, opts: &opts, fn: fn, stats: stats}
		defer w.release()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if err := w.acquire(ctx); err != nil {
				recordSrcErr(err)
				break
			}
			executed.Add(1)
			v, err := w.runTask(ctx, i)
			if emit != nil {
				emit(i, v, err)
			}
		}
		return finish()
	}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(id int) {
			defer wg.Done()
			w := &taskRunner[T]{id: id, src: src, opts: &opts, fn: fn, stats: stats}
			defer w.release()
			for {
				if ctx.Err() != nil {
					return
				}
				if err := w.acquire(ctx); err != nil {
					recordSrcErr(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				executed.Add(1)
				v, err := w.runTask(ctx, i)
				if emit != nil {
					mu.Lock()
					emit(i, v, err)
					mu.Unlock()
				}
			}
		}(wi)
	}
	wg.Wait()
	return finish()
}

// Stream is StreamCtx without cancellation: a background context and a task
// function that does not observe one. It preserves the pre-context
// signature; campaigns that want deadlines, retries or cancellation use
// StreamCtx.
//
//gridlint:worker
func Stream[T any](n int, opts Options, fn func(i int, sim *core.Simulator) (T, error), emit func(i int, v T, err error)) {
	StreamCtx(context.Background(), n, opts, dropCtx(fn), emit)
}

// dropCtx adapts a context-free task function to TaskFunc.
func dropCtx[T any](fn func(i int, sim *core.Simulator) (T, error)) TaskFunc[T] {
	return func(_ context.Context, i int, sim *core.Simulator) (T, error) {
		return fn(i, sim)
	}
}

// FirstError folds streamed task outcomes into the runner's deterministic
// error convention: the lowest-index failure wins, independent of worker
// count and completion order. Stream callers that aggregate results
// themselves feed every outcome through Observe and read Err at the end,
// so the convention lives in one place. FirstError is safe for concurrent
// use: Observe may be called from multiple goroutines (signal handlers,
// unserialised collectors), not only from a serialised emit.
type FirstError struct {
	mu    sync.Mutex
	index int
	err   error
	set   bool
}

// Observe records the outcome of task i; non-errors are ignored.
func (f *FirstError) Observe(i int, err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if !f.set || i < f.index {
		f.index, f.err, f.set = i, err, true
	}
	f.mu.Unlock()
}

// Index returns the index of the winning error, or -1 if none occurred.
func (f *FirstError) Index() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.set {
		return -1
	}
	return f.index
}

// Err returns the lowest-index error observed, or nil.
func (f *FirstError) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// RunCtx is StreamCtx collecting the outcomes into an index-ordered slice.
// Every task executes even after a failure (a campaign reports all
// results); the returned error is the lowest-index task error, which makes
// the reported failure deterministic regardless of worker count and
// interleaving. When the campaign is cancelled before a task error occurs,
// the error wraps ctx's error instead; either way the slice holds every
// completed task's result (zero values at failed or skipped indexes) and
// the RunStats say which counts apply.
func RunCtx[T any](ctx context.Context, n int, opts Options, fn TaskFunc[T]) ([]T, RunStats, error) {
	out := make([]T, n)
	var first FirstError
	stats, cerr := StreamCtx(ctx, n, opts, fn, func(i int, v T, err error) {
		out[i] = v
		first.Observe(i, err)
	})
	if err := first.Err(); err != nil {
		return out, stats, fmt.Errorf("runner: task %d: %w", first.Index(), err)
	}
	if cerr != nil {
		return out, stats, fmt.Errorf("runner: campaign cancelled after %d of %d tasks: %w",
			stats.Completed+stats.Failed, n, cerr)
	}
	return out, stats, nil
}

// Run is RunCtx without cancellation, preserving the pre-context signature.
func Run[T any](n int, opts Options, fn func(i int, sim *core.Simulator) (T, error)) ([]T, error) {
	out, _, err := RunCtx(context.Background(), n, opts, dropCtx(fn))
	return out, err
}
