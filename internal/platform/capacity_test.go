package platform

import "testing"

func TestCapacityEventValidation(t *testing.T) {
	spec := ClusterSpec{Name: "c", Cores: 16, Speed: 1}
	valid := func(events ...CapacityEvent) error {
		s := spec
		s.Capacity = events
		return s.Validate()
	}
	if err := valid(CapacityEvent{Start: 10, End: 20, Cores: 8}); err != nil {
		t.Fatalf("valid window rejected: %v", err)
	}
	cases := map[string][]CapacityEvent{
		"negative start":  {{Start: -1, End: 20, Cores: 8}},
		"empty window":    {{Start: 10, End: 10, Cores: 8}},
		"negative cores":  {{Start: 10, End: 20, Cores: -1}},
		"no-op window":    {{Start: 10, End: 20, Cores: 16}},
		"overlap":         {{Start: 10, End: 20, Cores: 8}, {Start: 15, End: 30, Cores: 4}},
		"out of order":    {{Start: 50, End: 60, Cores: 8}, {Start: 10, End: 20, Cores: 4}},
		"touching is ok?": nil, // placeholder replaced below
	}
	delete(cases, "touching is ok?")
	for name, events := range cases {
		if err := valid(events...); err == nil {
			t.Errorf("%s accepted: %+v", name, events)
		}
	}
	// Back-to-back windows are legal: End is exclusive.
	if err := valid(CapacityEvent{Start: 10, End: 20, Cores: 8}, CapacityEvent{Start: 20, End: 30, Cores: 4}); err != nil {
		t.Fatalf("touching windows rejected: %v", err)
	}
}

func TestCapacityAt(t *testing.T) {
	spec := ClusterSpec{Name: "c", Cores: 16, Speed: 1, Capacity: []CapacityEvent{
		{Start: 10, End: 20, Cores: 4, Kind: Maintenance},
		{Start: 30, End: 40, Cores: 0, Kind: Outage},
	}}
	for _, tc := range []struct {
		t    int64
		want int
	}{{0, 16}, {10, 4}, {19, 4}, {20, 16}, {30, 0}, {39, 0}, {40, 16}} {
		if got := spec.CapacityAt(tc.t); got != tc.want {
			t.Errorf("CapacityAt(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestApplyCapacityRequest(t *testing.T) {
	plat := Grid5000(Homogeneous)
	// Nothing requested, no variant: untouched.
	same, err := ApplyCapacityRequest(plat, "jan", 0, CapacityRequest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range same.Clusters {
		if len(c.Capacity) != 0 {
			t.Fatalf("static request attached a window to %q", c.Name)
		}
	}
	// Variant default, with start and severity overrides honored.
	mod, err := ApplyCapacityRequest(plat, "jan-outage", 240000, CapacityRequest{Start: 90000, Severity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := mod.Cluster("bordeaux")
	if len(spec.Capacity) != 1 {
		t.Fatalf("capacity = %+v", spec.Capacity)
	}
	ev := spec.Capacity[0]
	if ev.Start != 90000 {
		t.Fatalf("start override ignored: %d", ev.Start)
	}
	if want := int64(240000 / 8); ev.End-ev.Start != want {
		t.Fatalf("window length %d, want the default %d", ev.End-ev.Start, want)
	}
	if ev.Cores != 320 || ev.Kind != Outage {
		t.Fatalf("event = %+v, want 320 cores, outage", ev)
	}
	// Announced override flips the kind on the variant default.
	mod, err = ApplyCapacityRequest(plat, "jan-outage", 240000, CapacityRequest{Announced: true})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ = mod.Cluster("bordeaux")
	if spec.Capacity[0].Kind != Maintenance {
		t.Fatalf("announced override ignored: %+v", spec.Capacity[0])
	}
	// Explicit window on a named cluster.
	mod, err = ApplyCapacityRequest(plat, "jan", 0, CapacityRequest{Cluster: "lyon", Start: 100, Duration: 50, Severity: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ = mod.Cluster("lyon")
	if len(spec.Capacity) != 1 || spec.Capacity[0].End != 150 || spec.Capacity[0].Cores != 0 {
		t.Fatalf("explicit window = %+v", spec.Capacity)
	}
	// Unknown cluster errors.
	if _, err := ApplyCapacityRequest(plat, "jan", 0, CapacityRequest{Cluster: "atlantis", Duration: 50}); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	// Knobs that would place no window must error, not silently run static.
	if _, err := ApplyCapacityRequest(plat, "jan", 0, CapacityRequest{Severity: 0.5}); err == nil {
		t.Fatal("severity without a window or variant accepted")
	}
	if _, err := ApplyCapacityRequest(plat, "jan", 0, CapacityRequest{Start: 3600}); err == nil {
		t.Fatal("start without a window or variant accepted")
	}
}

func TestWithClusterCapacityCopies(t *testing.T) {
	orig := Grid5000(Homogeneous)
	events := []CapacityEvent{{Start: 10, End: 20, Cores: 0, Kind: Outage}}
	mod, err := WithClusterCapacity(orig, "lyon", events)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Clusters[1].Capacity) != 0 {
		t.Fatal("WithClusterCapacity mutated its input")
	}
	spec, _ := mod.Cluster("lyon")
	if len(spec.Capacity) != 1 || spec.Capacity[0].End != 20 {
		t.Fatalf("capacity not attached: %+v", spec)
	}
	if _, err := WithClusterCapacity(orig, "nowhere", events); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	// Invalid windows are rejected through the cluster validation.
	if _, err := WithClusterCapacity(orig, "lyon", []CapacityEvent{{Start: 5, End: 2, Cores: 0}}); err == nil {
		t.Fatal("invalid window accepted")
	}
}

func TestCapacityVariant(t *testing.T) {
	if k, ok := CapacityVariant("jan-maint"); !ok || k != Maintenance {
		t.Fatalf("jan-maint = %v/%v", k, ok)
	}
	if k, ok := CapacityVariant("apr-outage"); !ok || k != Outage {
		t.Fatalf("apr-outage = %v/%v", k, ok)
	}
	if _, ok := CapacityVariant("jan"); ok {
		t.Fatal("plain scenario reported as variant")
	}
}

func TestReducedCores(t *testing.T) {
	for _, tc := range []struct {
		nominal  int
		severity float64
		want     int
	}{
		{640, 1.0, 0},
		{640, 0.5, 320},
		{640, 0, 0},        // non-positive defaults to full outage
		{640, 2.5, 0},      // out of range defaults to full outage
		{640, 0.0001, 639}, // always a real reduction
	} {
		if got := ReducedCores(tc.nominal, tc.severity); got != tc.want {
			t.Errorf("ReducedCores(%d, %g) = %d, want %d", tc.nominal, tc.severity, got, tc.want)
		}
	}
}

func TestDefaultCapacitySchedule(t *testing.T) {
	spec := ClusterSpec{Name: "c", Cores: 640, Speed: 1}
	span := int64(240000)
	maint := DefaultCapacitySchedule(Maintenance, spec, span)
	if len(maint) != 1 || maint[0].Kind != Maintenance || maint[0].Cores != 320 {
		t.Fatalf("maintenance schedule = %+v", maint)
	}
	outage := DefaultCapacitySchedule(Outage, spec, span)
	if len(outage) != 1 || outage[0].Kind != Outage || outage[0].Cores != 0 {
		t.Fatalf("outage schedule = %+v", outage)
	}
	if maint[0].Start != span/4 || outage[0].Start != span/4 {
		t.Fatalf("windows start at %d/%d, want %d", maint[0].Start, outage[0].Start, span/4)
	}
	if spec2 := (ClusterSpec{Name: "c", Cores: 640, Speed: 1, Capacity: maint}); spec2.Validate() != nil {
		t.Fatalf("default maintenance schedule fails validation: %v", spec2.Validate())
	}
	// Degenerate spans still produce a valid, non-empty window.
	tiny := DefaultCapacitySchedule(Outage, spec, 0)
	if len(tiny) != 1 || tiny[0].End <= tiny[0].Start {
		t.Fatalf("tiny-span schedule = %+v", tiny)
	}
}

func TestCapacityEventKindString(t *testing.T) {
	if got := Maintenance.String(); got != "maintenance" {
		t.Fatalf("Maintenance.String() = %q", got)
	}
	if got := Outage.String(); got != "outage" {
		t.Fatalf("Outage.String() = %q", got)
	}
}
