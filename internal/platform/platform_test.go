package platform

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestClusterSpecValidate(t *testing.T) {
	ok := ClusterSpec{Name: "c", Cores: 8, Speed: 1.0}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []ClusterSpec{
		{Name: "", Cores: 8, Speed: 1},
		{Name: "c", Cores: 0, Speed: 1},
		{Name: "c", Cores: -2, Speed: 1},
		{Name: "c", Cores: 8, Speed: 0},
		{Name: "c", Cores: 8, Speed: -1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
}

func TestScaleDuration(t *testing.T) {
	ref := ClusterSpec{Name: "ref", Cores: 1, Speed: 1.0}
	fast := ClusterSpec{Name: "fast", Cores: 1, Speed: 1.4}
	cases := []struct {
		spec ClusterSpec
		in   int64
		want int64
	}{
		{ref, 100, 100},
		{ref, 0, 0},
		{ref, -5, 0},
		{fast, 140, 100},
		{fast, 141, 101}, // ceil
		{fast, 1, 1},     // never below one second
	}
	for _, c := range cases {
		if got := c.spec.ScaleDuration(c.in); got != c.want {
			t.Errorf("%s.ScaleDuration(%d) = %d, want %d", c.spec.Name, c.in, got, c.want)
		}
	}
}

// TestScaleDurationNeverUndershoots: the scaled duration times the speed
// always covers the reference duration (ceil semantics), so a faster cluster
// never silently truncates work.
func TestScaleDurationNeverUndershoots(t *testing.T) {
	f := func(d uint32, speedRaw uint8) bool {
		speed := 0.5 + float64(speedRaw%40)/10 // 0.5 .. 4.4
		spec := ClusterSpec{Name: "p", Cores: 1, Speed: speed}
		in := int64(d % 1000000)
		out := spec.ScaleDuration(in)
		if in <= 0 {
			return out == 0
		}
		return float64(out)*speed >= float64(in) && out >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformValidate(t *testing.T) {
	ok := Platform{Name: "p", Clusters: []ClusterSpec{{Name: "a", Cores: 4, Speed: 1}, {Name: "b", Cores: 2, Speed: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid platform rejected: %v", err)
	}
	empty := Platform{Name: "p"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	dup := Platform{Name: "p", Clusters: []ClusterSpec{{Name: "a", Cores: 4, Speed: 1}, {Name: "a", Cores: 2, Speed: 1}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate cluster names accepted")
	}
	badCluster := Platform{Name: "p", Clusters: []ClusterSpec{{Name: "a", Cores: 0, Speed: 1}}}
	if err := badCluster.Validate(); err == nil {
		t.Fatal("invalid cluster accepted")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := Platform{Name: "p", Clusters: []ClusterSpec{
		{Name: "a", Cores: 100, Speed: 1},
		{Name: "b", Cores: 50, Speed: 1.2},
	}}
	if p.TotalCores() != 150 {
		t.Fatalf("TotalCores = %d", p.TotalCores())
	}
	if p.MaxCores() != 100 {
		t.Fatalf("MaxCores = %d", p.MaxCores())
	}
	if c, ok := p.Cluster("b"); !ok || c.Cores != 50 {
		t.Fatalf("Cluster(b) = %+v, %v", c, ok)
	}
	if _, ok := p.Cluster("missing"); ok {
		t.Fatal("Cluster(missing) found")
	}
	if p.Homogeneous() {
		t.Fatal("mixed-speed platform reported homogeneous")
	}
	if !strings.Contains(p.String(), "a:100x1.0") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestGrid5000Variants(t *testing.T) {
	homo := Grid5000(Homogeneous)
	if err := homo.Validate(); err != nil {
		t.Fatal(err)
	}
	if !homo.Homogeneous() {
		t.Fatal("homogeneous Grid5000 is not homogeneous")
	}
	if homo.TotalCores() != 640+270+434 {
		t.Fatalf("Grid5000 total cores = %d", homo.TotalCores())
	}
	hetero := Grid5000(Heterogeneous)
	if hetero.Homogeneous() {
		t.Fatal("heterogeneous Grid5000 is homogeneous")
	}
	lyon, _ := hetero.Cluster("lyon")
	toulouse, _ := hetero.Cluster("toulouse")
	bordeaux, _ := hetero.Cluster("bordeaux")
	if bordeaux.Speed != 1.0 || lyon.Speed != 1.2 || toulouse.Speed != 1.4 {
		t.Fatalf("speeds = %v/%v/%v, want 1.0/1.2/1.4", bordeaux.Speed, lyon.Speed, toulouse.Speed)
	}
	if bordeaux.Cores != 640 || lyon.Cores != 270 || toulouse.Cores != 434 {
		t.Fatal("Grid5000 core counts do not match the paper")
	}
}

func TestPWAG5KVariants(t *testing.T) {
	hetero := PWAG5K(Heterogeneous)
	ctc, _ := hetero.Cluster("ctc")
	sdsc, _ := hetero.Cluster("sdsc")
	bordeaux, _ := hetero.Cluster("bordeaux")
	if bordeaux.Cores != 640 || ctc.Cores != 430 || sdsc.Cores != 128 {
		t.Fatal("PWA platform core counts do not match the paper")
	}
	if ctc.Speed != 1.2 || sdsc.Speed != 1.4 {
		t.Fatal("PWA platform speeds do not match the paper")
	}
	homo := PWAG5K(Homogeneous)
	if !homo.Homogeneous() {
		t.Fatal("homogeneous PWA platform is not homogeneous")
	}
}

func TestForScenario(t *testing.T) {
	if p := ForScenario("pwa-g5k", Heterogeneous); p.Name != "pwa-g5k-heterogeneous" {
		t.Fatalf("pwa scenario mapped to %q", p.Name)
	}
	if p := ForScenario("apr", Homogeneous); p.Name != "grid5000-homogeneous" {
		t.Fatalf("monthly scenario mapped to %q", p.Name)
	}
}

func TestHeterogeneityString(t *testing.T) {
	if Homogeneous.String() != "homogeneous" || Heterogeneous.String() != "heterogeneous" {
		t.Fatal("Heterogeneity.String broken")
	}
}

func TestParseHeterogeneity(t *testing.T) {
	if h, err := ParseHeterogeneity(""); err != nil || h != Homogeneous {
		t.Fatalf("empty string: %v, %v", h, err)
	}
	if h, err := ParseHeterogeneity("homogeneous"); err != nil || h != Homogeneous {
		t.Fatalf("homogeneous: %v, %v", h, err)
	}
	if h, err := ParseHeterogeneity("heterogeneous"); err != nil || h != Heterogeneous {
		t.Fatalf("heterogeneous: %v, %v", h, err)
	}
	for _, s := range []string{"hetero", "HOMOGENEOUS", "both", " homogeneous"} {
		if _, err := ParseHeterogeneity(s); err == nil {
			t.Fatalf("%q accepted", s)
		}
	}
}
