// Package platform describes the multi-cluster grid platforms the
// simulations run on: a cluster is a set of identical cores with a relative
// speed, and a platform is a named set of clusters. The four platform
// variants of the paper (two platforms, each homogeneous and heterogeneous)
// are provided as constructors.
package platform

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// CapacityEventKind distinguishes how a capacity window is discovered by the
// local batch system.
type CapacityEventKind int

const (
	// Maintenance windows are announced: the batch scheduler knows about
	// them in advance and plans job reservations around them, so no running
	// job is ever caught inside one.
	Maintenance CapacityEventKind = iota
	// Outage windows are unannounced: the batch scheduler discovers them
	// only when they strike, at which point running jobs that no longer fit
	// are killed or requeued according to the scheduler's outage policy.
	Outage
)

// String returns "maintenance" or "outage".
func (k CapacityEventKind) String() string {
	if k == Outage {
		return "outage"
	}
	return "maintenance"
}

// CapacityEvent is one bounded window of reduced capacity in a cluster's
// capacity timeline: during [Start, End) only Cores processors are usable
// (0 models a full outage); outside every window the cluster runs at its
// nominal size. Windows must not overlap.
type CapacityEvent struct {
	// Start is the instant the capacity reduction takes effect.
	Start int64
	// End is the instant full capacity is restored (exclusive).
	End int64
	// Cores is the number of processors usable during the window.
	Cores int
	// Kind selects announced (Maintenance) or unannounced (Outage)
	// semantics.
	Kind CapacityEventKind
}

// Validate checks one capacity window against the nominal cluster size.
func (e CapacityEvent) Validate(nominalCores int) error {
	switch {
	case e.Start < 0:
		return fmt.Errorf("platform: capacity window starting at negative time %d", e.Start)
	case e.End <= e.Start:
		return fmt.Errorf("platform: empty capacity window [%d,%d)", e.Start, e.End)
	case e.Cores < 0 || e.Cores >= nominalCores:
		return fmt.Errorf("platform: capacity window [%d,%d) with %d cores on a %d-core cluster",
			e.Start, e.End, e.Cores, nominalCores)
	}
	return nil
}

// ClusterSpec describes one cluster of the grid.
type ClusterSpec struct {
	// Name identifies the cluster; it must be unique within a platform.
	Name string
	// Cores is the nominal number of processors of the cluster.
	Cores int
	// Speed is the processing speed relative to the reference cluster
	// (Bordeaux in the paper). A job with reference runtime r runs in
	// ceil(r/Speed) seconds on this cluster. Speed 1.0 on every cluster
	// yields the homogeneous case.
	Speed float64
	// Capacity is the cluster's capacity timeline: zero or more bounded,
	// non-overlapping windows of reduced capacity, sorted by start time. An
	// empty timeline models the static platforms of the paper.
	Capacity []CapacityEvent
}

// Validate checks the cluster description.
func (c ClusterSpec) Validate() error {
	switch {
	case c.Name == "":
		return errors.New("platform: cluster without a name")
	case c.Cores <= 0:
		return fmt.Errorf("platform: cluster %q has %d cores", c.Name, c.Cores)
	case c.Speed <= 0:
		return fmt.Errorf("platform: cluster %q has non-positive speed %g", c.Name, c.Speed)
	}
	for i, e := range c.Capacity {
		if err := e.Validate(c.Cores); err != nil {
			return fmt.Errorf("%w on cluster %q", err, c.Name)
		}
		if i > 0 && e.Start < c.Capacity[i-1].End {
			return fmt.Errorf("platform: cluster %q capacity windows [%d,%d) and [%d,%d) overlap or are out of order",
				c.Name, c.Capacity[i-1].Start, c.Capacity[i-1].End, e.Start, e.End)
		}
	}
	return nil
}

// CapacityAt returns the number of usable cores at time t according to the
// configured timeline. It describes the schedule as configured; whether the
// batch scheduler already knows about a window (outages are revealed only
// when they strike) is the scheduler's business, not the spec's.
func (c ClusterSpec) CapacityAt(t int64) int {
	for _, e := range c.Capacity {
		if t >= e.Start && t < e.End {
			return e.Cores
		}
	}
	return c.Cores
}

// ScaleDuration converts a duration expressed on the reference cluster into
// the duration on this cluster (ceil(d/Speed), never below 1 second for a
// positive input). This implements the paper's automatic adjustment of the
// walltime to the speed of the cluster.
func (c ClusterSpec) ScaleDuration(d int64) int64 {
	if d <= 0 {
		return 0
	}
	if c.Speed == 1 {
		// The reference speed needs no floating-point rescale; this is the
		// common case (every homogeneous cluster, and the reference cluster
		// of heterogeneous platforms) on a path hit once per estimate query.
		return d
	}
	scaled := int64(float64(d) / c.Speed)
	if float64(scaled)*c.Speed < float64(d) {
		scaled++
	}
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// Platform is a named set of clusters forming the grid.
type Platform struct {
	Name     string
	Clusters []ClusterSpec
}

// Validate checks the platform: at least one cluster, all clusters valid,
// names unique.
func (p Platform) Validate() error {
	if len(p.Clusters) == 0 {
		return fmt.Errorf("platform %q: no clusters", p.Name)
	}
	seen := make(map[string]struct{}, len(p.Clusters))
	for _, c := range p.Clusters {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("platform %q: %w", p.Name, err)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("platform %q: duplicate cluster name %q", p.Name, c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	return nil
}

// TotalCores returns the number of cores across all clusters.
func (p Platform) TotalCores() int {
	total := 0
	for _, c := range p.Clusters {
		total += c.Cores
	}
	return total
}

// MaxCores returns the size of the largest cluster. Jobs wider than this can
// never run anywhere on the platform.
func (p Platform) MaxCores() int {
	maxC := 0
	for _, c := range p.Clusters {
		if c.Cores > maxC {
			maxC = c.Cores
		}
	}
	return maxC
}

// Cluster returns the spec of the named cluster and whether it exists.
func (p Platform) Cluster(name string) (ClusterSpec, bool) {
	for _, c := range p.Clusters {
		if c.Name == name {
			return c, true
		}
	}
	return ClusterSpec{}, false
}

// Homogeneous reports whether every cluster has the same speed.
func (p Platform) Homogeneous() bool {
	if len(p.Clusters) == 0 {
		return true
	}
	first := p.Clusters[0].Speed
	for _, c := range p.Clusters[1:] {
		if c.Speed != first {
			return false
		}
	}
	return true
}

// String renders a compact description such as
// "grid5000[bordeaux:640x1.0 lyon:270x1.2 toulouse:434x1.4]".
func (p Platform) String() string {
	parts := make([]string, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		parts = append(parts, fmt.Sprintf("%s:%dx%.1f", c.Name, c.Cores, c.Speed))
	}
	return fmt.Sprintf("%s[%s]", p.Name, strings.Join(parts, " "))
}

// Heterogeneity identifies the homogeneous or heterogeneous variant of a
// platform.
type Heterogeneity int

// The two platform variants of every scenario.
const (
	Homogeneous Heterogeneity = iota
	Heterogeneous
)

// String returns "homogeneous" or "heterogeneous".
func (h Heterogeneity) String() string {
	if h == Heterogeneous {
		return "heterogeneous"
	}
	return "homogeneous"
}

// ParseHeterogeneity resolves a platform variant from its string form. The
// empty string defaults to homogeneous (the paper's base case); anything
// else that is not one of the two variant names is an error — a typo such
// as "hetero" must not silently simulate the wrong platform.
func ParseHeterogeneity(s string) (Heterogeneity, error) {
	switch s {
	case "", "homogeneous":
		return Homogeneous, nil
	case "heterogeneous":
		return Heterogeneous, nil
	default:
		return Homogeneous, fmt.Errorf("platform: unknown heterogeneity %q (want \"homogeneous\" or \"heterogeneous\")", s)
	}
}

// Grid5000 returns the first platform of the paper: the Bordeaux (640
// cores), Lyon (270 cores) and Toulouse (434 cores) clusters of Grid'5000.
// In the heterogeneous variant Lyon is 20% and Toulouse 40% faster than
// Bordeaux; in the homogeneous variant all speeds are 1.0.
func Grid5000(h Heterogeneity) Platform {
	lyonSpeed, toulouseSpeed := 1.0, 1.0
	if h == Heterogeneous {
		lyonSpeed, toulouseSpeed = 1.2, 1.4
	}
	return Platform{
		Name: "grid5000-" + h.String(),
		Clusters: []ClusterSpec{
			{Name: "bordeaux", Cores: 640, Speed: 1.0},
			{Name: "lyon", Cores: 270, Speed: lyonSpeed},
			{Name: "toulouse", Cores: 434, Speed: toulouseSpeed},
		},
	}
}

// PWAG5K returns the second platform of the paper: Bordeaux (640 cores), CTC
// (430 cores, 20% faster when heterogeneous) and SDSC (128 cores, 40% faster
// when heterogeneous).
func PWAG5K(h Heterogeneity) Platform {
	ctcSpeed, sdscSpeed := 1.0, 1.0
	if h == Heterogeneous {
		ctcSpeed, sdscSpeed = 1.2, 1.4
	}
	return Platform{
		Name: "pwa-g5k-" + h.String(),
		Clusters: []ClusterSpec{
			{Name: "bordeaux", Cores: 640, Speed: 1.0},
			{Name: "ctc", Cores: 430, Speed: ctcSpeed},
			{Name: "sdsc", Cores: 128, Speed: sdscSpeed},
		},
	}
}

// ForScenario returns the platform the paper pairs with the given scenario
// name: the Grid'5000 platform for the six monthly traces (and their
// capacity-dynamics variants such as "jan-outage") and the PWA-G5K platform
// for the six-month mixed trace.
func ForScenario(scenario string, h Heterogeneity) Platform {
	if scenario == "pwa-g5k" {
		return PWAG5K(h)
	}
	return Grid5000(h)
}

// WithClusterCapacity returns a copy of the platform with the capacity
// timeline of the named cluster replaced by events. The input platform is
// not modified, so shared platform values stay safe to reuse.
func WithClusterCapacity(p Platform, cluster string, events []CapacityEvent) (Platform, error) {
	out := p
	out.Clusters = append([]ClusterSpec(nil), p.Clusters...)
	for i := range out.Clusters {
		if out.Clusters[i].Name == cluster {
			out.Clusters[i].Capacity = append([]CapacityEvent(nil), events...)
			if err := out.Clusters[i].Validate(); err != nil {
				return Platform{}, err
			}
			return out, nil
		}
	}
	return Platform{}, fmt.Errorf("platform %q: no cluster %q to attach a capacity timeline to", p.Name, cluster)
}

// CapacityVariant reports the capacity-dynamics variant encoded in a
// scenario name suffix: "<month>-maint" pairs the month's workload with an
// announced maintenance window, "<month>-outage" with an unannounced outage.
func CapacityVariant(scenario string) (CapacityEventKind, bool) {
	switch {
	case strings.HasSuffix(scenario, "-maint"):
		return Maintenance, true
	case strings.HasSuffix(scenario, "-outage"):
		return Outage, true
	default:
		return Maintenance, false
	}
}

// ReducedCores converts an outage severity (the fraction of cores lost, in
// (0, 1]; non-positive or out-of-range values mean a full outage) into the
// core count left during a capacity window, clamped so the window stays a
// real reduction (at least one core lost, never negative).
func ReducedCores(nominal int, severity float64) int {
	if severity <= 0 || severity > 1 {
		severity = 1
	}
	remaining := nominal - int(math.Round(float64(nominal)*severity))
	if remaining < 0 {
		remaining = 0
	}
	if remaining >= nominal {
		remaining = nominal - 1
	}
	return remaining
}

// DefaultCapacitySchedule derives the capacity window a scenario variant
// attaches to a cluster when no explicit window is configured, relative to
// the workload's submission span: the window opens a quarter of the way into
// the trace, when the queues are loaded. Maintenance keeps half the cores
// for a sixth of the span; an outage takes the whole cluster down for an
// eighth of it.
func DefaultCapacitySchedule(kind CapacityEventKind, spec ClusterSpec, span int64) []CapacityEvent {
	if span <= 0 {
		span = 8
	}
	start := span / 4
	ev := CapacityEvent{Start: start, Kind: kind}
	if kind == Maintenance {
		ev.End = start + span/6
		ev.Cores = spec.Cores / 2
	} else {
		ev.End = start + span/8
		ev.Cores = 0
	}
	if ev.End <= ev.Start {
		ev.End = ev.Start + 1
	}
	return []CapacityEvent{ev}
}

// CapacityRequest carries the plain-value capacity knobs shared by the
// façade and the experiment harness; the zero value requests nothing.
type CapacityRequest struct {
	// Cluster names the affected cluster ("" = the platform's first).
	Cluster string
	// Start is the window's opening instant; with Duration 0 it shifts the
	// scenario-variant default window instead.
	Start int64
	// Duration, when positive, places an explicit [Start, Start+Duration)
	// window instead of the scenario-variant default.
	Duration int64
	// Severity is the fraction of cores lost in (0, 1]; non-positive means
	// a full outage for explicit windows, and "keep the default" for
	// variant windows.
	Severity float64
	// Announced turns the window into a maintenance window the scheduler
	// plans around instead of a surprise outage.
	Announced bool
}

// requestsWindow reports whether the request places or modifies a window on
// its own, without a scenario-variant suffix.
func (r CapacityRequest) requestsWindow() bool { return r.Duration > 0 }

// ApplyCapacityRequest attaches the capacity window described by the
// scenario name and the request to the platform: an explicit window when
// req.Duration is positive, otherwise the default schedule implied by a
// "-maint"/"-outage" scenario variant sized relative to the workload span,
// with req's non-zero fields (severity, start, announced-ness) overriding
// the default. A zero request on a plain scenario returns the platform
// untouched, so static runs stay bit-identical; a non-zero request that
// would place no window is an error rather than a silently static run.
// Both the façade and the campaign harness resolve their knobs through this
// single function, so the two can never drift apart.
func ApplyCapacityRequest(plat Platform, scenario string, span int64, req CapacityRequest) (Platform, error) {
	variantKind, isVariant := CapacityVariant(scenario)
	if !isVariant && !req.requestsWindow() {
		if req != (CapacityRequest{}) {
			return Platform{}, fmt.Errorf(
				"platform: capacity request (cluster %q, start %d, severity %g, announced %v) places no window: set a duration or use a \"-maint\"/\"-outage\" scenario variant",
				req.Cluster, req.Start, req.Severity, req.Announced)
		}
		return plat, nil
	}
	if len(plat.Clusters) == 0 {
		return plat, nil
	}
	cluster := req.Cluster
	if cluster == "" {
		cluster = plat.Clusters[0].Name
	}
	spec, ok := plat.Cluster(cluster)
	if !ok {
		return Platform{}, fmt.Errorf("platform %q: no cluster %q to apply a capacity window to", plat.Name, cluster)
	}
	kind := Outage
	if req.Announced || (isVariant && variantKind == Maintenance) {
		kind = Maintenance
	}
	var events []CapacityEvent
	if req.requestsWindow() {
		events = []CapacityEvent{{
			Start: req.Start,
			End:   req.Start + req.Duration,
			Cores: ReducedCores(spec.Cores, req.Severity),
			Kind:  kind,
		}}
	} else {
		events = DefaultCapacitySchedule(variantKind, spec, span)
		if req.Severity > 0 {
			events[0].Cores = ReducedCores(spec.Cores, req.Severity)
		}
		if req.Start > 0 {
			length := events[0].End - events[0].Start
			events[0].Start = req.Start
			events[0].End = req.Start + length
		}
		events[0].Kind = kind
	}
	return WithClusterCapacity(plat, cluster, events)
}
