// Package platform describes the multi-cluster grid platforms the
// simulations run on: a cluster is a set of identical cores with a relative
// speed, and a platform is a named set of clusters. The four platform
// variants of the paper (two platforms, each homogeneous and heterogeneous)
// are provided as constructors.
package platform

import (
	"errors"
	"fmt"
	"strings"
)

// ClusterSpec describes one cluster of the grid.
type ClusterSpec struct {
	// Name identifies the cluster; it must be unique within a platform.
	Name string
	// Cores is the number of processors of the cluster.
	Cores int
	// Speed is the processing speed relative to the reference cluster
	// (Bordeaux in the paper). A job with reference runtime r runs in
	// ceil(r/Speed) seconds on this cluster. Speed 1.0 on every cluster
	// yields the homogeneous case.
	Speed float64
}

// Validate checks the cluster description.
func (c ClusterSpec) Validate() error {
	switch {
	case c.Name == "":
		return errors.New("platform: cluster without a name")
	case c.Cores <= 0:
		return fmt.Errorf("platform: cluster %q has %d cores", c.Name, c.Cores)
	case c.Speed <= 0:
		return fmt.Errorf("platform: cluster %q has non-positive speed %g", c.Name, c.Speed)
	}
	return nil
}

// ScaleDuration converts a duration expressed on the reference cluster into
// the duration on this cluster (ceil(d/Speed), never below 1 second for a
// positive input). This implements the paper's automatic adjustment of the
// walltime to the speed of the cluster.
func (c ClusterSpec) ScaleDuration(d int64) int64 {
	if d <= 0 {
		return 0
	}
	scaled := int64(float64(d) / c.Speed)
	if float64(scaled)*c.Speed < float64(d) {
		scaled++
	}
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// Platform is a named set of clusters forming the grid.
type Platform struct {
	Name     string
	Clusters []ClusterSpec
}

// Validate checks the platform: at least one cluster, all clusters valid,
// names unique.
func (p Platform) Validate() error {
	if len(p.Clusters) == 0 {
		return fmt.Errorf("platform %q: no clusters", p.Name)
	}
	seen := make(map[string]struct{}, len(p.Clusters))
	for _, c := range p.Clusters {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("platform %q: %w", p.Name, err)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("platform %q: duplicate cluster name %q", p.Name, c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	return nil
}

// TotalCores returns the number of cores across all clusters.
func (p Platform) TotalCores() int {
	total := 0
	for _, c := range p.Clusters {
		total += c.Cores
	}
	return total
}

// MaxCores returns the size of the largest cluster. Jobs wider than this can
// never run anywhere on the platform.
func (p Platform) MaxCores() int {
	maxC := 0
	for _, c := range p.Clusters {
		if c.Cores > maxC {
			maxC = c.Cores
		}
	}
	return maxC
}

// Cluster returns the spec of the named cluster and whether it exists.
func (p Platform) Cluster(name string) (ClusterSpec, bool) {
	for _, c := range p.Clusters {
		if c.Name == name {
			return c, true
		}
	}
	return ClusterSpec{}, false
}

// Homogeneous reports whether every cluster has the same speed.
func (p Platform) Homogeneous() bool {
	if len(p.Clusters) == 0 {
		return true
	}
	first := p.Clusters[0].Speed
	for _, c := range p.Clusters[1:] {
		if c.Speed != first {
			return false
		}
	}
	return true
}

// String renders a compact description such as
// "grid5000[bordeaux:640x1.0 lyon:270x1.2 toulouse:434x1.4]".
func (p Platform) String() string {
	parts := make([]string, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		parts = append(parts, fmt.Sprintf("%s:%dx%.1f", c.Name, c.Cores, c.Speed))
	}
	return fmt.Sprintf("%s[%s]", p.Name, strings.Join(parts, " "))
}

// Heterogeneity identifies the homogeneous or heterogeneous variant of a
// platform.
type Heterogeneity int

// The two platform variants of every scenario.
const (
	Homogeneous Heterogeneity = iota
	Heterogeneous
)

// String returns "homogeneous" or "heterogeneous".
func (h Heterogeneity) String() string {
	if h == Heterogeneous {
		return "heterogeneous"
	}
	return "homogeneous"
}

// Grid5000 returns the first platform of the paper: the Bordeaux (640
// cores), Lyon (270 cores) and Toulouse (434 cores) clusters of Grid'5000.
// In the heterogeneous variant Lyon is 20% and Toulouse 40% faster than
// Bordeaux; in the homogeneous variant all speeds are 1.0.
func Grid5000(h Heterogeneity) Platform {
	lyonSpeed, toulouseSpeed := 1.0, 1.0
	if h == Heterogeneous {
		lyonSpeed, toulouseSpeed = 1.2, 1.4
	}
	return Platform{
		Name: "grid5000-" + h.String(),
		Clusters: []ClusterSpec{
			{Name: "bordeaux", Cores: 640, Speed: 1.0},
			{Name: "lyon", Cores: 270, Speed: lyonSpeed},
			{Name: "toulouse", Cores: 434, Speed: toulouseSpeed},
		},
	}
}

// PWAG5K returns the second platform of the paper: Bordeaux (640 cores), CTC
// (430 cores, 20% faster when heterogeneous) and SDSC (128 cores, 40% faster
// when heterogeneous).
func PWAG5K(h Heterogeneity) Platform {
	ctcSpeed, sdscSpeed := 1.0, 1.0
	if h == Heterogeneous {
		ctcSpeed, sdscSpeed = 1.2, 1.4
	}
	return Platform{
		Name: "pwa-g5k-" + h.String(),
		Clusters: []ClusterSpec{
			{Name: "bordeaux", Cores: 640, Speed: 1.0},
			{Name: "ctc", Cores: 430, Speed: ctcSpeed},
			{Name: "sdsc", Cores: 128, Speed: sdscSpeed},
		},
	}
}

// ForScenario returns the platform the paper pairs with the given scenario
// name: the Grid'5000 platform for the six monthly traces and the PWA-G5K
// platform for the six-month mixed trace.
func ForScenario(scenario string, h Heterogeneity) Platform {
	if scenario == "pwa-g5k" {
		return PWAG5K(h)
	}
	return Grid5000(h)
}
