package batch

import (
	"math/rand"
	"testing"

	"gridrealloc/internal/platform"
)

// capacityScheduler builds a scheduler over a cluster with a capacity
// timeline.
func capacityScheduler(t *testing.T, cores int, policy Policy, events ...platform.CapacityEvent) *Scheduler {
	t.Helper()
	s, err := NewScheduler(platform.ClusterSpec{Name: "cap", Cores: cores, Speed: 1.0, Capacity: events}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDebugCrossCheck(true)
	return s
}

func TestMaintenanceWindowPlansAround(t *testing.T) {
	// 8 cores, a full maintenance outage in [100, 200). A 6-core job of
	// walltime 150 submitted at t=0 cannot finish before the window and must
	// be planned after it; a 2-core job of walltime 50 fits before.
	s := capacityScheduler(t, 8, CBF,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 0, Kind: platform.Maintenance})
	if err := s.Submit(job(1, 0, 150, 150, 6), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 0, 50, 50, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	jobs := s.WaitingJobs()
	if jobs[0].PlannedStart != 200 {
		t.Fatalf("wide job planned at %d, want 200 (after the maintenance window)", jobs[0].PlannedStart)
	}
	if jobs[1].PlannedStart != 0 {
		t.Fatalf("narrow job planned at %d, want 0 (backfilled before the window)", jobs[1].PlannedStart)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintenanceNeverDisplacesRunningJobs(t *testing.T) {
	// Partial maintenance [100, 200) keeping 4 of 8 cores: a 6-core job
	// started at 0 with walltime 150 would collide, so the planner must not
	// start it before the window in the first place.
	s := capacityScheduler(t, 8, FCFS,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 4, Kind: platform.Maintenance})
	if err := s.Submit(job(1, 0, 150, 150, 6), 0, 0); err != nil {
		t.Fatal(err)
	}
	notes := collect(t, s, 400)
	for _, n := range notes {
		if n.Displaced {
			t.Fatalf("maintenance displaced job %d at t=%d", n.JobID, n.Time)
		}
	}
	if got := notes[0]; got.Kind != Started || got.Time != 200 {
		t.Fatalf("first note = %+v, want a start at t=200", got)
	}
}

func TestMaintenancePartialCapacityRuns(t *testing.T) {
	// A 3-core job fits under the 4-core maintenance ceiling and must start
	// immediately even though the window is ahead.
	s := capacityScheduler(t, 8, CBF,
		platform.CapacityEvent{Start: 50, End: 150, Cores: 4, Kind: platform.Maintenance})
	if err := s.Submit(job(1, 0, 120, 120, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	notes := collect(t, s, 0)
	if len(notes) != 1 || notes[0].Kind != Started || notes[0].Time != 0 {
		t.Fatalf("notes = %+v, want an immediate start", notes)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutageKillsDisplacedJobs(t *testing.T) {
	// Unannounced full outage at t=100: both running jobs die.
	s := capacityScheduler(t, 8, FCFS,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 0, Kind: platform.Outage})
	if err := s.Submit(job(1, 0, 300, 300, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 0, 300, 300, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 50)
	if s.RunningCount() != 2 {
		t.Fatalf("running = %d before the outage, want 2", s.RunningCount())
	}
	notes := collect(t, s, 150)
	kills := 0
	for _, n := range notes {
		if n.Kind == Finished {
			if !n.Killed || !n.Displaced || n.Time != 100 {
				t.Fatalf("displacement note = %+v, want killed+displaced at t=100", n)
			}
			kills++
		}
	}
	if kills != 2 {
		t.Fatalf("kills = %d, want 2", kills)
	}
	if s.RunningCount() != 0 || s.WaitingCount() != 0 {
		t.Fatalf("state after outage: running=%d waiting=%d", s.RunningCount(), s.WaitingCount())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutageRequeuePutsJobsBackAndRestarts(t *testing.T) {
	// Partial outage [100, 200) keeping 4 cores: the most recently started
	// job is requeued, waits out the window, and restarts at 200.
	s := capacityScheduler(t, 8, FCFS,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 4, Kind: platform.Outage})
	s.SetOutagePolicy(RequeueDisplaced)
	if err := s.Submit(job(1, 0, 300, 300, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 10)
	if err := s.Submit(job(2, 10, 300, 300, 4), 10, 0); err != nil {
		t.Fatal(err)
	}
	notes := collect(t, s, 150)
	var requeue *Notification
	for i := range notes {
		if notes[i].Kind == Requeued {
			requeue = &notes[i]
		}
	}
	if requeue == nil || requeue.JobID != 2 || requeue.Time != 100 || !requeue.Displaced {
		t.Fatalf("requeue note = %+v, want job 2 requeued at t=100", requeue)
	}
	if s.RunningCount() != 1 || s.WaitingCount() != 1 {
		t.Fatalf("state during outage: running=%d waiting=%d", s.RunningCount(), s.WaitingCount())
	}
	// The requeued job keeps its identity and is planned after the window
	// (job 1 still holds the 4 surviving cores until t=300).
	ect, err := s.CurrentCompletion(2)
	if err != nil {
		t.Fatal(err)
	}
	if ect <= 200 {
		t.Fatalf("requeued job completes at %d, want after the window", ect)
	}
	notes = collect(t, s, 1000)
	restarted := false
	for _, n := range notes {
		if n.Kind == Started && n.JobID == 2 {
			restarted = true
			if n.Time < 200 {
				t.Fatalf("job 2 restarted at %d, inside the outage window", n.Time)
			}
		}
	}
	if !restarted {
		t.Fatal("requeued job never restarted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutageRequeueProtectsSeniority(t *testing.T) {
	// Full outage displaces both running jobs; the earlier-started one must
	// come back at the head of the queue.
	s := capacityScheduler(t, 8, FCFS,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 0, Kind: platform.Outage})
	s.SetOutagePolicy(RequeueDisplaced)
	if err := s.Submit(job(1, 0, 400, 400, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 10)
	if err := s.Submit(job(2, 10, 400, 400, 4), 10, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 150)
	waiting := s.WaitingJobs()
	if len(waiting) != 2 || waiting[0].Job.ID != 1 || waiting[1].Job.ID != 2 {
		t.Fatalf("queue after requeue = %v, want job 1 before job 2", waiting)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatesSeeCapacityWindows(t *testing.T) {
	// ECT queries must route hypothetical jobs around a maintenance window.
	s := capacityScheduler(t, 8, CBF,
		platform.CapacityEvent{Start: 100, End: 300, Cores: 0, Kind: platform.Maintenance})
	probe := job(9, 0, 150, 150, 8)
	ect, err := s.EstimateCompletion(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ect != 450 {
		t.Fatalf("ECT through the window = %d, want 450 (start at 300)", ect)
	}
	snap, err := s.EstimateSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := snap.EstimateCompletion(probe); err != nil || got != ect {
		t.Fatalf("snapshot ECT = %d (%v), want %d", got, err, ect)
	}
}

func TestAppendFastPathAcrossCapacitySteps(t *testing.T) {
	// Submissions at an unchanged clock ride the append fast path; the
	// published plan must still match a full re-plan when the profile
	// carries capacity steps.
	s := capacityScheduler(t, 8, CBF,
		platform.CapacityEvent{Start: 60, End: 120, Cores: 2, Kind: platform.Maintenance},
		platform.CapacityEvent{Start: 200, End: 260, Cores: 4, Kind: platform.Outage})
	for i := 1; i <= 20; i++ {
		if err := s.Submit(job(i, 0, 50, 50, 1+i%6), 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckProfileConsistency(); err != nil {
			t.Fatalf("after append %d: %v", i, err)
		}
	}
	stats := s.ProfileStats()
	if stats.PlanAppends == 0 {
		t.Fatal("no submission used the append fast path")
	}
	collect(t, s, 500)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutageRevealedLateIsHarmless(t *testing.T) {
	// Jumping the clock far past a whole outage window must not corrupt the
	// profile: the reveal fires during the advance and degenerates to a
	// no-op for the part of the window already in the past.
	s := capacityScheduler(t, 8, FCFS,
		platform.CapacityEvent{Start: 100, End: 200, Cores: 0, Kind: platform.Outage})
	if err := s.Submit(job(1, 0, 50, 50, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 1000)
	if err := s.Submit(job(2, 1000, 50, 50, 4), 1000, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 2000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCapacityProfileMatchesScratch drives randomized workloads over
// randomized capacity timelines and checks, after every step, that the
// incrementally maintained profile equals a from-scratch rebuild and that
// the published plan equals a fresh re-plan (the capacity extension of the
// PR 1 property test). The debug cross-check is on, so any divergence also
// panics inside the scheduler itself.
func TestPropertyCapacityProfileMatchesScratch(t *testing.T) {
	for _, policy := range []Policy{FCFS, CBF} {
		for _, outagePolicy := range []OutagePolicy{KillDisplaced, RequeueDisplaced} {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				cores := 8 + rng.Intn(24)
				var events []platform.CapacityEvent
				at := int64(rng.Intn(200))
				for len(events) < 1+rng.Intn(3) {
					length := int64(50 + rng.Intn(300))
					kind := platform.Maintenance
					if rng.Intn(2) == 0 {
						kind = platform.Outage
					}
					events = append(events, platform.CapacityEvent{
						Start: at, End: at + length, Cores: rng.Intn(cores), Kind: kind,
					})
					at += length + int64(1+rng.Intn(200))
				}
				s := capacityScheduler(t, cores, policy, events...)
				s.SetOutagePolicy(outagePolicy)
				now := int64(0)
				for id := 1; id <= 60; id++ {
					if rng.Intn(3) == 0 {
						now += int64(rng.Intn(120))
						if _, err := s.Advance(now); err != nil {
							t.Fatal(err)
						}
					}
					run := int64(1 + rng.Intn(200))
					wall := run + int64(rng.Intn(200))
					if err := s.Submit(job(id, now, run, wall, 1+rng.Intn(cores)), now, 0); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(4) == 0 {
						victim := 1 + rng.Intn(id)
						_, _, _ = s.Cancel(victim, now)
					}
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("policy=%v outage=%v seed=%d after job %d: %v", policy, outagePolicy, seed, id, err)
					}
				}
				// Drain to the end so late windows are crossed too.
				if _, err := s.Advance(at + 10000); err != nil {
					t.Fatal(err)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("policy=%v outage=%v seed=%d after drain: %v", policy, outagePolicy, seed, err)
				}
			}
		}
	}
}
