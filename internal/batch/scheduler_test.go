package batch

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

func newTestScheduler(t *testing.T, cores int, speed float64, policy Policy) *Scheduler {
	t.Helper()
	s, err := NewScheduler(platform.ClusterSpec{Name: "test", Cores: cores, Speed: speed}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func job(id int, submit, runtime, walltime int64, procs int) workload.Job {
	return workload.Job{ID: id, Submit: submit, Runtime: runtime, Walltime: walltime, Procs: procs}
}

// collect advances the scheduler to `now` and fails the test on error.
func collect(t *testing.T, s *Scheduler, now int64) []Notification {
	t.Helper()
	notes, err := s.Advance(now)
	if err != nil {
		t.Fatal(err)
	}
	return notes
}

func TestSubmitValidation(t *testing.T) {
	s := newTestScheduler(t, 8, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 10, 20, 9), 0, 0); !errors.Is(err, ErrTooWide) {
		t.Fatalf("too-wide job: err = %v, want ErrTooWide", err)
	}
	if err := s.Submit(job(2, 0, 10, 20, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 0, 10, 20, 4), 0, 0); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate: err = %v, want ErrDuplicateJob", err)
	}
	if err := s.Submit(job(3, 0, 10, 20, 0), 0, 0); err == nil {
		t.Fatal("invalid job accepted")
	}
	collect(t, s, 5)
	if err := s.Submit(job(4, 0, 10, 20, 4), 1, 0); !errors.Is(err, ErrTimeTravel) {
		t.Fatalf("submission in the past: err = %v, want ErrTimeTravel", err)
	}
}

func TestImmediateStartAndFinish(t *testing.T) {
	s := newTestScheduler(t, 8, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 100, 200, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	notes := collect(t, s, 0)
	if len(notes) != 1 || notes[0].Kind != Started || notes[0].Time != 0 {
		t.Fatalf("notes = %+v, want a start at t=0", notes)
	}
	if s.RunningCount() != 1 || s.WaitingCount() != 0 || s.UsedCores() != 4 {
		t.Fatalf("state after start: running=%d waiting=%d used=%d", s.RunningCount(), s.WaitingCount(), s.UsedCores())
	}
	notes = collect(t, s, 150)
	if len(notes) != 1 || notes[0].Kind != Finished || notes[0].Time != 100 {
		t.Fatalf("notes = %+v, want a finish at t=100 (actual runtime, not walltime)", notes)
	}
	if notes[0].Killed {
		t.Fatal("job within its walltime reported as killed")
	}
	if s.RunningCount() != 0 {
		t.Fatal("job still running after its finish")
	}
}

func TestWalltimeKill(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	// Bad job: runtime 500 exceeds walltime 200.
	if err := s.Submit(job(1, 0, 500, 200, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	notes := collect(t, s, 1000)
	var finish *Notification
	for i := range notes {
		if notes[i].Kind == Finished {
			finish = &notes[i]
		}
	}
	if finish == nil {
		t.Fatal("job never finished")
	}
	if finish.Time != 200 {
		t.Fatalf("killed at %d, want walltime 200", finish.Time)
	}
	if !finish.Killed {
		t.Fatal("walltime kill not flagged")
	}
}

func TestSpeedScaling(t *testing.T) {
	s := newTestScheduler(t, 4, 2.0, FCFS)
	// Runtime 100 and walltime 300 on the reference cluster become 50/150
	// on a cluster twice as fast.
	if err := s.Submit(job(1, 0, 100, 300, 1), 0, 0); err != nil {
		t.Fatal(err)
	}
	ect, err := s.EstimateCompletion(job(2, 0, 100, 300, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 occupies only 1 core, job 2 needs all 4, so it starts after job
	// 1's scaled walltime reservation (150): ECT = 150 + 150 = 300.
	if ect != 300 {
		t.Fatalf("hypothetical ECT = %d, want 300", ect)
	}
	notes := collect(t, s, 1000)
	if notes[len(notes)-1].Time != 50 {
		t.Fatalf("scaled finish at %d, want 50", notes[len(notes)-1].Time)
	}
}

func TestFCFSNoBackfill(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	// Job 1 takes the whole cluster for its walltime (1000).
	if err := s.Submit(job(1, 0, 1000, 1000, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	// Job 2 is wide (4 procs), queued behind job 1.
	if err := s.Submit(job(2, 0, 100, 100, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Job 3 is narrow (1 proc) and short. Under FCFS it must NOT start
	// before job 2 even though a core is... (none is free here); use a
	// clearer setup: job 1 uses 3 cores, leaving 1 free.
	s2 := newTestScheduler(t, 4, 1.0, FCFS)
	if err := s2.Submit(job(1, 0, 1000, 1000, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s2, 0)
	if err := s2.Submit(job(2, 0, 100, 100, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s2.Submit(job(3, 0, 10, 10, 1), 0, 0); err != nil {
		t.Fatal(err)
	}
	waiting := s2.WaitingJobs()
	if len(waiting) != 2 {
		t.Fatalf("%d jobs waiting, want 2", len(waiting))
	}
	// Job 2 starts when job 1's reservation ends (1000); job 3 must not
	// start before job 2 under FCFS.
	if waiting[0].Job.ID != 2 || waiting[0].PlannedStart != 1000 {
		t.Fatalf("job 2 planned at %d, want 1000", waiting[0].PlannedStart)
	}
	if waiting[1].Job.ID != 3 || waiting[1].PlannedStart < waiting[0].PlannedStart {
		t.Fatalf("FCFS violated: job 3 planned at %d before job 2 at %d", waiting[1].PlannedStart, waiting[0].PlannedStart)
	}
}

func TestCBFBackfillsHole(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, CBF)
	if err := s.Submit(job(1, 0, 1000, 1000, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 100, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(3, 0, 10, 10, 1), 0, 0); err != nil {
		t.Fatal(err)
	}
	waiting := s.WaitingJobs()
	var job3 WaitingJob
	for _, w := range waiting {
		if w.Job.ID == 3 {
			job3 = w
		}
	}
	// CBF backfills job 3 into the idle core right away (start 0), because
	// doing so does not delay job 2 (which needs the full cluster at 1000).
	if job3.PlannedStart != 0 {
		t.Fatalf("CBF did not backfill: job 3 planned at %d, want 0", job3.PlannedStart)
	}
	// And job 2 keeps its reservation at 1000.
	for _, w := range waiting {
		if w.Job.ID == 2 && w.PlannedStart != 1000 {
			t.Fatalf("backfilling delayed job 2 to %d", w.PlannedStart)
		}
	}
}

func TestEarlyFinishPullsQueueForward(t *testing.T) {
	for _, policy := range []Policy{FCFS, CBF} {
		s := newTestScheduler(t, 4, 1.0, policy)
		// Job 1: walltime 1000 but actually finishes at 100.
		if err := s.Submit(job(1, 0, 100, 1000, 4), 0, 0); err != nil {
			t.Fatal(err)
		}
		collect(t, s, 0)
		if err := s.Submit(job(2, 0, 50, 60, 4), 0, 0); err != nil {
			t.Fatal(err)
		}
		w := s.WaitingJobs()
		if w[0].PlannedStart != 1000 {
			t.Fatalf("[%v] job 2 planned at %d, want 1000 (walltime-based)", policy, w[0].PlannedStart)
		}
		notes := collect(t, s, 2000)
		// Expect: finish job1 at 100, start job2 at 100, finish job2 at 150.
		var starts, finishes []int64
		for _, n := range notes {
			if n.Kind == Started {
				starts = append(starts, n.Time)
			} else {
				finishes = append(finishes, n.Time)
			}
		}
		if len(finishes) != 2 || finishes[0] != 100 || finishes[1] != 150 {
			t.Fatalf("[%v] finishes = %v, want [100 150]", policy, finishes)
		}
		if len(starts) != 1 || starts[0] != 100 {
			t.Fatalf("[%v] job 2 started at %v, want 100 (pulled forward)", policy, starts)
		}
	}
}

func TestCancelWaitingJob(t *testing.T) {
	s := newTestScheduler(t, 2, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 100, 1000, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 100, 2), 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(3, 0, 100, 100, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Job 3 is planned after job 2.
	before := s.WaitingJobs()
	if before[1].Job.ID != 3 || before[1].PlannedStart <= before[0].PlannedStart {
		t.Fatalf("unexpected plan before cancel: %+v", before)
	}
	got, migrated, err := s.Cancel(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 2 || migrated != 3 {
		t.Fatalf("Cancel returned job %d with %d migrations, want 2 and 3", got.ID, migrated)
	}
	// Job 3 moves up in the plan.
	after := s.WaitingJobs()
	if len(after) != 1 || after[0].Job.ID != 3 {
		t.Fatalf("queue after cancel: %+v", after)
	}
	if after[0].PlannedStart >= before[1].PlannedStart {
		t.Fatalf("job 3 did not move forward after the cancellation: %d -> %d", before[1].PlannedStart, after[0].PlannedStart)
	}
	// Cancelling again or cancelling a running job fails, with distinct
	// sentinels for the two situations.
	if _, _, err := s.Cancel(2, 0); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("second cancel: err = %v", err)
	}
	if _, _, err := s.Cancel(1, 0); !errors.Is(err, ErrJobRunning) {
		t.Fatalf("cancelling a running job: err = %v, want ErrJobRunning", err)
	}
}

func TestCurrentCompletion(t *testing.T) {
	s := newTestScheduler(t, 2, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 100, 500, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 300, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Running job: predicted completion is its walltime end.
	if ect, err := s.CurrentCompletion(1); err != nil || ect != 500 {
		t.Fatalf("running job ECT = %d,%v want 500", ect, err)
	}
	// Waiting job: planned end = 500 + 300.
	if ect, err := s.CurrentCompletion(2); err != nil || ect != 800 {
		t.Fatalf("waiting job ECT = %d,%v want 800", ect, err)
	}
	if _, err := s.CurrentCompletion(99); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: err = %v", err)
	}
}

func TestEstimateCompletionMatchesRealSubmission(t *testing.T) {
	for _, policy := range []Policy{FCFS, CBF} {
		s := newTestScheduler(t, 4, 1.0, policy)
		if err := s.Submit(job(1, 0, 400, 400, 4), 0, 0); err != nil {
			t.Fatal(err)
		}
		collect(t, s, 0)
		if err := s.Submit(job(2, 0, 100, 200, 2), 0, 0); err != nil {
			t.Fatal(err)
		}
		probe := job(3, 0, 150, 150, 2)
		est, err := s.EstimateCompletion(probe, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(probe, 0, 0); err != nil {
			t.Fatal(err)
		}
		actual, err := s.CurrentCompletion(3)
		if err != nil {
			t.Fatal(err)
		}
		if est != actual {
			t.Fatalf("[%v] estimate %d does not match planned completion %d after submitting", policy, est, actual)
		}
	}
}

func TestEstimateCompletionDoesNotMutate(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, CBF)
	if err := s.Submit(job(1, 0, 100, 400, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 200, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	before := s.WaitingJobs()
	for i := 0; i < 5; i++ {
		if _, err := s.EstimateCompletion(job(100+i, 0, 50, 100, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	after := s.WaitingJobs()
	if len(before) != len(after) {
		t.Fatal("EstimateCompletion changed the queue length")
	}
	for i := range before {
		if before[i].PlannedStart != after[i].PlannedStart || before[i].PlannedEnd != after[i].PlannedEnd {
			t.Fatal("EstimateCompletion changed the plan")
		}
	}
	if _, err := s.EstimateCompletion(job(200, 0, 50, 100, 5), 0); !errors.Is(err, ErrTooWide) {
		t.Fatalf("too-wide estimate: err = %v", err)
	}
}

func TestFCFSEstimateGoesToEndOfQueue(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 1000, 1000, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 100, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	// A 1-core probe could fit at t=0 next to job 1, but FCFS places it at
	// the end of the queue: not before job 2 starts at 1000.
	est, err := s.EstimateCompletion(job(3, 0, 10, 10, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1000 {
		t.Fatalf("FCFS estimate %d jumps the queue", est)
	}
	// The same probe under CBF backfills immediately.
	c := newTestScheduler(t, 4, 1.0, CBF)
	if err := c.Submit(job(1, 0, 1000, 1000, 3), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 0)
	if err := c.Submit(job(2, 0, 100, 100, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	est, err = c.EstimateCompletion(job(3, 0, 10, 10, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est != 10 {
		t.Fatalf("CBF estimate = %d, want 10 (backfilled at t=0)", est)
	}
}

func TestWaitingJobsSnapshotFields(t *testing.T) {
	s := newTestScheduler(t, 4, 1.5, CBF)
	if err := s.Submit(job(1, 0, 100, 900, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 5, 100, 900, 2), 5, 7); err != nil {
		t.Fatal(err)
	}
	w := s.WaitingJobs()
	if len(w) != 1 {
		t.Fatalf("%d waiting, want 1", len(w))
	}
	got := w[0]
	if got.Job.ID != 2 || got.EnqueuedAt != 5 || got.Reallocations != 7 ||
		got.ClusterName != "test" || got.ClusterSpeedup != 1.5 || got.QueuePosition != 0 {
		t.Fatalf("snapshot = %+v", got)
	}
	if got.PlannedEnd <= got.PlannedStart {
		t.Fatalf("empty planned window: %+v", got)
	}
}

func TestCountersTrackRequests(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	_ = s.Submit(job(1, 0, 10, 20, 1), 0, 0)
	_ = s.Submit(job(2, 0, 10, 20, 1), 0, 0)
	_, _, _ = s.Cancel(2, 0)
	_, _ = s.EstimateCompletion(job(3, 0, 10, 20, 1), 0)
	_, _ = s.EstimateCompletion(job(4, 0, 10, 20, 1), 0)
	sub, can, ect := s.Counters()
	if sub != 2 || can != 1 || ect != 2 {
		t.Fatalf("counters = %d/%d/%d, want 2/1/2", sub, can, ect)
	}
}

func TestAdvanceTimeTravelRejected(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	collect(t, s, 100)
	if _, err := s.Advance(50); !errors.Is(err, ErrTimeTravel) {
		t.Fatalf("advance to the past: err = %v", err)
	}
}

func TestNextEventTime(t *testing.T) {
	s := newTestScheduler(t, 2, 1.0, FCFS)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("idle cluster reports a next event")
	}
	if err := s.Submit(job(1, 0, 100, 200, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	if next, ok := s.NextEventTime(); !ok || next != 0 {
		t.Fatalf("next event = %d,%v want 0,true (planned start)", next, ok)
	}
	collect(t, s, 0)
	if next, ok := s.NextEventTime(); !ok || next != 100 {
		t.Fatalf("next event = %d,%v want 100,true (actual finish)", next, ok)
	}
}

// TestPropertySchedulerInvariants drives a scheduler with a random sequence
// of submissions, cancellations and time advances and checks the exported
// invariants after every operation (no over-subscription, FCFS ordering,
// plans in the future).
func TestPropertySchedulerInvariants(t *testing.T) {
	type op struct {
		Kind    uint8
		Procs   uint8
		Runtime uint16
		Wall    uint16
		Delta   uint16
	}
	for _, policy := range []Policy{FCFS, CBF} {
		policy := policy
		f := func(ops []op) bool {
			s, err := NewScheduler(platform.ClusterSpec{Name: "prop", Cores: 16, Speed: 1.3}, policy)
			if err != nil {
				return false
			}
			now := int64(0)
			nextID := 1
			var waitingIDs []int
			for _, o := range ops {
				switch o.Kind % 3 {
				case 0: // submit
					j := workload.Job{
						ID:       nextID,
						Submit:   now,
						Runtime:  int64(o.Runtime%2000) + 1,
						Walltime: int64(o.Wall%3000) + 1,
						Procs:    int(o.Procs%16) + 1,
					}
					nextID++
					if err := s.Submit(j, now, 0); err != nil {
						return false
					}
					waitingIDs = append(waitingIDs, j.ID)
				case 1: // cancel a random waiting job (ignore failures: it may have started)
					if len(waitingIDs) > 0 {
						id := waitingIDs[int(o.Delta)%len(waitingIDs)]
						_, _, _ = s.Cancel(id, now)
					}
				case 2: // advance time
					now += int64(o.Delta % 500)
					if _, err := s.Advance(now); err != nil {
						return false
					}
					waitingIDs = waitingIDs[:0]
					for _, w := range s.WaitingJobs() {
						waitingIDs = append(waitingIDs, w.Job.ID)
					}
				}
				if err := s.CheckInvariants(); err != nil {
					t.Logf("invariant violated (%v): %v", policy, err)
					return false
				}
			}
			// Drain completely: every submitted job must eventually leave.
			for iter := 0; iter < 100000; iter++ {
				next, ok := s.NextEventTime()
				if !ok {
					break
				}
				if _, err := s.Advance(next); err != nil {
					return false
				}
			}
			return s.RunningCount() == 0 && s.WaitingCount() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

// TestPropertyCBFNeverDelaysEarlierJobs: adding a new job under CBF never
// pushes back the planned start of any job already in the queue
// (conservative backfilling).
func TestPropertyCBFNeverDelaysEarlierJobs(t *testing.T) {
	type jobSpec struct {
		Procs   uint8
		Runtime uint16
		Wall    uint16
	}
	f := func(specs []jobSpec) bool {
		s, err := NewScheduler(platform.ClusterSpec{Name: "cbf", Cores: 12, Speed: 1}, CBF)
		if err != nil {
			return false
		}
		// Occupy the cluster so jobs actually queue.
		if err := s.Submit(job(1000, 0, 5000, 5000, 12), 0, 0); err != nil {
			return false
		}
		if _, err := s.Advance(0); err != nil {
			return false
		}
		for i, spec := range specs {
			before := make(map[int]int64)
			for _, w := range s.WaitingJobs() {
				before[w.Job.ID] = w.PlannedStart
			}
			j := workload.Job{
				ID:       i + 1,
				Submit:   0,
				Runtime:  int64(spec.Runtime%1000) + 1,
				Walltime: int64(spec.Wall%1500) + 1,
				Procs:    int(spec.Procs%12) + 1,
			}
			if err := s.Submit(j, 0, 0); err != nil {
				return false
			}
			for _, w := range s.WaitingJobs() {
				if prev, ok := before[w.Job.ID]; ok && w.PlannedStart > prev {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCompletionNeverBeforeSubmitOrRuntime: every job completes no
// earlier than its submission plus its scaled effective runtime.
func TestPropertyCompletionNeverBeforeSubmitOrRuntime(t *testing.T) {
	type jobSpec struct {
		Gap     uint16
		Procs   uint8
		Runtime uint16
		Wall    uint16
	}
	for _, policy := range []Policy{FCFS, CBF} {
		policy := policy
		f := func(specs []jobSpec) bool {
			spec := platform.ClusterSpec{Name: "c", Cores: 8, Speed: 1.2}
			s, err := NewScheduler(spec, policy)
			if err != nil {
				return false
			}
			now := int64(0)
			submitted := make(map[int]workload.Job)
			starts := make(map[int]int64)
			finishes := make(map[int]int64)
			record := func(notes []Notification) {
				for _, n := range notes {
					if n.Kind == Started {
						starts[n.JobID] = n.Time
					} else {
						finishes[n.JobID] = n.Time
					}
				}
			}
			for i, sp := range specs {
				now += int64(sp.Gap % 300)
				j := workload.Job{
					ID:       i + 1,
					Submit:   now,
					Runtime:  int64(sp.Runtime%800) + 1,
					Walltime: int64(sp.Wall%1200) + 1,
					Procs:    int(sp.Procs%8) + 1,
				}
				notes, err := s.Advance(now)
				if err != nil {
					return false
				}
				record(notes)
				if err := s.Submit(j, now, 0); err != nil {
					return false
				}
				submitted[j.ID] = j
			}
			for {
				next, ok := s.NextEventTime()
				if !ok {
					break
				}
				notes, err := s.Advance(next)
				if err != nil {
					return false
				}
				record(notes)
			}
			for id, j := range submitted {
				start, ok := starts[id]
				if !ok {
					return false
				}
				end, ok := finishes[id]
				if !ok {
					return false
				}
				if start < j.Submit {
					return false
				}
				run := spec.ScaleDuration(j.Runtime)
				wall := spec.ScaleDuration(j.Walltime)
				want := run
				if want > wall {
					want = wall
				}
				if end-start != want {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(14))}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

func TestPolicyParsing(t *testing.T) {
	if p, err := ParsePolicy("FCFS"); err != nil || p != FCFS {
		t.Fatal("ParsePolicy FCFS broken")
	}
	if p, err := ParsePolicy("CBF"); err != nil || p != CBF {
		t.Fatal("ParsePolicy CBF broken")
	}
	if _, err := ParsePolicy("EASY"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if FCFS.String() != "FCFS" || CBF.String() != "CBF" {
		t.Fatal("Policy.String broken")
	}
	if Started.String() != "started" || Finished.String() != "finished" {
		t.Fatal("NotificationKind.String broken")
	}
}

func TestSnapshot(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, FCFS)
	if err := s.Submit(job(1, 0, 100, 300, 4), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 300, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.ClusterName != "test" || len(snap.Running) != 1 || len(snap.Waiting) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Running[0].JobID != 1 || snap.Waiting[0].JobID != 2 {
		t.Fatalf("snapshot content = %+v", snap)
	}
}
