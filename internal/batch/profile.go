// Package batch simulates a cluster's local resource management system
// (batch scheduler). It models the two policies the paper evaluates —
// First Come First Served (FCFS) without backfilling and Conservative
// Back-Filling (CBF) — on top of an availability profile, and exposes the
// restricted set of operations the grid middleware is allowed to use:
// submission, cancellation of waiting jobs, estimation of completion times
// and listing of the waiting queue.
//
// The scheduler plans reservations using the jobs' requested walltimes
// (rescaled to the cluster speed) because that is all a real batch system
// knows; the actual runtimes only manifest as early completions (or
// walltime kills), which trigger a re-plan. That gap between plan and
// reality is precisely what the paper's reallocation mechanism exploits.
package batch

import (
	"fmt"
	"os"
	"sort"
)

// noSlot is returned by findSlot when the request can never be satisfied.
const noSlot int64 = -1

// Bucket summaries (profile engine v2). The breakpoint array is covered by
// fixed-width buckets of bucketLen consecutive segments; each bucket stores
// the maximum and minimum free-core count over its segments. findSlotFrom
// uses the maxima to skip whole buckets that cannot host a start (the
// generalization of the single firstFree hint to arbitrary widths) and the
// minima to validate whole buckets of a candidate window at once, so slot
// searches on deep queues and saturated clusters touch O(n/bucketLen)
// summaries plus O(bucketLen) segments instead of scanning every segment.
//
// The summaries are maintained eagerly and exactly: a uniform
// reserve/release over a segment range adjusts fully covered buckets by
// the delta and recomputes the (at most two) partial ones, while
// breakpoint insertion and removal — which shift every later segment index
// and already pay a memmove over the tail — resummarize the suffix at the
// same asymptotic cost. Exactness is what keeps the skips firing on the
// profiles that need them most: a deep plan rebuilt by hundreds of
// interleaved insertions retains tight bounds for every slot search in
// between (a conservative-bounds variant was measured to decay into plain
// scans exactly there). Profiles shorter than bucketActivate segments
// carry no summaries at all (the arrays are empty and every search falls
// back to the plain scan), so the common shallow-queue profile — including
// every profile of the paper-scale campaign scenarios — pays nothing for
// the machinery.
const (
	bucketShift = 5
	bucketLen   = 1 << bucketShift
	// bucketActivate is the segment count at which the summaries switch
	// on. Below it a plain scan touches so few segments that maintaining
	// summaries costs more than it saves.
	bucketActivate = 2 * bucketLen
)

// numBuckets returns the number of summary buckets covering n segments.
func numBuckets(n int) int { return (n + bucketLen - 1) >> bucketShift }

// debugProfile enables the profile's internal structural checks on every
// mutating operation (the same switch that enables the scheduler's
// incremental-vs-from-scratch cross-check).
var debugProfile = os.Getenv(debugProfileEnv) != ""

// profile is a step function of free cores over time: free[i] cores are
// available in [times[i], times[i+1]), and the last segment extends to
// infinity. Breakpoints are strictly increasing. The zero value is not
// usable; use newProfile.
type profile struct {
	times []int64
	free  []int
	// bmax and bmin are the per-bucket free-core summaries described at
	// bucketShift: bmax[b]/bmin[b] are the maximum/minimum of
	// free[b*bucketLen : (b+1)*bucketLen] (the last bucket may be
	// partial). Both are empty while the profile has fewer than
	// bucketActivate segments.
	bmax  []int
	bmin  []int
	cores int
	// firstFree is a conservative skip hint: every segment before index
	// firstFree has zero free cores, so no slot search can start there. A
	// saturated cluster's profile grows a long all-zero prefix that every
	// CBF placement and every completion estimate would otherwise rescan.
	// Reservations preserve the invariant (they only remove cores); releases
	// and reshaping operations reset the hint to 0, which is always valid.
	firstFree int
	// refs counts live estimate snapshots referencing this profile. While
	// refs > 0 the profile is immutable (mutations copy or swap in a fresh
	// buffer); when the last snapshot releases a superseded profile, its
	// buffer returns to the scheduler's spare bank instead of becoming
	// garbage — the cycle that keeps steady-state re-planning allocation-free
	// even though every sweep pins one profile per cluster.
	refs int
}

// newProfile returns a profile with all cores free from `start` onwards.
func newProfile(start int64, cores int) *profile {
	return &profile{times: []int64{start}, free: []int{cores}, cores: cores}
}

// copyFrom makes p an independent copy of src, reusing p's backing arrays
// when they are large enough. This is the single place profile storage is
// allocated for copies: growth allocates the segment slices together with
// exact capacity, so clone and every scratch-buffer reuse path share the
// same allocation discipline. Each pairwise capacity check names both
// slices — the arrays usually grow in lockstep, but nothing guarantees it
// (a hand-built or partially grown buffer can diverge), and reusing one
// array while reallocating logically from the other's capacity would slice
// beyond cap or alias stale data.
func (p *profile) copyFrom(src *profile) {
	n := len(src.times)
	if cap(p.times) < n || cap(p.free) < n {
		p.times = make([]int64, n)
		p.free = make([]int, n)
	}
	p.times = p.times[:n]
	p.free = p.free[:n]
	copy(p.times, src.times)
	copy(p.free, src.free)
	nb := len(src.bmax)
	if cap(p.bmax) < nb || cap(p.bmin) < nb {
		p.bmax = make([]int, nb)
		p.bmin = make([]int, nb)
	}
	p.bmax = p.bmax[:nb]
	p.bmin = p.bmin[:nb]
	copy(p.bmax, src.bmax)
	copy(p.bmin, src.bmin)
	p.cores = src.cores
	p.firstFree = src.firstFree
	p.debugCheck()
}

// reset makes p the all-free profile newProfile would return, reusing its
// backing arrays.
func (p *profile) reset(start int64, cores int) {
	p.times = append(p.times[:0], start)
	p.free = append(p.free[:0], cores)
	p.bmax = p.bmax[:0]
	p.bmin = p.bmin[:0]
	p.cores = cores
	p.firstFree = 0
}

// clone returns an independent copy of the profile.
func (p *profile) clone() *profile {
	c := &profile{}
	c.copyFrom(p)
	return c
}

// grow reserves capacity for at least extra additional breakpoints, so a
// planning loop that is about to insert a known number of them pays one
// allocation instead of successive append doublings. The bucket summaries
// are pre-sized for the same segment count, keeping insertions within the
// grown capacity allocation-free end to end.
func (p *profile) grow(extra int) {
	need := len(p.times) + extra
	if cap(p.times) < need || cap(p.free) < need {
		nt := make([]int64, len(p.times), need)
		nf := make([]int, len(p.free), need)
		copy(nt, p.times)
		copy(nf, p.free)
		p.times = nt
		p.free = nf
	}
	nb := numBuckets(need)
	if cap(p.bmax) < nb || cap(p.bmin) < nb {
		bx := make([]int, len(p.bmax), nb)
		bn := make([]int, len(p.bmin), nb)
		copy(bx, p.bmax)
		copy(bn, p.bmin)
		p.bmax = bx
		p.bmin = bn
	}
}

// resummarizeFrom rebuilds every bucket summary covering a segment index
// >= from, switching the summaries on or off at the bucketActivate
// threshold. It is the hook for every reshaping mutation: breakpoint
// insertion and removal shift the segment indexes after the edit point, so
// the suffix of buckets — and only the suffix — goes stale. The callers
// already pay a memmove over the same suffix, so the rebuild does not
// change their complexity.
func (p *profile) resummarizeFrom(from int) {
	n := len(p.times)
	if n < bucketActivate {
		p.bmax = p.bmax[:0]
		p.bmin = p.bmin[:0]
		return
	}
	nb := numBuckets(n)
	if len(p.bmax) == 0 {
		from = 0 // first activation: every bucket needs a summary
	}
	if cap(p.bmax) < nb || cap(p.bmin) < nb {
		// Headroom for a further bucketLen buckets so steady growth does
		// not reallocate the summaries on every crossing of a bucket
		// boundary.
		bx := make([]int, len(p.bmax), nb+bucketLen)
		bn := make([]int, len(p.bmin), nb+bucketLen)
		copy(bx, p.bmax)
		copy(bn, p.bmin)
		p.bmax = bx
		p.bmin = bn
	}
	p.bmax = p.bmax[:nb]
	p.bmin = p.bmin[:nb]
	for b := from >> bucketShift; b < nb; b++ {
		lo := b << bucketShift
		hi := lo + bucketLen
		if hi > n {
			hi = n
		}
		p.recomputeBucket(b, lo, hi)
	}
}

// recomputeBucket refreshes bucket b's summary from free[lo:hi].
func (p *profile) recomputeBucket(b, lo, hi int) {
	mx, mn := p.free[lo], p.free[lo]
	for _, f := range p.free[lo+1 : hi] {
		if f > mx {
			mx = f
		}
		if f < mn {
			mn = f
		}
	}
	p.bmax[b] = mx
	p.bmin[b] = mn
}

// resummarizeIfActive forwards to resummarizeFrom unless the profile is
// both below the activation threshold and already summary-free, in which
// case there is nothing to rebuild. The guard lives in this inlinable
// wrapper so the hot mutation paths of shallow profiles — where the
// summaries never switch on — do not even pay the call.
func (p *profile) resummarizeIfActive(from int) {
	if len(p.bmax) != 0 || len(p.times) >= bucketActivate {
		p.resummarizeFrom(from)
	}
}

// bucketsAdjustIfActive forwards to bucketsAdjust when summaries exist;
// like resummarizeIfActive it keeps inactive profiles call-free.
func (p *profile) bucketsAdjustIfActive(si, ei, delta int) {
	if len(p.bmax) != 0 {
		p.bucketsAdjust(si, ei, delta)
	}
}

// bucketsAdjust applies a uniform free-count delta over segments [si, ei)
// to the summaries: a bucket fully inside the range shifts its max and min
// by the delta, and the at most two partial boundary buckets are
// recomputed. Callers apply the delta to the segments first.
func (p *profile) bucketsAdjust(si, ei, delta int) {
	if len(p.bmax) == 0 {
		return
	}
	n := len(p.times)
	for b := si >> bucketShift; b <= (ei-1)>>bucketShift; b++ {
		lo := b << bucketShift
		hi := lo + bucketLen
		if hi > n {
			hi = n
		}
		if si <= lo && ei >= hi {
			p.bmax[b] += delta
			p.bmin[b] += delta
			continue
		}
		p.recomputeBucket(b, lo, hi)
	}
}

// segmentIndex returns the index of the segment containing time t, assuming
// t >= p.times[0].
func (p *profile) segmentIndex(t int64) int {
	// sort.Search finds the first breakpoint strictly greater than t; the
	// containing segment is the one before it.
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	return idx - 1
}

// ensureBreak inserts a breakpoint at time t (if not already present) and
// returns its index. t must be >= p.times[0].
func (p *profile) ensureBreak(t int64) int {
	return p.ensureBreakFrom(0, t)
}

// segmentIndexFrom is segmentIndex resuming its binary search at hint, for
// callers that already located an earlier segment. A hint that is exactly
// the containing segment — the usual case when a reservation follows a slot
// search, including a hint whose breakpoint equals t exactly — costs one
// comparison; an out-of-range or too-late hint falls back to a full search.
// The hint is positional, not temporal: any in-range hint with
// times[hint] <= t resumes correctly even if it was taken before a reshaping
// mutation, because the binary search over times[hint:] still brackets t.
func (p *profile) segmentIndexFrom(hint int, t int64) int {
	if hint < 0 || hint >= len(p.times) || p.times[hint] > t {
		hint = 0
	} else if hint+1 == len(p.times) || p.times[hint+1] > t {
		return hint
	}
	return hint + sort.Search(len(p.times)-hint, func(i int) bool { return p.times[hint+i] > t }) - 1
}

// ensureBreakFrom is ensureBreak resuming its segment search at hint, for
// callers that already located an earlier segment (a reservation inserts its
// end breakpoint at or after its start's segment, and a planning loop knows
// the segment the slot search returned). A t that is already a breakpoint —
// including the profile origin, which trimTo may have moved onto a time that
// never was an explicit breakpoint — returns the existing index without
// inserting.
func (p *profile) ensureBreakFrom(hint int, t int64) int {
	idx := p.segmentIndexFrom(hint, t)
	if p.times[idx] == t {
		return idx
	}
	// Split the segment: insert t after idx with the same free count.
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[idx+2:], p.times[idx+1:])
	copy(p.free[idx+2:], p.free[idx+1:])
	p.times[idx+1] = t
	p.free[idx+1] = p.free[idx]
	p.resummarizeIfActive(idx + 1)
	return idx + 1
}

// freeAt returns the number of free cores at time t (t >= p.times[0]).
func (p *profile) freeAt(t int64) int {
	return p.free[p.segmentIndex(t)]
}

// reserve subtracts procs cores in [start, end). It returns an error if the
// reservation would make any segment negative, which indicates a scheduling
// bug rather than a recoverable condition. Availability is validated before
// any count is decremented, so a failed reserve leaves the step function
// unchanged (at worst with redundant breakpoints) — which is what lets the
// scheduler mutate a live profile in place instead of cloning defensively.
func (p *profile) reserve(start, end int64, procs int) error {
	_, err := p.reserveAt(start, end, procs)
	return err
}

// reserveAt is reserve, returning additionally the index of the segment that
// begins at start. Planning loops with monotone lower bounds (FCFS) use the
// index as a resume cursor for the next findSlotFrom, so a full queue
// re-plan scans each profile segment once instead of once per job.
func (p *profile) reserveAt(start, end int64, procs int) (int, error) {
	return p.reserveAtHint(start, end, procs, 0)
}

// reserveAtHint is reserveAt with a segment hint for start — typically the
// index findSlotFrom just returned — saving the two full binary searches of
// the plain breakpoint insertion.
func (p *profile) reserveAtHint(start, end int64, procs, hint int) (int, error) {
	if end <= start {
		return 0, fmt.Errorf("batch: reserve with end %d <= start %d", end, start)
	}
	if start < p.times[0] {
		return 0, fmt.Errorf("batch: reserve starting at %d before profile origin %d", start, p.times[0])
	}
	si, ei := p.ensureBreakPair(hint, start, end)
	for i := si; i < ei; i++ {
		if p.free[i] < procs {
			return si, fmt.Errorf("batch: reservation of %d cores in [%d,%d) exceeds availability %d at t=%d",
				procs, start, end, p.free[i], p.times[i])
		}
	}
	for i := si; i < ei; i++ {
		p.free[i] -= procs
	}
	p.bucketsAdjustIfActive(si, ei, -procs)
	// Advance the skip hint over any prefix this reservation zeroed out.
	// (Breakpoint insertion cannot invalidate the hint: splitting a zero
	// segment only produces zero segments.)
	for p.firstFree < len(p.free)-1 && p.free[p.firstFree] == 0 {
		p.firstFree++
	}
	p.debugCheck()
	return si, nil
}

// ensureBreakPair inserts breakpoints at start and end (end > start) in a
// single pass and returns their indexes. When both breakpoints are new, the
// slice tail beyond end moves once by two slots instead of once per
// insertion — and the pair shares one segment search, resumed at hint.
func (p *profile) ensureBreakPair(hint int, start, end int64) (int, int) {
	is := p.segmentIndexFrom(hint, start)
	ie := p.segmentIndexFrom(is, end)
	sNew := p.times[is] != start
	eNew := p.times[ie] != end
	if !sNew && !eNew {
		return is, ie
	}
	n := len(p.times)
	shift := 0
	if sNew {
		shift++
	}
	if eNew {
		shift++
	}
	for i := 0; i < shift; i++ {
		p.times = append(p.times, 0)
		p.free = append(p.free, 0)
	}
	var ri, re int
	switch {
	case sNew && eNew:
		endFree := p.free[ie]
		copy(p.times[ie+3:n+2], p.times[ie+1:n])
		copy(p.free[ie+3:n+2], p.free[ie+1:n])
		copy(p.times[is+2:ie+2], p.times[is+1:ie+1])
		copy(p.free[is+2:ie+2], p.free[is+1:ie+1])
		p.times[is+1] = start
		p.free[is+1] = p.free[is]
		p.times[ie+2] = end
		p.free[ie+2] = endFree
		ri, re = is+1, ie+2
	case sNew:
		copy(p.times[is+2:n+1], p.times[is+1:n])
		copy(p.free[is+2:n+1], p.free[is+1:n])
		p.times[is+1] = start
		p.free[is+1] = p.free[is]
		ri, re = is+1, ie+1
	default: // eNew only
		copy(p.times[ie+2:n+1], p.times[ie+1:n])
		copy(p.free[ie+2:n+1], p.free[ie+1:n])
		p.times[ie+1] = end
		p.free[ie+1] = p.free[ie]
		ri, re = is, ie+1
	}
	// Indexes from the first inserted slot onward shifted; the summaries of
	// the buckets covering them went stale with them.
	from := ie + 1
	if sNew {
		from = is + 1
	}
	p.resummarizeIfActive(from)
	return ri, re
}

// span is one [start, end) x procs reservation of a batched reserveAll.
type span struct {
	start, end int64
	procs      int
}

// reserveAll applies a batch of reservations in a single sweep: the spans'
// boundaries are sorted once (k log k) and merged with the existing
// breakpoints in one pass (n + k), instead of paying one O(n) breakpoint
// insertion per span. The result is the same step function k individual
// reserves would produce, emitted in canonical (merged) form. From-scratch
// profile builds — the capacity baseline and the invalidation-recovery
// rebuild of the running-jobs profile — are its callers.
func (p *profile) reserveAll(spans []span) error {
	if len(spans) == 0 {
		return nil
	}
	type boundary struct {
		t     int64
		delta int
	}
	bounds := make([]boundary, 0, 2*len(spans))
	for _, s := range spans {
		if s.end <= s.start {
			return fmt.Errorf("batch: reserve with end %d <= start %d", s.end, s.start)
		}
		if s.start < p.times[0] {
			return fmt.Errorf("batch: reserve starting at %d before profile origin %d", s.start, p.times[0])
		}
		bounds = append(bounds, boundary{s.start, s.procs}, boundary{s.end, -s.procs})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })
	outT := make([]int64, 0, len(p.times)+len(bounds))
	outF := make([]int, 0, len(p.times)+len(bounds))
	base := p.free[0]
	reserved := 0
	i, bi := 0, 0
	for i < len(p.times) || bi < len(bounds) {
		var t int64
		if bi >= len(bounds) || (i < len(p.times) && p.times[i] <= bounds[bi].t) {
			t = p.times[i]
		} else {
			t = bounds[bi].t
		}
		if i < len(p.times) && p.times[i] == t {
			base = p.free[i]
			i++
		}
		for bi < len(bounds) && bounds[bi].t == t {
			reserved += bounds[bi].delta
			bi++
		}
		f := base - reserved
		if f < 0 {
			return fmt.Errorf("batch: batched reservation exceeds availability at t=%d (%d over)", t, -f)
		}
		if n := len(outF); n == 0 || outF[n-1] != f {
			outT = append(outT, t)
			outF = append(outF, f)
		}
	}
	p.times = outT
	p.free = outF
	p.firstFree = 0
	p.resummarizeFrom(0)
	p.debugCheck()
	return nil
}

// release adds procs cores back in [start, end), undoing the tail of an
// earlier reservation (a job that finished before its walltime returns the
// remainder of its reservation). It returns an error if any segment would
// exceed the cluster size, which indicates a release without a matching
// reservation.
func (p *profile) release(start, end int64, procs int) error {
	if end <= start {
		return fmt.Errorf("batch: release with end %d <= start %d", end, start)
	}
	if start < p.times[0] {
		return fmt.Errorf("batch: release starting at %d before profile origin %d", start, p.times[0])
	}
	si, ei := p.ensureBreakPair(0, start, end)
	for i := si; i < ei; i++ {
		if p.free[i]+procs > p.cores {
			return fmt.Errorf("batch: release of %d cores in [%d,%d) exceeds cluster size %d at t=%d",
				procs, start, end, p.cores, p.times[i])
		}
		p.free[i] += procs
	}
	// Freed cores may re-open the prefix; 0 is the always-valid hint.
	p.firstFree = 0
	// Reserves and releases on a canonical profile can only create
	// equal-adjacent segments at the released window's two boundaries, so a
	// local merge there keeps the profile canonical without normalize's
	// full scan per early finish. The merges remove at most two breakpoints
	// at or after si, so one suffix resummarize covers both them and the
	// incremented range.
	p.mergeAt(ei)
	p.mergeAt(si)
	p.resummarizeIfActive(si)
	p.debugCheck()
	return nil
}

// mergeAt removes breakpoint i when its segment continues the previous one
// with the same free count. The caller resummarizes the suffix.
func (p *profile) mergeAt(i int) {
	if i <= 0 || i >= len(p.times) || p.free[i] != p.free[i-1] {
		return
	}
	p.times = append(p.times[:i], p.times[i+1:]...)
	p.free = append(p.free[:i], p.free[i+1:]...)
}

// trimTo drops every breakpoint before t, making t the new origin. The free
// count at t is preserved. A t at or before the current origin is a no-op.
func (p *profile) trimTo(t int64) {
	if t <= p.times[0] {
		return
	}
	idx := p.segmentIndex(t)
	n := copy(p.times, p.times[idx:])
	p.times = p.times[:n]
	p.times[0] = t
	n = copy(p.free, p.free[idx:])
	p.free = p.free[:n]
	p.normalize()
}

// normalize merges adjacent segments with equal free counts, keeping the
// step function in canonical form so profiles can be compared and stay small
// under repeated release/trim cycles. Its callers add cores or shift
// segments, either of which can move the first free segment left, so the
// skip hint resets to the always-valid 0.
func (p *profile) normalize() {
	p.firstFree = 0
	out := 0
	for i := 1; i < len(p.times); i++ {
		if p.free[i] == p.free[out] {
			continue
		}
		out++
		p.times[out] = p.times[i]
		p.free[out] = p.free[i]
	}
	p.times = p.times[:out+1]
	p.free = p.free[:out+1]
	p.resummarizeFrom(0)
	p.debugCheck()
}

// equal reports whether two profiles describe the same step function. Both
// sides are compared in canonical (normalized) form without being mutated.
func (p *profile) equal(o *profile) bool {
	a, b := p.clone(), o.clone()
	a.normalize()
	b.normalize()
	if a.cores != b.cores || len(a.times) != len(b.times) {
		return false
	}
	for i := range a.times {
		if a.times[i] != b.times[i] || a.free[i] != b.free[i] {
			return false
		}
	}
	return true
}

// findSlot returns the earliest start time >= earliest at which procs cores
// are continuously free for `duration` seconds, or noSlot when procs exceeds
// the cluster size. duration must be positive.
func (p *profile) findSlot(earliest, duration int64, procs int) int64 {
	start, _ := p.findSlotFrom(0, earliest, duration, procs)
	return start
}

// findSlotFrom is findSlot with a resume cursor: the search starts at
// segment hint instead of binary-searching from the beginning, and the index
// of the segment containing the returned start is handed back so a monotone
// caller (FCFS planning, whose lower bounds never decrease) can resume the
// next search there. A hint that is out of range or past earliest falls back
// to 0, so a stale cursor degrades to the plain search rather than
// misbehaving.
//
// Both scan loops consult the bucket summaries: the start-candidate scan
// jumps over buckets whose maximum free count cannot host procs cores at
// all, and the window-validation scan swallows whole buckets whose minimum
// already satisfies procs. Each skip is taken only when provably equivalent
// to the plain scan, so the result is bit-identical with and without
// summaries.
func (p *profile) findSlotFrom(hint int, earliest, duration int64, procs int) (int64, int) {
	if procs > p.cores || procs <= 0 || duration <= 0 {
		return noSlot, 0
	}
	if earliest < p.times[0] {
		earliest = p.times[0]
	}
	// No slot can begin inside the all-zero prefix tracked by the skip
	// hint; jumping the search past it spares every placement and estimate
	// on a saturated cluster a scan over segments that cannot host anything.
	if ff := p.firstFree; ff > 0 && ff < len(p.times) && p.times[ff] > earliest {
		earliest = p.times[ff]
		if hint < ff {
			hint = ff
		}
	}
	if hint < 0 || hint >= len(p.times) || p.times[hint] > earliest {
		hint = 0
	}
	start := earliest
	// The segment containing start, found within times[hint:] — the cursor
	// caller has already established times[hint] <= start. Local slice
	// headers let the compiler drop bounds checks in the scan loops.
	times, free := p.times, p.free
	bmax, bmin := p.bmax, p.bmin
	n := len(times)
	idx := hint + sort.Search(n-hint, func(i int) bool { return times[hint+i] > start }) - 1
	for {
		// Advance start until the current segment has enough cores.
		for idx < n && free[idx] < procs {
			idx++
			if idx&(bucketLen-1) == 0 {
				// idx reached a bucket head: whole buckets that top out
				// below procs cannot host a start — hop over them. The
				// summaries are consulted only at bucket boundaries so the
				// common per-segment step stays one AND and a rarely-taken
				// branch; hopping past n is caught right below, exactly as
				// the plain scan's exit would.
				for b := idx >> bucketShift; b < len(bmax) && bmax[b] < procs; b++ {
					idx += bucketLen
				}
			}
			if idx >= n {
				// The final segment always has the idle cluster... not
				// necessarily: running jobs bounded by walltime eventually
				// end, so the last segment has at least procs free unless a
				// reservation extends to infinity, which never happens.
				return noSlot, 0
			}
			start = times[idx]
		}
		if idx >= n {
			return noSlot, 0
		}
		// Check that availability holds until start+duration.
		end := start + duration
		ok := true
		for j := idx; j < n; {
			segStart := times[j]
			if segStart >= end {
				break
			}
			if free[j] < procs {
				// Not enough here; restart the search from this breakpoint.
				start = segStart
				idx = j
				ok = false
				break
			}
			j++
			if j&(bucketLen-1) == 0 {
				// j reached a bucket head: buckets whose minimum already
				// satisfies procs cannot fail the window, wherever it ends —
				// swallow them whole. Overshooting past the window's end or
				// the last (partial) bucket is harmless: the loop conditions
				// re-establish the plain scan's exit.
				for b := j >> bucketShift; b < len(bmin) && bmin[b] >= procs; b++ {
					j += bucketLen
				}
			}
		}
		if ok {
			return start, idx
		}
	}
}

// minFree returns the minimum number of free cores over the whole profile.
// It is used by invariant checks in tests.
func (p *profile) minFree() int {
	m := p.cores
	for _, f := range p.free {
		if f < m {
			m = f
		}
	}
	return m
}

// maxFree returns the maximum number of free cores over the whole profile.
func (p *profile) maxFree() int {
	m := 0
	for _, f := range p.free {
		if f > m {
			m = f
		}
	}
	return m
}

// debugCheck runs the structural validator when GRIDREALLOC_DEBUG_PROFILE
// is set; a violation panics, because a malformed profile means a bug in
// this file, not a recoverable input condition.
func (p *profile) debugCheck() {
	if !debugProfile {
		return
	}
	if err := p.check(); err != nil {
		panic(err)
	}
}

// check validates every structural invariant the profile relies on: length
// coupling of the segment arrays, strictly increasing breakpoints, free
// counts within [0, cores], a sound firstFree hint (only zero segments
// before it) and bucket summaries that match a recomputation. The property
// tests call it after every operation; the GRIDREALLOC_DEBUG_PROFILE paths
// call it after every mutation.
func (p *profile) check() error {
	if len(p.times) != len(p.free) {
		return fmt.Errorf("batch: profile arrays diverged: %d times, %d free", len(p.times), len(p.free))
	}
	if len(p.times) == 0 {
		return fmt.Errorf("batch: profile has no segments")
	}
	for i := 1; i < len(p.times); i++ {
		if p.times[i] <= p.times[i-1] {
			return fmt.Errorf("batch: breakpoints not strictly increasing at %d: %d then %d", i, p.times[i-1], p.times[i])
		}
	}
	for i, f := range p.free {
		if f < 0 || f > p.cores {
			return fmt.Errorf("batch: free count %d out of [0,%d] at segment %d", f, p.cores, i)
		}
	}
	if p.firstFree < 0 || p.firstFree >= len(p.free) {
		return fmt.Errorf("batch: firstFree %d out of range [0,%d)", p.firstFree, len(p.free))
	}
	for i := 0; i < p.firstFree; i++ {
		if p.free[i] != 0 {
			return fmt.Errorf("batch: firstFree %d skips non-zero segment %d (%d free)", p.firstFree, i, p.free[i])
		}
	}
	if len(p.bmax) != len(p.bmin) {
		return fmt.Errorf("batch: bucket arrays diverged: %d bmax, %d bmin", len(p.bmax), len(p.bmin))
	}
	if len(p.times) < bucketActivate {
		if len(p.bmax) != 0 {
			return fmt.Errorf("batch: %d segments carry %d bucket summaries below the activation threshold", len(p.times), len(p.bmax))
		}
		return nil
	}
	if nb := numBuckets(len(p.times)); len(p.bmax) != nb {
		return fmt.Errorf("batch: %d bucket summaries for %d segments, want %d", len(p.bmax), len(p.times), nb)
	}
	for b := range p.bmax {
		lo := b << bucketShift
		hi := lo + bucketLen
		if hi > len(p.free) {
			hi = len(p.free)
		}
		mx, mn := p.free[lo], p.free[lo]
		for _, f := range p.free[lo+1 : hi] {
			if f > mx {
				mx = f
			}
			if f < mn {
				mn = f
			}
		}
		if p.bmax[b] != mx || p.bmin[b] != mn {
			return fmt.Errorf("batch: bucket %d summary (max %d, min %d) disagrees with segments (max %d, min %d)",
				b, p.bmax[b], p.bmin[b], mx, mn)
		}
	}
	return nil
}
