// Package batch simulates a cluster's local resource management system
// (batch scheduler). It models the two policies the paper evaluates —
// First Come First Served (FCFS) without backfilling and Conservative
// Back-Filling (CBF) — on top of an availability profile, and exposes the
// restricted set of operations the grid middleware is allowed to use:
// submission, cancellation of waiting jobs, estimation of completion times
// and listing of the waiting queue.
//
// The scheduler plans reservations using the jobs' requested walltimes
// (rescaled to the cluster speed) because that is all a real batch system
// knows; the actual runtimes only manifest as early completions (or
// walltime kills), which trigger a re-plan. That gap between plan and
// reality is precisely what the paper's reallocation mechanism exploits.
package batch

import (
	"fmt"
	"sort"
)

// noSlot is returned by findSlot when the request can never be satisfied.
const noSlot int64 = -1

// profile is a step function of free cores over time: free[i] cores are
// available in [times[i], times[i+1]), and the last segment extends to
// infinity. Breakpoints are strictly increasing. The zero value is not
// usable; use newProfile.
type profile struct {
	times []int64
	free  []int
	cores int
}

// newProfile returns a profile with all cores free from `start` onwards.
func newProfile(start int64, cores int) *profile {
	return &profile{times: []int64{start}, free: []int{cores}, cores: cores}
}

// clone returns an independent copy of the profile.
func (p *profile) clone() *profile {
	return &profile{
		times: append([]int64(nil), p.times...),
		free:  append([]int(nil), p.free...),
		cores: p.cores,
	}
}

// segmentIndex returns the index of the segment containing time t, assuming
// t >= p.times[0].
func (p *profile) segmentIndex(t int64) int {
	// sort.Search finds the first breakpoint strictly greater than t; the
	// containing segment is the one before it.
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	return idx - 1
}

// ensureBreak inserts a breakpoint at time t (if not already present) and
// returns its index. t must be >= p.times[0].
func (p *profile) ensureBreak(t int64) int {
	idx := p.segmentIndex(t)
	if p.times[idx] == t {
		return idx
	}
	// Split the segment: insert t after idx with the same free count.
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[idx+2:], p.times[idx+1:])
	copy(p.free[idx+2:], p.free[idx+1:])
	p.times[idx+1] = t
	p.free[idx+1] = p.free[idx]
	return idx + 1
}

// freeAt returns the number of free cores at time t (t >= p.times[0]).
func (p *profile) freeAt(t int64) int {
	return p.free[p.segmentIndex(t)]
}

// reserve subtracts procs cores in [start, end). It returns an error if the
// reservation would make any segment negative, which indicates a scheduling
// bug rather than a recoverable condition.
func (p *profile) reserve(start, end int64, procs int) error {
	if end <= start {
		return fmt.Errorf("batch: reserve with end %d <= start %d", end, start)
	}
	if start < p.times[0] {
		return fmt.Errorf("batch: reserve starting at %d before profile origin %d", start, p.times[0])
	}
	si := p.ensureBreak(start)
	ei := p.ensureBreak(end)
	for i := si; i < ei; i++ {
		if p.free[i] < procs {
			return fmt.Errorf("batch: reservation of %d cores in [%d,%d) exceeds availability %d at t=%d",
				procs, start, end, p.free[i], p.times[i])
		}
		p.free[i] -= procs
	}
	return nil
}

// release adds procs cores back in [start, end), undoing the tail of an
// earlier reservation (a job that finished before its walltime returns the
// remainder of its reservation). It returns an error if any segment would
// exceed the cluster size, which indicates a release without a matching
// reservation.
func (p *profile) release(start, end int64, procs int) error {
	if end <= start {
		return fmt.Errorf("batch: release with end %d <= start %d", end, start)
	}
	if start < p.times[0] {
		return fmt.Errorf("batch: release starting at %d before profile origin %d", start, p.times[0])
	}
	si := p.ensureBreak(start)
	ei := p.ensureBreak(end)
	for i := si; i < ei; i++ {
		if p.free[i]+procs > p.cores {
			return fmt.Errorf("batch: release of %d cores in [%d,%d) exceeds cluster size %d at t=%d",
				procs, start, end, p.cores, p.times[i])
		}
		p.free[i] += procs
	}
	p.normalize()
	return nil
}

// trimTo drops every breakpoint before t, making t the new origin. The free
// count at t is preserved. A t at or before the current origin is a no-op.
func (p *profile) trimTo(t int64) {
	if t <= p.times[0] {
		return
	}
	idx := p.segmentIndex(t)
	n := copy(p.times, p.times[idx:])
	p.times = p.times[:n]
	p.times[0] = t
	n = copy(p.free, p.free[idx:])
	p.free = p.free[:n]
	p.normalize()
}

// normalize merges adjacent segments with equal free counts, keeping the
// step function in canonical form so profiles can be compared and stay small
// under repeated release/trim cycles.
func (p *profile) normalize() {
	out := 0
	for i := 1; i < len(p.times); i++ {
		if p.free[i] == p.free[out] {
			continue
		}
		out++
		p.times[out] = p.times[i]
		p.free[out] = p.free[i]
	}
	p.times = p.times[:out+1]
	p.free = p.free[:out+1]
}

// equal reports whether two profiles describe the same step function. Both
// sides are compared in canonical (normalized) form without being mutated.
func (p *profile) equal(o *profile) bool {
	a, b := p.clone(), o.clone()
	a.normalize()
	b.normalize()
	if a.cores != b.cores || len(a.times) != len(b.times) {
		return false
	}
	for i := range a.times {
		if a.times[i] != b.times[i] || a.free[i] != b.free[i] {
			return false
		}
	}
	return true
}

// findSlot returns the earliest start time >= earliest at which procs cores
// are continuously free for `duration` seconds, or noSlot when procs exceeds
// the cluster size. duration must be positive.
func (p *profile) findSlot(earliest, duration int64, procs int) int64 {
	if procs > p.cores || procs <= 0 || duration <= 0 {
		return noSlot
	}
	if earliest < p.times[0] {
		earliest = p.times[0]
	}
	start := earliest
	idx := p.segmentIndex(start)
	for {
		// Advance start until the current segment has enough cores.
		for idx < len(p.times) && p.free[idx] < procs {
			idx++
			if idx == len(p.times) {
				// The final segment always has the idle cluster... not
				// necessarily: running jobs bounded by walltime eventually
				// end, so the last segment has at least procs free unless a
				// reservation extends to infinity, which never happens.
				return noSlot
			}
			start = p.times[idx]
		}
		if idx >= len(p.times) {
			return noSlot
		}
		// Check that availability holds until start+duration.
		end := start + duration
		ok := true
		for j := idx; j < len(p.times); j++ {
			segStart := p.times[j]
			if segStart >= end {
				break
			}
			if p.free[j] < procs {
				// Not enough here; restart the search from this breakpoint.
				start = p.times[j]
				idx = j
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
}

// minFree returns the minimum number of free cores over the whole profile.
// It is used by invariant checks in tests.
func (p *profile) minFree() int {
	m := p.cores
	for _, f := range p.free {
		if f < m {
			m = f
		}
	}
	return m
}

// maxFree returns the maximum number of free cores over the whole profile.
func (p *profile) maxFree() int {
	m := 0
	for _, f := range p.free {
		if f > m {
			m = f
		}
	}
	return m
}
