package batch

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/sim"
	"gridrealloc/internal/workload"
)

// Policy selects the local scheduling algorithm of a cluster.
type Policy int

// The two local resource management policies the paper evaluates.
const (
	// FCFS (First Come First Served) gives each job the earliest slot at the
	// end of the job queue: a job never starts before a job submitted before
	// it (no backfilling).
	FCFS Policy = iota
	// CBF (Conservative Back-Filling) gives each job the earliest hole in
	// the availability profile that does not delay any previously queued
	// job.
	CBF
)

// String returns "FCFS" or "CBF".
func (p Policy) String() string {
	if p == CBF {
		return "CBF"
	}
	return "FCFS"
}

// ParsePolicy converts a string (case-sensitive "FCFS"/"CBF") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "FCFS":
		return FCFS, nil
	case "CBF":
		return CBF, nil
	default:
		return FCFS, fmt.Errorf("batch: unknown policy %q", s)
	}
}

// OutagePolicy selects what happens to running jobs displaced by an
// unannounced capacity outage: the cores they occupy vanish, so they either
// die or go back to the waiting queue.
type OutagePolicy int

const (
	// KillDisplaced terminates displaced jobs at the outage instant, as a
	// node crash would; they are reported finished with the Killed flag.
	KillDisplaced OutagePolicy = iota
	// RequeueDisplaced puts displaced jobs back at the head of the waiting
	// queue (oldest first), where the grid middleware may reallocate them to
	// another cluster before they restart from scratch.
	RequeueDisplaced
)

// String returns "kill" or "requeue".
func (p OutagePolicy) String() string {
	if p == RequeueDisplaced {
		return "requeue"
	}
	return "kill"
}

// ParseOutagePolicy resolves an outage policy from its string form; the
// empty string selects the kill default.
func ParseOutagePolicy(s string) (OutagePolicy, error) {
	switch s {
	case "kill", "":
		return KillDisplaced, nil
	case "requeue":
		return RequeueDisplaced, nil
	default:
		return KillDisplaced, fmt.Errorf("batch: unknown outage policy %q", s)
	}
}

// Errors returned by the scheduler API.
var (
	// ErrTooWide is returned when a job requests more processors than the
	// cluster has.
	ErrTooWide = errors.New("batch: job requests more processors than the cluster has")
	// ErrUnknownJob is returned when an operation references a job the
	// scheduler does not hold at all.
	ErrUnknownJob = errors.New("batch: unknown waiting job")
	// ErrJobRunning is returned by Cancel when the job is already executing:
	// the middleware only reallocates jobs in waiting state, and a cancel that
	// races with a job start must be distinguishable from a cancel of a job
	// the cluster never heard of.
	ErrJobRunning = errors.New("batch: job is already running")
	// ErrDuplicateJob is returned when a job ID is submitted twice.
	ErrDuplicateJob = errors.New("batch: job already submitted")
	// ErrTimeTravel is returned when an operation carries a timestamp before
	// the scheduler's current time.
	ErrTimeTravel = errors.New("batch: operation timestamp is in the past")
)

// allocation is a job currently executing on the cluster.
type allocation struct {
	job      workload.Job
	start    int64
	end      int64 // actual completion (or walltime kill) instant
	wallEnd  int64 // reservation end used for planning (start + scaled walltime)
	killed   bool  // true when end == wallEnd because the runtime exceeded it
	migrated int   // number of times the job was reallocated before starting
}

// queueEntry is a job waiting in the batch queue.
type queueEntry struct {
	job      workload.Job
	enqueued int64
	seq      int64
	// wall is the job's walltime rescaled to this cluster's speed, computed
	// once at enqueue time: every re-plan of the queue needs it, and the
	// floating-point rescale is measurable when re-plans are frequent.
	wall         int64
	plannedStart int64
	plannedEnd   int64
	migrated     int
}

// noNextStart is the nextStart sentinel meaning "no waiting job".
const noNextStart = int64(math.MaxInt64)

// finishQueue is a min-heap of running jobs ordered by completion time.
// Entries are pushed when a job starts and popped when it finishes; unlike
// planned starts, completion instants never change, so the heap is
// maintained incrementally across the scheduler's whole lifetime.
type finishQueue []*allocation

func (q finishQueue) Len() int           { return len(q) }
func (q finishQueue) Less(i, j int) bool { return q[i].end < q[j].end }
func (q finishQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *finishQueue) Push(x any)        { *q = append(*q, x.(*allocation)) }
func (q *finishQueue) Pop() any {
	old := *q
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return a
}

// Notification reports a state change that happened inside the cluster while
// advancing virtual time: a job started, completed, or was pushed back to
// the waiting queue by a capacity outage.
type Notification struct {
	// Kind is Started, Finished or Requeued.
	Kind NotificationKind
	// JobID identifies the job.
	JobID int
	// Time is the instant of the state change.
	Time int64
	// Killed is set on Finished notifications for jobs terminated by the
	// walltime limit or by a capacity outage.
	Killed bool
	// Displaced is set on Finished and Requeued notifications for jobs
	// pushed out of execution by a capacity outage (it distinguishes an
	// outage kill from a walltime kill).
	Displaced bool
}

// NotificationKind distinguishes the notification flavours.
type NotificationKind int

// Notification kinds.
const (
	Started NotificationKind = iota
	Finished
	// Requeued reports a running job displaced by a capacity outage and put
	// back at the head of the waiting queue (RequeueDisplaced policy).
	Requeued
)

// String returns "started", "finished" or "requeued".
func (k NotificationKind) String() string {
	switch k {
	case Finished:
		return "finished"
	case Requeued:
		return "requeued"
	default:
		return "started"
	}
}

// WaitingJob is the externally visible view of a queued job: the job itself
// plus its current predicted start and completion on this cluster.
type WaitingJob struct {
	Job            workload.Job
	EnqueuedAt     int64
	PlannedStart   int64
	PlannedEnd     int64
	Reallocations  int
	QueuePosition  int
	ClusterName    string
	ClusterSpeedup float64
}

// debugProfileEnv enables the incremental-vs-from-scratch profile cross-check
// on every plan rebuild when set to a non-empty value in the environment.
const debugProfileEnv = "GRIDREALLOC_DEBUG_PROFILE"

// Scheduler simulates one cluster's batch system. It is not safe for
// concurrent use; the simulation driver serialises all access.
//
// Internally the scheduler is indexed and incremental: jobs are found by ID
// through hash maps, the next internal event comes from two min-heaps
// (planned starts, running completions), the availability profile of the
// running jobs is maintained incrementally as jobs start/finish instead of
// being reconstructed from the running set, and the waiting-queue plan is
// recomputed lazily — a burst of mutations (such as Algorithm 2 cancelling
// every waiting job back-to-back) pays for a single re-plan at the next
// observation instead of one per mutation.
//
//gridlint:resettable
type Scheduler struct {
	spec   platform.ClusterSpec
	policy Policy
	now    int64

	running     []*allocation       //gridlint:observable
	runningByID map[int]*allocation //gridlint:observable
	waiting     []*queueEntry       //gridlint:observable always sorted by seq (submission order)
	waitingByID map[int]*queueEntry //gridlint:observable
	seq         int64
	// frontSeq hands out decreasing sequence numbers for jobs requeued at
	// the head of the queue after an outage, keeping the waiting slice
	// sorted by seq without renumbering it.
	frontSeq int64

	// maintenance holds the announced capacity windows, baked into every
	// availability profile from construction so planning works around them.
	// outages holds the unannounced windows; outages[nextOutage:] are still
	// invisible to planning and are revealed one by one as internal events
	// when virtual time reaches their start.
	maintenance  []platform.CapacityEvent
	outages      []platform.CapacityEvent
	nextOutage   int          //gridlint:observable reveals change the capacity the middleware sees
	outagePolicy OutagePolicy //gridlint:keep-across-reset caller configuration, like SetOutagePolicy

	// nextStart is the earliest planned start among waiting jobs (or the
	// noNextStart sentinel), valid whenever the plan is clean. Every plan
	// flush visits the whole queue anyway, so a scalar minimum replaces the
	// start-ordered heap the scheduler used to rebuild on each flush.
	nextStart  int64
	finishHeap finishQueue

	// runProf is the availability profile of the running jobs only, bounded
	// by their walltime reservations. It is maintained incrementally: a start
	// reserves [t, wallEnd), an early finish releases the unused tail, and
	// the origin is trimmed forward as virtual time advances. runProfValid is
	// the explicit invalidation path: when false, the next plan rebuild
	// reconstructs it from the running set.
	runProf      *profile
	runProfValid bool

	// planProf is the availability profile including running jobs and all
	// planned waiting reservations; planDirty defers its reconstruction until
	// the next observation. Estimate snapshots share planProf by reference
	// and hold a reference count on it (profile.refs): while referenced, the
	// profile is treated as immutable (rebuilds and appends swap in a fresh
	// buffer). Superseded buffers return to planSpares when their last
	// snapshot releases them — EstimateSnapshotInto releases the snapshot's
	// previous profile on refresh — so steady-state re-planning allocates
	// nothing even though every reallocation sweep pins one profile per
	// cluster between passes.
	planProf    *profile
	planSpares  []*profile //gridlint:keep-across-reset pooled spare buffers, pure capacity
	planDirty   bool
	planVersion uint64
	// maxPlannedStart is the latest planned start among waiting jobs, used
	// as the FCFS lower bound for hypothetical placements.
	maxPlannedStart int64

	// debugCheck cross-checks the incremental run profile against a
	// from-scratch build on every plan rebuild.
	debugCheck bool //gridlint:keep-across-reset caller configuration, like SetDebugCrossCheck

	// notesBuf is the notification buffer reused by Advance; entryPool and
	// allocPool recycle dead queueEntry and allocation structs, carving
	// fresh ones out of block allocations (sim.Arena) so even a fresh run's
	// ramp-up allocates per block, not per job record. Together they make
	// the steady-state event loop allocation-free: a pooled struct is only
	// handed out again once no index, heap or plan can still reach the old
	// occupant (entries die under planDirty and every heap read re-plans
	// first; allocations die when popped from the finish heap).
	notesBuf  []Notification //gridlint:keep-across-reset truncated by Advance before every use
	entryPool sim.Arena[queueEntry]
	allocPool sim.Arena[allocation]
	// spanScratch is reused by the capacity-baseline builds.
	spanScratch []span //gridlint:keep-across-reset scratch, overwritten before every use

	// stateVersion increments on every mutation that can change what the
	// middleware observes about this cluster between two reallocation sweeps:
	// submissions, cancellations, job starts, early finishes (which release
	// reservation tails), outage reveals and explicit invalidations. The
	// meta-scheduler's dirty-cluster tracking compares versions to skip
	// re-gathering queues that provably did not change; plain time advances
	// do not bump it.
	stateVersion uint64

	// ectCache memoises snapshot completion-time estimates per job shape
	// (procs, scaled walltime) while the published plan is unchanged. A cached
	// start remains the true earliest start as long as the profile is
	// identical and the cached start is at or after the query's lower bound:
	// the snapshot lower bound is monotone within one plan version (time only
	// moves forward and the FCFS bound is fixed per plan), so entries are
	// reusable across reallocation sweeps on clusters nothing touched — the
	// dirty-cluster sweep optimisation — and across same-shape candidates
	// within one sweep. ectCacheLower tracks the largest lower bound served
	// from the cache; a query below it (only possible through out-of-order
	// direct snapshot use, never from the simulation driver) bypasses the
	// cache instead of trusting entries computed for a later bound.
	ectCache        map[ectKey]int64
	ectCacheVersion uint64
	ectCacheLower   int64
	ectCacheHits    int64

	// Request counters, reported by the server layer as system-load metrics.
	submissions   int64
	cancellations int64
	ectQueries    int64

	// Profile bookkeeping counters, exposed through ProfileStats.
	planRebuilds    int64
	planAppends     int64
	planReuses      int64
	snapshots       int64
	snapshotHits    int64
	runProfRebuilds int64
}

// NewScheduler returns a scheduler for the given cluster running the given
// policy, with its clock at zero.
func NewScheduler(spec platform.ClusterSpec, policy Policy) (*Scheduler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		spec:        spec,
		policy:      policy,
		runningByID: make(map[int]*allocation),
		waitingByID: make(map[int]*queueEntry),
		frontSeq:    -1,
		nextStart:   noNextStart,
		debugCheck:  os.Getenv(debugProfileEnv) != "",
	}
	for _, e := range spec.Capacity {
		if e.Kind == platform.Maintenance {
			s.maintenance = append(s.maintenance, e)
		} else {
			s.outages = append(s.outages, e)
		}
	}
	s.runProf = s.capacityBaseProfile(0)
	s.runProfValid = true
	s.planProf = s.runProf.clone()
	return s, nil
}

// Reset returns the scheduler to the state NewScheduler(spec, policy) would
// produce — clock at zero, empty queue and running set, capacity timeline
// re-derived from the spec, all request counters cleared — while retaining
// every reusable buffer: the profile backings, the waiting/running slices and
// their indexes, the finish heap, the entry/allocation pools and the
// notification buffer. A reset scheduler is observationally identical to a
// fresh one (every query and event sequence is bit-for-bit the same), so a
// campaign worker can run thousands of scenarios on one scheduler without
// re-allocating its internals; the harness reuse tests prove the equivalence
// over the 72-configuration grid and random scenarios.
//
// What deliberately survives a Reset, beyond buffer capacity: the outage
// policy and debug cross-check settings (both caller configuration, like a
// fresh scheduler's defaults after SetOutagePolicy/SetDebugCrossCheck), and
// the monotone plan version (snapshots taken before the Reset can never
// falsely match the new plan). What must not survive — and does not — is any
// job, reservation, revealed outage, sequence number or statistic.
func (s *Scheduler) Reset(spec platform.ClusterSpec, policy Policy) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	s.spec = spec
	s.policy = policy
	s.now = 0
	for _, a := range s.running {
		s.allocPool.Put(a)
	}
	s.running = s.running[:0]
	clear(s.runningByID)
	for _, e := range s.waiting {
		s.entryPool.Put(e)
	}
	s.waiting = s.waiting[:0]
	clear(s.waitingByID)
	s.seq = 0
	s.frontSeq = -1
	s.maintenance = s.maintenance[:0]
	s.outages = s.outages[:0]
	for _, e := range spec.Capacity {
		if e.Kind == platform.Maintenance {
			s.maintenance = append(s.maintenance, e)
		} else {
			s.outages = append(s.outages, e)
		}
	}
	s.nextOutage = 0
	s.nextStart = noNextStart
	s.finishHeap = s.finishHeap[:0]
	s.capacityBaseProfileInto(s.runProf, 0)
	s.runProfValid = true
	if s.planProf.refs > 0 {
		// A snapshot from the previous run still references the published
		// profile; publish a fresh buffer instead of mutating under it (the
		// old buffer is banked when that snapshot is refreshed or dropped).
		prof := s.takePlanBuffer()
		prof.copyFrom(s.runProf)
		s.planProf = prof //gridlint:allow-retain publishing the buffer is the transfer the pool exists for
	} else {
		s.planProf.copyFrom(s.runProf)
	}
	s.planDirty = false
	s.planVersion++
	s.maxPlannedStart = 0
	s.stateVersion++
	// Drop the memoised completion-time estimates outright. Stale entries
	// were already unreachable — they are keyed to the previous plan version,
	// which the bump above retires — but an explicit clear keeps the reset
	// self-contained instead of leaning on the cache's monotone-version
	// argument, and returns the memory of a large run to steady state.
	clear(s.ectCache)
	s.ectCacheVersion = 0
	s.ectCacheLower = 0
	s.submissions, s.cancellations, s.ectQueries = 0, 0, 0
	s.planRebuilds, s.planAppends, s.planReuses = 0, 0, 0
	s.snapshots, s.snapshotHits, s.runProfRebuilds = 0, 0, 0
	s.ectCacheHits = 0
	return nil
}

// capacityBaseProfile builds the zero-jobs availability profile from `from`
// onwards: the nominal core count reduced by every announced maintenance
// window and by every already revealed outage window, batched into a single
// merge pass. Unrevealed outages are deliberately absent — the scheduler
// must not plan around a failure it cannot know about yet.
func (s *Scheduler) capacityBaseProfile(from int64) *profile {
	prof := newProfile(from, s.spec.Cores)
	s.capacityBaseProfileInto(prof, from)
	return prof
}

// capacityBaseProfileInto is capacityBaseProfile building into a
// caller-owned profile, so the Reset reuse path re-derives the capacity
// baseline without allocating a fresh profile per scenario.
func (s *Scheduler) capacityBaseProfileInto(prof *profile, from int64) {
	prof.reset(from, s.spec.Cores)
	spans := s.spanScratch[:0]
	window := func(w platform.CapacityEvent) {
		if w.End <= from {
			return
		}
		start := w.Start
		if start < from {
			start = from
		}
		spans = append(spans, span{start, w.End, s.spec.Cores - w.Cores})
	}
	for _, w := range s.maintenance {
		window(w)
	}
	for _, w := range s.outages[:s.nextOutage] {
		window(w)
	}
	s.spanScratch = spans
	if err := prof.reserveAll(spans); err != nil {
		// Windows are validated non-overlapping and within the cluster
		// size, so a failed reservation is a programming error.
		panic(fmt.Sprintf("batch: capacity windows unreservable on %s: %v", s.spec.Name, err))
	}
}

// Spec returns the cluster description.
func (s *Scheduler) Spec() platform.ClusterSpec { return s.spec }

// Policy returns the local scheduling policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() int64 { return s.now }

// StateVersion returns a counter that increments on every mutation that can
// change what the middleware observes about this cluster: submissions,
// cancellations, job starts, early finishes, outage reveals and explicit
// invalidations. Time advances that process no such event leave it
// untouched. The meta-scheduler's reallocation sweep records it per cluster
// and skips re-gathering queues whose version did not move — the snapshot it
// took last pass is provably still exact.
func (s *Scheduler) StateVersion() uint64 { return s.stateVersion }

// SetDebugCrossCheck toggles the incremental-vs-from-scratch profile
// cross-check on every plan rebuild (also enabled by the
// GRIDREALLOC_DEBUG_PROFILE environment variable). A mismatch panics,
// because it means the incremental profile diverged from the ground truth.
func (s *Scheduler) SetDebugCrossCheck(on bool) { s.debugCheck = on }

// SetOutagePolicy selects what happens to running jobs displaced by an
// unannounced capacity outage (kill by default).
func (s *Scheduler) SetOutagePolicy(p OutagePolicy) { s.outagePolicy = p }

// OutagePolicy returns the configured displacement policy.
func (s *Scheduler) OutagePolicy() OutagePolicy { return s.outagePolicy }

// Counters returns the number of submissions, cancellations and ECT queries
// served so far.
func (s *Scheduler) Counters() (submissions, cancellations, ectQueries int64) {
	return s.submissions, s.cancellations, s.ectQueries
}

// ProfileStats reports how the incremental machinery behaved: how many times
// the waiting-queue plan was rebuilt versus served from cache, how many ECT
// queries were answered from detached snapshots, and how often the
// incremental run profile had to be reconstructed from scratch through the
// invalidation path.
type ProfileStats struct {
	// PlanRebuilds counts full re-plans of the waiting queue.
	PlanRebuilds int64
	// PlanAppends counts submissions planned through the append fast path,
	// which places only the new job instead of re-planning the whole queue.
	PlanAppends int64
	// PlanReuses counts observations served without a re-plan.
	PlanReuses int64
	// Snapshots counts EstimateSnapshot calls.
	Snapshots int64
	// SnapshotHits counts ECT queries answered from a snapshot.
	SnapshotHits int64
	// RunProfileRebuilds counts from-scratch reconstructions of the running
	// profile (the invalidation path; 0 in healthy runs after the initial
	// build).
	RunProfileRebuilds int64
	// ECTCacheHits counts snapshot estimate queries answered from the
	// per-shape memo instead of a profile slot search (see ectCache).
	ECTCacheHits int64
}

// ProfileStats returns the current profile bookkeeping counters.
func (s *Scheduler) ProfileStats() ProfileStats {
	return ProfileStats{
		PlanRebuilds:       s.planRebuilds,
		PlanAppends:        s.planAppends,
		PlanReuses:         s.planReuses,
		Snapshots:          s.snapshots,
		SnapshotHits:       s.snapshotHits,
		RunProfileRebuilds: s.runProfRebuilds,
		ECTCacheHits:       s.ectCacheHits,
	}
}

// RunningCount returns the number of jobs currently executing.
func (s *Scheduler) RunningCount() int { return len(s.running) }

// WaitingCount returns the number of jobs currently queued.
func (s *Scheduler) WaitingCount() int { return len(s.waiting) }

// UsedCores returns the number of cores occupied by running jobs at the
// current time.
func (s *Scheduler) UsedCores() int {
	used := 0
	for _, a := range s.running {
		used += a.job.Procs
	}
	return used
}

// scaledRuntime returns the execution time of the job on this cluster,
// bounded by the rescaled walltime (walltime kill).
func (s *Scheduler) scaledRuntime(j workload.Job) int64 {
	run := s.spec.ScaleDuration(j.Runtime)
	wall := s.spec.ScaleDuration(j.Walltime)
	if run > wall {
		return wall
	}
	if run < 1 {
		run = 1
	}
	return run
}

// scaledWalltime returns the reservation length of the job on this cluster.
func (s *Scheduler) scaledWalltime(j workload.Job) int64 {
	w := s.spec.ScaleDuration(j.Walltime)
	if w < 1 {
		w = 1
	}
	return w
}

// Fits reports whether the job can ever run on this cluster.
func (s *Scheduler) Fits(j workload.Job) bool { return j.Procs <= s.spec.Cores }

// holdsJob reports whether the scheduler currently holds the job, waiting or
// running.
func (s *Scheduler) holdsJob(id int) bool {
	if _, ok := s.runningByID[id]; ok {
		return true
	}
	_, ok := s.waitingByID[id]
	return ok
}

// Submit enqueues a job at time now. The reallocations argument carries the
// number of times the job has already been moved between clusters, so the
// count survives migration. It returns an error if the job cannot fit, is a
// duplicate, or the timestamp is in the past.
func (s *Scheduler) Submit(j workload.Job, now int64, reallocations int) error {
	if now < s.now {
		return fmt.Errorf("%w: submit at %d, now %d", ErrTimeTravel, now, s.now)
	}
	if err := j.Validate(); err != nil {
		return err
	}
	if !s.Fits(j) {
		return fmt.Errorf("%w: job %d needs %d cores, cluster %q has %d", ErrTooWide, j.ID, j.Procs, s.spec.Name, s.spec.Cores)
	}
	if s.holdsJob(j.ID) {
		return fmt.Errorf("%w: job %d on cluster %q", ErrDuplicateJob, j.ID, s.spec.Name)
	}
	sameNow := now == s.now
	s.now = now
	s.submissions++
	s.stateVersion++
	e := s.newEntry()
	*e = queueEntry{
		job:      j,
		enqueued: now,
		seq:      s.seq,
		wall:     s.scaledWalltime(j),
		migrated: reallocations,
	}
	s.seq++
	s.waiting = append(s.waiting, e)
	s.waitingByID[j.ID] = e
	if sameNow && !s.planDirty {
		// Fast path: a job appended at the end of the queue cannot move any
		// earlier job under either policy, so only the new entry needs
		// planning, on top of the already published plan.
		s.appendToPlan(e)
	} else {
		s.planDirty = true
	}
	return nil
}

// placeEntry plans one job onto prof: the earliest slot at or after the
// policy's lower bound (FCFS forbids starting before prevStart, the latest
// start planned so far), with the end-of-horizon fallback for the
// cannot-happen case of no slot. It reserves the window and returns it,
// together with a cursor (the index of the segment the job starts in) that
// FCFS planning loops pass back as hint: FCFS lower bounds never decrease,
// so resuming the slot search at the previous start's segment scans each
// profile segment once per full re-plan instead of once per job. CBF
// callers pass hint 0 (backfilling may place a job in any earlier hole).
// This is the single planning rule shared by full re-plans, the append fast
// path and the consistency checker, so the three can never drift apart.
func (s *Scheduler) placeEntry(prof *profile, e *queueEntry, prevStart int64, hint int) (start, end int64, cursor int, err error) {
	lower := s.now
	if s.policy == FCFS && prevStart > lower {
		lower = prevStart
	}
	var seg int
	start, seg = prof.findSlotFrom(hint, lower, e.wall, e.job.Procs)
	if start == noSlot {
		// Cannot happen for admitted jobs (procs <= cores); guard anyway by
		// pushing the job to the end of the known horizon.
		start = prof.times[len(prof.times)-1]
		seg = len(prof.times) - 1
	}
	end = start + e.wall
	cursor, err = prof.reserveAtHint(start, end, e.job.Procs, seg)
	return start, end, cursor, err
}

// maxPlanSpares bounds the spare-buffer bank; two buffers cover the
// steady-state rebuild/copy-on-write cycle and a couple more absorb bursts
// of snapshot releases without hoarding memory on idle clusters.
const maxPlanSpares = 4

// takePlanBuffer returns a profile buffer the caller may freely overwrite
// and publish as the next planProf: a recycled spare when one is banked,
// a fresh profile otherwise. Banked spares are never referenced outside the
// scheduler (a buffer is only banked once its last snapshot released it), so
// reusing one cannot disturb a snapshot.
//
//gridlint:pooled
func (s *Scheduler) takePlanBuffer() *profile {
	if n := len(s.planSpares); n > 0 {
		p := s.planSpares[n-1]
		s.planSpares[n-1] = nil
		s.planSpares = s.planSpares[:n-1]
		return p
	}
	return &profile{}
}

// bankPlanBuffer returns an unreferenced profile buffer to the spare bank.
func (s *Scheduler) bankPlanBuffer(p *profile) {
	if p == nil || len(s.planSpares) >= maxPlanSpares {
		return
	}
	s.planSpares = append(s.planSpares, p)
}

// releaseSnapshotProfile drops one snapshot reference from p; the last
// release of a superseded profile banks its buffer for reuse. The published
// profile itself is never banked — it is still the scheduler's plan.
func (s *Scheduler) releaseSnapshotProfile(p *profile) {
	if p.refs > 0 {
		p.refs--
	}
	if p.refs == 0 && p != s.planProf {
		s.bankPlanBuffer(p)
	}
}

// appendToPlan plans a newly appended entry against the current plan
// profile without re-planning the rest of the queue. While no snapshot
// references the published profile the reservation happens in place (reserve
// validates before mutating, so a failure cannot publish a bad profile);
// once a snapshot was handed out the profile is copied first, so snapshots
// keep answering for the state they were taken at — the superseded buffer
// returns to the spare bank when its last snapshot releases it.
func (s *Scheduler) appendToPlan(e *queueEntry) {
	prof := s.planProf
	if prof.refs > 0 {
		cow := s.takePlanBuffer()
		cow.copyFrom(prof)
		prof = cow
	}
	start, end, _, err := s.placeEntry(prof, e, s.maxPlannedStart, 0)
	if err != nil {
		// Fall back to a full re-plan rather than publishing a bad profile.
		if prof != s.planProf {
			s.bankPlanBuffer(prof)
		}
		s.planDirty = true
		return
	}
	e.plannedStart = start
	e.plannedEnd = end
	if prof != s.planProf {
		// The old profile stays pinned by its snapshots and is banked on
		// their release.
		s.planProf = prof //gridlint:allow-retain publishing the buffer is the transfer the pool exists for
	}
	if start > s.maxPlannedStart {
		s.maxPlannedStart = start
	}
	if start < s.nextStart {
		s.nextStart = start
	}
	s.planVersion++
	s.planAppends++
}

// Cancel removes a waiting job from the queue. It returns ErrJobRunning for
// a job that already started (the middleware only reallocates jobs in
// waiting state) and ErrUnknownJob for a job the cluster does not hold. On
// success it returns the job's accumulated reallocation count so the caller
// can carry it to the destination cluster.
func (s *Scheduler) Cancel(jobID int, now int64) (workload.Job, int, error) {
	if now < s.now {
		return workload.Job{}, 0, fmt.Errorf("%w: cancel at %d, now %d", ErrTimeTravel, now, s.now)
	}
	s.now = now
	if _, ok := s.runningByID[jobID]; ok {
		return workload.Job{}, 0, fmt.Errorf("%w: job %d on cluster %q", ErrJobRunning, jobID, s.spec.Name)
	}
	e, ok := s.waitingByID[jobID]
	if !ok {
		return workload.Job{}, 0, fmt.Errorf("%w: job %d on cluster %q", ErrUnknownJob, jobID, s.spec.Name)
	}
	s.cancellations++
	s.stateVersion++
	delete(s.waitingByID, jobID)
	// The waiting slice is sorted by seq, so the entry's position is found by
	// binary search rather than a linear scan.
	i := sort.Search(len(s.waiting), func(i int) bool { return s.waiting[i].seq >= e.seq })
	s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
	s.planDirty = true
	if len(s.waiting) == 0 {
		// nextInternalEvent skips the re-plan for an empty queue, so the
		// earliest-start scalar must be cleared here or the last cancelled
		// job's planned start would surface as a phantom event.
		s.nextStart = noNextStart
	}
	job, migrated := e.job, e.migrated
	// The entry is fully unlinked from the waiting slice and index, and the
	// dirty plan forces a re-plan before any planned-start state is read
	// again, so the entry is safe to pool.
	s.entryPool.Put(e)
	return job, migrated, nil
}

// WaitingJobs returns a snapshot of the waiting queue in queue order,
// including each job's current predicted start and completion.
func (s *Scheduler) WaitingJobs() []WaitingJob {
	return s.AppendWaitingJobs(make([]WaitingJob, 0, len(s.waiting)))
}

// AppendWaitingJobs appends the waiting queue (in queue order) to dst and
// returns the extended slice, letting callers that poll every cluster each
// sweep reuse one buffer instead of allocating a fresh slice per call.
func (s *Scheduler) AppendWaitingJobs(dst []WaitingJob) []WaitingJob {
	s.observePlan()
	for i, e := range s.waiting {
		dst = append(dst, WaitingJob{
			Job:            e.job,
			EnqueuedAt:     e.enqueued,
			PlannedStart:   e.plannedStart,
			PlannedEnd:     e.plannedEnd,
			Reallocations:  e.migrated,
			QueuePosition:  i,
			ClusterName:    s.spec.Name,
			ClusterSpeedup: s.spec.Speed,
		})
	}
	return dst
}

// CurrentCompletion returns the predicted completion time of a job already
// held by this cluster (waiting or running). For running jobs the prediction
// is the walltime end, which is all a real batch system can promise.
func (s *Scheduler) CurrentCompletion(jobID int) (int64, error) {
	if a, ok := s.runningByID[jobID]; ok {
		return a.wallEnd, nil
	}
	if e, ok := s.waitingByID[jobID]; ok {
		s.observePlan()
		return e.plannedEnd, nil
	}
	return 0, fmt.Errorf("%w: job %d on cluster %q", ErrUnknownJob, jobID, s.spec.Name)
}

// EstimateCompletion answers the middleware's "where would this job
// complete if I submitted it to you now" query without mutating any state.
// It returns ErrTooWide if the job can never run here.
func (s *Scheduler) EstimateCompletion(j workload.Job, now int64) (int64, error) {
	if ect, ok := s.TryEstimateCompletion(j, now); ok {
		return ect, nil
	}
	if now < s.now {
		return 0, fmt.Errorf("%w: estimate at %d, now %d", ErrTimeTravel, now, s.now)
	}
	if !s.Fits(j) {
		return 0, fmt.Errorf("%w: job %d needs %d cores, cluster %q has %d", ErrTooWide, j.ID, j.Procs, s.spec.Name, s.spec.Cores)
	}
	return 0, fmt.Errorf("%w: job %d on cluster %q", ErrTooWide, j.ID, s.spec.Name)
}

// TryEstimateCompletion is EstimateCompletion with a boolean instead of an
// error: ok is false when the job can never run here or the timestamp is in
// the past. The initial-mapping policy issues one such query per cluster
// per submission and treats "cannot run here" as an ordinary outcome, so
// this variant skips the error construction of the checked one.
func (s *Scheduler) TryEstimateCompletion(j workload.Job, now int64) (int64, bool) {
	if now < s.now || !s.Fits(j) {
		return 0, false
	}
	s.observePlan()
	s.ectQueries++
	lower := now
	if s.policy == FCFS && s.maxPlannedStart > lower {
		// FCFS: the hypothetical job goes to the end of the queue and cannot
		// start before the job currently last in the queue.
		lower = s.maxPlannedStart
	}
	wall := s.scaledWalltime(j)
	start := s.planProf.findSlot(lower, wall, j.Procs)
	if start == noSlot {
		return 0, false
	}
	return start + wall, true
}

// EstimateSnapshot is a detached, immutable view of the cluster's planned
// availability at a given instant. It answers the same query as
// EstimateCompletion but can be taken once per cluster per reallocation
// sweep and reused across every candidate job and heuristic, avoiding one
// plan consultation per (job, cluster) pair.
type EstimateSnapshot struct {
	sched   *Scheduler
	prof    *profile
	now     int64
	lower   int64
	version uint64
}

// EstimateSnapshot returns a snapshot of the cluster's planned availability
// at time now. The snapshot shares the plan profile by reference (mutations
// swap in or copy to a fresh profile once a reference was handed out), so
// taking one is O(1).
//
//gridlint:ref-acquire
func (s *Scheduler) EstimateSnapshot(now int64) (*EstimateSnapshot, error) {
	sn := &EstimateSnapshot{}
	if err := s.EstimateSnapshotInto(sn, now); err != nil {
		return nil, err
	}
	return sn, nil
}

// EstimateSnapshotInto overwrites sn with a snapshot at time now, letting a
// caller that re-snapshots every cluster once per sweep reuse its snapshot
// storage instead of allocating one per call. Refreshing releases the
// snapshot's previous profile reference, so the sweep's per-cluster
// snapshots recycle superseded plan buffers instead of leaking them to the
// garbage collector.
//
//gridlint:ref-acquire
func (s *Scheduler) EstimateSnapshotInto(sn *EstimateSnapshot, now int64) error {
	if now < s.now {
		return fmt.Errorf("%w: snapshot at %d, now %d", ErrTimeTravel, now, s.now)
	}
	sn.Release()
	s.observePlan()
	s.snapshots++
	// The handed-out reference freezes the published profile: mutations now
	// copy first (appendToPlan) or build into a fresh buffer (rebuildPlan).
	s.planProf.refs++
	lower := now
	if s.policy == FCFS && s.maxPlannedStart > lower {
		lower = s.maxPlannedStart
	}
	*sn = EstimateSnapshot{
		sched:   s,
		prof:    s.planProf,
		now:     now,
		lower:   lower,
		version: s.planVersion,
	}
	return nil
}

// Release drops the snapshot's reference on its plan profile, returning the
// buffer to the scheduler's spare bank when it was the last reference on a
// superseded profile. A released (or zero) snapshot must not answer further
// estimate queries. Release is nil-safe and idempotent, so a caller that
// owns a snapshot for a scope can `defer sn.Release()` unconditionally;
// callers that instead refresh the snapshot in place every sweep
// (EstimateSnapshotInto) get the same release as part of the refresh.
//
//gridlint:ref-release
func (sn *EstimateSnapshot) Release() {
	if sn == nil || sn.prof == nil || sn.sched == nil {
		return
	}
	sn.sched.releaseSnapshotProfile(sn.prof)
	sn.prof = nil
}

// Cluster returns the name of the cluster the snapshot was taken from.
func (sn *EstimateSnapshot) Cluster() string { return sn.sched.spec.Name }

// Time returns the instant the snapshot describes.
func (sn *EstimateSnapshot) Time() int64 { return sn.now }

// Stale reports whether the cluster's plan has changed since the snapshot
// was taken; a stale snapshot answers queries for the state at snapshot
// time, not the current state.
func (sn *EstimateSnapshot) Stale() bool {
	return sn.sched.planDirty || sn.sched.planVersion != sn.version
}

// EstimateCompletion answers the completion-time query against the snapshot.
// It returns ErrTooWide if the job can never run on the cluster.
func (sn *EstimateSnapshot) EstimateCompletion(j workload.Job) (int64, error) {
	ect, ok := sn.TryEstimateCompletion(j)
	if !ok {
		s := sn.sched
		if !s.Fits(j) {
			return 0, fmt.Errorf("%w: job %d needs %d cores, cluster %q has %d", ErrTooWide, j.ID, j.Procs, s.spec.Name, s.spec.Cores)
		}
		return 0, fmt.Errorf("%w: job %d on cluster %q", ErrTooWide, j.ID, s.spec.Name)
	}
	return ect, nil
}

// TryEstimateCompletion is EstimateCompletion with a boolean instead of an
// error: ok is false when the job can never run on the cluster. The
// reallocation sweep issues O(candidates x clusters) estimate queries per
// pass and treats "cannot run here" as an ordinary outcome, so the error
// construction of the checked variant — an allocation plus fmt formatting
// per too-wide pair — was pure overhead on the sweep hot path.
func (sn *EstimateSnapshot) TryEstimateCompletion(j workload.Job) (int64, bool) {
	return sn.TryEstimateCompletionScaled(j.Procs, sn.sched.scaledWalltime(j))
}

// ScaledWalltime returns the job's walltime rescaled to this cluster's
// speed — the reservation length every estimate for it here will use. A
// sweep that refreshes a cluster's estimates once per move caches it
// instead of repeating the floating-point rescale.
func (sn *EstimateSnapshot) ScaledWalltime(j workload.Job) int64 {
	return sn.sched.scaledWalltime(j)
}

// ectKey identifies a job shape for the snapshot estimate cache: two jobs
// with the same processor count and scaled walltime always receive the same
// answer from the same profile and lower bound.
type ectKey struct {
	procs int
	wall  int64
}

// cachedNoSlot marks a shape that has no feasible start anywhere in the
// profile; infeasibility at one lower bound implies infeasibility at every
// later one, so the entry is valid for the rest of the plan version.
const cachedNoSlot int64 = math.MinInt64

// TryEstimateCompletionScaled is TryEstimateCompletion for a caller that
// already holds the job's scaled walltime on this cluster.
//
// Answers are memoised per job shape while the published plan is unchanged
// (see ectCache): a cached start at or after the query's lower bound is still
// the earliest feasible start, because feasibility of a start does not depend
// on the bound and no earlier start in the narrower window could have been
// skipped. The cache makes same-shape candidates within one sweep and the
// whole column of a cluster no sweep touched O(1) instead of one slot search
// each — the query path of the dirty-cluster sweep optimisation.
func (sn *EstimateSnapshot) TryEstimateCompletionScaled(procs int, wall int64) (int64, bool) {
	s := sn.sched
	if procs > s.spec.Cores {
		return 0, false
	}
	s.ectQueries++
	s.snapshotHits++
	if sn.version != s.planVersion || s.planDirty {
		// The snapshot answers for a superseded plan; the cache tracks the
		// published one.
		start := sn.prof.findSlot(sn.lower, wall, procs)
		if start == noSlot {
			return 0, false
		}
		return start + wall, true
	}
	if s.ectCacheVersion != s.planVersion || s.ectCache == nil {
		if s.ectCache == nil {
			s.ectCache = make(map[ectKey]int64, 64)
		} else {
			clear(s.ectCache)
		}
		s.ectCacheVersion = s.planVersion
		s.ectCacheLower = sn.lower
	}
	if sn.lower < s.ectCacheLower {
		// Out-of-order query below a bound the cache already served; answer
		// directly rather than trusting entries computed for a later bound.
		start := sn.prof.findSlot(sn.lower, wall, procs)
		if start == noSlot {
			return 0, false
		}
		return start + wall, true
	}
	s.ectCacheLower = sn.lower
	k := ectKey{procs, wall}
	if ect, ok := s.ectCache[k]; ok {
		if ect == cachedNoSlot {
			s.ectCacheHits++
			return 0, false
		}
		if ect-wall >= sn.lower {
			s.ectCacheHits++
			return ect, true
		}
	}
	start := sn.prof.findSlot(sn.lower, wall, procs)
	if start == noSlot {
		s.ectCache[k] = cachedNoSlot
		return 0, false
	}
	s.ectCache[k] = start + wall
	return start + wall, true
}

// internalEvent identifies the kind of the next scheduler-internal event.
type internalEvent int

const (
	evFinish internalEvent = iota
	evCapacity
	evStart
)

// Advance moves the cluster's clock to `now`, starting planned jobs,
// completing running jobs and revealing capacity outages whose time has
// come, in chronological order. It returns the notifications generated, in
// order. The returned slice is reused by the next Advance call on the same
// scheduler; callers that need the notifications beyond that must copy
// them.
//
//gridlint:pooled
func (s *Scheduler) Advance(now int64) ([]Notification, error) {
	if now < s.now {
		return nil, fmt.Errorf("%w: advance to %d, now %d", ErrTimeTravel, now, s.now)
	}
	notes := s.notesBuf[:0]
	for {
		t, kind, ok := s.nextInternalEvent()
		if !ok || t > now {
			break
		}
		switch kind {
		case evFinish:
			notes = s.finishDueAt(t, notes)
		case evCapacity:
			notes = s.revealNextOutage(notes)
		case evStart:
			notes = s.startDueAt(t, notes)
		}
	}
	s.now = now
	s.notesBuf = notes
	if len(notes) == 0 {
		return nil, nil
	}
	return notes, nil
}

// newEntry returns a queueEntry from the pool, or a fresh arena-backed one.
func (s *Scheduler) newEntry() *queueEntry {
	return s.entryPool.Get()
}

// newAllocation returns an allocation from the pool, or a fresh arena-backed
// one.
func (s *Scheduler) newAllocation() *allocation {
	return s.allocPool.Get()
}

// NextEventTime returns the earliest instant at which this cluster will
// change state on its own (a running job completes, a planned job starts, or
// a capacity outage strikes), or ok=false when the cluster is idle with an
// empty queue and no pending outage.
func (s *Scheduler) NextEventTime() (int64, bool) {
	t, _, ok := s.nextInternalEvent()
	return t, ok
}

// nextInternalEvent returns the time and kind of the next internal event by
// peeking the two event heaps and the outage timeline. At equal instants,
// completions run first (the freed cores may allow an earlier re-planned
// start), then outage reveals (so a job is not started into a window that
// just lost its cores), then starts.
func (s *Scheduler) nextInternalEvent() (int64, internalEvent, bool) {
	// The plan is consulted only for the earliest waiting start; with an
	// empty queue there is none, and the re-plan (refreshing the estimate
	// profile) stays deferred to the next observation.
	if len(s.waiting) > 0 {
		s.ensurePlan()
	}
	bestT := int64(0)
	kind := evStart
	found := false
	if len(s.finishHeap) > 0 {
		bestT, kind, found = s.finishHeap[0].end, evFinish, true
	}
	if s.nextOutage < len(s.outages) {
		if t := s.outages[s.nextOutage].Start; !found || t < bestT {
			bestT, kind, found = t, evCapacity, true
		}
	}
	if s.nextStart != noNextStart {
		if t := s.nextStart; !found || t < bestT {
			bestT, kind, found = t, evStart, true
		}
	}
	return bestT, kind, found
}

// revealNextOutage makes the next unannounced capacity window visible to the
// scheduler: running jobs that no longer fit under the reduced capacity are
// displaced (killed or requeued per the outage policy), the lost cores are
// reserved in the incremental run profile for the remainder of the window,
// and the waiting-queue plan is invalidated so every planned start is
// recomputed under the new ceiling.
func (s *Scheduler) revealNextOutage(notes []Notification) []Notification {
	w := s.outages[s.nextOutage]
	s.nextOutage++
	if w.Start > s.now {
		s.now = w.Start
	}
	// An outage entirely in the past (the caller's clock jumped over the
	// window without observing it) changes nothing from now on.
	if w.End <= s.now {
		return notes
	}
	notes = s.displaceRunning(w, notes)
	s.stateVersion++
	if s.runProfValid {
		s.runProf.trimTo(s.now)
		if err := s.runProf.reserve(s.now, w.End, s.spec.Cores-w.Cores); err != nil {
			s.InvalidateRunProfile()
		}
	}
	s.planDirty = true
	return notes
}

// displaceRunning removes running jobs until the remaining usage fits the
// outage window's capacity, most recently started jobs first (seniority is
// protected, as on real clusters where a crash takes out the nodes assigned
// last). Displaced jobs are killed or requeued per the outage policy.
//
// Only revealNextOutage calls this, and it bumps stateVersion for the whole
// reveal (capacity change included), so the displacement writes ride on the
// caller's bump.
//
//gridlint:stateversion-bumped-by-caller
func (s *Scheduler) displaceRunning(w platform.CapacityEvent, notes []Notification) []Notification {
	used := 0
	for _, a := range s.running {
		used += a.job.Procs
	}
	if used <= w.Cores {
		return notes
	}
	victims := append([]*allocation(nil), s.running...)
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].start != victims[j].start {
			return victims[i].start > victims[j].start
		}
		return victims[i].job.ID > victims[j].job.ID
	})
	displaced := make(map[int]bool)
	for _, a := range victims {
		if used <= w.Cores {
			break
		}
		used -= a.job.Procs
		displaced[a.job.ID] = true
		delete(s.runningByID, a.job.ID)
		s.releaseReservation(a, s.now)
		if s.outagePolicy == RequeueDisplaced {
			e := s.newEntry()
			*e = queueEntry{
				job:      a.job,
				enqueued: s.now,
				seq:      s.frontSeq,
				wall:     s.scaledWalltime(a.job),
				migrated: a.migrated,
			}
			s.frontSeq--
			s.waiting = append([]*queueEntry{e}, s.waiting...)
			s.waitingByID[a.job.ID] = e
			notes = append(notes, Notification{Kind: Requeued, JobID: a.job.ID, Time: s.now, Displaced: true})
		} else {
			notes = append(notes, Notification{Kind: Finished, JobID: a.job.ID, Time: s.now, Killed: true, Displaced: true})
		}
	}
	kept := s.running[:0]
	for _, a := range s.running {
		if !displaced[a.job.ID] {
			kept = append(kept, a)
		} else {
			s.allocPool.Put(a)
		}
	}
	s.running = kept
	// The finish heap is rebuilt wholesale: arbitrary removals from the
	// middle of a heap are not worth the complexity for an event as rare as
	// an outage.
	s.finishHeap = append(s.finishHeap[:0], s.running...)
	heap.Init(&s.finishHeap)
	return notes
}

// finishDueAt completes every running job whose end is exactly t, releasing
// the unused tail of each walltime reservation back into the incremental run
// profile. The freed cores may advance waiting jobs, so the plan is marked
// dirty.
func (s *Scheduler) finishDueAt(t int64, notes []Notification) []Notification {
	n0 := len(notes)
	for len(s.finishHeap) > 0 && s.finishHeap[0].end == t {
		heap.Pop(&s.finishHeap)
	}
	released := false
	kept := s.running[:0]
	for _, a := range s.running {
		if a.end == t {
			notes = append(notes, Notification{Kind: Finished, JobID: a.job.ID, Time: t, Killed: a.killed})
			delete(s.runningByID, a.job.ID)
			if s.releaseReservation(a, t) {
				released = true
			}
			s.allocPool.Put(a)
			continue
		}
		kept = append(kept, a)
	}
	s.running = kept
	if len(notes) > n0 {
		s.now = t
		// A job that ran out its full walltime returns no cores the plan did
		// not already account for, so the published plan — whose remaining
		// starts are all at or after t — stays valid; only an early finish
		// (a released reservation tail) can advance waiting jobs. Exact
		// finishes equally leave every middleware-visible answer unchanged,
		// so the state version moves only with the released tail.
		if released {
			s.planDirty = true
			s.stateVersion++
		}
	}
	return notes
}

// releaseReservation returns the unused tail [t, wallEnd) of a finished
// job's reservation to the run profile, reporting whether the profile
// actually changed. A failure invalidates the incremental profile so the
// next plan rebuild reconstructs it from scratch (and reports true: the
// published plan can no longer be trusted).
func (s *Scheduler) releaseReservation(a *allocation, t int64) bool {
	if !s.runProfValid {
		return true
	}
	from := t
	if origin := s.runProf.times[0]; from < origin {
		from = origin
	}
	if a.wallEnd <= from {
		return false
	}
	if err := s.runProf.release(from, a.wallEnd, a.job.Procs); err != nil {
		s.InvalidateRunProfile()
	}
	return true
}

// startDueAt starts every waiting job whose planned start is exactly t,
// reserving its walltime window in the incremental run profile. The plan
// profile stays valid: a started job occupies exactly the window it was
// planned to.
func (s *Scheduler) startDueAt(t int64, notes []Notification) []Notification {
	n0 := len(notes)
	next := noNextStart
	kept := s.waiting[:0]
	for _, e := range s.waiting {
		if e.plannedStart == t {
			run := s.scaledRuntime(e.job)
			wall := e.wall
			a := s.newAllocation()
			*a = allocation{
				job:      e.job,
				start:    t,
				end:      t + run,
				wallEnd:  t + wall,
				killed:   run == wall && e.job.KilledByWalltime(),
				migrated: e.migrated,
			}
			s.running = append(s.running, a)
			s.runningByID[a.job.ID] = a
			heap.Push(&s.finishHeap, a)
			delete(s.waitingByID, e.job.ID)
			if s.runProfValid {
				if err := s.runProf.reserve(t, a.wallEnd, a.job.Procs); err != nil {
					s.InvalidateRunProfile()
				}
			}
			notes = append(notes, Notification{Kind: Started, JobID: e.job.ID, Time: t})
			s.entryPool.Put(e)
			continue
		}
		if e.plannedStart < next {
			next = e.plannedStart
		}
		kept = append(kept, e)
	}
	s.waiting = kept
	s.nextStart = next
	if len(notes) > n0 {
		s.now = t
		// Started jobs left the waiting queue, so cached queue views are
		// stale even though the published plan itself is unchanged.
		s.stateVersion++
	}
	return notes
}

// InvalidateRunProfile discards the incremental run profile; the next plan
// rebuild reconstructs it from the running set. This is the explicit
// recovery path for any suspected divergence, and the hook benchmarks use to
// measure the cost of the from-scratch build the incremental profile avoids.
func (s *Scheduler) InvalidateRunProfile() {
	s.runProfValid = false
	s.planDirty = true
	s.stateVersion++
}

// InvalidatePlan forces the next observation to re-plan the waiting queue
// even though no state changed. Together with InvalidateRunProfile it lets
// benchmarks compare the incremental scheduler against a from-scratch one.
func (s *Scheduler) InvalidatePlan() {
	s.planDirty = true
	s.stateVersion++
}

// ensurePlan re-plans the waiting queue if any mutation happened since the
// last observation, reporting whether a rebuild ran.
func (s *Scheduler) ensurePlan() bool {
	if !s.planDirty {
		return false
	}
	s.rebuildPlan()
	s.planDirty = false
	return true
}

// observePlan is ensurePlan for the external observation entry points
// (estimates, snapshots, queue listings): it additionally counts plan
// reuses, so PlanReuses measures how much middleware-facing load the cached
// plan absorbed rather than the driver's internal event polling.
func (s *Scheduler) observePlan() {
	if !s.ensurePlan() {
		s.planReuses++
	}
}

// scratchRunProfile builds the running-jobs availability profile from
// scratch — the capacity baseline (maintenance windows plus revealed
// outages) with every running job's walltime reservation subtracted. It is
// the reference the incremental profile is checked against, and the fallback
// of the invalidation path.
func (s *Scheduler) scratchRunProfile() *profile {
	prof := s.capacityBaseProfile(s.now)
	spans := make([]span, 0, len(s.running))
	for _, a := range s.running {
		if a.wallEnd > s.now {
			spans = append(spans, span{s.now, a.wallEnd, a.job.Procs})
		}
	}
	// Batched: one sorted merge over the profile instead of one O(profile)
	// breakpoint insertion per running job.
	if err := prof.reserveAll(spans); err != nil {
		panic(fmt.Sprintf("batch: inconsistent running set on %s: %v", s.spec.Name, err))
	}
	return prof
}

// ensureRunProfile brings the incremental run profile to the current time,
// rebuilding it from scratch if it was invalidated.
func (s *Scheduler) ensureRunProfile() {
	if !s.runProfValid {
		s.runProf = s.scratchRunProfile()
		s.runProfValid = true
		s.runProfRebuilds++
		return
	}
	s.runProf.trimTo(s.now)
}

// CheckProfileConsistency verifies that the incremental run profile matches
// the from-scratch build over the live horizon, and that the published plan
// (which may have been extended through the append fast path) is identical
// to what a full re-plan would produce. It is exported for the
// property-based tests; the run-profile comparison also runs on every plan
// rebuild when debug cross-checking is enabled.
func (s *Scheduler) CheckProfileConsistency() error {
	s.ensurePlan()
	if !s.runProfValid {
		return nil
	}
	s.runProf.trimTo(s.now)
	fresh := s.scratchRunProfile()
	if !s.runProf.equal(fresh) {
		return fmt.Errorf("batch: incremental run profile diverged on %s at t=%d: incremental %v/%v, from-scratch %v/%v",
			s.spec.Name, s.now, s.runProf.times, s.runProf.free, fresh.times, fresh.free)
	}
	// Re-plan every waiting job onto the fresh profile and compare against
	// the published plan.
	prevStart := s.now
	cursor := 0
	for _, e := range s.waiting {
		start, end, cur, err := s.placeEntry(fresh, e, prevStart, cursor)
		if err != nil {
			return fmt.Errorf("batch: re-plan reservation failed on %s: %w", s.spec.Name, err)
		}
		if s.policy == FCFS {
			cursor = cur
		}
		if start != e.plannedStart || end != e.plannedEnd {
			return fmt.Errorf("batch: plan diverged on %s for job %d: published [%d,%d), re-plan [%d,%d)",
				s.spec.Name, e.job.ID, e.plannedStart, e.plannedEnd, start, end)
		}
		if start > prevStart {
			prevStart = start
		}
	}
	// maxPlannedStart may be stale (it is only refreshed on rebuilds, as
	// starts and idle time advances do not change any remaining plan); what
	// estimates observe is the effective FCFS lower bound max(now, max).
	published := s.maxPlannedStart
	if s.now > published {
		published = s.now
	}
	if published != prevStart {
		return fmt.Errorf("batch: FCFS lower bound diverged on %s: published %d, re-plan %d", s.spec.Name, published, prevStart)
	}
	return nil
}

// rebuildPlan recomputes the planned start and completion of every waiting
// job, according to the local policy, on top of the incrementally maintained
// running-jobs profile. The waiting slice is kept in submission (seq) order
// by construction, so planning needs no sort. The plan is built into a
// double-buffered scratch profile — the previous published profile, unless
// a snapshot still references it — so steady-state re-planning allocates
// nothing.
func (s *Scheduler) rebuildPlan() {
	s.planRebuilds++
	s.ensureRunProfile()
	if s.debugCheck {
		if fresh := s.scratchRunProfile(); !s.runProf.equal(fresh) {
			panic(fmt.Sprintf("batch: incremental run profile diverged on %s at t=%d: incremental %v/%v, from-scratch %v/%v",
				s.spec.Name, s.now, s.runProf.times, s.runProf.free, fresh.times, fresh.free))
		}
	}
	prof := s.takePlanBuffer()
	prof.copyFrom(s.runProf)
	// Planning k jobs inserts at most 2k breakpoints; growing once up front
	// replaces the log-many append doublings mid-plan.
	prof.grow(2 * len(s.waiting))
	// Waiting jobs are planned in queue order (submission order on this
	// cluster). FCFS additionally forbids starting before the previous
	// queued job, which also makes the slot-search cursor monotone.
	prevStart := s.now
	next := noNextStart
	cursor := 0
	for _, e := range s.waiting {
		start, end, cur, err := s.placeEntry(prof, e, prevStart, cursor)
		if err != nil {
			panic(fmt.Sprintf("batch: plan reservation failed on %s: %v", s.spec.Name, err))
		}
		e.plannedStart = start
		e.plannedEnd = end
		if start > prevStart {
			prevStart = start
		}
		if start < next {
			next = start
		}
		if s.policy == FCFS {
			cursor = cur
		}
	}
	// Keep the combined running+planned profile for cheap completion-time
	// estimates; prevStart is the latest planned start (or now when the
	// queue is empty), which is exactly the FCFS lower bound for a
	// hypothetical extra job. Planning visited every waiting job, so the
	// earliest planned start falls out of the same loop. An unreferenced old
	// profile is banked immediately; a referenced one is banked when its
	// last snapshot releases it.
	old := s.planProf
	s.planProf = prof //gridlint:allow-retain publishing the buffer is the transfer the pool exists for
	if old != nil && old.refs == 0 {
		s.bankPlanBuffer(old)
	}
	s.maxPlannedStart = prevStart
	s.nextStart = next
	s.planVersion++
}

// Snapshot describes the instantaneous state of the cluster, used by the
// Gantt renderer and by tests.
type Snapshot struct {
	ClusterName string
	Time        int64
	Running     []SnapshotJob
	Waiting     []SnapshotJob
}

// SnapshotJob is one job in a snapshot with its (planned or actual)
// execution window.
type SnapshotJob struct {
	JobID int
	Procs int
	Start int64
	End   int64
}

// Snapshot returns the current running and planned-waiting state.
func (s *Scheduler) Snapshot() Snapshot {
	s.observePlan()
	snap := Snapshot{
		ClusterName: s.spec.Name,
		Time:        s.now,
		Running:     make([]SnapshotJob, 0, len(s.running)),
		Waiting:     make([]SnapshotJob, 0, len(s.waiting)),
	}
	for _, a := range s.running {
		snap.Running = append(snap.Running, SnapshotJob{JobID: a.job.ID, Procs: a.job.Procs, Start: a.start, End: a.wallEnd})
	}
	for _, e := range s.waiting {
		snap.Waiting = append(snap.Waiting, SnapshotJob{JobID: e.job.ID, Procs: e.job.Procs, Start: e.plannedStart, End: e.plannedEnd})
	}
	return snap
}

// CheckInvariants verifies the internal consistency of the scheduler: no
// core over-subscription at any instant (running and planned), FCFS start
// ordering, planned windows in the future, and agreement between the slices
// and the job-ID indexes. It is exported for use by the property-based tests
// and returns a descriptive error on the first violation.
func (s *Scheduler) CheckInvariants() error {
	s.ensurePlan()
	if len(s.running) != len(s.runningByID) || len(s.waiting) != len(s.waitingByID) {
		return fmt.Errorf("index out of sync: %d/%d running, %d/%d waiting",
			len(s.running), len(s.runningByID), len(s.waiting), len(s.waitingByID))
	}
	// Running and planned reservations must fit under the capacity timeline
	// (maintenance windows and revealed outages), not just the nominal size.
	prof := s.capacityBaseProfile(s.now)
	for _, a := range s.running {
		if s.runningByID[a.job.ID] != a {
			return fmt.Errorf("running index misses job %d", a.job.ID)
		}
		if a.wallEnd > s.now {
			if err := prof.reserve(s.now, a.wallEnd, a.job.Procs); err != nil {
				return fmt.Errorf("running over-subscription: %w", err)
			}
		}
	}
	prevStart := int64(-1)
	// Outage requeues hand out negative sequence numbers (frontSeq), so the
	// order check must start below every possible seq.
	prevSeq := int64(math.MinInt64)
	for _, e := range s.waiting {
		if s.waitingByID[e.job.ID] != e {
			return fmt.Errorf("waiting index misses job %d", e.job.ID)
		}
		if e.plannedStart < s.now {
			return fmt.Errorf("job %d planned to start at %d before now %d", e.job.ID, e.plannedStart, s.now)
		}
		if e.plannedEnd <= e.plannedStart {
			return fmt.Errorf("job %d has empty planned window [%d,%d)", e.job.ID, e.plannedStart, e.plannedEnd)
		}
		if err := prof.reserve(e.plannedStart, e.plannedEnd, e.job.Procs); err != nil {
			return fmt.Errorf("planned over-subscription: %w", err)
		}
		if s.policy == FCFS && prevStart >= 0 && e.plannedStart < prevStart {
			return fmt.Errorf("FCFS order violated: job %d starts at %d before its predecessor at %d", e.job.ID, e.plannedStart, prevStart)
		}
		if e.seq <= prevSeq {
			return fmt.Errorf("queue order corrupted at job %d", e.job.ID)
		}
		prevStart = e.plannedStart
		prevSeq = e.seq
	}
	if prof.minFree() < 0 {
		return errors.New("profile went negative")
	}
	return s.CheckProfileConsistency()
}
