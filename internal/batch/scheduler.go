package batch

import (
	"errors"
	"fmt"
	"sort"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// Policy selects the local scheduling algorithm of a cluster.
type Policy int

// The two local resource management policies the paper evaluates.
const (
	// FCFS (First Come First Served) gives each job the earliest slot at the
	// end of the job queue: a job never starts before a job submitted before
	// it (no backfilling).
	FCFS Policy = iota
	// CBF (Conservative Back-Filling) gives each job the earliest hole in
	// the availability profile that does not delay any previously queued
	// job.
	CBF
)

// String returns "FCFS" or "CBF".
func (p Policy) String() string {
	if p == CBF {
		return "CBF"
	}
	return "FCFS"
}

// ParsePolicy converts a string (case-sensitive "FCFS"/"CBF") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "FCFS":
		return FCFS, nil
	case "CBF":
		return CBF, nil
	default:
		return FCFS, fmt.Errorf("batch: unknown policy %q", s)
	}
}

// Errors returned by the scheduler API.
var (
	// ErrTooWide is returned when a job requests more processors than the
	// cluster has.
	ErrTooWide = errors.New("batch: job requests more processors than the cluster has")
	// ErrUnknownJob is returned when an operation references a job the
	// scheduler does not hold in its waiting queue.
	ErrUnknownJob = errors.New("batch: unknown waiting job")
	// ErrDuplicateJob is returned when a job ID is submitted twice.
	ErrDuplicateJob = errors.New("batch: job already submitted")
	// ErrTimeTravel is returned when an operation carries a timestamp before
	// the scheduler's current time.
	ErrTimeTravel = errors.New("batch: operation timestamp is in the past")
)

// allocation is a job currently executing on the cluster.
type allocation struct {
	job      workload.Job
	start    int64
	end      int64 // actual completion (or walltime kill) instant
	wallEnd  int64 // reservation end used for planning (start + scaled walltime)
	killed   bool  // true when end == wallEnd because the runtime exceeded it
	migrated int   // number of times the job was reallocated before starting
}

// queueEntry is a job waiting in the batch queue.
type queueEntry struct {
	job          workload.Job
	enqueued     int64
	seq          int64
	plannedStart int64
	plannedEnd   int64
	migrated     int
}

// Notification reports a state change that happened inside the cluster while
// advancing virtual time: a job started or a job completed.
type Notification struct {
	// Kind is either Started or Finished.
	Kind NotificationKind
	// JobID identifies the job.
	JobID int
	// Time is the instant of the state change.
	Time int64
	// Killed is set on Finished notifications for jobs terminated by the
	// walltime limit.
	Killed bool
}

// NotificationKind distinguishes start from completion notifications.
type NotificationKind int

// Notification kinds.
const (
	Started NotificationKind = iota
	Finished
)

// String returns "started" or "finished".
func (k NotificationKind) String() string {
	if k == Finished {
		return "finished"
	}
	return "started"
}

// WaitingJob is the externally visible view of a queued job: the job itself
// plus its current predicted start and completion on this cluster.
type WaitingJob struct {
	Job            workload.Job
	EnqueuedAt     int64
	PlannedStart   int64
	PlannedEnd     int64
	Reallocations  int
	QueuePosition  int
	ClusterName    string
	ClusterSpeedup float64
}

// Scheduler simulates one cluster's batch system. It is not safe for
// concurrent use; the simulation driver serialises all access.
type Scheduler struct {
	spec    platform.ClusterSpec
	policy  Policy
	now     int64
	running []*allocation
	waiting []*queueEntry
	seq     int64

	// planProf is the availability profile including running jobs and all
	// planned waiting reservations, kept in sync by rebuildPlan so that
	// completion-time estimates do not have to rebuild it on every query.
	planProf *profile
	// maxPlannedStart is the latest planned start among waiting jobs, used
	// as the FCFS lower bound for hypothetical placements.
	maxPlannedStart int64

	// Request counters, reported by the server layer as system-load metrics.
	submissions   int64
	cancellations int64
	ectQueries    int64
}

// NewScheduler returns a scheduler for the given cluster running the given
// policy, with its clock at zero.
func NewScheduler(spec platform.ClusterSpec, policy Policy) (*Scheduler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		spec:     spec,
		policy:   policy,
		planProf: newProfile(0, spec.Cores),
	}, nil
}

// Spec returns the cluster description.
func (s *Scheduler) Spec() platform.ClusterSpec { return s.spec }

// Policy returns the local scheduling policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() int64 { return s.now }

// Counters returns the number of submissions, cancellations and ECT queries
// served so far.
func (s *Scheduler) Counters() (submissions, cancellations, ectQueries int64) {
	return s.submissions, s.cancellations, s.ectQueries
}

// RunningCount returns the number of jobs currently executing.
func (s *Scheduler) RunningCount() int { return len(s.running) }

// WaitingCount returns the number of jobs currently queued.
func (s *Scheduler) WaitingCount() int { return len(s.waiting) }

// UsedCores returns the number of cores occupied by running jobs at the
// current time.
func (s *Scheduler) UsedCores() int {
	used := 0
	for _, a := range s.running {
		used += a.job.Procs
	}
	return used
}

// scaledRuntime returns the execution time of the job on this cluster,
// bounded by the rescaled walltime (walltime kill).
func (s *Scheduler) scaledRuntime(j workload.Job) int64 {
	run := s.spec.ScaleDuration(j.Runtime)
	wall := s.spec.ScaleDuration(j.Walltime)
	if run > wall {
		return wall
	}
	if run < 1 {
		run = 1
	}
	return run
}

// scaledWalltime returns the reservation length of the job on this cluster.
func (s *Scheduler) scaledWalltime(j workload.Job) int64 {
	w := s.spec.ScaleDuration(j.Walltime)
	if w < 1 {
		w = 1
	}
	return w
}

// Fits reports whether the job can ever run on this cluster.
func (s *Scheduler) Fits(j workload.Job) bool { return j.Procs <= s.spec.Cores }

// Submit enqueues a job at time now. The reallocations argument carries the
// number of times the job has already been moved between clusters, so the
// count survives migration. It returns an error if the job cannot fit, is a
// duplicate, or the timestamp is in the past.
func (s *Scheduler) Submit(j workload.Job, now int64, reallocations int) error {
	if now < s.now {
		return fmt.Errorf("%w: submit at %d, now %d", ErrTimeTravel, now, s.now)
	}
	if err := j.Validate(); err != nil {
		return err
	}
	if !s.Fits(j) {
		return fmt.Errorf("%w: job %d needs %d cores, cluster %q has %d", ErrTooWide, j.ID, j.Procs, s.spec.Name, s.spec.Cores)
	}
	if s.holdsJob(j.ID) {
		return fmt.Errorf("%w: job %d on cluster %q", ErrDuplicateJob, j.ID, s.spec.Name)
	}
	s.now = now
	s.submissions++
	s.waiting = append(s.waiting, &queueEntry{
		job:      j,
		enqueued: now,
		seq:      s.seq,
		migrated: reallocations,
	})
	s.seq++
	s.rebuildPlan()
	return nil
}

func (s *Scheduler) holdsJob(id int) bool {
	for _, a := range s.running {
		if a.job.ID == id {
			return true
		}
	}
	for _, e := range s.waiting {
		if e.job.ID == id {
			return true
		}
	}
	return false
}

// Cancel removes a waiting job from the queue. Running jobs cannot be
// cancelled (the middleware only reallocates jobs in waiting state). It
// returns the job's accumulated reallocation count so the caller can carry
// it to the destination cluster.
func (s *Scheduler) Cancel(jobID int, now int64) (workload.Job, int, error) {
	if now < s.now {
		return workload.Job{}, 0, fmt.Errorf("%w: cancel at %d, now %d", ErrTimeTravel, now, s.now)
	}
	s.now = now
	for i, e := range s.waiting {
		if e.job.ID == jobID {
			s.cancellations++
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			s.rebuildPlan()
			return e.job, e.migrated, nil
		}
	}
	return workload.Job{}, 0, fmt.Errorf("%w: job %d on cluster %q", ErrUnknownJob, jobID, s.spec.Name)
}

// WaitingJobs returns a snapshot of the waiting queue in queue order,
// including each job's current predicted start and completion.
func (s *Scheduler) WaitingJobs() []WaitingJob {
	out := make([]WaitingJob, 0, len(s.waiting))
	for i, e := range s.waiting {
		out = append(out, WaitingJob{
			Job:            e.job,
			EnqueuedAt:     e.enqueued,
			PlannedStart:   e.plannedStart,
			PlannedEnd:     e.plannedEnd,
			Reallocations:  e.migrated,
			QueuePosition:  i,
			ClusterName:    s.spec.Name,
			ClusterSpeedup: s.spec.Speed,
		})
	}
	return out
}

// CurrentCompletion returns the predicted completion time of a job already
// held by this cluster (waiting or running). For running jobs the prediction
// is the walltime end, which is all a real batch system can promise.
func (s *Scheduler) CurrentCompletion(jobID int) (int64, error) {
	for _, e := range s.waiting {
		if e.job.ID == jobID {
			return e.plannedEnd, nil
		}
	}
	for _, a := range s.running {
		if a.job.ID == jobID {
			return a.wallEnd, nil
		}
	}
	return 0, fmt.Errorf("%w: job %d on cluster %q", ErrUnknownJob, jobID, s.spec.Name)
}

// EstimateCompletion answers the middleware's "where would this job
// complete if I submitted it to you now" query without mutating any state.
// It returns ErrTooWide if the job can never run here.
func (s *Scheduler) EstimateCompletion(j workload.Job, now int64) (int64, error) {
	if now < s.now {
		return 0, fmt.Errorf("%w: estimate at %d, now %d", ErrTimeTravel, now, s.now)
	}
	if !s.Fits(j) {
		return 0, fmt.Errorf("%w: job %d needs %d cores, cluster %q has %d", ErrTooWide, j.ID, j.Procs, s.spec.Name, s.spec.Cores)
	}
	s.ectQueries++
	prof := s.planProf
	lower := now
	if s.policy == FCFS && s.maxPlannedStart > lower {
		// FCFS: the hypothetical job goes to the end of the queue and cannot
		// start before the job currently last in the queue.
		lower = s.maxPlannedStart
	}
	wall := s.scaledWalltime(j)
	start := prof.findSlot(lower, wall, j.Procs)
	if start == noSlot {
		return 0, fmt.Errorf("%w: job %d on cluster %q", ErrTooWide, j.ID, j.Procs)
	}
	return start + wall, nil
}

// Advance moves the cluster's clock to `now`, starting planned jobs and
// completing running jobs whose time has come, in chronological order. It
// returns the notifications generated, in order.
func (s *Scheduler) Advance(now int64) ([]Notification, error) {
	if now < s.now {
		return nil, fmt.Errorf("%w: advance to %d, now %d", ErrTimeTravel, now, s.now)
	}
	var notes []Notification
	for {
		t, kind, ok := s.nextInternalEvent()
		if !ok || t > now {
			break
		}
		switch kind {
		case Finished:
			notes = append(notes, s.finishDueAt(t)...)
		case Started:
			notes = append(notes, s.startDueAt(t)...)
		}
	}
	s.now = now
	return notes, nil
}

// NextEventTime returns the earliest instant at which this cluster will
// change state on its own (a running job completes or a planned job starts),
// or ok=false when the cluster is idle with an empty queue.
func (s *Scheduler) NextEventTime() (int64, bool) {
	t, _, ok := s.nextInternalEvent()
	return t, ok
}

// nextInternalEvent returns the time and kind of the next internal event.
// Completions at time t take precedence over starts at time t because the
// freed cores may allow an earlier (re-planned) start at that very instant.
func (s *Scheduler) nextInternalEvent() (int64, NotificationKind, bool) {
	bestT := int64(0)
	kind := Started
	found := false
	for _, a := range s.running {
		if !found || a.end < bestT {
			bestT, kind, found = a.end, Finished, true
		}
	}
	for _, e := range s.waiting {
		if !found || e.plannedStart < bestT {
			bestT, kind, found = e.plannedStart, Started, true
		} else if e.plannedStart == bestT && kind == Finished {
			// Finishes first at equal times; keep kind as Finished.
			continue
		}
	}
	return bestT, kind, found
}

// finishDueAt completes every running job whose end is exactly t, then
// re-plans the queue (freed cores may advance waiting jobs).
func (s *Scheduler) finishDueAt(t int64) []Notification {
	var notes []Notification
	kept := s.running[:0]
	for _, a := range s.running {
		if a.end == t {
			notes = append(notes, Notification{Kind: Finished, JobID: a.job.ID, Time: t, Killed: a.killed})
			continue
		}
		kept = append(kept, a)
	}
	s.running = kept
	if len(notes) > 0 {
		s.now = t
		s.rebuildPlan()
	}
	return notes
}

// startDueAt starts every waiting job whose planned start is exactly t.
func (s *Scheduler) startDueAt(t int64) []Notification {
	var notes []Notification
	kept := s.waiting[:0]
	for _, e := range s.waiting {
		if e.plannedStart == t {
			run := s.scaledRuntime(e.job)
			wall := s.scaledWalltime(e.job)
			a := &allocation{
				job:      e.job,
				start:    t,
				end:      t + run,
				wallEnd:  t + wall,
				killed:   run == wall && e.job.KilledByWalltime(),
				migrated: e.migrated,
			}
			s.running = append(s.running, a)
			notes = append(notes, Notification{Kind: Started, JobID: e.job.ID, Time: t})
			continue
		}
		kept = append(kept, e)
	}
	s.waiting = kept
	if len(notes) > 0 {
		s.now = t
	}
	return notes
}

// rebuildPlan recomputes the planned start and completion of every waiting
// job from the availability profile of the running jobs (bounded by their
// walltimes), according to the local policy.
func (s *Scheduler) rebuildPlan() {
	prof := newProfile(s.now, s.spec.Cores)
	for _, a := range s.running {
		if a.wallEnd > s.now {
			// reserve ignores errors here by construction: running jobs were
			// admitted with compatible reservations. A failure would be a
			// programming error surfaced by the invariant tests.
			if err := prof.reserve(s.now, a.wallEnd, a.job.Procs); err != nil {
				panic(fmt.Sprintf("batch: inconsistent running set on %s: %v", s.spec.Name, err))
			}
		}
	}
	// Waiting jobs are planned in queue order (submission order on this
	// cluster). FCFS additionally forbids starting before the previous
	// queued job.
	sort.SliceStable(s.waiting, func(i, j int) bool { return s.waiting[i].seq < s.waiting[j].seq })
	prevStart := s.now
	for _, e := range s.waiting {
		wall := s.scaledWalltime(e.job)
		lower := s.now
		if s.policy == FCFS && prevStart > lower {
			lower = prevStart
		}
		start := prof.findSlot(lower, wall, e.job.Procs)
		if start == noSlot {
			// Cannot happen for admitted jobs (procs <= cores); guard anyway
			// by pushing the job to the end of the known horizon.
			start = prof.times[len(prof.times)-1]
		}
		if err := prof.reserve(start, start+wall, e.job.Procs); err != nil {
			panic(fmt.Sprintf("batch: plan reservation failed on %s: %v", s.spec.Name, err))
		}
		e.plannedStart = start
		e.plannedEnd = start + wall
		if start > prevStart {
			prevStart = start
		}
	}
	// Keep the combined running+planned profile for cheap completion-time
	// estimates; prevStart is the latest planned start (or now when the
	// queue is empty), which is exactly the FCFS lower bound for a
	// hypothetical extra job.
	s.planProf = prof
	s.maxPlannedStart = prevStart
}

// Snapshot describes the instantaneous state of the cluster, used by the
// Gantt renderer and by tests.
type Snapshot struct {
	ClusterName string
	Time        int64
	Running     []SnapshotJob
	Waiting     []SnapshotJob
}

// SnapshotJob is one job in a snapshot with its (planned or actual)
// execution window.
type SnapshotJob struct {
	JobID int
	Procs int
	Start int64
	End   int64
}

// Snapshot returns the current running and planned-waiting state.
func (s *Scheduler) Snapshot() Snapshot {
	snap := Snapshot{ClusterName: s.spec.Name, Time: s.now}
	for _, a := range s.running {
		snap.Running = append(snap.Running, SnapshotJob{JobID: a.job.ID, Procs: a.job.Procs, Start: a.start, End: a.wallEnd})
	}
	for _, e := range s.waiting {
		snap.Waiting = append(snap.Waiting, SnapshotJob{JobID: e.job.ID, Procs: e.job.Procs, Start: e.plannedStart, End: e.plannedEnd})
	}
	return snap
}

// CheckInvariants verifies the internal consistency of the scheduler: no
// core over-subscription at any instant (running and planned), FCFS start
// ordering, and planned windows in the future. It is exported for use by the
// property-based tests and returns a descriptive error on the first
// violation.
func (s *Scheduler) CheckInvariants() error {
	prof := newProfile(s.now, s.spec.Cores)
	for _, a := range s.running {
		if a.wallEnd > s.now {
			if err := prof.reserve(s.now, a.wallEnd, a.job.Procs); err != nil {
				return fmt.Errorf("running over-subscription: %w", err)
			}
		}
	}
	prevStart := int64(-1)
	prevSeq := int64(-1)
	for _, e := range s.waiting {
		if e.plannedStart < s.now {
			return fmt.Errorf("job %d planned to start at %d before now %d", e.job.ID, e.plannedStart, s.now)
		}
		if e.plannedEnd <= e.plannedStart {
			return fmt.Errorf("job %d has empty planned window [%d,%d)", e.job.ID, e.plannedStart, e.plannedEnd)
		}
		if err := prof.reserve(e.plannedStart, e.plannedEnd, e.job.Procs); err != nil {
			return fmt.Errorf("planned over-subscription: %w", err)
		}
		if s.policy == FCFS && prevStart >= 0 && e.plannedStart < prevStart {
			return fmt.Errorf("FCFS order violated: job %d starts at %d before its predecessor at %d", e.job.ID, e.plannedStart, prevStart)
		}
		if e.seq <= prevSeq {
			return fmt.Errorf("queue order corrupted at job %d", e.job.ID)
		}
		prevStart = e.plannedStart
		prevSeq = e.seq
	}
	if prof.minFree() < 0 {
		return errors.New("profile went negative")
	}
	return nil
}
