package batch

import (
	"testing"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// TestSchedulerAccessors pins the trivial observer methods: they are part of
// the middleware-facing API surface, so a renamed or retyped field would
// otherwise only be caught by the downstream packages.
func TestSchedulerAccessors(t *testing.T) {
	spec := platform.ClusterSpec{Name: "acc", Cores: 4, Speed: 1}
	s, err := NewScheduler(spec, CBF)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spec(); got.Name != spec.Name || got.Cores != spec.Cores {
		t.Fatalf("Spec() = %+v, want %+v", got, spec)
	}
	if got := s.Policy(); got != CBF {
		t.Fatalf("Policy() = %v, want CBF", got)
	}
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %d before any advance, want 0", got)
	}
	if _, err := s.Advance(42); err != nil {
		t.Fatal(err)
	}
	if got := s.Now(); got != 42 {
		t.Fatalf("Now() = %d after Advance(42), want 42", got)
	}

	if got := s.OutagePolicy(); got != KillDisplaced {
		t.Fatalf("OutagePolicy() = %v by default, want KillDisplaced", got)
	}
	s.SetOutagePolicy(RequeueDisplaced)
	if got := s.OutagePolicy(); got != RequeueDisplaced {
		t.Fatalf("OutagePolicy() = %v after SetOutagePolicy, want RequeueDisplaced", got)
	}
}

// TestInvalidatePlanForcesRebuild verifies InvalidatePlan marks the plan
// dirty (the next observation re-plans) and bumps the state version so the
// middleware re-gathers the queue.
func TestInvalidatePlanForcesRebuild(t *testing.T) {
	s, err := NewScheduler(platform.ClusterSpec{Name: "inv", Cores: 2, Speed: 1}, CBF)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(workload.Job{ID: 1, Runtime: 10, Walltime: 20, Procs: 1}, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Settle the plan.
	_ = s.Snapshot()
	rebuildsBefore := s.ProfileStats().PlanRebuilds
	versionBefore := s.StateVersion()

	s.InvalidatePlan()
	if got := s.StateVersion(); got == versionBefore {
		t.Fatal("InvalidatePlan did not bump the state version")
	}
	_ = s.Snapshot()
	rebuildsAfter := s.ProfileStats().PlanRebuilds
	if rebuildsAfter == rebuildsBefore {
		t.Fatal("InvalidatePlan did not force a plan rebuild on the next observation")
	}
}
