package batch

// Tests for the indexed/incremental scheduler internals: job-ID lookup and
// cancellation states, completion predictions across requeues, detached
// estimate snapshots, lazy re-planning, and the equivalence between the
// incrementally maintained run profile and its from-scratch reference.

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

func TestCancelStates(t *testing.T) {
	build := func(t *testing.T) *Scheduler {
		s := newTestScheduler(t, 2, 1.0, CBF)
		// Job 1 occupies the cluster and starts immediately; job 2 waits.
		if err := s.Submit(job(1, 0, 100, 1000, 2), 0, 0); err != nil {
			t.Fatal(err)
		}
		collect(t, s, 0)
		if err := s.Submit(job(2, 0, 100, 100, 2), 0, 5); err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name         string
		jobID        int
		wantErr      error
		wantMigrated int
	}{
		{name: "waiting job is cancelled", jobID: 2, wantErr: nil, wantMigrated: 5},
		{name: "running job is refused", jobID: 1, wantErr: ErrJobRunning},
		{name: "unknown job is refused", jobID: 99, wantErr: ErrUnknownJob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := build(t)
			got, migrated, err := s.Cancel(tc.jobID, 0)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Cancel(%d) err = %v, want %v", tc.jobID, err, tc.wantErr)
				}
				// A refused cancel must not disturb the queue or the counters.
				if s.WaitingCount() != 1 || s.RunningCount() != 1 {
					t.Fatalf("refused cancel mutated state: waiting=%d running=%d", s.WaitingCount(), s.RunningCount())
				}
				if _, can, _ := s.Counters(); can != 0 {
					t.Fatalf("refused cancel counted: %d", can)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != tc.jobID || migrated != tc.wantMigrated {
				t.Fatalf("Cancel returned job %d with %d migrations, want %d and %d", got.ID, migrated, tc.jobID, tc.wantMigrated)
			}
			if s.WaitingCount() != 0 {
				t.Fatalf("job still waiting after cancel")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCurrentCompletionAfterRequeue(t *testing.T) {
	s := newTestScheduler(t, 2, 1.0, CBF)
	// The blocker reserves the whole cluster until t=1000.
	if err := s.Submit(job(1, 0, 1000, 1000, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	collect(t, s, 0)
	if err := s.Submit(job(2, 0, 100, 100, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(3, 0, 100, 100, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Queue order 2, 3: completions 1100 and 1200.
	for id, want := range map[int]int64{2: 1100, 3: 1200} {
		if ect, err := s.CurrentCompletion(id); err != nil || ect != want {
			t.Fatalf("job %d: ECT = %d,%v want %d", id, ect, err, want)
		}
	}
	// Requeue job 2: cancel and resubmit puts it behind job 3.
	cancelled, migrated, err := s.Cancel(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cancelled, 0, migrated+1); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]int64{3: 1100, 2: 1200} {
		if ect, err := s.CurrentCompletion(id); err != nil || ect != want {
			t.Fatalf("after requeue, job %d: ECT = %d,%v want %d", id, ect, err, want)
		}
	}
	// The requeued job carries its incremented reallocation count.
	for _, w := range s.WaitingJobs() {
		if w.Job.ID == 2 && w.Reallocations != 1 {
			t.Fatalf("requeued job lost its reallocation count: %d", w.Reallocations)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateSnapshotMatchesDirectQuery(t *testing.T) {
	for _, policy := range []Policy{FCFS, CBF} {
		s := newTestScheduler(t, 8, 1.3, policy)
		for i := 0; i < 20; i++ {
			if err := s.Submit(job(i+1, 0, 300, 900, 1+i%8), 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		collect(t, s, 10)
		snap, err := s.EstimateSnapshot(10)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Cluster() != "test" || snap.Time() != 10 {
			t.Fatalf("snapshot identity = %q@%d", snap.Cluster(), snap.Time())
		}
		for p := 1; p <= 8; p++ {
			probe := job(1000+p, 10, 200, 400, p)
			direct, err := s.EstimateCompletion(probe, 10)
			if err != nil {
				t.Fatal(err)
			}
			fromSnap, err := snap.EstimateCompletion(probe)
			if err != nil {
				t.Fatal(err)
			}
			if direct != fromSnap {
				t.Fatalf("[%v] snapshot estimate %d != direct estimate %d for %d procs", policy, fromSnap, direct, p)
			}
		}
		// A too-wide probe is refused by the snapshot as well.
		if _, err := snap.EstimateCompletion(job(2000, 10, 10, 10, 9)); !errors.Is(err, ErrTooWide) {
			t.Fatalf("too-wide probe: err = %v", err)
		}
		if snap.Stale() {
			t.Fatal("snapshot stale with no intervening mutation")
		}
		// A mutation makes the snapshot stale but it still answers with the
		// state at snapshot time.
		before, err := snap.EstimateCompletion(job(3000, 10, 200, 400, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(job(999, 10, 300, 900, 8), 10, 0); err != nil {
			t.Fatal(err)
		}
		if !snap.Stale() {
			t.Fatal("snapshot not stale after a submission")
		}
		after, err := snap.EstimateCompletion(job(3000, 10, 200, 400, 4))
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Fatalf("stale snapshot changed its answer: %d -> %d", before, after)
		}
	}
}

func TestMassCancelSingleReplan(t *testing.T) {
	s := newTestScheduler(t, 4, 1.0, CBF)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Submit(job(i+1, 0, 100, 200, 1+i%4), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the plan once so the burst below starts from a clean state.
	_ = s.WaitingJobs()
	rebuilds := s.ProfileStats().PlanRebuilds
	for i := 0; i < n; i++ {
		if _, _, err := s.Cancel(i+1, 0); err != nil && !errors.Is(err, ErrJobRunning) {
			t.Fatal(err)
		}
	}
	if _, err := s.EstimateCompletion(job(999, 0, 100, 200, 2), 0); err != nil {
		t.Fatal(err)
	}
	if got := s.ProfileStats().PlanRebuilds - rebuilds; got != 1 {
		t.Fatalf("burst of %d cancellations triggered %d re-plans, want exactly 1", n, got)
	}
}

// TestPropertyIncrementalProfileMatchesScratch drives a scheduler with a
// random mix of submissions, cancellations, time advances, estimates and
// snapshots — the full operation surface — and asserts after every step that
// the incrementally maintained run profile is identical to a from-scratch
// build over the live horizon, and that it stays identical through an
// explicit invalidation.
func TestPropertyIncrementalProfileMatchesScratch(t *testing.T) {
	type op struct {
		Kind    uint8
		Procs   uint8
		Runtime uint16
		Wall    uint16
		Delta   uint16
	}
	for _, policy := range []Policy{FCFS, CBF} {
		policy := policy
		f := func(ops []op) bool {
			s, err := NewScheduler(platform.ClusterSpec{Name: "inc", Cores: 16, Speed: 1.1}, policy)
			if err != nil {
				return false
			}
			s.SetDebugCrossCheck(true)
			now := int64(0)
			nextID := 1
			for k, o := range ops {
				switch o.Kind % 5 {
				case 0: // submit
					j := workload.Job{
						ID:       nextID,
						Submit:   now,
						Runtime:  int64(o.Runtime%1500) + 1,
						Walltime: int64(o.Wall%2500) + 1,
						Procs:    int(o.Procs%16) + 1,
					}
					nextID++
					if err := s.Submit(j, now, 0); err != nil {
						return false
					}
				case 1: // cancel a random held job (running cancels are refused)
					if nextID > 1 {
						id := int(o.Delta)%(nextID-1) + 1
						if _, _, err := s.Cancel(id, now); err != nil &&
							!errors.Is(err, ErrUnknownJob) && !errors.Is(err, ErrJobRunning) {
							return false
						}
					}
				case 2: // advance time (starts and finishes fire)
					now += int64(o.Delta % 400)
					if _, err := s.Advance(now); err != nil {
						return false
					}
				case 3: // estimate
					probe := workload.Job{ID: 1 << 30, Submit: now, Runtime: 100, Walltime: 200, Procs: int(o.Procs%16) + 1}
					if _, err := s.EstimateCompletion(probe, now); err != nil && !errors.Is(err, ErrTooWide) {
						return false
					}
				case 4: // snapshot + query
					snap, err := s.EstimateSnapshot(now)
					if err != nil {
						return false
					}
					probe := workload.Job{ID: 1 << 30, Submit: now, Runtime: 50, Walltime: 150, Procs: int(o.Procs%16) + 1}
					if _, err := snap.EstimateCompletion(probe); err != nil && !errors.Is(err, ErrTooWide) {
						return false
					}
				}
				if err := s.CheckProfileConsistency(); err != nil {
					t.Logf("op %d (%v): %v", k, policy, err)
					return false
				}
				// Periodically exercise the explicit invalidation path: the
				// from-scratch rebuild must agree with what the incremental
				// profile said.
				if k%17 == 16 {
					before := s.runProf.clone()
					before.trimTo(s.now)
					s.InvalidateRunProfile()
					if err := s.CheckProfileConsistency(); err != nil {
						t.Logf("after invalidation at op %d (%v): %v", k, policy, err)
						return false
					}
					if !s.runProf.equal(before) {
						t.Logf("invalidation changed the profile at op %d (%v)", k, policy)
						return false
					}
				}
			}
			// Drain and keep checking.
			for iter := 0; iter < 100000; iter++ {
				next, ok := s.NextEventTime()
				if !ok {
					break
				}
				if _, err := s.Advance(next); err != nil {
					return false
				}
				if err := s.CheckProfileConsistency(); err != nil {
					t.Logf("drain (%v): %v", policy, err)
					return false
				}
			}
			return s.RunningCount() == 0 && s.WaitingCount() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(21))}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

func TestProfileReleaseRestoresCapacity(t *testing.T) {
	p := newProfile(0, 8)
	if err := p.reserve(10, 100, 5); err != nil {
		t.Fatal(err)
	}
	// Early finish at t=40 returns the tail of the reservation.
	if err := p.release(40, 100, 5); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		t    int64
		want int
	}{{0, 8}, {10, 3}, {39, 3}, {40, 8}, {100, 8}} {
		if got := p.freeAt(c.t); got != c.want {
			t.Errorf("freeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// The merged profile must be back in canonical two-segment form.
	if len(p.times) != 3 {
		t.Fatalf("release did not merge segments: %v/%v", p.times, p.free)
	}
	// Releasing beyond the cluster size is a bug and must be refused.
	if err := p.release(0, 10, 1); err == nil {
		t.Fatal("release above cluster size accepted")
	}
	if err := p.release(5, 5, 1); err == nil {
		t.Fatal("empty release accepted")
	}
}

func TestProfileTrimTo(t *testing.T) {
	p := newProfile(0, 8)
	if err := p.reserve(10, 50, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.reserve(60, 90, 2); err != nil {
		t.Fatal(err)
	}
	p.trimTo(30)
	if p.times[0] != 30 {
		t.Fatalf("origin = %d, want 30", p.times[0])
	}
	for _, c := range []struct {
		t    int64
		want int
	}{{30, 4}, {50, 8}, {70, 6}, {100, 8}} {
		if got := p.freeAt(c.t); got != c.want {
			t.Errorf("freeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// Trimming to the past or the present origin is a no-op.
	before := p.clone()
	p.trimTo(10)
	if !p.equal(before) {
		t.Fatal("trim to the past changed the profile")
	}
}

func TestProfileEqualNormalizes(t *testing.T) {
	a := newProfile(0, 4)
	b := newProfile(0, 4)
	// Give b redundant breakpoints with identical free counts.
	if err := b.reserve(10, 20, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.release(10, 20, 2); err != nil {
		t.Fatal(err)
	}
	if !a.equal(b) {
		t.Fatalf("equivalent profiles compare unequal: %v/%v vs %v/%v", a.times, a.free, b.times, b.free)
	}
	if err := b.reserve(5, 6, 1); err != nil {
		t.Fatal(err)
	}
	if a.equal(b) {
		t.Fatal("different profiles compare equal")
	}
}
