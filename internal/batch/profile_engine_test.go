package batch

// Tests for the allocation-light profile engine added with the concurrent
// sweep work: batched reservation merges, the paired breakpoint insertion,
// the resumable slot-search cursor, the zero-prefix skip hint and the
// buffer-reuse primitives. Each new fast path is checked against the plain
// sequential operations it replaces — they must describe the same step
// function on every input.

import (
	"math/rand"
	"testing"
)

// randomSpans draws k random valid reservations against a profile of the
// given cores, sized so that over-subscription stays impossible.
func randomSpans(rng *rand.Rand, k, cores int) []span {
	spans := make([]span, 0, k)
	perSpan := cores / k
	if perSpan < 1 {
		perSpan = 1
		k = cores
	}
	for i := 0; i < k; i++ {
		start := rng.Int63n(500)
		spans = append(spans, span{
			start: start,
			end:   start + 1 + rng.Int63n(400),
			procs: 1 + rng.Intn(perSpan),
		})
	}
	return spans
}

func TestReserveAllMatchesSequentialReserves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cores := 8 + rng.Intn(56)
		spans := randomSpans(rng, 1+rng.Intn(8), cores)
		batched := newProfile(0, cores)
		sequential := newProfile(0, cores)
		if err := batched.reserveAll(spans); err != nil {
			t.Fatalf("trial %d: reserveAll: %v", trial, err)
		}
		for _, sp := range spans {
			if err := sequential.reserve(sp.start, sp.end, sp.procs); err != nil {
				t.Fatalf("trial %d: reserve: %v", trial, err)
			}
		}
		if !batched.equal(sequential) {
			t.Fatalf("trial %d: batched %v/%v != sequential %v/%v",
				trial, batched.times, batched.free, sequential.times, sequential.free)
		}
	}
}

func TestReserveAllRejectsOverSubscription(t *testing.T) {
	p := newProfile(0, 4)
	err := p.reserveAll([]span{{0, 100, 3}, {50, 150, 3}})
	if err == nil {
		t.Fatal("overlapping over-subscription accepted")
	}
	if err := newProfile(0, 4).reserveAll([]span{{10, 10, 1}}); err == nil {
		t.Fatal("empty span accepted")
	}
	if err := newProfile(100, 4).reserveAll([]span{{50, 150, 1}}); err == nil {
		t.Fatal("span before the origin accepted")
	}
}

// randomBusyProfile builds a profile with a handful of random reservations.
func randomBusyProfile(rng *rand.Rand) *profile {
	cores := 8 + rng.Intn(24)
	p := newProfile(0, cores)
	for i := 0; i < 6; i++ {
		start := rng.Int63n(800)
		end := start + 1 + rng.Int63n(300)
		procs := 1 + rng.Intn(cores/6)
		if err := p.reserve(start, end, procs); err != nil {
			// Random stacking can overflow; skip that reservation.
			continue
		}
	}
	return p
}

func TestEnsureBreakPairMatchesTwoInsertions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		paired := randomBusyProfile(rng)
		plain := paired.clone()
		start := rng.Int63n(1200)
		end := start + 1 + rng.Int63n(400)
		hint := rng.Intn(len(paired.times) + 1)
		si, ei := paired.ensureBreakPair(hint, start, end)
		wantSi := plain.ensureBreak(start)
		wantEi := plain.ensureBreak(end)
		if !paired.equal(plain) {
			t.Fatalf("trial %d: pair insert diverged for [%d,%d): %v/%v vs %v/%v",
				trial, start, end, paired.times, paired.free, plain.times, plain.free)
		}
		if paired.times[si] != start || paired.times[ei] != end {
			t.Fatalf("trial %d: pair indexes wrong: times[%d]=%d (want %d), times[%d]=%d (want %d)",
				trial, si, paired.times[si], start, ei, paired.times[ei], end)
		}
		if si != wantSi || ei != wantEi {
			t.Fatalf("trial %d: pair indexes (%d,%d) != sequential (%d,%d)", trial, si, ei, wantSi, wantEi)
		}
	}
}

func TestFindSlotFromMatchesPlainSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		p := randomBusyProfile(rng)
		procs := 1 + rng.Intn(p.cores)
		duration := 1 + rng.Int63n(500)
		earliest := rng.Int63n(1000)
		want := p.findSlot(earliest, duration, procs)
		for _, hint := range []int{0, rng.Intn(len(p.times) + 2), len(p.times) - 1} {
			got, idx := p.findSlotFrom(hint, earliest, duration, procs)
			if got != want {
				t.Fatalf("trial %d: findSlotFrom(hint=%d) = %d, want %d", trial, hint, got, want)
			}
			if got != noSlot && p.times[idx] > got {
				t.Fatalf("trial %d: returned segment %d starts after the slot %d", trial, idx, got)
			}
		}
	}
}

// TestFindSlotCursorMonotoneReplan mirrors the FCFS planning loop: strictly
// monotone lower bounds with the cursor resumed from each reservation must
// find exactly the slots a from-scratch search finds.
func TestFindSlotCursorMonotoneReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		cursorProf := randomBusyProfile(rng)
		plainProf := cursorProf.clone()
		lower := int64(0)
		cursor := 0
		for job := 0; job < 20; job++ {
			procs := 1 + rng.Intn(cursorProf.cores)
			duration := 1 + rng.Int63n(200)
			want := plainProf.findSlot(lower, duration, procs)
			got, seg := cursorProf.findSlotFrom(cursor, lower, duration, procs)
			if got != want {
				t.Fatalf("trial %d job %d: cursor search %d != plain %d", trial, job, got, want)
			}
			if want == noSlot {
				break
			}
			var err1, err2 error
			cursor, err1 = cursorProf.reserveAtHint(want, want+duration, procs, seg)
			_, err2 = plainProf.reserveAt(want, want+duration, procs)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d job %d: reserve failed: %v / %v", trial, job, err1, err2)
			}
			if !cursorProf.equal(plainProf) {
				t.Fatalf("trial %d job %d: profiles diverged", trial, job)
			}
			lower = want // FCFS: the next job cannot start before this one
		}
	}
}

// TestFirstFreeSkipHintStaysSound exercises the zero-prefix skip hint under
// interleaved reserves and releases: after every mutation, slot searches on
// the profile must match searches on a clone with the hint cleared.
func TestFirstFreeSkipHintStaysSound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		p := newProfile(0, 16)
		type res struct {
			start, end int64
			procs      int
		}
		var live []res
		for step := 0; step < 40; step++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				start := rng.Int63n(300)
				end := start + 1 + rng.Int63n(200)
				procs := 1 + rng.Intn(4)
				if err := p.reserve(start, end, procs); err == nil {
					live = append(live, res{start, end, procs})
				}
			} else {
				i := rng.Intn(len(live))
				r := live[i]
				// Release the tail of an existing reservation, as an early
				// finish would.
				mid := r.start + (r.end-r.start)/2
				if mid < r.end {
					if err := p.release(mid, r.end, r.procs); err != nil {
						t.Fatalf("trial %d step %d: release: %v", trial, step, err)
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
			if p.firstFree > 0 {
				for i := 0; i < p.firstFree; i++ {
					if p.free[i] != 0 {
						t.Fatalf("trial %d step %d: firstFree=%d but free[%d]=%d", trial, step, p.firstFree, i, p.free[i])
					}
				}
			}
			noHint := p.clone()
			noHint.firstFree = 0
			procs := 1 + rng.Intn(8)
			duration := 1 + rng.Int63n(100)
			earliest := rng.Int63n(400)
			if got, want := p.findSlot(earliest, duration, procs), noHint.findSlot(earliest, duration, procs); got != want {
				t.Fatalf("trial %d step %d: hinted search %d != plain %d", trial, step, got, want)
			}
		}
	}
}

func TestCopyFromAndGrowPreserveFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := randomBusyProfile(rng)
	dst := &profile{}
	dst.copyFrom(src)
	if !dst.equal(src) {
		t.Fatal("copyFrom changed the step function")
	}
	// Reuse with a smaller source must shrink, not leak stale segments.
	small := newProfile(5, 4)
	dst.copyFrom(small)
	if !dst.equal(small) || len(dst.times) != 1 {
		t.Fatalf("copyFrom reuse kept stale segments: %v/%v", dst.times, dst.free)
	}
	grown := src.clone()
	grown.grow(64)
	if !grown.equal(src) {
		t.Fatal("grow changed the step function")
	}
	if cap(grown.times) < len(src.times)+64 {
		t.Fatalf("grow reserved cap %d, want >= %d", cap(grown.times), len(src.times)+64)
	}
	before := cap(grown.times)
	for i := 0; i < 30; i++ {
		grown.ensureBreak(int64(2000 + i))
	}
	if cap(grown.times) != before {
		t.Fatal("insertions within the grown capacity still reallocated")
	}
}

// TestReleaseLocalMergeKeepsCanonicalBoundaries checks that the localized
// boundary merge that replaced normalize() in release leaves no
// equal-adjacent segments behind.
func TestReleaseLocalMergeKeepsCanonicalBoundaries(t *testing.T) {
	p := newProfile(0, 8)
	if err := p.reserve(10, 30, 4); err != nil {
		t.Fatal(err)
	}
	// Releasing the whole window must merge both boundaries back into the
	// idle profile.
	if err := p.release(10, 30, 4); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.free); i++ {
		if p.free[i] == p.free[i-1] {
			t.Fatalf("equal-adjacent segments survived release: %v/%v", p.times, p.free)
		}
	}
	if p.freeAt(20) != 8 {
		t.Fatal("release did not restore the cores")
	}
}
