package batch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProfileAllFree(t *testing.T) {
	p := newProfile(0, 16)
	if p.freeAt(0) != 16 || p.freeAt(1000000) != 16 {
		t.Fatal("fresh profile not fully free")
	}
	if p.minFree() != 16 || p.maxFree() != 16 {
		t.Fatal("min/max free wrong on fresh profile")
	}
}

func TestReserveAndFreeAt(t *testing.T) {
	p := newProfile(0, 10)
	if err := p.reserve(10, 20, 4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    int64
		want int
	}{
		{0, 10}, {9, 10}, {10, 6}, {15, 6}, {19, 6}, {20, 10}, {100, 10},
	}
	for _, c := range cases {
		if got := p.freeAt(c.t); got != c.want {
			t.Errorf("freeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestReserveStacking(t *testing.T) {
	p := newProfile(0, 10)
	if err := p.reserve(0, 100, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.reserve(50, 150, 3); err != nil {
		t.Fatal(err)
	}
	if got := p.freeAt(75); got != 4 {
		t.Fatalf("freeAt(75) = %d, want 4", got)
	}
	if got := p.freeAt(120); got != 7 {
		t.Fatalf("freeAt(120) = %d, want 7", got)
	}
	// A third reservation that would overflow must be rejected.
	if err := p.reserve(60, 70, 5); err == nil {
		t.Fatal("over-subscription accepted")
	}
}

func TestReserveErrors(t *testing.T) {
	p := newProfile(100, 10)
	if err := p.reserve(50, 60, 1); err == nil {
		t.Fatal("reservation before the profile origin accepted")
	}
	if err := p.reserve(200, 200, 1); err == nil {
		t.Fatal("empty reservation accepted")
	}
	if err := p.reserve(200, 199, 1); err == nil {
		t.Fatal("inverted reservation accepted")
	}
}

func TestFindSlotEmptyProfile(t *testing.T) {
	p := newProfile(0, 8)
	if got := p.findSlot(25, 100, 4); got != 25 {
		t.Fatalf("findSlot on empty profile = %d, want 25", got)
	}
	if got := p.findSlot(-50, 100, 4); got != 0 {
		t.Fatalf("findSlot before origin = %d, want clamped to 0", got)
	}
}

func TestFindSlotRejectsImpossible(t *testing.T) {
	p := newProfile(0, 8)
	if got := p.findSlot(0, 100, 9); got != noSlot {
		t.Fatalf("findSlot with too many procs = %d, want noSlot", got)
	}
	if got := p.findSlot(0, 0, 4); got != noSlot {
		t.Fatalf("findSlot with zero duration = %d, want noSlot", got)
	}
	if got := p.findSlot(0, 10, 0); got != noSlot {
		t.Fatalf("findSlot with zero procs = %d, want noSlot", got)
	}
}

func TestFindSlotWaitsForFreeCores(t *testing.T) {
	p := newProfile(0, 8)
	if err := p.reserve(0, 100, 8); err != nil {
		t.Fatal(err)
	}
	if got := p.findSlot(0, 50, 1); got != 100 {
		t.Fatalf("findSlot = %d, want 100 (cluster busy until then)", got)
	}
}

func TestFindSlotBackfillHole(t *testing.T) {
	p := newProfile(0, 8)
	// 6 cores busy 0..100, everything busy 100..200.
	if err := p.reserve(0, 100, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.reserve(100, 200, 8); err != nil {
		t.Fatal(err)
	}
	// A 2-core job of length 100 fits in the hole at t=0.
	if got := p.findSlot(0, 100, 2); got != 0 {
		t.Fatalf("small job not backfilled: start = %d, want 0", got)
	}
	// A 2-core job of length 101 does not fit before the wall at 100.
	if got := p.findSlot(0, 101, 2); got != 200 {
		t.Fatalf("long job start = %d, want 200", got)
	}
	// A 7-core job must wait until 200.
	if got := p.findSlot(0, 10, 7); got != 200 {
		t.Fatalf("wide job start = %d, want 200", got)
	}
}

func TestFindSlotRespectsEarliest(t *testing.T) {
	p := newProfile(0, 8)
	if got := p.findSlot(500, 10, 4); got != 500 {
		t.Fatalf("findSlot ignored the earliest bound: %d", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := newProfile(0, 8)
	if err := p.reserve(0, 10, 4); err != nil {
		t.Fatal(err)
	}
	c := p.clone()
	if err := c.reserve(0, 10, 4); err != nil {
		t.Fatal(err)
	}
	if p.freeAt(5) != 4 {
		t.Fatal("mutating the clone changed the original")
	}
	if c.freeAt(5) != 0 {
		t.Fatal("clone did not record its own reservation")
	}
}

// TestPropertyProfileNeverNegative: a random sequence of non-overflowing
// reservations never drives free cores negative or above the core count, and
// findSlot always returns a slot where the job actually fits.
func TestPropertyProfileNeverNegative(t *testing.T) {
	type res struct {
		Start uint16
		Len   uint16
		Procs uint8
	}
	f := func(resList []res) bool {
		const cores = 32
		p := newProfile(0, cores)
		for _, r := range resList {
			procs := int(r.Procs%cores) + 1
			dur := int64(r.Len%1000) + 1
			start := p.findSlot(int64(r.Start), dur, procs)
			if start == noSlot {
				return false // always satisfiable: procs <= cores
			}
			if start < int64(r.Start) {
				return false
			}
			if err := p.reserve(start, start+dur, procs); err != nil {
				return false
			}
			if p.minFree() < 0 || p.maxFree() > cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFindSlotIsEarliest: the slot returned by findSlot is minimal —
// starting one second earlier would not leave enough capacity somewhere in
// the window (checked by sampling the window start-1).
func TestPropertyFindSlotIsEarliest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cores = 16
		p := newProfile(0, cores)
		// Build a random busy landscape.
		for i := 0; i < 20; i++ {
			start := int64(rng.Intn(500))
			end := start + int64(rng.Intn(200)) + 1
			procs := rng.Intn(cores) + 1
			if p.freeAt(start) >= procs {
				// Only reserve when it fits at that instant across the whole
				// window; otherwise skip (landscape building only).
				fits := true
				for t := start; t < end; t++ {
					if p.freeAt(t) < procs {
						fits = false
						break
					}
				}
				if fits {
					if err := p.reserve(start, end, procs); err != nil {
						return false
					}
				}
			}
		}
		procs := rng.Intn(cores) + 1
		dur := int64(rng.Intn(100)) + 1
		earliest := int64(rng.Intn(300))
		start := p.findSlot(earliest, dur, procs)
		if start == noSlot {
			return false
		}
		// The returned window must have capacity everywhere.
		for t := start; t < start+dur; t++ {
			if p.freeAt(t) < procs {
				return false
			}
		}
		// Minimality: if start > earliest, the window starting at start-1
		// must not fit.
		if start > earliest {
			ok := true
			for t := start - 1; t < start-1+dur; t++ {
				if p.freeAt(t) < procs {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
