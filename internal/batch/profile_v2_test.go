package batch

import (
	"fmt"
	"math/rand"
	"testing"
)

// --- Satellite: diverged-capacity buffer regression -------------------------
//
// grow and copyFrom reuse backing arrays based on capacity checks. The old
// code consulted cap(p.times) alone; a profile whose times and free arrays
// had diverged capacities (possible after independent append growth, or in
// any hand-built buffer) would slice free beyond its capacity — a panic —
// or keep appending into a too-small array. Both paths now check both caps.

// divergedProfile builds a single-segment profile whose backing arrays have
// deliberately different capacities.
func divergedProfile(tcap, fcap, cores int) *profile {
	p := &profile{
		times: make([]int64, 1, tcap),
		free:  make([]int, 1, fcap),
		cores: cores,
	}
	p.times[0] = 0
	p.free[0] = cores
	return p
}

func TestCopyFromDivergedCaps(t *testing.T) {
	src := newProfile(0, 8)
	for _, tt := range []int64{10, 20, 30, 40, 50} {
		if err := src.reserve(tt, tt+5, 1); err != nil {
			t.Fatal(err)
		}
	}
	n := len(src.times)
	if n < 4 {
		t.Fatalf("source profile too small to exercise the copy: %d segments", n)
	}
	for _, tc := range []struct {
		name       string
		tcap, fcap int
	}{
		{"times-large-free-small", 4 * n, 1}, // old code: free[:n] beyond cap → panic
		{"free-large-times-small", 1, 4 * n},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dst := divergedProfile(tc.tcap, tc.fcap, 8)
			dst.copyFrom(src)
			if !dst.equal(src) {
				t.Fatal("copy into diverged-cap buffers lost the step function")
			}
			if err := dst.check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGrowDivergedCaps(t *testing.T) {
	for _, tc := range []struct {
		name       string
		tcap, fcap int
	}{
		{"times-large-free-small", 64, 1}, // old code: cap(times) satisfied → free never grown
		{"free-large-times-small", 1, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := divergedProfile(tc.tcap, tc.fcap, 8)
			p.grow(16)
			need := 1 + 16
			if cap(p.times) < need || cap(p.free) < need {
				t.Fatalf("grow(16) left caps %d/%d, need %d for both", cap(p.times), cap(p.free), need)
			}
			// The grown profile must absorb that many breakpoints without
			// losing the coupling.
			for i := int64(1); i <= 16; i++ {
				p.ensureBreak(i * 10)
			}
			if err := p.check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- Satellite: hint semantics at exact breakpoints and the trimmed origin --

func TestSegmentIndexFromBoundaries(t *testing.T) {
	p := newProfile(0, 10)
	// Breakpoints 0, 10, 20, 30.
	if err := p.reserve(10, 20, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.reserve(20, 30, 5); err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.times), 4; got != want {
		t.Fatalf("fixture has %d breakpoints, want %d", got, want)
	}
	cases := []struct {
		name string
		hint int
		t    int64
		want int
	}{
		{"exact-breakpoint-at-hint", 1, 10, 1},
		{"exact-breakpoint-past-hint", 0, 20, 2},
		{"hint-is-containing-segment", 1, 15, 1},
		{"hint-before-containing-segment", 1, 25, 2},
		{"hint-too-late-falls-back", 2, 15, 1},
		{"hint-at-last-segment", 3, 35, 3},
		{"exact-breakpoint-at-last", 3, 30, 3},
		{"hint-out-of-range-high", 7, 25, 2},
		{"hint-negative", -1, 25, 2},
		{"origin-exact", 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.segmentIndexFrom(tc.hint, tc.t); got != tc.want {
				t.Fatalf("segmentIndexFrom(%d, %d) = %d, want %d", tc.hint, tc.t, got, tc.want)
			}
		})
	}
}

func TestEnsureBreakFromBoundaries(t *testing.T) {
	build := func() *profile {
		p := newProfile(0, 10)
		if err := p.reserve(10, 20, 2); err != nil {
			t.Fatal(err)
		}
		if err := p.reserve(20, 30, 5); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name     string
		hint     int
		t        int64
		wantIdx  int
		inserted bool
	}{
		{"existing-breakpoint-at-hint", 1, 10, 1, false},
		{"existing-breakpoint-past-hint", 0, 30, 3, false},
		{"split-mid-segment", 0, 15, 2, true},
		{"split-last-segment", 3, 40, 4, true},
		{"split-with-stale-late-hint", 3, 5, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := build()
			before := len(p.times)
			idx := p.ensureBreakFrom(tc.hint, tc.t)
			if idx != tc.wantIdx {
				t.Fatalf("ensureBreakFrom(%d, %d) = %d, want %d", tc.hint, tc.t, idx, tc.wantIdx)
			}
			if p.times[idx] != tc.t {
				t.Fatalf("breakpoint at index %d is %d, want %d", idx, p.times[idx], tc.t)
			}
			if grew := len(p.times) > before; grew != tc.inserted {
				t.Fatalf("insertion = %v, want %v", grew, tc.inserted)
			}
			if err := p.check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTrimmedOriginBoundaries pins the origin semantics after trimTo moves
// the first breakpoint onto an instant that never was one: searches, breaks
// and reservations anchored exactly at the new origin must resolve to
// segment 0 without inserting anything, and times before it must clamp (in
// findSlot) or be rejected (in reserve/release).
func TestTrimmedOriginBoundaries(t *testing.T) {
	p := newProfile(0, 10)
	if err := p.reserve(10, 30, 4); err != nil {
		t.Fatal(err)
	}
	p.trimTo(15) // origin now 15, mid-reservation; 15 was never a breakpoint
	if p.times[0] != 15 {
		t.Fatalf("origin after trim = %d, want 15", p.times[0])
	}
	if got := p.segmentIndexFrom(0, 15); got != 0 {
		t.Fatalf("segmentIndexFrom(0, origin) = %d, want 0", got)
	}
	if got := p.freeAt(15); got != 6 {
		t.Fatalf("freeAt(origin) = %d, want 6", got)
	}
	before := len(p.times)
	if idx := p.ensureBreak(15); idx != 0 || len(p.times) != before {
		t.Fatalf("ensureBreak(origin) = %d (len %d→%d), want index 0 with no insertion", idx, before, len(p.times))
	}
	// A search from before the trimmed origin clamps to it.
	if got := p.findSlot(0, 5, 10); got != 30 {
		t.Fatalf("findSlot(before-origin) = %d, want 30", got)
	}
	if got := p.findSlot(0, 5, 6); got != 15 {
		t.Fatalf("findSlot(before-origin, fits-at-origin) = %d, want origin 15", got)
	}
	// Reservations anchored exactly at the trimmed origin are legal; before
	// it they are not.
	if err := p.reserve(15, 20, 6); err != nil {
		t.Fatalf("reserve at trimmed origin: %v", err)
	}
	if err := p.reserve(14, 20, 1); err == nil {
		t.Fatal("reserve before trimmed origin unexpectedly succeeded")
	}
	if err := p.check(); err != nil {
		t.Fatal(err)
	}
}

// --- Satellite: property test against a naive reference step function ------

// refProfile is a deliberately naive step-function implementation: plain
// linear scans, no hints, no buckets, no merging discipline beyond keeping
// the function canonical. It re-derives every answer from the definition so
// the v2 engine has an independent oracle.
type refProfile struct {
	times []int64
	free  []int
	cores int
}

func newRefProfile(start int64, cores int) *refProfile {
	return &refProfile{times: []int64{start}, free: []int{cores}, cores: cores}
}

func (r *refProfile) segAt(t int64) int {
	i := 0
	for i+1 < len(r.times) && r.times[i+1] <= t {
		i++
	}
	return i
}

func (r *refProfile) split(t int64) {
	i := r.segAt(t)
	if r.times[i] == t {
		return
	}
	r.times = append(r.times, 0)
	r.free = append(r.free, 0)
	copy(r.times[i+2:], r.times[i+1:])
	copy(r.free[i+2:], r.free[i+1:])
	r.times[i+1] = t
	r.free[i+1] = r.free[i]
}

func (r *refProfile) add(start, end int64, delta int) error {
	r.split(start)
	r.split(end)
	for i := range r.times {
		if r.times[i] >= start && r.times[i] < end {
			f := r.free[i] + delta
			if f < 0 || f > r.cores {
				return fmt.Errorf("ref: %d free out of range at t=%d", f, r.times[i])
			}
		}
	}
	for i := range r.times {
		if r.times[i] >= start && r.times[i] < end {
			r.free[i] += delta
		}
	}
	return nil
}

func (r *refProfile) trim(t int64) {
	if t <= r.times[0] {
		return
	}
	i := r.segAt(t)
	r.times = append(r.times[:0], r.times[i:]...)
	r.free = append(r.free[:0], r.free[i:]...)
	r.times[0] = t
}

// findSlot checks every candidate start (the earliest time and every later
// breakpoint) directly against the definition.
func (r *refProfile) findSlot(earliest, duration int64, procs int) int64 {
	if procs > r.cores || procs <= 0 || duration <= 0 {
		return noSlot
	}
	if earliest < r.times[0] {
		earliest = r.times[0]
	}
	cands := []int64{earliest}
	for _, t := range r.times {
		if t > earliest {
			cands = append(cands, t)
		}
	}
	for _, c := range cands {
		ok := true
		for i := range r.times {
			segStart := r.times[i]
			segEnd := int64(1<<62 - 1)
			if i+1 < len(r.times) {
				segEnd = r.times[i+1]
			}
			if segEnd <= c || segStart >= c+duration {
				continue
			}
			if r.free[i] < procs {
				ok = false
				break
			}
		}
		if ok {
			return c
		}
	}
	return noSlot
}

// matches reports whether the v2 profile and the reference describe the
// same step function, comparing the free count at both sides' breakpoints.
func (r *refProfile) matches(p *profile) error {
	for _, t := range r.times {
		if got, want := p.freeAt(t), r.free[r.segAt(t)]; got != want {
			return fmt.Errorf("free at %d: v2 %d, ref %d", t, got, want)
		}
	}
	for _, t := range p.times {
		if t < r.times[0] {
			return fmt.Errorf("v2 breakpoint %d before ref origin %d", t, r.times[0])
		}
		if got, want := p.freeAt(t), r.free[r.segAt(t)]; got != want {
			return fmt.Errorf("free at %d: v2 %d, ref %d", t, got, want)
		}
	}
	return nil
}

type refReservation struct {
	start, end int64
	procs      int
}

// TestProfileMatchesReferenceModel drives the v2 engine and the naive
// reference through the same randomized operation sequences — reserve at
// found slots, release of reservation tails, trims, slot queries across
// widths and durations — and requires identical answers plus a clean
// structural check after every step. The horizon and reservation density
// push the profile well past the bucket-activation threshold so the skip
// paths in findSlotFrom are exercised, not just the plain scans. Failures
// name the seed and step, so any counterexample replays deterministically.
func TestProfileMatchesReferenceModel(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234, 99991}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const cores = 48
			p := newProfile(0, cores)
			ref := newRefProfile(0, cores)
			var live []refReservation
			now := int64(0)
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // reserve at the earliest slot
					procs := 1 + rng.Intn(cores)
					duration := int64(1 + rng.Intn(2000))
					earliest := now + int64(rng.Intn(500))
					hint := rng.Intn(len(p.times) + 2)
					start, idx := p.findSlotFrom(hint, earliest, duration, procs)
					if want := ref.findSlot(earliest, duration, procs); start != want {
						t.Fatalf("step %d: findSlotFrom(hint=%d) = %d, ref %d", step, hint, start, want)
					}
					if start == noSlot {
						break
					}
					if _, err := p.reserveAtHint(start, start+duration, procs, idx); err != nil {
						t.Fatalf("step %d: reserve: %v", step, err)
					}
					if err := ref.add(start, start+duration, -procs); err != nil {
						t.Fatalf("step %d: ref reserve: %v", step, err)
					}
					live = append(live, refReservation{start, start + duration, procs})
				case op < 7: // release the tail of a live reservation
					if len(live) == 0 {
						break
					}
					i := rng.Intn(len(live))
					res := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					if res.start < p.times[0] {
						// Part of the window fell behind the trimmed origin;
						// releasing it would be rejected by both sides.
						break
					}
					from := res.start + rng.Int63n(res.end-res.start)
					if err := p.release(from, res.end, res.procs); err != nil {
						t.Fatalf("step %d: release: %v", step, err)
					}
					if err := ref.add(from, res.end, res.procs); err != nil {
						t.Fatalf("step %d: ref release: %v", step, err)
					}
				case op < 8: // advance time and trim
					now += int64(rng.Intn(300))
					p.trimTo(now)
					ref.trim(now)
				default: // pure queries
					procs := 1 + rng.Intn(cores)
					duration := int64(1 + rng.Intn(3000))
					earliest := now + int64(rng.Intn(2000))
					got := p.findSlot(earliest, duration, procs)
					if want := ref.findSlot(earliest, duration, procs); got != want {
						t.Fatalf("step %d: findSlot(%d,%d,%d) = %d, ref %d", step, earliest, duration, procs, got, want)
					}
				}
				if err := p.check(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := ref.matches(p); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if len(p.times) < bucketActivate {
				t.Fatalf("sequence never activated the bucket summaries (%d segments); the skip paths went untested", len(p.times))
			}
		})
	}
}

// TestBucketSummaryActivation pins the activation threshold: summaries are
// absent below it, consistent above it, and dropped again when a trim
// shrinks the profile back under it.
func TestBucketSummaryActivation(t *testing.T) {
	p := newProfile(0, 4)
	for i := 0; len(p.times) < bucketActivate; i++ {
		if err := p.reserve(int64(10+20*i), int64(20+20*i), 1); err != nil {
			t.Fatal(err)
		}
		if len(p.times) < bucketActivate && len(p.bmax) != 0 {
			t.Fatalf("summaries active at %d segments, below threshold %d", len(p.times), bucketActivate)
		}
	}
	if len(p.bmax) != numBuckets(len(p.times)) {
		t.Fatalf("summaries not active at %d segments: %d buckets", len(p.times), len(p.bmax))
	}
	if err := p.check(); err != nil {
		t.Fatal(err)
	}
	p.trimTo(p.times[len(p.times)-2])
	if len(p.times) >= bucketActivate {
		t.Fatalf("trim fixture still has %d segments", len(p.times))
	}
	if len(p.bmax) != 0 || len(p.bmin) != 0 {
		t.Fatalf("summaries survived deactivation: %d/%d buckets", len(p.bmax), len(p.bmin))
	}
}
