package batch

import (
	"reflect"
	"testing"

	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// driveScript runs a fixed scheduler workout — submissions, time advances
// that start/finish/displace jobs, cancellations, estimates across an outage
// timeline — and returns every observable it produced: the notification
// stream, estimate answers and the final snapshot.
func driveScript(t *testing.T, s *Scheduler) (notes []Notification, ects []int64, snap Snapshot) {
	t.Helper()
	job := func(id int, submit, runtime, walltime int64, procs int) workload.Job {
		return workload.Job{ID: id, Submit: submit, Runtime: runtime, Walltime: walltime, Procs: procs, User: 1}
	}
	submit := func(j workload.Job, now int64) {
		if err := s.Submit(j, now, 0); err != nil {
			t.Fatalf("submit %d: %v", j.ID, err)
		}
	}
	advance := func(now int64) {
		ns, err := s.Advance(now)
		if err != nil {
			t.Fatalf("advance %d: %v", now, err)
		}
		notes = append(notes, ns...)
	}
	est := func(j workload.Job, now int64) {
		if ect, ok := s.TryEstimateCompletion(j, now); ok {
			ects = append(ects, ect)
		} else {
			ects = append(ects, -1)
		}
		sn, err := s.EstimateSnapshot(now)
		if err != nil {
			t.Fatalf("snapshot at %d: %v", now, err)
		}
		if ect, ok := sn.TryEstimateCompletion(j); ok {
			ects = append(ects, ect)
		} else {
			ects = append(ects, -1)
		}
	}

	submit(job(1, 0, 500, 600, 4), 0)
	submit(job(2, 0, 900, 1000, 6), 0)
	submit(job(3, 0, 2000, 2500, 8), 0)
	advance(50)
	est(job(90, 0, 400, 450, 3), 50)
	submit(job(4, 50, 300, 400, 2), 50)
	if _, _, err := s.Cancel(3, 60); err != nil {
		t.Fatalf("cancel 3: %v", err)
	}
	advance(700) // job 1 finishes early (walltime 600 scaled), others progress
	est(job(91, 0, 800, 900, 5), 700)
	submit(job(5, 700, 1200, 1500, 7), 700)
	advance(1600) // outage windows in the reset spec reveal inside here
	est(job(92, 0, 100, 150, 1), 1600)
	advance(5000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return notes, ects, s.Snapshot()
}

// TestResetEqualsFresh proves the Reset contract at the scheduler level: a
// scheduler that already ran one workload, once Reset onto a different spec
// and policy, produces bit-identical notifications, estimates and final
// state to a freshly constructed scheduler — including capacity timelines
// with both maintenance and outage windows on the new spec.
func TestResetEqualsFresh(t *testing.T) {
	firstSpec := platform.ClusterSpec{Name: "old", Cores: 16, Speed: 1.3}
	secondSpec := platform.ClusterSpec{
		Name: "new", Cores: 10, Speed: 0.8,
		Capacity: []platform.CapacityEvent{
			{Start: 800, End: 1200, Cores: 4, Kind: platform.Maintenance},
			{Start: 1400, End: 1800, Cores: 2, Kind: platform.Outage},
		},
	}
	for _, firstPolicy := range []Policy{FCFS, CBF} {
		for _, secondPolicy := range []Policy{FCFS, CBF} {
			reused, err := NewScheduler(firstSpec, firstPolicy)
			if err != nil {
				t.Fatal(err)
			}
			reused.SetOutagePolicy(RequeueDisplaced)
			// Dirty the pooled state with a first workload.
			driveScript(t, reused)
			if err := reused.Reset(secondSpec, secondPolicy); err != nil {
				t.Fatal(err)
			}
			reused.SetOutagePolicy(RequeueDisplaced)

			fresh, err := NewScheduler(secondSpec, secondPolicy)
			if err != nil {
				t.Fatal(err)
			}
			fresh.SetOutagePolicy(RequeueDisplaced)

			freshNotes, freshEcts, freshSnap := driveScript(t, fresh)
			reusedNotes, reusedEcts, reusedSnap := driveScript(t, reused)
			if !reflect.DeepEqual(freshNotes, reusedNotes) {
				t.Fatalf("%s->%s: notifications diverged\nfresh:  %+v\nreused: %+v", firstPolicy, secondPolicy, freshNotes, reusedNotes)
			}
			if !reflect.DeepEqual(freshEcts, reusedEcts) {
				t.Fatalf("%s->%s: estimates diverged\nfresh:  %v\nreused: %v", firstPolicy, secondPolicy, freshEcts, reusedEcts)
			}
			if !reflect.DeepEqual(freshSnap, reusedSnap) {
				t.Fatalf("%s->%s: final snapshots diverged\nfresh:  %+v\nreused: %+v", firstPolicy, secondPolicy, freshSnap, reusedSnap)
			}
			subs, cans, ects := reused.Counters()
			fsubs, fcans, fects := fresh.Counters()
			if subs != fsubs || cans != fcans || ects != fects {
				t.Fatalf("%s->%s: counters diverged: reused %d/%d/%d, fresh %d/%d/%d",
					firstPolicy, secondPolicy, subs, cans, ects, fsubs, fcans, fects)
			}
		}
	}
}
