// Package sim provides a small deterministic discrete-event simulation
// engine used as the substrate of the grid simulator.
//
// The engine is intentionally minimal: a virtual clock expressed in integer
// seconds and a priority queue of events ordered by (time, priority,
// insertion sequence). Determinism is a hard requirement of the experiment
// harness (the same trace and seed must always produce the same schedule),
// so ties are broken by an explicit priority and then by insertion order,
// never by map iteration or wall-clock time.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. Negative times are invalid.
type Time int64

// Infinity is a sentinel time larger than any event the simulator will ever
// schedule. It is used by components that currently have nothing to do.
const Infinity Time = 1<<62 - 1

// Priority orders events that fire at the same instant. Lower values run
// first. The grid simulator uses these bands so that, at a given second,
// job completions are observed before new submissions, which are observed
// before periodic reallocation, mirroring the behaviour of a real system in
// which the batch queues are up to date when the meta-scheduler queries them.
type Priority int

// Priority bands used by the grid simulator. They are defined here so that
// every component agrees on the same total order.
const (
	PriorityFinish     Priority = 0 // job completions and walltime kills
	PriorityClusterOp  Priority = 1 // cluster wake-ups that start planned jobs
	PrioritySubmission Priority = 2 // new jobs entering the system
	PriorityRealloc    Priority = 3 // periodic reallocation events
	PriorityReport     Priority = 4 // bookkeeping, end-of-simulation reports
)

// Event is a unit of work scheduled at a virtual instant. Handlers run with
// the engine clock already advanced to the event time.
type Event struct {
	// Time is the virtual instant at which the event fires.
	Time Time
	// Priority breaks ties between events at the same instant.
	Priority Priority
	// Name is a short human-readable label used in traces and error messages.
	Name string
	// Handler is invoked when the event fires. It may schedule further
	// events. A nil handler is a no-op (useful for cancelled events).
	Handler func(now Time)

	seq       uint64
	index     int
	cancelled bool
}

// Cancel marks the event so its handler will not run. The event stays in the
// queue (removing from the middle of a heap is not worth the complexity) but
// is skipped when popped.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Engine is the discrete-event simulation core. The zero value is not usable;
// use NewEngine.
//
//gridlint:resettable
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stepped uint64
	limit   uint64 //gridlint:keep-across-reset caller configuration, like SetStepLimit
}

// NewEngine returns an engine with the clock at zero and an empty event
// queue.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	// A very large default step limit guards against accidental infinite
	// event loops in user code while never triggering in legitimate runs.
	e.limit = 1 << 40
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Reset returns the engine to the state NewEngine produces — clock at zero,
// empty queue, sequence and step counters cleared — while keeping the queue's
// backing array, so a simulation driver that runs thousands of scenarios
// re-enqueues events without growing a fresh heap each time. Events still
// queued are detached (their index is invalidated) and never fire; a
// step limit set through SetStepLimit is preserved, like any other caller
// configuration.
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		ev.index = -1
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stepped = 0
}

// Len returns the number of events currently queued, including cancelled
// events that have not been popped yet.
func (e *Engine) Len() int { return e.queue.Len() }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// SetStepLimit bounds the number of events the engine will execute before
// aborting with ErrStepLimit. A limit of zero restores the default.
func (e *Engine) SetStepLimit(n uint64) {
	if n == 0 {
		e.limit = 1 << 40
		return
	}
	e.limit = n
}

// ErrStepLimit is returned by Run when the configured step limit is reached,
// which almost always indicates an event loop scheduling itself forever.
var ErrStepLimit = errors.New("sim: step limit reached")

// ErrPastEvent is returned by Schedule when asked to schedule an event in
// the past.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// Schedule inserts an event at time t with the given priority and handler.
// It returns the event so the caller can later cancel it. Scheduling before
// the current time is an error; scheduling exactly at the current time is
// allowed and the event will fire during the current Run loop.
func (e *Engine) Schedule(t Time, p Priority, name string, handler func(now Time)) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: event %q at t=%d, now=%d", ErrPastEvent, name, t, e.now)
	}
	ev := &Event{Time: t, Priority: p, Name: name, Handler: handler, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// MustSchedule is Schedule but panics on error. It is used internally by the
// grid simulator where scheduling in the past is a programming error.
func (e *Engine) MustSchedule(t Time, p Priority, name string, handler func(now Time)) *Event {
	ev, err := e.Schedule(t, p, name, handler)
	if err != nil {
		panic(err)
	}
	return ev
}

// Reschedule moves an event previously handed out by Schedule to a new time,
// reusing the event (and its handler) instead of allocating a fresh one. It
// is exactly equivalent to Cancel followed by Schedule with the same
// priority, name and handler: the event receives a new insertion sequence
// number, so tie-breaking among simultaneous events is identical to the
// cancel-and-reinsert pattern, but the queue accumulates no tombstones and
// the hot wake-up path of the simulation driver allocates nothing. The event
// may be pending, cancelled or already fired.
func (e *Engine) Reschedule(ev *Event, t Time) error {
	if t < e.now {
		return fmt.Errorf("%w: event %q at t=%d, now=%d", ErrPastEvent, ev.Name, t, e.now)
	}
	ev.Time = t
	ev.cancelled = false
	ev.seq = e.seq
	e.seq++
	if ev.index >= 0 {
		heap.Fix(&e.queue, ev.index)
		return nil
	}
	heap.Push(&e.queue, ev)
	return nil
}

// PeekTime returns the time of the next non-cancelled event and true, or
// (Infinity, false) if the queue is empty.
func (e *Engine) PeekTime() (Time, bool) {
	e.dropCancelled()
	if e.queue.Len() == 0 {
		return Infinity, false
	}
	return e.queue[0].Time, true
}

func (e *Engine) dropCancelled() {
	for e.queue.Len() > 0 && e.queue[0].cancelled {
		heap.Pop(&e.queue)
	}
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() (bool, error) {
	e.dropCancelled()
	if e.queue.Len() == 0 {
		return false, nil
	}
	if e.stepped >= e.limit {
		return false, ErrStepLimit
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.Time < e.now {
		return false, fmt.Errorf("sim: event %q travels back in time (t=%d, now=%d)", ev.Name, ev.Time, e.now)
	}
	e.now = ev.Time
	e.stepped++
	if ev.Handler != nil && !ev.cancelled {
		ev.Handler(e.now)
	}
	return true, nil
}

// Run executes events until the queue is empty or until the optional horizon
// is passed. A horizon of Infinity means "run to completion". Events at
// exactly the horizon still execute.
func (e *Engine) Run(horizon Time) error {
	for {
		e.dropCancelled()
		if e.queue.Len() == 0 {
			return nil
		}
		if e.queue[0].Time > horizon {
			return nil
		}
		if _, err := e.Step(); err != nil {
			return err
		}
	}
}

// RunAll executes every queued event.
func (e *Engine) RunAll() error { return e.Run(Infinity) }

// eventQueue implements heap.Interface ordered by (Time, Priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	if q[i].Priority != q[j].Priority {
		return q[i].Priority < q[j].Priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
