package sim

// arenaBlockLen is the number of objects carved from one block allocation.
// Large enough to amortize the allocator to ~1/64th of the per-object cost
// on a fresh run's ramp-up, small enough that an idle pool wastes at most a
// few kilobytes.
const arenaBlockLen = 64

// Arena is a free-list-fronted block allocator for the per-run bookkeeping
// records the simulation churns through (queue entries, allocations). Get
// returns a recycled object when one is available and otherwise carves the
// next object out of a block allocation, so a fresh run's ramp-up — which
// used to pay one heap allocation per record — pays one per arenaBlockLen
// records instead. Put recycles an object the caller no longer reaches.
//
// The arena never frees: recycled objects wait on the free list and block
// remainders wait in the current block, both plain capacity retained across
// runs, exactly like the slice pools they replace. Objects are NOT zeroed
// on Get — recycled records keep their previous values until the caller
// overwrites them (block-fresh ones start zeroed), which is the contract
// the scheduler's pools always had. The zero Arena is ready to use.
type Arena[T any] struct {
	free  []*T
	block []T
}

// Get returns an object from the free list, or a fresh one from the arena.
func (a *Arena[T]) Get() *T {
	if n := len(a.free); n > 0 {
		v := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return v
	}
	if len(a.block) == 0 {
		a.block = make([]T, arenaBlockLen)
	}
	v := &a.block[0]
	a.block = a.block[1:]
	return v
}

// Put recycles v for a later Get. The caller must hold the only live
// reference; the arena does not check.
func (a *Arena[T]) Put(v *T) {
	a.free = append(a.free, v)
}
