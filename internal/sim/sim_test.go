package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %d, want 0", e.Now())
	}
	if e.Len() != 0 {
		t.Fatalf("new engine has %d events, want 0", e.Len())
	}
}

func TestScheduleAndRunInOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, tm := range []Time{30, 10, 20} {
		tm := tm
		if _, err := e.Schedule(tm, PrioritySubmission, "ev", func(now Time) {
			got = append(got, now)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %d, want %d", i, got[i], want[i])
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	e := NewEngine()
	var order []string
	add := func(name string, p Priority) {
		e.MustSchedule(100, p, name, func(Time) { order = append(order, name) })
	}
	add("submission", PrioritySubmission)
	add("finish", PriorityFinish)
	add("realloc", PriorityRealloc)
	add("cluster", PriorityClusterOp)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"finish", "cluster", "submission", "realloc"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInsertionOrderBreaksRemainingTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(5, PrioritySubmission, "tie", func(Time) { order = append(order, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("ties not broken by insertion order: %v", order)
		}
	}
}

func TestSchedulingInPastFails(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(50, PrioritySubmission, "later", func(now Time) {
		if _, err := e.Schedule(now-1, PrioritySubmission, "past", nil); !errors.Is(err, ErrPastEvent) {
			t.Errorf("scheduling in the past: err = %v, want ErrPastEvent", err)
		}
		if _, err := e.Schedule(now, PrioritySubmission, "same-time", func(Time) {}); err != nil {
			t.Errorf("scheduling at the current time should be allowed: %v", err)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelledEventDoesNotRun(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.MustSchedule(10, PrioritySubmission, "cancelled", func(Time) { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestEventsScheduledFromHandlersRun(t *testing.T) {
	e := NewEngine()
	var chain []Time
	var schedule func(depth int) func(Time)
	schedule = func(depth int) func(Time) {
		return func(now Time) {
			chain = append(chain, now)
			if depth < 5 {
				e.MustSchedule(now+10, PrioritySubmission, "chain", schedule(depth+1))
			}
		}
	}
	e.MustSchedule(0, PrioritySubmission, "chain", schedule(0))
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 6 {
		t.Fatalf("chain length = %d, want 6", len(chain))
	}
	for i, tm := range chain {
		if tm != Time(i*10) {
			t.Fatalf("chain[%d] = %d, want %d", i, tm, i*10)
		}
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, tm := range []Time{10, 20, 30, 40} {
		tm := tm
		e.MustSchedule(tm, PrioritySubmission, "ev", func(now Time) { ran = append(ran, now) })
	}
	if err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events before horizon 25, want 2", len(ran))
	}
	if next, ok := e.PeekTime(); !ok || next != 30 {
		t.Fatalf("PeekTime = %d,%v want 30,true", next, ok)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %d events in total, want 4", len(ran))
	}
}

func TestRunAtHorizonIncludesBoundary(t *testing.T) {
	e := NewEngine()
	ran := false
	e.MustSchedule(25, PrioritySubmission, "ev", func(Time) { ran = true })
	if err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event at the horizon did not run")
	}
}

func TestStepLimit(t *testing.T) {
	e := NewEngine()
	e.SetStepLimit(10)
	var loop func(Time)
	loop = func(now Time) {
		e.MustSchedule(now+1, PrioritySubmission, "loop", loop)
	}
	e.MustSchedule(0, PrioritySubmission, "loop", loop)
	err := e.RunAll()
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if e.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", e.Steps())
	}
	// Resetting the limit to zero restores the (huge) default.
	e.SetStepLimit(0)
	if e.limit != 1<<40 {
		t.Fatalf("default limit not restored: %d", e.limit)
	}
}

func TestPeekTimeEmptyQueue(t *testing.T) {
	e := NewEngine()
	if tm, ok := e.PeekTime(); ok || tm != Infinity {
		t.Fatalf("PeekTime on empty queue = %d,%v want Infinity,false", tm, ok)
	}
	ok, err := e.Step()
	if err != nil || ok {
		t.Fatalf("Step on empty queue = %v,%v want false,nil", ok, err)
	}
}

func TestNilHandlerIsNoOp(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(1, PrioritySubmission, "nil", nil)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %d, want 1 (nil handler still advances time)", e.Now())
	}
}

// TestPropertyChronologicalExecution checks with random event sets that the
// engine always executes events in non-decreasing time order and never loses
// an event.
func TestPropertyChronologicalExecution(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, raw := range times {
			tm := Time(raw)
			e.MustSchedule(tm, PrioritySubmission, "p", func(now Time) {
				executed = append(executed, now)
			})
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		if len(executed) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(executed, func(i, j int) bool { return executed[i] < executed[j] }) {
			return false
		}
		// The multiset of execution times must equal the scheduled times.
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if executed[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancellationNeverExecutes verifies that randomly cancelled
// events never run and non-cancelled events always do.
func TestPropertyCancellationNeverExecutes(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		e := NewEngine()
		type tracked struct {
			ev        *Event
			cancelled bool
			ran       *bool
		}
		var all []tracked
		for i, raw := range times {
			ran := new(bool)
			ev := e.MustSchedule(Time(raw), PrioritySubmission, "p", func(Time) { *ran = true })
			cancel := i < len(cancelMask) && cancelMask[i]
			if cancel {
				ev.Cancel()
			}
			all = append(all, tracked{ev, cancel, ran})
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		for _, tr := range all {
			if tr.cancelled == *tr.ran {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestRescheduleEquivalentToCancelPlusSchedule verifies the in-place
// reschedule against the pattern it replaces: the event fires at its new
// time, and ties at the same (time, priority) order the rescheduled event
// after events inserted earlier — exactly as a cancel plus fresh Schedule
// would, because rescheduling assigns a fresh insertion sequence number.
func TestRescheduleEquivalentToCancelPlusSchedule(t *testing.T) {
	e := NewEngine()
	var order []string
	ev := e.MustSchedule(5, PriorityFinish, "moved", func(Time) { order = append(order, "moved") })
	e.MustSchedule(10, PriorityFinish, "anchor", func(Time) { order = append(order, "anchor") })
	if err := e.Reschedule(ev, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// The anchor was inserted before the reschedule, so it keeps the older
	// sequence number and runs first at the shared instant.
	if len(order) != 2 || order[0] != "anchor" || order[1] != "moved" {
		t.Fatalf("order = %v, want [anchor moved]", order)
	}
}

func TestRescheduleFiredAndCancelledEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.MustSchedule(1, PriorityFinish, "wake", func(Time) { fired++ })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Rescheduling an event that already fired re-inserts it.
	if err := e.Reschedule(ev, 7); err != nil {
		t.Fatal(err)
	}
	// Rescheduling a cancelled event revives it.
	ev.Cancel()
	if err := e.Reschedule(ev, 9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("event fired %d times, want 2 (initial + revived reschedule)", fired)
	}
	if e.Now() != 9 {
		t.Fatalf("clock at %d, want 9", e.Now())
	}
	// The past is still rejected.
	if err := e.Reschedule(ev, 3); err == nil {
		t.Fatal("reschedule into the past accepted")
	}
}
