package sim

// Order-independent run digesting. The driver folds each job record into a
// DigestAcc at the instant the record becomes final (its completion, or the
// drop of an unmappable job), so a campaign's digest needs no post-pass
// over the records once the run ends. The fold must commute: observation
// granularity — e.g. the extra capacity-end wakes of a verified run — can
// interleave the *processing* of per-cluster completions differently
// between two semantically identical runs without changing any final
// record, so digests of identical outcomes must not depend on the order
// records were finalized.

// Lane seeds decorrelate the two accumulator lanes, so a collision must
// defeat two independently mixed 64-bit sums at once.
const (
	digestSeed0 = 0x9e3779b97f4a7c15
	digestSeed1 = 0xc2b2ae3d27d4eb4f
)

// Mix64 is the splitmix64 finalizer: a fast 64-bit permutation with full
// avalanche, used to hash record fields without the formatting and
// allocation cost of a cryptographic hash in the event loop.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixString folds s into h byte by byte, finishing with the length so
// prefixes cannot alias.
func MixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = Mix64(h ^ uint64(s[i]))
	}
	return Mix64(h ^ uint64(len(s)))
}

// DigestAcc accumulates per-item hashes order-independently: each item is
// re-mixed into two decorrelated lanes and summed, and addition commutes,
// so the final lanes depend only on the multiset of items. Two lanes plus
// the item count make an accidental collision a ~2^-128 event — ample for
// a regression digest (the inputs are not adversarial). The zero value is
// an empty accumulator.
type DigestAcc struct {
	lane0, lane1 uint64
	n            uint64
}

// Reset empties the accumulator.
func (a *DigestAcc) Reset() { *a = DigestAcc{} }

// Add folds one item hash into both lanes.
func (a *DigestAcc) Add(h uint64) {
	a.lane0 += Mix64(h ^ digestSeed0)
	a.lane1 += Mix64(h ^ digestSeed1)
	a.n++
}

// Lanes returns the two lane sums and the item count.
func (a *DigestAcc) Lanes() (uint64, uint64, uint64) { return a.lane0, a.lane1, a.n }
