package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RefBalance pairs snapshot acquisition with release along every control-flow
// path. A function marked //gridlint:ref-acquire hands its caller a counted
// reference into the scheduler's pooled plan profile (EstimateSnapshot and
// friends); the reference must be released (//gridlint:ref-release), refreshed
// through another acquire into the same variable, or explicitly handed off
// with //gridlint:ref-transferred. The runtime symptom of getting this wrong
// is quiet: a leaked reference pins a pooled buffer forever (the pool grows
// monotonically under campaign reuse), and a double release frees a profile
// another snapshot still reads. Neither trips an oracle until long after the
// buggy call site.
//
// The analysis is intraprocedural and path-sensitive over the shared CFG
// (cfg.go): each local that receives an acquired reference is tracked through
// the function with a may-state {held, empty, deferred-release}, merged by
// union at joins. The error result of an acquire is linked to the acquired
// variable, so the error branch of `sn, err := acquire(); if err != nil`
// correctly carries the pre-acquire state. Recognised release forms: a direct
// call on the variable, the variable passed to a release function, a deferred
// call, a deferred function literal that releases, and a bound method value
// (rel := sn.Release; defer rel()).
//
// Ownership leaves the function three legitimate ways, each visible to the
// analysis: a release/refresh on every path; returning the reference from a
// function itself marked //gridlint:ref-acquire (the caller inherits the
// obligation); or a store/return annotated //gridlint:ref-transferred with a
// reason. Everything else is a leak or a double release and is reported.
var RefBalance = &Analyzer{
	Name: "refbalance",
	Doc: "pair //gridlint:ref-acquire with //gridlint:ref-release on every " +
		"path; flag leaked and double-released references",
	Run: runRefBalance,
}

// refBits is the per-variable may-state of the dataflow.
type refBits uint8

const (
	// refHeld: the variable may hold a live counted reference.
	refHeld refBits = 1 << iota
	// refEmpty: the variable may hold none (released, error path, or merged
	// from a path that never acquired).
	refEmpty
	// refDeferred: a deferred release for this variable was registered on
	// this path; the reference is released at function exit.
	refDeferred
)

// refGuard links an error variable to the reference variable whose acquire
// produced it, plus that variable's state before the acquire: on the branch
// where the error is non-nil the acquire did not take effect.
type refGuard struct {
	target types.Object
	pre    refBits
}

// refFlow is the dataflow fact at a program point: the tracked variables'
// states plus the live error guards.
type refFlow struct {
	bits   map[types.Object]refBits
	guards map[types.Object]refGuard
}

func newRefFlow() refFlow {
	return refFlow{
		bits:   make(map[types.Object]refBits),
		guards: make(map[types.Object]refGuard),
	}
}

func (f refFlow) clone() refFlow {
	out := newRefFlow()
	//gridlint:unordered-ok map copy; the destination is consulted by key only
	for k, v := range f.bits {
		out.bits[k] = v
	}
	//gridlint:unordered-ok map copy; the destination is consulted by key only
	for k, v := range f.guards {
		out.guards[k] = v
	}
	return out
}

// mergeRefFlow unions src into dst (dst is mutated) and reports whether dst
// changed. A variable tracked on only one incoming path gains refEmpty: the
// other path reaches this point without the reference.
func mergeRefFlow(dst, src refFlow) bool {
	changed := false
	//gridlint:unordered-ok per-variable union; each key is independent
	for obj, sb := range src.bits {
		nb := sb
		if db, ok := dst.bits[obj]; ok {
			nb = db | sb
		} else {
			nb = sb | refEmpty
		}
		if dst.bits[obj] != nb {
			dst.bits[obj] = nb
			changed = true
		}
	}
	//gridlint:unordered-ok per-variable union; each key is independent
	for obj, db := range dst.bits {
		if _, ok := src.bits[obj]; !ok {
			nb := db | refEmpty
			if nb != db {
				dst.bits[obj] = nb
				changed = true
			}
		}
	}
	// Guards survive a join only when both paths agree on them.
	//gridlint:unordered-ok guard intersection; each key is independent
	for obj, dg := range dst.guards {
		if sg, ok := src.guards[obj]; !ok || sg != dg {
			delete(dst.guards, obj)
			changed = true
		}
	}
	return changed
}

func runRefBalance(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &refAnalysis{pass: pass, fd: fd}
			if !a.hasAcquire() {
				continue
			}
			a.run()
		}
	}
	return nil
}

// refAnalysis is the per-function state of one refbalance run.
type refAnalysis struct {
	pass *Pass
	fd   *ast.FuncDecl
	g    *funcCFG
	// selfAcquire: the function is itself marked //gridlint:ref-acquire, so
	// returning a held reference hands the obligation to the caller.
	selfAcquire bool
	// thunks maps locals bound to a release method value
	// (rel := sn.Release) to the receiver variable, so rel() releases it.
	thunks map[types.Object]types.Object
	// acquirePos is where each tracked variable acquired, for leak reports.
	acquirePos map[types.Object]token.Pos
	// reportedObj dedupes the per-variable reports (leak, escape,
	// reacquire); reportedPos dedupes the per-site ones (double release,
	// discarded result).
	reportedObj map[types.Object]bool
	reportedPos map[token.Pos]bool
}

// hasAcquire reports whether the body calls any //gridlint:ref-acquire
// function — the only way a tracked reference is born, so its absence makes
// the function trivially balanced.
func (a *refAnalysis) hasAcquire() bool {
	found := false
	ast.Inspect(a.fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := CalleeOf(a.pass.Info, call); fn != nil && a.pass.Prog.FuncHasDirective(fn, DirRefAcquire) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (a *refAnalysis) run() {
	a.g = buildCFG(a.fd.Body)
	a.thunks = make(map[types.Object]types.Object)
	a.acquirePos = make(map[types.Object]token.Pos)
	a.reportedObj = make(map[types.Object]bool)
	a.reportedPos = make(map[token.Pos]bool)
	if fn, ok := a.pass.Info.Defs[a.fd.Name].(*types.Func); ok {
		a.selfAcquire = a.pass.Prog.FuncHasDirective(fn, DirRefAcquire)
	}
	a.collectThunks()

	// Phase 1: fixed point over the CFG. Entry states only grow (union
	// merge), so the iteration terminates.
	in := make([]refFlow, len(a.g.blocks))
	seen := make([]bool, len(a.g.blocks))
	in[a.g.entry.index] = newRefFlow()
	seen[a.g.entry.index] = true
	work := []*cfgBlock{a.g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := a.transferBlock(blk, in[blk.index].clone(), false)
		for i, succ := range blk.succs {
			edge := out
			if blk.cond != nil && len(blk.succs) == 2 {
				edge = a.refineEdge(out, blk.cond, i == 0)
			}
			if !seen[succ.index] {
				in[succ.index] = edge.clone()
				seen[succ.index] = true
				work = append(work, succ)
			} else if mergeRefFlow(in[succ.index], edge) {
				work = append(work, succ)
			}
		}
	}

	// Phase 2: one reporting walk per block with the converged entry states.
	for _, blk := range a.g.blocks {
		if !seen[blk.index] || blk == a.g.exit {
			continue
		}
		st := a.transferBlock(blk, in[blk.index].clone(), true)
		if a.fallsToExit(blk) {
			a.checkLeaks(st)
		}
	}
}

// fallsToExit reports whether control reaches the exit block from blk without
// a return statement: the natural end of the body, or a break routed there.
// Returns do their own leak check in transferStmt.
func (a *refAnalysis) fallsToExit(blk *cfgBlock) bool {
	toExit := false
	for _, s := range blk.succs {
		if s == a.g.exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if n := len(blk.stmts); n > 0 {
		switch blk.stmts[n-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return false
		}
	}
	return true
}

// collectThunks records method values binding a release method to a local:
// rel := sn.Release. Calls and defers of rel then release sn.
func (a *refAnalysis) collectThunks() {
	ast.Inspect(a.fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sel, ok := ast.Unparen(as.Rhs[0]).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := a.pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || !a.pass.Prog.FuncHasDirective(fn, DirRefRelease) {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		tgt := a.localVar(recv)
		bound := a.localVar(lhs)
		if tgt != nil && bound != nil {
			a.thunks[bound] = tgt
		}
		return true
	})
}

// transferBlock applies the block's statements to st and returns the
// resulting state. With report set it also emits diagnostics (phase 2).
func (a *refAnalysis) transferBlock(blk *cfgBlock, st refFlow, report bool) refFlow {
	for _, s := range blk.stmts {
		a.transferStmt(st, s, report)
	}
	return st
}

func (a *refAnalysis) transferStmt(st refFlow, stmt ast.Stmt, report bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if a.assignStmt(st, s, report) {
			return
		}
		a.processCalls(st, s, report)
	case *ast.DeclStmt:
		if a.declStmt(st, s, report) {
			return
		}
		a.processCalls(st, s, report)
	case *ast.DeferStmt:
		a.deferStmt(st, s, report)
	case *ast.ReturnStmt:
		a.returnStmt(st, s, report)
	case *ast.RangeStmt:
		// Only the range head belongs to this block; the body statements are
		// in their own blocks and must not be walked twice.
		if s.X != nil {
			a.processCalls(st, s.X, report)
		}
	default:
		a.processCalls(st, s, report)
	}
}

// assignStmt handles acquires bound by an assignment and tracked-variable
// copies/stores. It returns true when the statement is fully handled.
func (a *refAnalysis) assignStmt(st refFlow, s *ast.AssignStmt, report bool) bool {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if fn := CalleeOf(a.pass.Info, call); fn != nil && a.pass.Prog.FuncHasDirective(fn, DirRefAcquire) {
				lhs := make([]*ast.Ident, len(s.Lhs))
				for i, e := range s.Lhs {
					lhs[i], _ = ast.Unparen(e).(*ast.Ident)
				}
				a.acquire(st, lhs, fn, call, report)
				return true
			}
		}
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	// Copy of a tracked variable: the new variable takes over the tracking
	// ("the last copy owns"); releasing through the old name is no longer
	// observed, which under-reports but never false-positives.
	if rhs, ok := ast.Unparen(s.Rhs[0]).(*ast.Ident); ok {
		if src := a.localVar(rhs); src != nil {
			if bits, tracked := st.bits[src]; tracked {
				switch lhs := ast.Unparen(s.Lhs[0]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						// Discarding a copy is a no-op; src keeps the ref.
						return true
					}
					dst := a.localVar(lhs)
					if dst == nil {
						// Store to a package-level variable: the reference
						// escapes the function; require an explicit handoff.
						a.storeCheck(st, src, bits, s, report)
						return true
					}
					delete(st.bits, src)
					st.bits[dst] = bits
					a.acquirePos[dst] = a.acquirePos[src]
					return true
				case *ast.SelectorExpr, *ast.IndexExpr:
					a.storeCheck(st, src, bits, s, report)
					return true
				}
				return false
			}
		}
	}
	// Overwrite of a tracked variable with anything else (nil, a fresh
	// value): the old reference is dropped without a release.
	if lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
		obj := a.localVar(lhs)
		if obj == nil {
			return false
		}
		bits, tracked := st.bits[obj]
		if !tracked {
			return false
		}
		if report && bits&refHeld != 0 && bits&refDeferred == 0 {
			a.reportObj(obj, s.Pos(),
				"%s overwritten while still holding an unreleased reference", obj.Name())
		}
		st.bits[obj] = refEmpty | (bits & refDeferred)
		return false // still scan the RHS for calls
	}
	return false
}

// storeCheck handles a held reference written to a field, element or global:
// legitimate only as an explicit, annotated ownership handoff.
func (a *refAnalysis) storeCheck(st refFlow, src types.Object, bits refBits, s ast.Stmt, report bool) {
	if report && bits&refHeld != 0 && !a.pass.Prog.NodeHasDirective(s, DirRefTransferred) {
		a.reportObj(src, s.Pos(),
			"reference held by %s stored outside the function without //gridlint:ref-transferred", src.Name())
	}
	st.bits[src] = refEmpty | (bits & refDeferred)
}

// declStmt handles `var sn, err = acquire(...)` declarations.
func (a *refAnalysis) declStmt(st refFlow, s *ast.DeclStmt, report bool) bool {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return false
	}
	handled := false
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != 1 {
			continue
		}
		call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := CalleeOf(a.pass.Info, call)
		if fn == nil || !a.pass.Prog.FuncHasDirective(fn, DirRefAcquire) {
			continue
		}
		a.acquire(st, vs.Names, fn, call, report)
		handled = true
	}
	return handled
}

// acquire applies one acquire call bound to the given left-hand identifiers
// (nil entries for non-identifier or blank targets).
func (a *refAnalysis) acquire(st refFlow, lhs []*ast.Ident, fn *types.Func, call *ast.CallExpr, report bool) {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() > 0 && !(res.Len() == 1 && isErrorType(res.At(0).Type())) {
		// Result-mode acquire: the first result is the reference.
		var obj types.Object
		if len(lhs) > 0 && lhs[0] != nil {
			obj = a.localVar(lhs[0])
		}
		if obj == nil {
			if report {
				a.reportPos(call.Pos(),
					"result of %s is an acquired reference but is discarded (it can never be released)", fn.Name())
			}
			return
		}
		pre := st.bits[obj]
		if report && pre&refHeld != 0 && pre&refDeferred == 0 {
			a.reportObj(obj, call.Pos(),
				"%s reacquired while still holding an unreleased reference", obj.Name())
		}
		st.bits[obj] = refHeld | (pre & refDeferred)
		a.acquirePos[obj] = call.Pos()
		if res.Len() >= 2 && isErrorType(res.At(res.Len()-1).Type()) &&
			len(lhs) == res.Len() && lhs[len(lhs)-1] != nil {
			if errObj := a.localVar(lhs[len(lhs)-1]); errObj != nil {
				st.guards[errObj] = refGuard{target: obj, pre: pre}
			}
		}
		return
	}
	// Into-mode acquire (error-only result): the target is the pointer
	// argument. A pointer into a field or element is the provider's in-place
	// refresh of long-lived state and is neutral here.
	obj := a.intoTarget(call)
	if obj == nil {
		return
	}
	pre := st.bits[obj]
	// A refresh of an already-held reference releases the old one inside the
	// provider; either way the variable holds exactly one afterwards.
	st.bits[obj] = refHeld | (pre & refDeferred)
	if pre&refHeld == 0 {
		a.acquirePos[obj] = call.Pos()
	}
	if len(lhs) > 0 && lhs[0] != nil {
		if errObj := a.localVar(lhs[0]); errObj != nil {
			st.guards[errObj] = refGuard{target: obj, pre: pre}
		}
	}
}

// intoTarget resolves the local variable an Into-style acquire fills: the
// first argument that is &local or a pointer-typed local.
func (a *refAnalysis) intoTarget(call *ast.CallExpr) types.Object {
	for _, arg := range call.Args {
		switch e := ast.Unparen(arg).(type) {
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				continue
			}
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				return a.localVar(id)
			}
			return nil
		case *ast.Ident:
			if obj := a.localVar(e); obj != nil {
				if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
					return obj
				}
			}
		}
	}
	return nil
}

func (a *refAnalysis) deferStmt(st refFlow, s *ast.DeferStmt, report bool) {
	call := s.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// A deferred literal releasing a captured variable counts as a
		// deferred release of it.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := a.releaseTargetOf(inner); obj != nil {
				st.bits[obj] |= refDeferred
			}
			return true
		})
		return
	}
	if obj := a.releaseTargetOf(call); obj != nil {
		st.bits[obj] |= refDeferred
		return
	}
	a.processCalls(st, call, report)
}

func (a *refAnalysis) returnStmt(st refFlow, s *ast.ReturnStmt, report bool) {
	transferred := a.pass.Prog.NodeHasDirective(s, DirRefTransferred)
	returned := make(map[types.Object]bool)
	for _, res := range s.Results {
		e := ast.Unparen(res)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := a.localVar(id); obj != nil {
				returned[obj] = true
			}
			continue
		}
		// Returning an acquire call's result directly: fine from a function
		// that is itself an acquire point (or an annotated handoff).
		if call, ok := e.(*ast.CallExpr); ok {
			if fn := CalleeOf(a.pass.Info, call); fn != nil && a.pass.Prog.FuncHasDirective(fn, DirRefAcquire) {
				if report && !a.selfAcquire && !transferred {
					a.reportPos(call.Pos(),
						"reference acquired from %s returned from a function not marked //gridlint:ref-acquire (annotate the return //gridlint:ref-transferred if ownership moves)", fn.Name())
				}
				continue
			}
			a.processCalls(st, call, report)
		}
	}
	if !report {
		return
	}
	//gridlint:unordered-ok reports are deduped per variable and sorted by position later
	for obj, bits := range st.bits {
		if bits&refHeld == 0 || bits&refDeferred != 0 {
			continue
		}
		if returned[obj] {
			if a.selfAcquire || transferred {
				continue
			}
			a.reportObj(obj, s.Pos(),
				"%s returned while holding a reference; mark the function //gridlint:ref-acquire or annotate the return //gridlint:ref-transferred", obj.Name())
			continue
		}
		a.reportObj(obj, a.leakPos(obj, s.Pos()),
			"reference held by %s is not released on every path (missing release, defer, or //gridlint:ref-transferred)", obj.Name())
	}
}

// checkLeaks runs the exit check for paths that fall off the end of the body
// without a return statement.
func (a *refAnalysis) checkLeaks(st refFlow) {
	//gridlint:unordered-ok reports are deduped per variable and sorted by position later
	for obj, bits := range st.bits {
		if bits&refHeld == 0 || bits&refDeferred != 0 {
			continue
		}
		a.reportObj(obj, a.leakPos(obj, a.fd.Body.Rbrace),
			"reference held by %s is not released on every path (missing release, defer, or //gridlint:ref-transferred)", obj.Name())
	}
}

// leakPos anchors a leak report at the acquire site when known (the stable,
// reviewable location), falling back to the path's end.
func (a *refAnalysis) leakPos(obj types.Object, fallback token.Pos) token.Pos {
	if p, ok := a.acquirePos[obj]; ok {
		return p
	}
	return fallback
}

// processCalls scans a statement or expression for release calls (direct,
// through a bound method value) and for acquire calls whose result is used
// in no tracked position. Function literals are skipped: a closure's body
// runs when the closure does, not here.
func (a *refAnalysis) processCalls(st refFlow, node ast.Node, report bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := a.releaseTargetOf(call); obj != nil {
			a.applyRelease(st, obj, call, report)
			return true
		}
		if fn := CalleeOf(a.pass.Info, call); fn != nil && a.pass.Prog.FuncHasDirective(fn, DirRefAcquire) {
			// Unbound acquire: an Into-style call mutates its pointer target;
			// a result-mode call in expression position discards the ref.
			sig := fn.Type().(*types.Signature)
			res := sig.Results()
			if res.Len() == 0 || (res.Len() == 1 && isErrorType(res.At(0).Type())) {
				a.acquire(st, nil, fn, call, report)
			} else if report {
				a.reportPos(call.Pos(),
					"result of %s is an acquired reference but is discarded (it can never be released)", fn.Name())
			}
		}
		return true
	})
}

// releaseTargetOf resolves a call to the tracked variable it releases:
// sn.Release(), Release(sn), rel() for a bound method value, with &sn
// accepted wherever sn is. Returns nil for calls that are not releases.
func (a *refAnalysis) releaseTargetOf(call *ast.CallExpr) types.Object {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v := a.localVar(id); v != nil {
			if tgt, ok := a.thunks[v]; ok {
				return tgt
			}
		}
	}
	fn := CalleeOf(a.pass.Info, call)
	if fn == nil || !a.pass.Prog.FuncHasDirective(fn, DirRefRelease) {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := a.varOfExpr(sel.X); obj != nil {
			return obj
		}
	}
	for _, arg := range call.Args {
		if obj := a.varOfExpr(arg); obj != nil {
			return obj
		}
	}
	return nil
}

// varOfExpr unwraps ident / &ident / (ident) to its local variable.
func (a *refAnalysis) varOfExpr(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return a.localVar(id)
	}
	return nil
}

func (a *refAnalysis) applyRelease(st refFlow, obj types.Object, call *ast.CallExpr, report bool) {
	bits, tracked := st.bits[obj]
	if !tracked {
		// Releasing an untracked variable (a parameter, a field copy): the
		// obligation belongs to whoever acquired it; not ours to check.
		return
	}
	// Only a definite double release is flagged: releases are nil-safe and
	// idempotent by contract, so releasing a maybe-empty reference (a loop
	// that may run zero times, a merge of released and unreleased paths) is
	// the documented way to end such scopes.
	if report && bits&refHeld == 0 && bits&refEmpty != 0 {
		a.reportPos(call.Pos(),
			"%s is already released on every path reaching this release (double release)", obj.Name())
	}
	st.bits[obj] = refEmpty | (bits & refDeferred)
}

// refineEdge sharpens the state on the branch edges of `err != nil` /
// `err == nil` conditions when err is a live acquire guard: on the error
// branch the acquire did not happen and the target reverts to its
// pre-acquire state.
func (a *refAnalysis) refineEdge(st refFlow, cond ast.Expr, isTrue bool) refFlow {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return st
	}
	var id *ast.Ident
	switch {
	case isNilIdent(a.pass.Info, bin.Y):
		id, _ = ast.Unparen(bin.X).(*ast.Ident)
	case isNilIdent(a.pass.Info, bin.X):
		id, _ = ast.Unparen(bin.Y).(*ast.Ident)
	}
	if id == nil {
		return st
	}
	errObj := a.localVar(id)
	if errObj == nil {
		return st
	}
	g, ok := st.guards[errObj]
	if !ok {
		return st
	}
	errNonNil := (bin.Op == token.NEQ) == isTrue
	if !errNonNil {
		return st
	}
	out := st.clone()
	pre := g.pre
	if pre == 0 {
		pre = refEmpty
	}
	out.bits[g.target] = pre
	return out
}

// localVar resolves an identifier to its function-local variable, or nil for
// blank, fields, package-level and universe objects.
func (a *refAnalysis) localVar(id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := a.pass.Info.Defs[id]
	if obj == nil {
		obj = a.pass.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() || v.Parent() == types.Universe {
		return nil
	}
	return v
}

func (a *refAnalysis) reportObj(obj types.Object, pos token.Pos, format string, args ...any) {
	if a.reportedObj[obj] {
		return
	}
	a.reportedObj[obj] = true
	a.pass.Reportf(pos, format, args...)
}

func (a *refAnalysis) reportPos(pos token.Pos, format string, args ...any) {
	if a.reportedPos[pos] {
		return
	}
	a.reportedPos[pos] = true
	a.pass.Reportf(pos, format, args...)
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

var errorTypeCached = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorTypeCached)
}
