package lint

import (
	"go/ast"
	"go/types"
)

// PoolLife enforces the bounded lifetime of pooled buffers. A function
// marked //gridlint:pooled hands out memory it will overwrite later (the
// scheduler's Advance notification slice, plan buffers from the profile
// pool, entries from the free lists); a caller may read the result and
// copy out of it, but must not retain the reference itself. The analyzer
// tracks locals initialised from pooled calls (and locals they are
// re-assigned to) inside each function and flags:
//
//   - stores of a tracked value into a struct field or package-level
//     variable;
//   - returning a tracked value from a function that is not itself marked
//     //gridlint:pooled (which would extend the lifetime invisibly);
//   - capturing a tracked value in a function literal that escapes (is
//     assigned, passed, or returned rather than immediately invoked).
//
// append(dst, tracked...) and copy(dst, tracked) are copies and therefore
// always safe. A deliberate ownership transfer — the provider publishing a
// pool buffer into its own field — is annotated //gridlint:allow-retain on
// the storing statement.
var PoolLife = &Analyzer{
	Name: "poollife",
	Doc: "results of //gridlint:pooled functions must not be retained in fields, " +
		"globals or escaping closures without a copy (override: //gridlint:allow-retain)",
	Run: runPoolLife,
}

func runPoolLife(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolLifeFunc(pass, fd)
		}
	}
	return nil
}

// pooledCallee returns the called function if the call expression resolves
// to a //gridlint:pooled function (method or plain call), or nil.
func pooledCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if pass.Prog.FuncHasDirective(fn, DirPooled) {
		return fn
	}
	return nil
}

func checkPoolLifeFunc(pass *Pass, fd *ast.FuncDecl) {
	// tracked maps a local variable object to the pooled provider whose
	// result it holds.
	tracked := make(map[types.Object]*types.Func)

	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	selfPooled := fn != nil && pass.Prog.FuncHasDirective(fn, DirPooled)

	// isTracked reports whether the expression is a tracked local or a
	// direct pooled call, unwrapping slicing (sub-slices alias the same
	// backing array, so they keep the bounded lifetime).
	var providerOf func(expr ast.Expr) *types.Func
	providerOf = func(expr ast.Expr) *types.Func {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil {
				return tracked[obj]
			}
		case *ast.CallExpr:
			return pooledCallee(pass, e)
		case *ast.SliceExpr:
			return providerOf(e.X)
		case *ast.ParenExpr:
			return providerOf(e.X)
		}
		return nil
	}

	// Pass 1: seed tracked locals from assignments, in source order. A
	// single forward pass is enough for the straight-line call sites the
	// engine has; re-assignment through another local propagates tracking.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) && len(as.Rhs) != 1 {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Lhs) == len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if i > 0 {
				continue // multi-value call: only position 0 can be the buffer
			}
			if p := providerOf(rhs); p != nil {
				tracked[obj] = p
			}
		}
		return true
	})

	// Pass 2: flag retention sites.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if i > 0 {
					continue
				}
				p := providerOf(rhs)
				if p == nil {
					continue
				}
				if retentionTarget(pass, lhs) && !pass.Prog.NodeHasDirective(n, DirAllowRetain) {
					pass.Reportf(n.Pos(),
						"pooled result of %s stored in %s outlives its bounded lifetime (copy it, or annotate the store //gridlint:allow-retain)",
						p.Name(), describeTarget(pass, lhs))
				}
			}
		case *ast.ReturnStmt:
			if selfPooled {
				return true
			}
			for _, res := range n.Results {
				if p := providerOf(res); p != nil && !pass.Prog.NodeHasDirective(n, DirAllowRetain) {
					pass.Reportf(n.Pos(),
						"pooled result of %s returned from %s, which is not marked //gridlint:pooled",
						p.Name(), fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if escapingFuncLit(pass, fd, n) {
				checkFuncLitCaptures(pass, fd, n, tracked)
			}
			return false // captures handled above; don't double-visit
		}
		return true
	})
}

// retentionTarget reports whether the assignment target outlives the
// enclosing call: a field selection (on any value) or a package-level
// variable.
func retentionTarget(pass *Pass, lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		// pkg.Var — qualified package-level variable.
		if obj, ok := pass.Info.Uses[l.Sel].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
	case *ast.Ident:
		obj := pass.Info.Uses[l]
		if obj == nil {
			obj = pass.Info.Defs[l]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
	case *ast.IndexExpr:
		return retentionTarget(pass, l.X)
	}
	return false
}

func describeTarget(pass *Pass, lhs ast.Expr) string {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return "field " + l.Sel.Name
	case *ast.Ident:
		return "package-level variable " + l.Name
	case *ast.IndexExpr:
		return describeTarget(pass, l.X)
	}
	return "a long-lived location"
}

// escapingFuncLit reports whether the literal escapes the enclosing
// function: anything other than being the callee of an immediate call.
func escapingFuncLit(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	escapes := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == lit {
			escapes = false
		}
		return true
	})
	return escapes
}

// checkFuncLitCaptures flags tracked locals referenced inside an escaping
// function literal.
func checkFuncLitCaptures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, tracked map[types.Object]*types.Func) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if p, ok := tracked[obj]; ok && !pass.Prog.NodeHasDirective(lit, DirAllowRetain) {
			pass.Reportf(id.Pos(),
				"pooled result of %s captured by an escaping closure in %s (copy it before capturing, or annotate the closure //gridlint:allow-retain)",
				p.Name(), fd.Name.Name)
		}
		return true
	})
}
