package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation patterns from a fixture comment of the
// form `// want "regex"` (multiple quoted patterns per comment allowed),
// following the x/tools analysistest convention.
var wantRe = regexp.MustCompile(`want\s+(.*)$`)

var wantPatternRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunFixture loads the GOPATH-style fixture tree rooted at root (packages
// resolved as root/<import path>), runs the analyzers over the named
// packages, and compares the diagnostics against the `// want "regex"`
// comments in the fixture sources. Every diagnostic must match a want on
// its exact (file, line), and every want must be matched by a diagnostic:
// unexpected diagnostics and unmatched expectations both fail the test.
func RunFixture(t *testing.T, root string, analyzers []*Analyzer, pkgs ...string) {
	t.Helper()
	loader := NewLoader(root, "")
	prog, err := loader.Load(pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var wants []*expectation
	for _, pkg := range prog.Sorted() {
		if !contains(pkgs, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					m := wantRe.FindStringSubmatch(text)
					if m == nil || !strings.HasPrefix(text, "want") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					found := false
					for _, pm := range wantPatternRe.FindAllStringSubmatch(m[1], -1) {
						raw := pm[1]
						if pm[2] != "" {
							raw = pm[2]
						}
						raw = strings.ReplaceAll(raw, `\"`, `"`)
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
						found = true
					}
					if !found {
						t.Fatalf("%s:%d: want comment with no quoted pattern: %s", pos.Filename, pos.Line, text)
					}
				}
			}
		}
	}
	diags, err := RunAnalyzers(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		if !inPackages(prog, pkgs, d.Pos) {
			continue
		}
		if w := matchWant(wants, d); w != nil {
			w.matched = true
		} else {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// inPackages reports whether the diagnostic position falls inside one of
// the named fixture packages' directories.
func inPackages(prog *Program, pkgs []string, pos token.Position) bool {
	for _, path := range pkgs {
		if pkg, ok := prog.Packages[path]; ok && strings.HasPrefix(pos.Filename, pkg.Dir+"/") {
			return true
		}
	}
	return false
}

func matchWant(wants []*expectation, d Diagnostic) *expectation {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// FormatDiagnostics renders diagnostics one per line for error messages.
func FormatDiagnostics(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
