package lint

import (
	"go/ast"
	"go/types"
)

// This file implements the static call graph the interprocedural analyzers
// share: resetcomplete and stateversion follow helper calls through it
// instead of only same-receiver method calls, stateversion verifies that
// every caller of a //gridlint:stateversion-bumped-by-caller method really
// bumps, and sweepowner uses the call-site argument mapping to propagate
// the owned cluster index into helpers.
//
// The graph is purely static: an edge exists for every direct call whose
// callee resolves to a *types.Func through the type-checker (plain
// functions, methods, generic instantiations resolved to their origin).
// Calls through interface values, function-typed variables and fields are
// not resolved — the analyzers that consume the graph treat an unresolved
// call conservatively at their own judgement. Calls inside function
// literals are attributed to the enclosing declared function, which is the
// right granularity for "reachable from" questions: the literal runs only
// if something the enclosing function created invokes it.

// CallSite is one static call: caller, resolved callee, and the call
// expression (for argument inspection and diagnostics).
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Call   *ast.CallExpr
}

// CallGraph indexes the program's static call sites both ways.
type CallGraph struct {
	callees map[*types.Func][]CallSite
	callers map[*types.Func][]CallSite
}

// CallGraph returns the program's static call graph, building and caching
// it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	g := &CallGraph{
		callees: make(map[*types.Func][]CallSite),
		callers: make(map[*types.Func][]CallSite),
	}
	for _, pkg := range p.Sorted() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := CalleeOf(pkg.Info, call)
					if callee == nil {
						return true
					}
					site := CallSite{Caller: caller, Callee: callee, Call: call}
					g.callees[caller] = append(g.callees[caller], site)
					g.callers[callee] = append(g.callers[callee], site)
					return true
				})
			}
		}
	}
	p.callgraph = g
	return g
}

// CalleeOf resolves a call expression to the statically called function, or
// nil for calls through values, builtins and conversions. Generic
// instantiations resolve to their origin function, which is where the
// declaration (and any directives) live.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		// Explicitly instantiated generic: f[T](...).
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if origin := fn.Origin(); origin != nil {
		return origin
	}
	return fn
}

// CallsFrom returns the static call sites inside fn, in source order.
func (g *CallGraph) CallsFrom(fn *types.Func) []CallSite { return g.callees[fn] }

// CallsTo returns the static call sites whose resolved callee is fn.
func (g *CallGraph) CallsTo(fn *types.Func) []CallSite { return g.callers[fn] }

// Reachable returns the set of functions reachable from the roots through
// static call edges, including the roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, site := range g.callees[fn] {
			walk(site.Callee)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}
