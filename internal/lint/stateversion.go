package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StateVersion enforces the dirty-cluster skip-sweep contract: on any type
// that carries a stateVersion counter, a method that writes a field marked
// //gridlint:observable (state the middleware can observe through queries
// or snapshots) must also bump stateVersion on the same receiver — either
// directly, through another same-receiver method it calls, or through a
// plain function that receives the value as an argument. Methods that are
// only ever invoked under a caller that bumps (displacement helpers inside
// an outage reveal, for instance) declare that with
// //gridlint:stateversion-bumped-by-caller — and the analyzer closes that
// escape hatch by walking the call graph: every static caller of such a
// method must itself bump (or carry the directive, pushing the obligation
// further up).
var StateVersion = &Analyzer{
	Name: "stateversion",
	Doc: "methods writing //gridlint:observable fields of a stateVersion-carrying " +
		"type must bump stateVersion or be marked //gridlint:stateversion-bumped-by-caller",
	Run: runStateVersion,
}

// stateVersionField is the counter field that makes a type subject to the
// analyzer.
const stateVersionField = "stateVersion"

func runStateVersion(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recvType := receiverNamed(fn)
			if recvType == nil || !hasStateVersion(recvType) {
				continue
			}
			if pass.Prog.FuncHasDirective(fn, DirBumpedByCaller) {
				verifyBumpedByCaller(pass, fn)
			}
			checkStateVersionMethod(pass, fd, fn)
		}
	}
	return nil
}

// receiverNamed returns the named type a method is declared on, unwrapping
// a pointer receiver.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return fieldOwner(sig.Recv().Type())
}

// hasStateVersion reports whether the struct behind the named type has a
// stateVersion field.
func hasStateVersion(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == stateVersionField {
			return true
		}
	}
	return false
}

func checkStateVersionMethod(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	recv := receiverName(fd)
	if recv == "" {
		return
	}
	written := observableWrites(pass, fd, recv)
	if len(written) == 0 {
		return
	}
	if pass.Prog.FuncHasDirective(fn, DirBumpedByCaller) {
		return
	}
	if bumpsStateVersion(pass.Prog, fn, make(map[*types.Func]bool)) {
		return
	}
	for _, w := range written {
		pass.Reportf(w.pos,
			"method %s writes observable field %s but bumps %s on no path (add a bump or mark the method //gridlint:stateversion-bumped-by-caller)",
			fn.Name(), w.field, stateVersionField)
	}
}

// verifyBumpedByCaller checks the other side of the
// //gridlint:stateversion-bumped-by-caller contract: the directive asserts
// every caller owns the bump, so each static call site's enclosing function
// must bump stateVersion itself or carry the directive (moving the
// obligation one level further up). Call sites inside function literals are
// attributed to the enclosing declared function by the call graph.
func verifyBumpedByCaller(pass *Pass, fn *types.Func) {
	g := pass.Prog.CallGraph()
	for _, site := range g.CallsTo(fn) {
		caller := site.Caller
		if caller == nil || caller == fn {
			continue
		}
		if pass.Prog.FuncHasDirective(caller, DirBumpedByCaller) {
			continue
		}
		if bumpsStateVersion(pass.Prog, caller, make(map[*types.Func]bool)) {
			continue
		}
		pass.Reportf(site.Call.Pos(),
			"%s calls %s, which is marked //gridlint:stateversion-bumped-by-caller, but bumps %s on no path (the annotation moves the bump obligation to this caller)",
			caller.Name(), fn.Name(), stateVersionField)
	}
}

// observableWrites lists the //gridlint:observable fields the method body
// assigns (directly, by element, by clear(), or by taking their address or
// passing them to append-style rebuilds via assignment).
func observableWrites(pass *Pass, fd *ast.FuncDecl, recv string) []writeSite {
	var sites []writeSite
	seen := make(map[string]bool)
	record := func(expr ast.Expr) {
		name, ok := receiverField(pass.Info, expr, recv)
		if !ok || seen[name] {
			return
		}
		sel := expr.(*ast.SelectorExpr)
		obj := pass.Info.Selections[sel].Obj()
		if obj == nil || !pass.Prog.ObjectHasDirective(obj, DirObservable) {
			return
		}
		seen[name] = true
		sites = append(sites, writeSite{field: name, pos: sel.Pos()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					record(idx.X)
				}
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 {
				record(n.Args[0])
			}
		}
		return true
	})
	return sites
}

type writeSite struct {
	field string
	pos   token.Pos
}

// bumpsStateVersion reports whether the method assigns stateVersion on the
// receiver — directly, through another same-receiver method it calls, or
// through a plain helper function it passes the receiver to.
func bumpsStateVersion(prog *Program, fn *types.Func, visited map[*types.Func]bool) bool {
	return bumpsWithRecv(prog, fn, -1, visited)
}

// bumpsWithRecv is the traversal behind bumpsStateVersion. argIdx < 0 means
// fn is a method and the receiver binding is its declared receiver; argIdx
// >= 0 means fn is a plain function standing in for a method body, with the
// receiver bound to its argIdx-th parameter. Type info is resolved per
// declaration (not from the running pass), so the walk stays correct when
// it crosses into a callee or caller from another package.
func bumpsWithRecv(prog *Program, fn *types.Func, argIdx int, visited map[*types.Func]bool) bool {
	if fn == nil || visited[fn] {
		return false
	}
	visited[fn] = true
	decl := prog.DeclOf(fn)
	info := prog.InfoFor(fn)
	if decl == nil || decl.Body == nil || info == nil {
		return false
	}
	var recv string
	if argIdx < 0 {
		if decl.Recv == nil || len(decl.Recv.List) == 0 {
			return false
		}
		recv = receiverName(decl)
	} else {
		if decl.Recv != nil {
			return false
		}
		params := flattenParams(info, decl)
		if argIdx >= len(params) || params[argIdx] == nil {
			return false
		}
		recv = params[argIdx].Name()
	}
	if recv == "" || recv == "_" {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, ok := receiverField(info, lhs, recv); ok && name == stateVersionField {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if name, ok := receiverField(info, n.X, recv); ok && name == stateVersionField {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
					if callee, ok := info.Uses[sel.Sel].(*types.Func); ok {
						if bumpsWithRecv(prog, callee, -1, visited) {
							found = true
						}
					}
				}
			}
			// bumpHelper(s): a plain function receiving the receiver can
			// carry the bump.
			if callee := CalleeOf(info, n); callee != nil && !found {
				if cd := prog.DeclOf(callee); cd != nil && cd.Recv == nil {
					for i, arg := range n.Args {
						a := ast.Unparen(arg)
						if u, ok := a.(*ast.UnaryExpr); ok {
							a = ast.Unparen(u.X)
						}
						if id, ok := a.(*ast.Ident); ok && id.Name == recv {
							if bumpsWithRecv(prog, callee, i, visited) {
								found = true
							}
						}
					}
				}
			}
		}
		return !found
	})
	return found
}
