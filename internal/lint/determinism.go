package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the reproduction's bit-for-bit reproducibility
// contract (same trace + seed => same digest) by rejecting the sources of
// run-to-run variation the fuzz oracle has caught dynamically:
//
//   - wall-clock time: time.Now, time.Since — virtual time comes from the
//     sim engine, never from the host;
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): all
//     randomness must flow from a seeded *rand.Rand so scenarios replay;
//     constructing sources (rand.New, rand.NewSource, rand.NewPCG, ...) is
//     allowed;
//   - map iteration: ranging over a map feeds non-deterministic order into
//     whatever the loop computes. Loops that are provably order-insensitive
//     (collect-then-sort, commutative folds over exact values) are
//     annotated //gridlint:unordered-ok; everything else must iterate a
//     sorted key slice;
//   - shared per-run state: a package-level variable whose type is marked
//     //gridlint:stateful (mapping policies with internal cursors,
//     configs holding them) would leak state between runs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, un-annotated map range " +
		"(//gridlint:unordered-ok), and package-level //gridlint:stateful values",
	Run: runDeterminism,
}

// forbiddenTimeFuncs are wall-clock entry points; everything else in
// package time (durations, formatting) is deterministic.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedGlobalRandFuncs construct sources/generators rather than drawing
// from the package-level one.
var allowedGlobalRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
		checkStatefulGlobals(pass, f)
	}
	return nil
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: rand.Intn on a *rand.Rand value is a
	// method and has a receiver.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulations must use virtual sim.Time only", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedGlobalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global random source; use a seeded *rand.Rand so runs replay", fn.Pkg().Name(), fn.Name())
		}
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Prog.NodeHasDirective(rng, DirUnorderedOK) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is random; iterate a sorted key slice, or annotate the loop //gridlint:unordered-ok if its result is provably order-insensitive")
}

// checkStatefulGlobals flags package-level variables whose type (or pointee
// type) is marked //gridlint:stateful.
func checkStatefulGlobals(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := pass.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if tn := statefulTypeName(pass, obj.Type()); tn != nil {
					pass.Reportf(name.Pos(),
						"package-level variable %s holds //gridlint:stateful type %s; per-run state must not be shared across runs",
						name.Name, tn.Name())
				}
			}
		}
	}
}

// statefulTypeName returns the //gridlint:stateful named type behind t
// (unwrapping one level of pointer/slice), or nil.
func statefulTypeName(pass *Pass, t types.Type) *types.TypeName {
	switch u := t.(type) {
	case *types.Pointer:
		t = u.Elem()
	case *types.Slice:
		t = u.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if pass.Prog.TypeHasDirective(named.Obj(), DirStateful) {
		return named.Obj()
	}
	return nil
}
