package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Directives validates the control comments themselves. Every analyzer in
// the suite is annotation-driven, which makes a misspelled directive the
// worst kind of bug: //gridlint:keep-accross-reset doesn't fail — it simply
// never matches, so the field it was meant to justify is flagged while the
// typo'd word looks like an exotic suppression that works. Worse, a typo'd
// suppression on a line the analyzer happens not to flag today silently
// disarms the check for whoever edits that line next. This pass rejects:
//
//   - unknown directive words (anything not in KnownDirectives);
//   - suppression directives without a justification — keep-across-reset,
//     allow-retain, unordered-ok and ref-transferred each carry a reason in
//     prose after the word, and an empty reason defeats the review value of
//     the annotation.
var Directives = &Analyzer{
	Name: "directives",
	Doc: "reject unknown //gridlint: directive words and suppression " +
		"directives without a justification",
	Run: runDirectives,
}

// suppressionNeedsReason is the subset of directives whose trailing prose
// is mandatory.
var suppressionNeedsReason = map[string]bool{
	DirKeepAcrossRst:  true,
	DirAllowRetain:    true,
	DirUnorderedOK:    true,
	DirRefTransferred: true,
}

func runDirectives(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkDirectiveComment(pass, c)
			}
		}
	}
	return nil
}

func checkDirectiveComment(pass *Pass, c *ast.Comment) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, directivePrefix) {
		return
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	word := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t("); i >= 0 {
		word = rest[:i]
		reason = strings.TrimSpace(rest[i:])
	}
	if word == "" {
		pass.Reportf(c.Pos(), "//gridlint: comment with no directive word")
		return
	}
	if !KnownDirectives[word] {
		pass.Reportf(c.Pos(),
			"unknown gridlint directive %q (known: %s); a typo here silently disables the check it was meant to configure",
			word, knownDirectiveList())
		return
	}
	if suppressionNeedsReason[word] && reason == "" {
		pass.Reportf(c.Pos(),
			"//gridlint:%s needs a justification after the directive word", word)
	}
}

// knownDirectiveList renders the known directive words sorted, for the
// unknown-directive diagnostic.
func knownDirectiveList() string {
	words := make([]string, 0, len(KnownDirectives))
	//gridlint:unordered-ok collected then sorted
	for w := range KnownDirectives {
		words = append(words, w)
	}
	sort.Strings(words)
	return strings.Join(words, ", ")
}
