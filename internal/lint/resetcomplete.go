package lint

import (
	"go/ast"
	"go/types"
)

// ResetComplete enforces the pooled-reuse contract: every field of a type
// marked //gridlint:resettable must be re-initialised by the type's
// Reset/reset method — directly, through a same-receiver helper it calls,
// or in place by passing the field (or its address) to a call — or carry an
// explicit //gridlint:keep-across-reset directive for fields that are pure
// capacity (scratch buffers whose contents never survive into an
// observation) or preserved configuration.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "every field of a //gridlint:resettable type must be covered by its " +
		"Reset/reset method or marked //gridlint:keep-across-reset",
	Run: runResetComplete,
}

func runResetComplete(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !pass.Prog.TypeHasDirective(tn, DirResettable) {
					continue
				}
				checkResettable(pass, tn, ts)
			}
		}
	}
	return nil
}

func checkResettable(pass *Pass, tn *types.TypeName, ts *ast.TypeSpec) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "type %s is marked //gridlint:resettable but is not a struct", tn.Name())
		return
	}
	reset := findResetMethod(pass, tn)
	if reset == nil {
		pass.Reportf(ts.Pos(), "type %s is marked //gridlint:resettable but has no Reset or reset method", tn.Name())
		return
	}
	covered := make(map[string]bool)
	visited := make(map[*types.Func]bool)
	collectResetCoverage(pass, tn, reset, covered, visited)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if covered[field.Name()] {
			continue
		}
		if pass.Prog.ObjectHasDirective(field, DirKeepAcrossRst) {
			continue
		}
		pass.Reportf(field.Pos(),
			"field %s.%s is not re-initialised by %s and is not marked //gridlint:keep-across-reset",
			tn.Name(), field.Name(), reset.Name())
	}
}

// findResetMethod returns the type's Reset or reset method (preferring the
// exported spelling when both exist).
func findResetMethod(pass *Pass, tn *types.TypeName) *types.Func {
	for _, name := range []string{"Reset", "reset"} {
		if fn := lookupMethod(tn, name); fn != nil {
			if pass.Prog.DeclOf(fn) != nil {
				return fn
			}
		}
	}
	return nil
}

func lookupMethod(tn *types.TypeName, name string) *types.Func {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// collectResetCoverage records, in covered, every field of tn's struct that
// fn re-initialises, following calls to other methods on the same receiver
// (s.clearPlan() inside Reset extends coverage by whatever clearPlan
// covers). A field counts as covered when the method:
//
//   - assigns it (s.f = v, s.f += v, s.f++), including under any
//     conditional — resets are straight-line enough that reaching the
//     assignment on some path is the signal we want;
//   - clears it (clear(s.f));
//   - assigns an element (s.f[i] = v) — in-place map/slice refill;
//   - calls a method on it (s.f.Reset(...), s.f.copyFrom(...)) — delegated
//     re-initialisation;
//   - passes it, its address, or an element as a call argument
//     (s.fillInto(s.buf), reinit(&s.cache)) — in-place re-initialisation
//     through a helper.
func collectResetCoverage(pass *Pass, tn *types.TypeName, fn *types.Func, covered map[string]bool, visited map[*types.Func]bool) {
	if visited[fn] {
		return
	}
	visited[fn] = true
	decl := pass.Prog.DeclOf(fn)
	if decl == nil || decl.Body == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return
	}
	recvIdent := receiverName(decl)
	if recvIdent == "" {
		return
	}
	markField := func(expr ast.Expr) {
		if name, ok := receiverField(pass, expr, recvIdent); ok {
			covered[name] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markField(lhs)
				// s.f[i] = v re-initialises f in place.
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					markField(idx.X)
				}
			}
		case *ast.IncDecStmt:
			markField(n.X)
		case *ast.CallExpr:
			// clear(s.f), helper(s.f), helper(&s.f), helper(s.f[i:]).
			for _, arg := range n.Args {
				markCoverageArg(pass, arg, recvIdent, covered)
			}
			// s.f.Method(...) delegates f's re-initialisation; s.helper(...)
			// extends coverage by the helper's own assignments.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name, ok := receiverField(pass, sel.X, recvIdent); ok {
					covered[name] = true
				} else if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvIdent {
					if callee, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
						collectResetCoverage(pass, tn, callee, covered, visited)
					}
				}
			}
		}
		return true
	})
}

// markCoverageArg marks the receiver field named inside a call argument as
// covered: s.f, &s.f, s.f[i:], s.f[i].
func markCoverageArg(pass *Pass, arg ast.Expr, recv string, covered map[string]bool) {
	switch a := arg.(type) {
	case *ast.UnaryExpr:
		markCoverageArg(pass, a.X, recv, covered)
	case *ast.SliceExpr:
		markCoverageArg(pass, a.X, recv, covered)
	case *ast.IndexExpr:
		markCoverageArg(pass, a.X, recv, covered)
	default:
		if name, ok := receiverField(pass, arg, recv); ok {
			covered[name] = true
		}
	}
}

// receiverName returns the name the method binds its receiver to, or ""
// for anonymous receivers.
func receiverName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	name := decl.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// receiverField reports whether expr is a selection of a field on the named
// receiver (recv.field) and returns the field name.
func receiverField(pass *Pass, expr ast.Expr, recv string) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	if sn, ok := pass.Info.Selections[sel]; ok && sn.Kind() == types.FieldVal {
		return sel.Sel.Name, true
	}
	return "", false
}

// fieldOwner returns the named struct type a field selection resolves
// against, unwrapping pointers.
func fieldOwner(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
