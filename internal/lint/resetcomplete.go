package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ResetComplete enforces the pooled-reuse contract: every field of a type
// marked //gridlint:resettable must be re-initialised by the type's
// Reset/reset method — directly, through a same-receiver helper it calls,
// through a plain function that receives the value as an argument, or in
// place by passing the field (or its address) to a call — or carry an
// explicit //gridlint:keep-across-reset directive for fields that are pure
// capacity (scratch buffers whose contents never survive into an
// observation) or preserved configuration. Embedded structs are walked
// field by field: an embedded struct is covered when it is reassigned
// wholesale, or when every promoted field it contributes is covered.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "every field of a //gridlint:resettable type must be covered by its " +
		"Reset/reset method or marked //gridlint:keep-across-reset",
	Run: runResetComplete,
}

func runResetComplete(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !pass.Prog.TypeHasDirective(tn, DirResettable) {
					continue
				}
				checkResettable(pass, tn, ts)
			}
		}
	}
	return nil
}

func checkResettable(pass *Pass, tn *types.TypeName, ts *ast.TypeSpec) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "type %s is marked //gridlint:resettable but is not a struct", tn.Name())
		return
	}
	reset := findResetMethod(pass, tn)
	if reset == nil {
		pass.Reportf(ts.Pos(), "type %s is marked //gridlint:resettable but has no Reset or reset method", tn.Name())
		return
	}
	covered := make(map[string]bool)
	visited := make(map[coverageKey]bool)
	collectResetCoverage(pass, reset, covered, visited)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if covered[field.Name()] {
			continue
		}
		if pass.Prog.ObjectHasDirective(field, DirKeepAcrossRst) {
			continue
		}
		if field.Embedded() {
			// An embedded struct promotes its fields into the receiver; the
			// reset may cover them one by one under the promoted names
			// (s.promoted = 0 resolves through Selections to "promoted").
			missing := uncoveredPromoted(pass, field.Type(), covered, make(map[types.Type]bool))
			if len(missing) == 0 {
				continue
			}
			pass.Reportf(field.Pos(),
				"embedded field %s.%s is not re-initialised by %s: promoted field(s) %s are uncovered and not marked //gridlint:keep-across-reset",
				tn.Name(), field.Name(), reset.Name(), strings.Join(missing, ", "))
			continue
		}
		pass.Reportf(field.Pos(),
			"field %s.%s is not re-initialised by %s and is not marked //gridlint:keep-across-reset",
			tn.Name(), field.Name(), reset.Name())
	}
}

// uncoveredPromoted walks an embedded field's struct type and returns the
// names of promoted fields that are neither covered under their promoted
// name nor marked //gridlint:keep-across-reset, recursing through nested
// embeddings. Non-struct embeddings contribute nothing (there is no field
// set to check).
func uncoveredPromoted(pass *Pass, t types.Type, covered map[string]bool, seen map[types.Type]bool) []string {
	if seen[t] {
		return nil
	}
	seen[t] = true
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[f.Name()] || pass.Prog.ObjectHasDirective(f, DirKeepAcrossRst) {
			continue
		}
		if f.Embedded() {
			missing = append(missing, uncoveredPromoted(pass, f.Type(), covered, seen)...)
			continue
		}
		missing = append(missing, f.Name())
	}
	return missing
}

// findResetMethod returns the type's Reset or reset method (preferring the
// exported spelling when both exist).
func findResetMethod(pass *Pass, tn *types.TypeName) *types.Func {
	for _, name := range []string{"Reset", "reset"} {
		if fn := lookupMethod(tn, name); fn != nil {
			if pass.Prog.DeclOf(fn) != nil {
				return fn
			}
		}
	}
	return nil
}

func lookupMethod(tn *types.TypeName, name string) *types.Func {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// coverageKey identifies one (function, receiver binding) traversal: a
// method binds the receiver itself (argIdx -1), a plain helper binds it to
// the parameter at argIdx. The same helper can legitimately be visited once
// per binding position.
type coverageKey struct {
	fn     *types.Func
	argIdx int
}

// collectResetCoverage records, in covered, every field of the receiver's
// struct that fn re-initialises, following calls to other methods on the
// same receiver (s.clearPlan() inside Reset extends coverage by whatever
// clearPlan covers) and calls to plain functions that receive the receiver
// as an argument (resetAgentScratch(s) counts what the helper assigns
// through its parameter). A field counts as covered when the body:
//
//   - assigns it (s.f = v, s.f += v, s.f++), including under any
//     conditional — resets are straight-line enough that reaching the
//     assignment on some path is the signal we want;
//   - clears it (clear(s.f));
//   - assigns an element (s.f[i] = v) — in-place map/slice refill;
//   - calls a method on it (s.f.Reset(...), s.f.copyFrom(...)) — delegated
//     re-initialisation;
//   - passes it, its address, or an element as a call argument
//     (s.fillInto(s.buf), reinit(&s.cache)) — in-place re-initialisation
//     through a helper.
func collectResetCoverage(pass *Pass, fn *types.Func, covered map[string]bool, visited map[coverageKey]bool) {
	key := coverageKey{fn: fn, argIdx: -1}
	if visited[key] {
		return
	}
	visited[key] = true
	decl := pass.Prog.DeclOf(fn)
	if decl == nil || decl.Body == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return
	}
	recvIdent := receiverName(decl)
	if recvIdent == "" {
		return
	}
	collectCoverageBody(pass, fn, decl, recvIdent, covered, visited)
}

// collectHelperCoverage extends coverage through a plain function that
// receives the resettable value as its argIdx-th argument: the matching
// parameter name plays the receiver role inside the helper's body.
func collectHelperCoverage(pass *Pass, fn *types.Func, argIdx int, covered map[string]bool, visited map[coverageKey]bool) {
	key := coverageKey{fn: fn, argIdx: argIdx}
	if visited[key] {
		return
	}
	visited[key] = true
	decl := pass.Prog.DeclOf(fn)
	if decl == nil || decl.Body == nil || decl.Recv != nil {
		return
	}
	info := pass.Prog.InfoFor(fn)
	if info == nil {
		return
	}
	params := flattenParams(info, decl)
	if argIdx >= len(params) || params[argIdx] == nil {
		return
	}
	recvIdent := params[argIdx].Name()
	if recvIdent == "" || recvIdent == "_" {
		return
	}
	collectCoverageBody(pass, fn, decl, recvIdent, covered, visited)
}

func collectCoverageBody(pass *Pass, fn *types.Func, decl *ast.FuncDecl, recvIdent string, covered map[string]bool, visited map[coverageKey]bool) {
	info := pass.Prog.InfoFor(fn)
	if info == nil {
		return
	}
	markField := func(expr ast.Expr) {
		if name, ok := receiverField(info, expr, recvIdent); ok {
			covered[name] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markField(lhs)
				// s.f[i] = v re-initialises f in place.
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					markField(idx.X)
				}
			}
		case *ast.IncDecStmt:
			markField(n.X)
		case *ast.CallExpr:
			// clear(s.f), helper(s.f), helper(&s.f), helper(s.f[i:]).
			for _, arg := range n.Args {
				markCoverageArg(info, arg, recvIdent, covered)
			}
			// s.f.Method(...) delegates f's re-initialisation; s.helper(...)
			// extends coverage by the helper's own assignments.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name, ok := receiverField(info, sel.X, recvIdent); ok {
					covered[name] = true
				} else if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvIdent {
					if callee, ok := info.Uses[sel.Sel].(*types.Func); ok {
						collectResetCoverage(pass, callee, covered, visited)
					}
				}
			}
			// reinitHelper(s) / reinitHelper(&local): a plain function that
			// takes the whole receiver re-initialises whatever it assigns
			// through the matching parameter.
			if callee := CalleeOf(info, n); callee != nil {
				if cd := pass.Prog.DeclOf(callee); cd != nil && cd.Recv == nil {
					for i, arg := range n.Args {
						a := ast.Unparen(arg)
						if u, ok := a.(*ast.UnaryExpr); ok {
							a = ast.Unparen(u.X)
						}
						if id, ok := a.(*ast.Ident); ok && id.Name == recvIdent {
							collectHelperCoverage(pass, callee, i, covered, visited)
						}
					}
				}
			}
		}
		return true
	})
}

// markCoverageArg marks the receiver field named inside a call argument as
// covered: s.f, &s.f, s.f[i:], s.f[i].
func markCoverageArg(info *types.Info, arg ast.Expr, recv string, covered map[string]bool) {
	switch a := arg.(type) {
	case *ast.UnaryExpr:
		markCoverageArg(info, a.X, recv, covered)
	case *ast.SliceExpr:
		markCoverageArg(info, a.X, recv, covered)
	case *ast.IndexExpr:
		markCoverageArg(info, a.X, recv, covered)
	default:
		if name, ok := receiverField(info, arg, recv); ok {
			covered[name] = true
		}
	}
}

// receiverName returns the name the method binds its receiver to, or ""
// for anonymous receivers.
func receiverName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	name := decl.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// receiverField reports whether expr is a selection of a field on the named
// receiver (recv.field) and returns the field name. Promoted fields resolve
// to the promoted name (s.inner yields "inner" even when it lives in an
// embedded struct), which is how embedded coverage is matched.
func receiverField(info *types.Info, expr ast.Expr, recv string) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	if sn, ok := info.Selections[sel]; ok && sn.Kind() == types.FieldVal {
		return sel.Sel.Name, true
	}
	return "", false
}

// fieldOwner returns the named struct type a field selection resolves
// against, unwrapping pointers.
func fieldOwner(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
