package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the analyzed program.
type Package struct {
	// Path is the import path ("gridrealloc/internal/batch").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed sources (test files excluded), with comments.
	Files []*ast.File
	// Types and Info are the type-checker outputs.
	Types *types.Package
	Info  *types.Info
}

// Program is the set of packages one gridlint run analyzes, plus the
// cross-package indexes analyzers consult: the directive index (which file
// line carries which //gridlint: word) and the mapping from type-checker
// objects back to their declarations.
type Program struct {
	Fset     *token.FileSet
	Packages map[string]*Package

	directives directiveIndex
	funcDecls  map[*types.Func]*ast.FuncDecl
	typeDecls  map[*types.TypeName]*typeDecl
	callgraph  *CallGraph
}

type typeDecl struct {
	spec *ast.TypeSpec
	doc  *ast.CommentGroup
}

// Sorted returns the loaded packages in import-path order.
func (p *Program) Sorted() []*Package {
	pkgs := make([]*Package, 0, len(p.Packages))
	//gridlint:unordered-ok packages are collected then sorted by path
	for _, pkg := range p.Packages {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// FuncHasDirective reports whether the function's declaration carries the
// directive. Functions without a loaded declaration (std library, funcs from
// packages outside the program) never do.
func (p *Program) FuncHasDirective(fn *types.Func, dir string) bool {
	decl, ok := p.funcDecls[fn]
	if !ok {
		return false
	}
	return nodeHasDirective(p.Fset, p.directives, decl, decl.Doc, dir)
}

// TypeHasDirective reports whether the named type's declaration carries the
// directive.
func (p *Program) TypeHasDirective(tn *types.TypeName, dir string) bool {
	decl, ok := p.typeDecls[tn]
	if !ok {
		return false
	}
	return nodeHasDirective(p.Fset, p.directives, decl.spec, decl.doc, dir)
}

// ObjectHasDirective reports whether the directive appears on the object's
// declaration line (or the line above it). Used for struct fields and
// package-level variables, whose declarations are single lines.
func (p *Program) ObjectHasDirective(obj types.Object, dir string) bool {
	return p.directives.hasDirectiveAt(p.Fset.Position(obj.Pos()), dir)
}

// NodeHasDirective reports whether the directive is attached to the node
// (its first line or the line above).
func (p *Program) NodeHasDirective(node ast.Node, dir string) bool {
	return p.directives.hasDirectiveAt(p.Fset.Position(node.Pos()), dir)
}

// DeclOf returns the loaded declaration of fn, or nil.
func (p *Program) DeclOf(fn *types.Func) *ast.FuncDecl { return p.funcDecls[fn] }

// InfoFor returns the type-checker Info of the package fn is declared in, or
// nil for functions outside the loaded program. Interprocedural analyzers
// need it to inspect a declaration from a package other than the one the
// pass is running on — Info maps are per-package.
func (p *Program) InfoFor(fn *types.Func) *types.Info {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if pkg := p.Packages[fn.Pkg().Path()]; pkg != nil {
		return pkg.Info
	}
	return nil
}

// Loader loads and type-checks packages from source, with no toolchain
// invocation and no dependency on export data: module packages are resolved
// under Root, everything else falls back to the standard library's own
// source importer. That keeps the analyzers usable in this dependency-free
// module (golang.org/x/tools is unavailable by policy) at the cost of
// re-checking imports from source on each run.
type Loader struct {
	// Root is the directory packages are resolved under.
	Root string
	// Module is the import-path prefix that maps to Root. Empty means
	// GOPATH-style resolution (import path == directory under Root), which
	// is what the analysistest fixtures use.
	Module string

	fset    *token.FileSet
	std     types.Importer
	prog    *Program
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir for the given module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loading: make(map[string]bool),
		prog: &Program{
			Fset:       fset,
			Packages:   make(map[string]*Package),
			directives: make(directiveIndex),
			funcDecls:  make(map[*types.Func]*ast.FuncDecl),
			typeDecls:  make(map[*types.TypeName]*typeDecl),
		},
	}
}

// Load type-checks the packages with the given import paths (plus anything
// they import) and returns the resulting program. It may be called once
// with every path of interest; repeated paths are checked once.
func (l *Loader) Load(paths ...string) (*Program, error) {
	for _, path := range paths {
		if _, err := l.Import(path); err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", path, err)
		}
	}
	return l.prog, nil
}

// Program returns the packages loaded so far.
func (l *Loader) Program() *Program { return l.prog }

// dirFor maps an import path to a source directory under Root, or "" when
// the path is not part of the analyzed tree (std library, external).
func (l *Loader) dirFor(path string) string {
	switch {
	case l.Module == "":
		return filepath.Join(l.Root, filepath.FromSlash(path))
	case path == l.Module:
		return l.Root
	case strings.HasPrefix(path, l.Module+"/"):
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
	default:
		return ""
	}
}

// Import implements types.Importer so the type-checker resolves the
// analyzed module's internal imports through the loader itself.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.prog.Packages[path]; ok {
		return pkg.Types, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return l.std.Import(path)
	}
	if info, err := os.Stat(dir); err != nil || !info.IsDir() {
		// GOPATH-style roots (fixtures) may still import std packages.
		if l.Module == "" {
			return l.std.Import(path)
		}
		return nil, fmt.Errorf("no directory for import %q (looked in %s)", path, dir)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.prog.Packages[path] = pkg
	l.index(pkg)
	return pkg, nil
}

// index merges the package's directives and declaration maps into the
// program-wide indexes analyzers consult across package boundaries.
func (l *Loader) index(pkg *Package) {
	//gridlint:unordered-ok map-to-map merge of per-file directive entries
	for file, lines := range indexDirectives(l.fset, pkg.Files) {
		m := l.prog.directives[file]
		if m == nil {
			m = make(map[int][]directiveEntry)
			l.prog.directives[file] = m
		}
		//gridlint:unordered-ok per-line entry lists are independent
		for line, entries := range lines {
			m[line] = append(m[line], entries...)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					l.prog.funcDecls[fn] = d
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					l.prog.typeDecls[tn] = &typeDecl{spec: ts, doc: doc}
				}
			}
		}
	}
}

// ModulePackages returns the import paths of every package under the
// loader's root, in sorted order, skipping hidden directories and testdata
// trees. Directories without non-test Go files are omitted.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
