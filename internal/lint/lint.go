// Package lint implements gridlint: a suite of static analyzers that
// enforce, at build time, the invariants the reallocation engine's
// correctness proofs rest on (see the "Static invariants" sections of the
// module's doc.go and ROADMAP.md). The invariants were previously guarded
// only by runtime oracles — the fuzz harness and the reuse-equivalence
// digest tests — which fire after a bug ships; the analyzers reject the bug
// at lint time instead.
//
// The suite is shaped after golang.org/x/tools/go/analysis (an Analyzer
// with a Run function over a Pass), but is self-contained on the standard
// library: the module is dependency-free by policy, so the framework loads
// and type-checks packages itself (see Loader) instead of importing the
// x/tools driver machinery. Migrating an analyzer to x/tools later is a
// mechanical change of the Pass plumbing; the Run bodies carry over.
//
// # Analyzers
//
//   - resetcomplete: every field of a type marked //gridlint:resettable
//     must be re-initialised by its Reset/reset method (directly, via a
//     helper method, or in place through a call) or carry an explicit
//     //gridlint:keep-across-reset directive. Guards the pooled-reuse
//     contract "anything added to a scheduler/agent/driver MUST be cleared
//     in the corresponding reset".
//   - stateversion: methods of a type with a stateVersion counter that
//     write a field marked //gridlint:observable must bump stateVersion
//     (directly or through a callee on the same receiver) or carry
//     //gridlint:stateversion-bumped-by-caller. Guards the dirty-cluster
//     sweep-skipping contract "any new mutation path MUST bump
//     stateVersion".
//   - poollife: the result of a function marked //gridlint:pooled is only
//     valid until the provider's documented reuse point; storing it in a
//     struct field, a global, or a closure without a copy is flagged unless
//     the store carries //gridlint:allow-retain (ownership transfer).
//   - determinism: forbids wall-clock time (time.Now/Since), the global
//     math/rand source, un-annotated map iteration (order feeds digests,
//     results and emitted tables; annotate provably order-insensitive loops
//     with //gridlint:unordered-ok), and package-level variables of types
//     marked //gridlint:stateful (per-run state such as mapping policies
//     must not be shared across runs).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// surface the suite needs: a name, a documentation string and a Run
// function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, in load order.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its expression types.
	Pkg  *types.Package
	Info *types.Info
	// Prog is the whole loaded program, for analyzers that need
	// cross-package facts (poollife resolves //gridlint:pooled directives on
	// imported packages through it).
	Prog *Program

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces every gridlint control comment.
const directivePrefix = "gridlint:"

// Directives recognised by the suite. Each is documented on the analyzer
// that consumes it (see the package comment).
const (
	DirResettable     = "resettable"
	DirKeepAcrossRst  = "keep-across-reset"
	DirObservable     = "observable"
	DirBumpedByCaller = "stateversion-bumped-by-caller"
	DirPooled         = "pooled"
	DirAllowRetain    = "allow-retain"
	DirUnorderedOK    = "unordered-ok"
	DirStateful       = "stateful"
	DirWorker         = "worker"
	DirClusterIndexed = "cluster-indexed"
	DirRefAcquire     = "ref-acquire"
	DirRefRelease     = "ref-release"
	DirRefTransferred = "ref-transferred"
)

// KnownDirectives is the complete set of directive words the suite
// recognises; the directives validation pass rejects anything else (a
// typo'd directive would otherwise silently disable its check).
var KnownDirectives = map[string]bool{
	DirResettable:     true,
	DirKeepAcrossRst:  true,
	DirObservable:     true,
	DirBumpedByCaller: true,
	DirPooled:         true,
	DirAllowRetain:    true,
	DirUnorderedOK:    true,
	DirStateful:       true,
	DirWorker:         true,
	DirClusterIndexed: true,
	DirRefAcquire:     true,
	DirRefRelease:     true,
	DirRefTransferred: true,
}

// SuppressionDirectives are the directives that silence another analyzer's
// diagnostic at a specific site; gridlint -suppressions counts them against
// the committed LINT_SUPPRESSIONS budget so the total only ratchets down.
var SuppressionDirectives = []string{
	DirKeepAcrossRst,
	DirAllowRetain,
	DirUnorderedOK,
	DirRefTransferred,
}

// CountSuppressions tallies, per directive word, how many suppression
// directives appear in the loaded program's sources. Every word in
// SuppressionDirectives is present in the result, zero-valued when unused,
// so a regenerated baseline always lists the full budget vocabulary.
func CountSuppressions(prog *Program) map[string]int {
	counts := make(map[string]int, len(SuppressionDirectives))
	suppress := make(map[string]bool, len(SuppressionDirectives))
	for _, w := range SuppressionDirectives {
		counts[w] = 0
		suppress[w] = true
	}
	//gridlint:unordered-ok tallying into a map; consumers sort the words
	for _, lines := range prog.directives {
		//gridlint:unordered-ok tallying into a map; consumers sort the words
		for _, entries := range lines {
			for _, e := range entries {
				if suppress[e.word] {
					counts[e.word]++
				}
			}
		}
	}
	return counts
}

// directiveIndex maps file -> line -> directives found on that line.
// A directive comment is a // comment whose text starts with "gridlint:";
// everything after the colon up to the first space is the directive word
// (trailing prose is a human justification and is ignored). The comment's
// column disambiguates trailing comments (which annotate their own line
// only) from own-line comments (which annotate the line below).
type directiveIndex map[string]map[int][]directiveEntry

type directiveEntry struct {
	word string
	col  int
}

// indexDirectives scans a file's comments for gridlint directives.
func indexDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				word := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(word, " \t("); i >= 0 {
					word = word[:i]
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int][]directiveEntry)
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], directiveEntry{word: word, col: pos.Column})
			}
		}
	}
	return idx
}

// hasDirectiveAt reports whether the directive applies at the given
// position: a trailing comment on the same line, or an own-line comment on
// the line immediately above. A comment on the line above counts only when
// it starts at or left of the position's column — a trailing comment on the
// previous line of code sits far to the right and must not leak onto the
// next line.
func (idx directiveIndex) hasDirectiveAt(pos token.Position, dir string) bool {
	m := idx[pos.Filename]
	if m == nil {
		return false
	}
	for _, e := range m[pos.Line] {
		if e.word == dir {
			return true
		}
	}
	for _, e := range m[pos.Line-1] {
		if e.word == dir && e.col <= pos.Column {
			return true
		}
	}
	return false
}

// nodeHasDirective reports whether the directive is attached to the node:
// on the node's first line, the line above it, or anywhere in the given doc
// comment group (a declaration's Doc).
func nodeHasDirective(fset *token.FileSet, idx directiveIndex, node ast.Node, doc *ast.CommentGroup, dir string) bool {
	if idx.hasDirectiveAt(fset.Position(node.Pos()), dir) {
		return true
	}
	if doc != nil {
		for _, c := range doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, directivePrefix+dir) {
				return true
			}
		}
	}
	return false
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Directives,
		ResetComplete,
		StateVersion,
		PoolLife,
		Determinism,
		SweepOwner,
		RefBalance,
	}
}

// RunAnalyzers applies the given analyzers to every package of the program
// and returns the findings sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Sorted() {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
