package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a single function body and constructs its CFG.
func buildTestCFG(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test body: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// checkCFGInvariants asserts the structural properties every CFG must hold:
// block indexes match their position, the exit block is last and empty,
// conditional blocks carry exactly two successors, and the exit is
// reachable from the entry.
func checkCFGInvariants(t *testing.T, g *funcCFG) {
	t.Helper()
	for i, blk := range g.blocks {
		if blk.index != i {
			t.Errorf("block %d carries index %d", i, blk.index)
		}
		if blk.cond != nil && len(blk.succs) != 2 {
			t.Errorf("block %d has a condition but %d successors", i, len(blk.succs))
		}
	}
	if g.blocks[len(g.blocks)-1] != g.exit {
		t.Error("exit block is not the last block")
	}
	if len(g.exit.stmts) != 0 || len(g.exit.succs) != 0 {
		t.Error("exit block must be empty with no successors")
	}
	seen := map[*cfgBlock]bool{g.entry: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	if !seen[g.exit] {
		t.Error("exit block unreachable from entry")
	}
}

func TestCFGStraightLine(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	x++
	_ = x
`)
	checkCFGInvariants(t, g)
	if len(g.entry.stmts) != 3 {
		t.Errorf("straight-line body split across blocks: entry holds %d stmts", len(g.entry.stmts))
	}
	if len(g.entry.succs) != 1 || g.entry.succs[0] != g.exit {
		t.Error("straight-line entry should flow directly to exit")
	}
}

func TestCFGIfElseAndReturns(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	if x > 0 {
		return
	} else {
		x = 2
	}
	_ = x
`)
	checkCFGInvariants(t, g)
	if g.entry.cond == nil {
		t.Fatal("entry should end in the if condition")
	}
	if len(g.returns) != 1 {
		t.Fatalf("tracked %d return statements, want 1", len(g.returns))
	}
	for ret, blk := range g.returns {
		if blk == nil || ret == nil {
			t.Fatal("returns map holds nil entries")
		}
		if len(blk.succs) != 1 || blk.succs[0] != g.exit {
			t.Error("return block should jump straight to exit")
		}
	}
}

func TestCFGSwitchWithFallthroughAndDefault(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x
`)
	checkCFGInvariants(t, g)
	// The case-1 body must reach the case-2 body through the fallthrough:
	// some block assigning 10 has a successor whose statements assign 20.
	assigns := func(blk *cfgBlock, lit string) bool {
		for _, s := range blk.stmts {
			as, ok := s.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == lit {
				return true
			}
		}
		return false
	}
	linked := false
	for _, blk := range g.blocks {
		if !assigns(blk, "10") {
			continue
		}
		for _, s := range blk.succs {
			if assigns(s, "20") {
				linked = true
			}
		}
	}
	if !linked {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestCFGSwitchWithoutDefaultCanSkip(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
	}
	_ = x
`)
	checkCFGInvariants(t, g)
}

func TestCFGTypeSwitch(t *testing.T) {
	g := buildTestCFG(t, `
	var v interface{}
	switch v.(type) {
	case int:
		_ = v
	case string:
		return
	}
	_ = v
`)
	checkCFGInvariants(t, g)
	if len(g.returns) != 1 {
		t.Errorf("tracked %d returns in type switch, want 1", len(g.returns))
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildTestCFG(t, `
	a := make(chan int)
	b := make(chan int)
	select {
	case <-a:
		return
	case v := <-b:
		_ = v
	default:
	}
`)
	checkCFGInvariants(t, g)
	if len(g.returns) != 1 {
		t.Errorf("tracked %d returns in select, want 1", len(g.returns))
	}
}

func TestCFGLoopBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
	}
`)
	checkCFGInvariants(t, g)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}
`)
	checkCFGInvariants(t, g)
}

func TestCFGLabeledSwitchBreak(t *testing.T) {
	g := buildTestCFG(t, `
	x := 0
sw:
	switch x {
	case 0:
		if x == 0 {
			break sw
		}
		x = 1
	}
	_ = x
`)
	checkCFGInvariants(t, g)
}

func TestCFGGotoBackwardAndForward(t *testing.T) {
	g := buildTestCFG(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	if i == 3 {
		goto done
	}
	i = 100
done:
	_ = i
`)
	checkCFGInvariants(t, g)
}

func TestCFGGotoUnseenLabelFallsBackToExit(t *testing.T) {
	// The label sits inside a construct the linear walk does not register
	// as a goto target; the edge must conservatively reach the exit rather
	// than dangle.
	g := buildTestCFG(t, `
	i := 0
	goto inside
	for {
	inside:
		i++
		break
	}
	_ = i
`)
	checkCFGInvariants(t, g)
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildTestCFG(t, `
	xs := []int{1, 2, 3}
	total := 0
	for _, x := range xs {
		total += x
	}
	_ = total
`)
	checkCFGInvariants(t, g)
	// The range head must be able to skip the body (zero iterations).
	var head *cfgBlock
	for _, blk := range g.blocks {
		for _, s := range blk.stmts {
			if _, ok := s.(*ast.RangeStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the RangeStmt head")
	}
	if len(head.succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body and skip)", len(head.succs))
	}
}

func TestCFGUnreachableCodeStillGetsBlocks(t *testing.T) {
	g := buildTestCFG(t, `
	return
	println("dead")
`)
	checkCFGInvariants(t, g)
	found := false
	for _, blk := range g.blocks {
		for _, s := range blk.stmts {
			if _, ok := s.(*ast.ExprStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("statement after return should still land in a (unreachable) block")
	}
}
