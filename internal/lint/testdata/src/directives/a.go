package directives

// Fixture for the directives validation pass. The diagnostics land on the
// comment lines themselves, where the `// want` convention cannot follow
// (one line holds one comment), so TestDirectivesFixture asserts the
// expected (line, message) pairs directly. Keep the markers below aligned
// with that test when editing.

//gridlint:resettable
type tracked struct{ n int }

func (t *tracked) Reset() { t.n = 0 }

//gridlint:keep-accross-reset classic typo, silently disarms resetcomplete
var a []int // the line above is MARKER 1: unknown directive

// gridlint:
var b []int // the line above is MARKER 2: no directive word

var c []int //gridlint:allow-retain

// The line above is MARKER 3: a suppression directive with no reason.

var d []int //gridlint:unordered-ok justified: consumers sort before use

var _ = []interface{}{a, b, c, d}
