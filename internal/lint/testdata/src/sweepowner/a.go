package sweepowner

// forEach is the fixture's worker pool: fn(idx) owns cluster idx for the
// duration of the call.
//
//gridlint:worker
func forEach(n int, fn func(idx int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type agent struct {
	//gridlint:cluster-indexed
	slots []int
	// plain is not cluster-indexed; workers may roam it freely.
	plain []int
}

//gridlint:cluster-indexed
var globalSlots []int

func ownAccess(a *agent) {
	forEach(len(a.slots), func(idx int) {
		a.slots[idx]++ // the owned index: fine
		j := idx
		a.slots[j]++ // ownership propagates through copies
		a.plain[0]++ // unannotated slice: not checked
	})
}

func crossSlot(a *agent) {
	forEach(len(a.slots), func(idx int) {
		a.slots[0]++       // want `worker callback accesses cluster-indexed slots\[0\]`
		a.slots[idx+1] = 0 // want `worker callback accesses cluster-indexed slots\[idx\+1\]`
	})
}

func iterates(a *agent) {
	forEach(len(a.slots), func(idx int) {
		for i := range a.slots { // want `worker callback iterates cluster-indexed slots`
			_ = i
		}
	})
}

func viaAlias(a *agent) {
	view := a.slots[:2]
	forEach(len(a.slots), func(idx int) {
		view[idx]++ // aliases of cluster-indexed slices carry the annotation
		view[1]++   // want `worker callback accesses cluster-indexed view\[1\]`
	})
}

func viaHelper(a *agent) {
	forEach(len(a.slots), func(idx int) {
		touch(a, idx)
		stray(a, idx)
	})
}

// touch receives the owned index; accesses through it are fine.
func touch(a *agent, idx int) {
	a.slots[idx]++
}

// stray receives the owned index but wanders off it.
func stray(a *agent, idx int) {
	a.slots[idx-1]++ // want `stray accesses cluster-indexed slots\[idx-1\]`
}

func closures(a *agent) {
	forEach(len(a.slots), func(idx int) {
		inc := func() {
			a.slots[idx]++ // closure capturing the owned index: fine
		}
		inc()
		bad := func(k int) {
			a.slots[k]++ // want `worker callback accesses cluster-indexed slots\[k\]`
		}
		bad(idx)
	})
}

// step is a named callback: the analysis follows the declaration.
func step(idx int) {
	globalSlots[idx]++
	globalSlots[2]++ // want `step accesses cluster-indexed globalSlots\[2\]`
}

func named() {
	forEach(len(globalSlots), step)
}
