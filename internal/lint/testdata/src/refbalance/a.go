package refbalance

import "errors"

type profile struct{ refs int }

type snap struct {
	pool *pool
	p    *profile
}

type pool struct {
	plan *profile
	fail bool
}

var errFail = errors.New("fail")

// Acquire hands out a counted reference to the pool's plan profile.
//
//gridlint:ref-acquire
func (s *pool) Acquire() (*snap, error) {
	if s.fail {
		return nil, errFail
	}
	s.plan.refs++
	return &snap{pool: s, p: s.plan}, nil
}

// AcquireInto refreshes sn in place, releasing its previous reference.
//
//gridlint:ref-acquire
func (s *pool) AcquireInto(sn *snap, now int) error {
	if s.fail {
		return errFail
	}
	sn.Release()
	s.plan.refs++
	*sn = snap{pool: s, p: s.plan}
	return nil
}

// Release drops the reference; nil-safe and idempotent.
//
//gridlint:ref-release
func (sn *snap) Release() {
	if sn == nil || sn.p == nil {
		return
	}
	sn.p.refs--
	sn.p = nil
}

func balanced(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	sn.Release()
}

func deferred(p *pool) int {
	sn, err := p.Acquire()
	if err != nil {
		return 0
	}
	defer sn.Release()
	return sn.p.refs
}

func deferredLiteral(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	defer func() { sn.Release() }()
	_ = sn.p
}

func methodValue(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	rel := sn.Release
	defer rel()
	_ = sn.p
}

func leak(p *pool) {
	sn, err := p.Acquire() // want `reference held by sn is not released on every path`
	if err != nil {
		return
	}
	_ = sn.p
}

func conditionalLeak(p *pool, c bool) {
	sn, err := p.Acquire() // want `reference held by sn is not released on every path`
	if err != nil {
		return
	}
	if c {
		sn.Release()
	}
}

func doubleRelease(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	sn.Release()
	sn.Release() // want `sn is already released on every path reaching this release`
}

func reacquireInLoop(p *pool, n int) {
	for i := 0; i < n; i++ {
		sn, err := p.Acquire() // want `sn reacquired while still holding an unreleased reference`
		if err != nil {
			return
		}
		_ = sn.p
	}
}

func overwrite(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	sn = nil // want `sn overwritten while still holding an unreleased reference`
	_ = sn
}

func discard(p *pool) {
	p.Acquire() // want `result of Acquire is an acquired reference but is discarded`
}

func escapeReturn(p *pool) *snap {
	sn, err := p.Acquire()
	if err != nil {
		return nil
	}
	return sn // want `sn returned while holding a reference`
}

func escapeCall(p *pool) (*snap, error) {
	return p.Acquire() // want `reference acquired from Acquire returned from a function not marked`
}

// wrapped is itself an acquire point: its caller inherits the obligation.
//
//gridlint:ref-acquire
func wrapped(p *pool) (*snap, error) {
	return p.Acquire()
}

//gridlint:ref-acquire
func wrappedVar(p *pool) (*snap, error) {
	sn, err := p.Acquire()
	if err != nil {
		return nil, err
	}
	return sn, nil
}

type holder struct{ sn *snap }

func storeLeak(p *pool, h *holder) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	h.sn = sn // want `reference held by sn stored outside the function without`
}

func storeTransferred(p *pool, h *holder) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	h.sn = sn //gridlint:ref-transferred the holder owns and releases the snapshot
}

func intoBalanced(p *pool) {
	var sn snap
	if err := p.AcquireInto(&sn, 0); err != nil {
		return
	}
	defer sn.Release()
	_ = sn.p
}

func intoLeak(p *pool) {
	var sn snap
	if err := p.AcquireInto(&sn, 0); err != nil { // want `reference held by sn is not released on every path`
		return
	}
	_ = sn.p
}

// refreshLoop re-acquires into the same variable every pass; the refresh
// releases the previous reference inside the provider, and the final
// reference is released after the loop. A failed refresh keeps the previous
// iteration's reference, so the error path must release too. The after-loop
// release is reached on the zero-iteration path as well, which is fine:
// Release is nil-safe on an empty snapshot, and the analysis only flags
// definite double releases.
func refreshLoop(p *pool, n int) {
	var sn snap
	for i := 0; i < n; i++ {
		if err := p.AcquireInto(&sn, i); err != nil {
			sn.Release()
			return
		}
		_ = sn.p
	}
	sn.Release()
}

// copyOwner hands the reference to a second variable; the last copy owns it.
func copyOwner(p *pool) {
	sn, err := p.Acquire()
	if err != nil {
		return
	}
	view := sn
	view.Release()
}
