// Package poollife exercises the poollife analyzer: retaining a pooled
// result in a field, a global or an escaping closure is flagged; copying
// out of it, immediate consumption, annotated ownership transfers and
// pooled-to-pooled returns are accepted.
package poollife

// provider hands out a buffer it overwrites on the next call.
type provider struct {
	buf []int
}

// Advance returns the provider's reused notification buffer; the result is
// only valid until the next Advance call.
//
//gridlint:pooled
func (p *provider) Advance() []int {
	p.buf = p.buf[:0]
	p.buf = append(p.buf, 1, 2, 3)
	return p.buf
}

type holder struct {
	kept []int
}

var global []int

// BadField retains the pooled slice in a struct field: flagged.
func (h *holder) BadField(p *provider) {
	notes := p.Advance()
	h.kept = notes // want `pooled result of Advance stored in field kept`
}

// BadGlobal retains it in a package-level variable: flagged.
func BadGlobal(p *provider) {
	global = p.Advance() // want `pooled result of Advance stored in package-level variable global`
}

// BadReturn extends the lifetime invisibly through a non-pooled return:
// flagged.
func BadReturn(p *provider) []int {
	notes := p.Advance()
	return notes // want `pooled result of Advance returned from BadReturn`
}

// BadClosure captures the pooled slice in a closure that escapes: flagged.
func BadClosure(p *provider) func() int {
	notes := p.Advance()
	return func() int {
		return len(notes) // want `pooled result of Advance captured by an escaping closure in BadClosure`
	}
}

// GoodCopy copies the contents out before keeping them: accepted.
func (h *holder) GoodCopy(p *provider) {
	notes := p.Advance()
	h.kept = append(h.kept[:0], notes...)
}

// GoodConsume reads the buffer within its lifetime: accepted.
func GoodConsume(p *provider) int {
	total := 0
	for _, n := range p.Advance() {
		total += n
	}
	return total
}

// GoodTransfer is a deliberate ownership hand-off, annotated: accepted.
func (h *holder) GoodTransfer(p *provider) {
	h.kept = p.Advance() //gridlint:allow-retain provider documents the transfer
}

// GoodPooledReturn propagates the bounded lifetime in its own contract:
// accepted.
//
//gridlint:pooled
func GoodPooledReturn(p *provider) []int {
	notes := p.Advance()
	return notes
}
