// Package resetcomplete exercises the resetcomplete analyzer: flagged
// fields missing from Reset, plus every accepted coverage form (direct
// assignment, clear, helper method, delegated method call, in-place call
// argument, keep-across-reset directive).
package resetcomplete

// Sched leaves cache out of Reset: flagged. scratch is capacity-only and
// carries the directive: accepted.
//
//gridlint:resettable
type Sched struct {
	now     int64
	queue   []int
	cache   map[int]int // want `field Sched\.cache is not re-initialised by Reset`
	scratch []int       //gridlint:keep-across-reset capacity-only buffer
}

func (s *Sched) Reset() {
	s.now = 0
	s.queue = s.queue[:0]
}

// Good covers every field through one of the accepted forms.
//
//gridlint:resettable
type Good struct {
	now    int64
	items  map[int]int
	helper []int
	buf    []byte
	sub    inner
	slot   []int
}

func (g *Good) Reset() {
	g.now = 0
	clear(g.items)
	g.clearHelper()
	fill(g.buf)
	g.sub.reset()
	g.slot[0] = 0
}

func (g *Good) clearHelper() { g.helper = g.helper[:0] }

func fill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

type inner struct{ x int }

func (i *inner) reset() { i.x = 0 }

// NoReset is resettable but has no reset method at all: flagged.
//
//gridlint:resettable
type NoReset struct { // want `type NoReset is marked //gridlint:resettable but has no Reset or reset method`
	x int
}

// Plain has no directive; nothing is checked.
type Plain struct {
	leaky map[int]int
}
