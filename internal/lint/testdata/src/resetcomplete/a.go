// Package resetcomplete exercises the resetcomplete analyzer: flagged
// fields missing from Reset, plus every accepted coverage form (direct
// assignment, clear, helper method, delegated method call, in-place call
// argument, keep-across-reset directive).
package resetcomplete

// Sched leaves cache out of Reset: flagged. scratch is capacity-only and
// carries the directive: accepted.
//
//gridlint:resettable
type Sched struct {
	now     int64
	queue   []int
	cache   map[int]int // want `field Sched\.cache is not re-initialised by Reset`
	scratch []int       //gridlint:keep-across-reset capacity-only buffer
}

func (s *Sched) Reset() {
	s.now = 0
	s.queue = s.queue[:0]
}

// Good covers every field through one of the accepted forms.
//
//gridlint:resettable
type Good struct {
	now    int64
	items  map[int]int
	helper []int
	buf    []byte
	sub    inner
	slot   []int
}

func (g *Good) Reset() {
	g.now = 0
	clear(g.items)
	g.clearHelper()
	fill(g.buf)
	g.sub.reset()
	g.slot[0] = 0
}

func (g *Good) clearHelper() { g.helper = g.helper[:0] }

func fill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

type inner struct{ x int }

func (i *inner) reset() { i.x = 0 }

// NoReset is resettable but has no reset method at all: flagged.
//
//gridlint:resettable
type NoReset struct { // want `type NoReset is marked //gridlint:resettable but has no Reset or reset method`
	x int
}

// Plain has no directive; nothing is checked.
type Plain struct {
	leaky map[int]int
}

type base struct {
	gen  int
	hist []int //gridlint:keep-across-reset capacity-only buffer
}

// WithEmbed embeds base; Reset covers the promoted field gen under its
// promoted name (hist is directive-exempt), so the embedding is accepted.
//
//gridlint:resettable
type WithEmbed struct {
	base
	top int
}

func (w *WithEmbed) Reset() {
	w.top = 0
	w.gen = 0
}

type base2 struct {
	gen2 int
	tick int
}

// BadEmbed resets one promoted field but forgets the other: the embedded
// field itself is flagged, naming the uncovered promoted field.
//
//gridlint:resettable
type BadEmbed struct {
	base2 // want `embedded field BadEmbed\.base2 is not re-initialised by Reset: promoted field\(s\) tick are uncovered`
	top   int
}

func (b *BadEmbed) Reset() {
	b.top = 0
	b.gen2 = 0
}

// WholeEmbed reassigns the embedded struct wholesale: accepted without
// touching individual promoted fields.
//
//gridlint:resettable
type WholeEmbed struct {
	base2
	top int
}

func (w *WholeEmbed) Reset() {
	w.top = 0
	w.base2 = base2{}
}

// ViaHelper resets through a plain function that receives the receiver as
// an argument: the helper's assignments count as coverage.
//
//gridlint:resettable
type ViaHelper struct {
	x int
	y []int
}

func (h *ViaHelper) Reset() {
	resetViaHelper(h)
}

func resetViaHelper(h *ViaHelper) {
	h.x = 0
	h.y = h.y[:0]
}
