// Package stateversion exercises the stateversion analyzer: a missing bump
// is flagged; direct bumps, bumps through a same-receiver helper, writes to
// non-observable fields, and //gridlint:stateversion-bumped-by-caller
// methods are accepted.
package stateversion

type sched struct {
	waiting []int        //gridlint:observable
	running map[int]bool //gridlint:observable
	counter int64

	stateVersion uint64
}

// Submit mutates the waiting queue and forgets the bump: flagged.
func (s *sched) Submit(j int) {
	s.waiting = append(s.waiting, j) // want `method Submit writes observable field waiting but bumps stateVersion on no path`
}

// Cancel bumps directly: accepted.
func (s *sched) Cancel() {
	s.waiting = s.waiting[:0]
	s.stateVersion++
}

// Start bumps through a helper on the same receiver: accepted.
func (s *sched) Start(j int) {
	s.running[j] = true
	s.bump()
}

func (s *sched) bump() { s.stateVersion++ }

// displace is only ever invoked under Reveal, which owns the bump:
// accepted via directive.
//
//gridlint:stateversion-bumped-by-caller
func (s *sched) displace(j int) {
	s.running[j] = false
}

// Reveal is the bumping caller of displace.
func (s *sched) Reveal(j int) {
	s.displace(j)
	s.stateVersion++
}

// BadReveal also calls displace but never bumps: the
// bumped-by-caller directive moves the obligation here, and the call graph
// walk flags the call site.
func (s *sched) BadReveal(j int) {
	s.displace(j) // want `BadReveal calls displace, which is marked //gridlint:stateversion-bumped-by-caller, but bumps stateVersion on no path`
}

// ChainReveal is itself marked bumped-by-caller, so calling displace
// without bumping is accepted: the obligation moves up another level (and
// ChainReveal's own callers are checked in turn).
//
//gridlint:stateversion-bumped-by-caller
func (s *sched) ChainReveal(j int) {
	s.displace(j)
}

// OuterReveal discharges ChainReveal's obligation with a direct bump.
func (s *sched) OuterReveal(j int) {
	s.ChainReveal(j)
	s.stateVersion++
}

// StartViaHelper bumps through a plain function that receives the
// receiver as an argument: accepted.
func (s *sched) StartViaHelper(j int) {
	s.running[j] = true
	bumpHelper(s)
}

func bumpHelper(s *sched) { s.stateVersion++ }

// Count touches only non-observable state: accepted without a bump.
func (s *sched) Count() {
	s.counter++
}

// free has no stateVersion field, so its methods are never checked.
type free struct {
	waiting []int //gridlint:observable
}

func (f *free) Submit(j int) {
	f.waiting = append(f.waiting, j)
}
