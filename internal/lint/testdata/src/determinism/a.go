// Package determinism exercises the determinism analyzer: wall-clock
// reads, global math/rand draws, bare map ranges and package-level
// stateful values are flagged; seeded generators, annotated
// order-insensitive loops and locally-scoped policies are accepted.
package determinism

import (
	"math/rand"
	"time"
)

// policy carries a per-run cursor; sharing one across runs breaks replay.
//
//gridlint:stateful
type policy struct {
	cursor int
}

var shared policy // want `package-level variable shared holds //gridlint:stateful type policy`

// BadClock reads the wall clock: flagged.
func BadClock() int64 {
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

// BadRand draws from the global source: flagged.
func BadRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global random source`
}

// GoodRand draws from a seeded generator: accepted.
func GoodRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// BadMap folds map values in iteration order: flagged.
func BadMap(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order is random`
		total += v
	}
	return total
}

// GoodMap declares the fold order-insensitive: accepted.
func GoodMap(m map[int]int) int {
	total := 0
	//gridlint:unordered-ok integer sum is exact in any order
	for _, v := range m {
		total += v
	}
	return total
}

// GoodLocalPolicy scopes the stateful value to one run: accepted.
func GoodLocalPolicy() int {
	p := policy{}
	p.cursor++
	return p.cursor
}

// GoodDuration uses package time without the wall clock: accepted.
func GoodDuration(d time.Duration) float64 {
	return d.Seconds()
}
