package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SweepOwner enforces the one-owner-per-cluster discipline the parallel
// reallocation sweep (and every sharding layer built on it) relies on:
// inside a worker callback — a function value passed to a function marked
// //gridlint:worker, whose leading int parameter is the worker's owned
// cluster index — any access to a slice marked //gridlint:cluster-indexed
// must use exactly that owned index. Each cluster's batch scheduler is an
// independent object and each worker may touch only its own cluster's
// slots; an access through a constant, a different variable, or a whole-
// slice iteration is a cross-owner data race waiting for the race detector
// (or worse, a silent digest divergence) to find it dynamically.
//
// The check is interprocedural: when a worker callback passes its owned
// index to a helper (sw.query(i, idx, job)), the analysis follows the call
// and treats the receiving parameter as owned inside the helper; closures
// defined inside the callback inherit the owned set of their environment.
// Locals initialised from the owned index (j := idx) become owned too, and
// locals aliasing a cluster-indexed slice (perCluster := a.scratchWaiting[:n])
// carry the annotation along.
var SweepOwner = &Analyzer{
	Name: "sweepowner",
	Doc: "inside //gridlint:worker callbacks, //gridlint:cluster-indexed slices " +
		"may only be accessed through the worker's owned index",
	Run: runSweepOwner,
}

func runSweepOwner(pass *Pass) error {
	seen := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Aliases of cluster-indexed slices created in the enclosing
			// function (perCluster := a.scratchWaiting[:n]) must be visible
			// inside the worker literal, which captures them.
			ctx := &ownerCtx{pass: pass, seen: seen}
			enclosingAliases := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					ctx.trackAssign(as, map[types.Object]bool{}, enclosingAliases)
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeOf(pass.Info, call)
				if callee == nil || !pass.Prog.FuncHasDirective(callee, DirWorker) {
					return true
				}
				checkWorkerCall(pass, call, seen, enclosingAliases)
				return true
			})
		}
	}
	return nil
}

// checkWorkerCall analyzes every function-typed argument of a call to a
// //gridlint:worker function whose signature carries a leading int
// parameter: that parameter is the worker's owned index.
func checkWorkerCall(pass *Pass, call *ast.CallExpr, seen map[string]bool, enclosingAliases map[types.Object]bool) {
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			owned := ownedIndexParam(pass, a.Type)
			if owned == nil {
				continue
			}
			ctx := &ownerCtx{pass: pass, seen: seen}
			ctx.checkBodyWith(a.Body, map[types.Object]bool{owned: true}, enclosingAliases, "worker callback")
		case *ast.Ident, *ast.SelectorExpr:
			// A named function used as the callback: analyze its declaration.
			var id *ast.Ident
			if ident, ok := a.(*ast.Ident); ok {
				id = ident
			} else {
				id = a.(*ast.SelectorExpr).Sel
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok {
				continue
			}
			decl := pass.Prog.DeclOf(fn)
			if decl == nil || decl.Body == nil {
				continue
			}
			owned := ownedIndexParamOfDecl(pass, decl)
			if owned == nil {
				continue
			}
			ctx := &ownerCtx{pass: pass, seen: seen}
			ctx.checkBody(decl.Body, map[types.Object]bool{owned: true}, fn.Name())
		}
	}
}

// ownedIndexParam returns the object of the first int parameter of a
// function literal's type — the owned cluster index — or nil when the
// callback takes none.
func ownedIndexParam(pass *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isIntType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func ownedIndexParamOfDecl(pass *Pass, decl *ast.FuncDecl) types.Object {
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isIntType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isIntType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// ownerCtx carries one sweepowner traversal: the pass, and the set of
// (function, owned-parameter) contexts already analyzed so mutual helper
// recursion terminates and shared helpers are not re-reported.
type ownerCtx struct {
	pass *Pass
	seen map[string]bool
}

// checkBody walks one function body in worker context. owned is the set of
// variables holding the worker's own cluster index; where names the context
// for diagnostics.
func (c *ownerCtx) checkBody(body ast.Node, owned map[types.Object]bool, where string) {
	c.checkBodyWith(body, owned, nil, where)
}

// checkBodyWith is checkBody with aliases captured from an enclosing scope
// (the worker literal sees the enclosing function's cluster-indexed
// locals).
func (c *ownerCtx) checkBodyWith(body ast.Node, owned map[types.Object]bool, captured map[types.Object]bool, where string) {
	aliases := make(map[types.Object]bool, len(captured))
	//gridlint:unordered-ok set-to-set copy
	for obj := range captured {
		aliases[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.trackAssign(n, owned, aliases)
		case *ast.IndexExpr:
			c.checkIndex(n, owned, aliases, where)
		case *ast.RangeStmt:
			if c.clusterIndexed(n.X, aliases) {
				c.pass.Reportf(n.Pos(),
					"%s iterates cluster-indexed %s; a worker owns exactly one cluster slot and may only access its own index",
					where, describeExpr(n.X))
			}
		case *ast.CallExpr:
			c.followCall(n, owned, where)
		}
		return true
	})
}

// trackAssign propagates ownership (j := idx) and cluster-indexed aliasing
// (perCluster := a.scratchWaiting[:n]) through simple assignments.
func (c *ownerCtx) trackAssign(as *ast.AssignStmt, owned, aliases map[types.Object]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		if rid, ok := rhs.(*ast.Ident); ok {
			if robj := c.pass.Info.Uses[rid]; robj != nil && owned[robj] {
				owned[obj] = true
				continue
			}
		}
		if c.clusterIndexed(rhs, aliases) {
			aliases[obj] = true
		}
	}
}

// checkIndex flags an index into a cluster-indexed slice whose index
// expression is not the owned index.
func (c *ownerCtx) checkIndex(idx *ast.IndexExpr, owned, aliases map[types.Object]bool, where string) {
	if !c.clusterIndexed(idx.X, aliases) {
		return
	}
	// Generic instantiations parse as IndexExpr too; only value indexing
	// matters here.
	if tv, ok := c.pass.Info.Types[idx.X]; !ok || tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok {
		if obj := c.pass.Info.Uses[id]; obj != nil && owned[obj] {
			return
		}
	}
	c.pass.Reportf(idx.Pos(),
		"%s accesses cluster-indexed %s[%s] with an index that is not the worker's owned index; one worker owns one cluster slot",
		where, describeExpr(idx.X), exprString(idx.Index))
}

// followCall descends into a statically resolved callee when the call
// passes an owned index, treating the receiving parameters as owned inside
// the callee.
func (c *ownerCtx) followCall(call *ast.CallExpr, owned map[types.Object]bool, where string) {
	callee := CalleeOf(c.pass.Info, call)
	if callee == nil {
		return
	}
	decl := c.pass.Prog.DeclOf(callee)
	if decl == nil || decl.Body == nil {
		return
	}
	var ownedParams []int
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := c.pass.Info.Uses[id]; obj != nil && owned[obj] {
			ownedParams = append(ownedParams, i)
		}
	}
	if len(ownedParams) == 0 {
		return
	}
	key := calleeKey(callee, ownedParams)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	info := c.pass.Prog.InfoFor(callee)
	if info == nil {
		return
	}
	calleeOwned := make(map[types.Object]bool)
	params := flattenParams(info, decl)
	for _, i := range ownedParams {
		if i < len(params) && params[i] != nil {
			calleeOwned[params[i]] = true
		}
	}
	if len(calleeOwned) == 0 {
		return
	}
	c.checkBody(decl.Body, calleeOwned, callee.Name())
}

// flattenParams returns the callee's parameter objects in declaration
// order, nil-padded for unnamed parameters, so positional arguments map to
// parameter objects. Variadic tails are returned as declared (an owned
// index passed variadically is not tracked).
func flattenParams(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var params []types.Object
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			params = append(params, nil)
			continue
		}
		for _, name := range field.Names {
			params = append(params, info.Defs[name])
		}
	}
	return params
}

func calleeKey(fn *types.Func, ownedParams []int) string {
	var b strings.Builder
	b.WriteString(fn.FullName())
	sort.Ints(ownedParams)
	for _, i := range ownedParams {
		fmt.Fprintf(&b, ":%d", i)
	}
	return b.String()
}

// clusterIndexed reports whether the expression denotes a slice annotated
// //gridlint:cluster-indexed: a struct field selection, a package-level or
// local variable carrying the directive, or a local aliasing one
// (including through slicing).
func (c *ownerCtx) clusterIndexed(expr ast.Expr, aliases map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return c.pass.Prog.ObjectHasDirective(sel.Obj(), DirClusterIndexed)
		}
		if obj, ok := c.pass.Info.Uses[e.Sel].(*types.Var); ok {
			return c.pass.Prog.ObjectHasDirective(obj, DirClusterIndexed)
		}
	case *ast.Ident:
		obj := c.pass.Info.Uses[e]
		if obj == nil {
			obj = c.pass.Info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if aliases[obj] {
			return true
		}
		return c.pass.Prog.ObjectHasDirective(obj, DirClusterIndexed)
	case *ast.SliceExpr:
		return c.clusterIndexed(e.X, aliases)
	}
	return false
}

// describeExpr renders a compact name for a slice expression in
// diagnostics.
func describeExpr(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.SliceExpr:
		return describeExpr(e.X)
	}
	return "slice"
}

// exprString renders a short form of an index expression for diagnostics.
func exprString(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	}
	return "..."
}
