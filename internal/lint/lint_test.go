package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestResetCompleteFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{ResetComplete}, "resetcomplete")
}

func TestStateVersionFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{StateVersion}, "stateversion")
}

func TestPoolLifeFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{PoolLife}, "poollife")
}

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{Determinism}, "determinism")
}

func TestSweepOwnerFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{SweepOwner}, "sweepowner")
}

func TestRefBalanceFixture(t *testing.T) {
	RunFixture(t, fixtureRoot(t), []*Analyzer{RefBalance}, "refbalance")
}

// TestDirectivesFixture checks the directives validation pass directly:
// its diagnostics anchor on the directive comments themselves, where the
// `// want` convention cannot follow (a line holds one comment), so the
// expected findings are asserted against lines located by content.
func TestDirectivesFixture(t *testing.T) {
	root := fixtureRoot(t)
	loader := NewLoader(root, "")
	prog, err := loader.Load("directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers(prog, []*Analyzer{Directives})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	src, err := os.ReadFile(filepath.Join(root, "directives", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	lineWhere := func(match func(string) bool, desc string) int {
		for i, l := range strings.Split(string(src), "\n") {
			if match(l) {
				return i + 1
			}
		}
		t.Fatalf("fixture line %s not found", desc)
		return 0
	}
	contains := func(substr string) func(string) bool {
		return func(l string) bool { return strings.Contains(l, substr) }
	}
	want := []struct {
		line    int
		message string
	}{
		{lineWhere(contains("keep-accross-reset"), "with the typo'd directive"),
			`unknown gridlint directive "keep-accross-reset"`},
		// gofmt spaces the bare comment to "// gridlint:"; the analyzer
		// trims that space, so both spellings are the same diagnostic.
		{lineWhere(func(l string) bool { return strings.TrimSpace(l) == "// gridlint:" }, "with the bare directive"),
			"comment with no directive word"},
		{lineWhere(contains("var c []int"), "declaring var c"),
			"//gridlint:allow-retain needs a justification"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), FormatDiagnostics(diags))
	}
	for i, w := range want {
		if diags[i].Pos.Line != w.line || !strings.Contains(diags[i].Message, w.message) {
			t.Errorf("diagnostic %d = %s; want line %d containing %q", i, diags[i], w.line, w.message)
		}
	}
}

// TestSuiteCleanOnRealTree runs the full analyzer suite over the actual
// module and requires zero diagnostics: the tree must stay lint-clean.
// This is the same check CI's lint job performs through cmd/gridlint; it
// type-checks the whole module (and its std imports) from source, so it is
// skipped in -short runs.
func TestSuiteCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "gridrealloc")
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("enumerating module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages found under module root")
	}
	prog, err := loader.Load(pkgs...)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(prog, Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(diags) > 0 {
		t.Errorf("gridlint reports %d diagnostics on the tree; it must be clean:\n%s",
			len(diags), FormatDiagnostics(diags))
	}
}

// TestModulePackagesSkipsTestdata guards the loader's package walk: fixture
// trees and hidden directories must not leak into the analyzed set.
func TestModulePackagesSkipsTestdata(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "gridrealloc")
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		if seen[p] {
			t.Errorf("package %s listed twice", p)
		}
		seen[p] = true
		if filepath.Base(p) == "testdata" {
			t.Errorf("testdata leaked into package list: %s", p)
		}
	}
	for _, want := range []string{"gridrealloc/internal/batch", "gridrealloc/internal/lint", "gridrealloc/cmd/gridlint"} {
		if !seen[want] {
			t.Errorf("expected %s in module package list, got %v", want, pkgs)
		}
	}
}

func TestDiagnosticFormatting(t *testing.T) {
	d := Diagnostic{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Message:  "call to time.Now",
	}
	want := "a.go:3:7: determinism: call to time.Now"
	if got := d.String(); got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
	formatted := FormatDiagnostics([]Diagnostic{d})
	if !strings.Contains(formatted, want) {
		t.Fatalf("FormatDiagnostics = %q, should contain %q", formatted, want)
	}
	if FormatDiagnostics(nil) != "" {
		t.Fatal("FormatDiagnostics(nil) should be empty")
	}
}

func TestLoaderProgramAccessor(t *testing.T) {
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, "")
	if _, err := l.Load("determinism"); err != nil {
		t.Fatal(err)
	}
	prog := l.Program()
	if prog == nil || prog.Packages["determinism"] == nil {
		t.Fatal("Program() should expose the loaded determinism package")
	}
}
