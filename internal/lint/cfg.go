package lint

import (
	"go/ast"
	"go/token"
)

// This file implements the lightweight per-function control-flow graph the
// dataflow analyzers (refbalance today; anything path-sensitive tomorrow)
// share. It is shaped after golang.org/x/tools/go/cfg — basic blocks of
// statements connected by successor edges — but stays dependency-free like
// the rest of the suite and only models what the analyzers consume:
//
//   - straight-line statements land in blocks in source order;
//   - if/for/range/switch/type-switch/select fork the graph, with the two
//     successors of a condition labelled so branch-sensitive analyses can
//     refine facts on the true and false edges;
//   - break/continue (with and without labels), return and goto terminate
//     blocks and route control where Go says it goes (goto is resolved to
//     its label when the label is in the function, and conservatively to
//     the exit block otherwise);
//   - defer statements are collected per function; they run at every exit,
//     so analyses apply their effect when a path reaches the exit block,
//     guarded by whether the defer statement was executed on that path
//     (the defer itself appears as an ordinary statement in its block, and
//     dataflow states track its registration).
//
// panics are not modelled: an analyzer that wants "panic ends the path"
// treats calls to panic like return statements itself.

// cfgBlock is one basic block: a run of statements with no internal control
// transfer, plus the successor edges control may take afterwards.
type cfgBlock struct {
	// index is the block's position in funcCFG.blocks (diagnostic aid and
	// stable iteration order for the fixed-point solvers).
	index int
	// stmts are the block's statements in source order. Conditions of
	// enclosing if/for/switch statements are NOT repeated here; they live in
	// cond.
	stmts []ast.Stmt
	// cond, when non-nil, is the boolean expression evaluated after the
	// block's statements; succs[0] is then the true edge and succs[1] the
	// false edge. When cond is nil every successor is unconditional.
	cond ast.Expr
	// succs are the blocks control may reach next. Empty for the exit block
	// and for blocks ending in return.
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the single virtual exit block: every return statement and the
	// natural end of the body flow into it. It holds no statements.
	exit *cfgBlock
	// returns maps each return statement to the block it terminates, so
	// analyses can report at the return site that reached the exit.
	returns map[*ast.ReturnStmt]*cfgBlock
}

// cfgBuilder carries the state of one graph construction.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// breakTargets / continueTargets stack the current loop/switch targets;
	// labels maps label names to their targets for labelled branches.
	breakTargets    []*cfgBlock
	continueTargets []*cfgBlock
	labelBreak      map[string]*cfgBlock
	labelContinue   map[string]*cfgBlock
	gotoTargets     map[string]*cfgBlock
	// pendingGotos are goto statements seen before their label; resolved at
	// the end, falling back to the exit block.
	pendingGotos map[string][]*cfgBlock
	// pendingLabel is the label of the labelled statement being built, so
	// the loop/switch constructs can register their real break/continue
	// targets under it.
	pendingLabel string
}

// buildCFG constructs the control-flow graph of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{returns: make(map[*ast.ReturnStmt]*cfgBlock)}
	b := &cfgBuilder{
		g:             g,
		labelBreak:    make(map[string]*cfgBlock),
		labelContinue: make(map[string]*cfgBlock),
		gotoTargets:   make(map[string]*cfgBlock),
		pendingGotos:  make(map[string][]*cfgBlock),
	}
	g.entry = b.newBlock()
	g.exit = &cfgBlock{}
	b.cur = g.entry
	b.stmtList(body.List)
	// Natural fallthrough off the end of the body reaches the exit.
	b.jump(g.exit)
	// Unresolved gotos (labels the walk never saw — dead labels, or labels
	// inside statements we linearised) conservatively reach the exit.
	//gridlint:unordered-ok every pending goto gets the same edge; order is irrelevant
	for _, blocks := range b.pendingGotos {
		for _, from := range blocks {
			from.succs = append(from.succs, g.exit)
		}
	}
	g.exit.index = len(g.blocks)
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to target and
// leaves the builder without a current block (the next statement starts an
// unreachable one unless a label re-enters).
func (b *cfgBuilder) jump(target *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, target)
	}
	b.cur = nil
}

// startBlock makes blk the current block, linking the previous one to it
// when control can fall through.
func (b *cfgBuilder) startBlock(blk *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, blk)
	}
	b.cur = blk
}

// add appends a statement to the current block, starting a fresh block if
// the previous one was terminated (code after return: unreachable but still
// analyzed).
func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.stmts = append(b.cur.stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, nil)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, s.Assign)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.g.returns[s] = b.cur
		}
		b.jump(b.g.exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	default:
		// Assignments, declarations, expression statements, defer, go,
		// send, inc/dec, empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	condBlock := b.cur
	condBlock.cond = s.Cond
	thenBlock := b.newBlock()
	done := b.newBlock()
	elseTarget := done
	var elseBlock *cfgBlock
	if s.Else != nil {
		elseBlock = b.newBlock()
		elseTarget = elseBlock
	}
	// succs[0] = true edge, succs[1] = false edge.
	condBlock.succs = append(condBlock.succs, thenBlock, elseTarget)
	b.cur = thenBlock
	b.stmtList(s.Body.List)
	b.jump(done)
	if elseBlock != nil {
		b.cur = elseBlock
		b.stmt(s.Else)
		b.jump(done)
	}
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.startBlock(head)
	body := b.newBlock()
	done := b.newBlock()
	if s.Cond != nil {
		head.cond = s.Cond
		head.succs = append(head.succs, body, done)
	} else {
		// for {}: the only way out is break/return.
		head.succs = append(head.succs, body)
	}
	post := head
	if s.Post != nil {
		post = b.newBlock()
		post.stmts = append(post.stmts, s.Post)
		post.succs = append(post.succs, head)
	}
	label := b.takeLabel(done, post)
	defer b.dropLabel(label)
	b.pushLoop(done, post)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popLoop()
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	// The range head is modelled as a block holding the range statement
	// itself (so analyzers see the key/value assignment and the ranged
	// expression), with a loop edge into the body and an exit edge.
	head := b.newBlock()
	b.startBlock(head)
	head.stmts = append(head.stmts, s)
	body := b.newBlock()
	done := b.newBlock()
	head.succs = append(head.succs, body, done)
	label := b.takeLabel(done, head)
	defer b.dropLabel(label)
	b.pushLoop(done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popLoop()
	b.cur = done
}

// takeLabel claims the pending label (if any) for the construct being
// built, registering its break and continue targets. dropLabel unregisters
// them when the construct closes.
func (b *cfgBuilder) takeLabel(brk, cont *cfgBlock) string {
	label := b.pendingLabel
	if label == "" {
		return ""
	}
	b.pendingLabel = ""
	b.labelBreak[label] = brk
	if cont != nil {
		b.labelContinue[label] = cont
	}
	return label
}

func (b *cfgBuilder) dropLabel(label string) {
	if label == "" {
		return
	}
	delete(b.labelBreak, label)
	delete(b.labelContinue, label)
}

// switchStmt builds expression and type switches: every case body branches
// from the head; fallthrough chains into the next case body.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, assign ast.Stmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(&ast.ExprStmt{X: tag})
	}
	if assign != nil {
		b.add(assign)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	done := b.newBlock()
	label := b.takeLabel(done, nil)
	defer b.dropLabel(label)
	b.pushSwitch(done)
	var caseBlocks []*cfgBlock
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.succs = append(head.succs, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.succs = append(head.succs, done)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		// Case guard expressions are evaluated in the head, but recording
		// them in the case block keeps their identifiers visible to
		// analyzers without affecting flow.
		for _, e := range cc.List {
			b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: e})
		}
		b.stmtListWithFallthrough(cc.Body, caseBlocks, i)
		b.jump(done)
	}
	b.popSwitch()
	b.cur = done
}

// stmtListWithFallthrough runs a case body, wiring a trailing fallthrough
// into the next case block.
func (b *cfgBuilder) stmtListWithFallthrough(list []ast.Stmt, caseBlocks []*cfgBlock, i int) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i+1 < len(caseBlocks) {
				b.jump(caseBlocks[i+1])
			} else {
				b.jump(b.g.exit)
			}
			return
		}
		b.stmt(s)
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	done := b.newBlock()
	label := b.takeLabel(done, nil)
	defer b.dropLabel(label)
	b.pushSwitch(done)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.succs = append(head.succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	if len(head.succs) == 0 {
		// select {} blocks forever; model as reaching the exit so analyses
		// terminate.
		head.succs = append(head.succs, b.g.exit)
	}
	b.popSwitch()
	b.cur = done
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labelBreak[s.Label.Name]; ok {
				b.jump(t)
				return
			}
		} else if n := len(b.breakTargets); n > 0 {
			b.jump(b.breakTargets[n-1])
			return
		}
		b.jump(b.g.exit)
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labelContinue[s.Label.Name]; ok {
				b.jump(t)
				return
			}
		} else if n := len(b.continueTargets); n > 0 {
			b.jump(b.continueTargets[n-1])
			return
		}
		b.jump(b.g.exit)
	case token.GOTO:
		if s.Label != nil {
			if t, ok := b.gotoTargets[s.Label.Name]; ok {
				b.jump(t)
				return
			}
			from := b.cur
			b.cur = nil
			if from != nil {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], from)
			}
			return
		}
		b.jump(b.g.exit)
	case token.FALLTHROUGH:
		// Handled by stmtListWithFallthrough; a stray one terminates.
		b.jump(b.g.exit)
	}
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock()
	b.startBlock(target)
	b.gotoTargets[s.Label.Name] = target
	for _, from := range b.pendingGotos[s.Label.Name] {
		from.succs = append(from.succs, target)
	}
	delete(b.pendingGotos, s.Label.Name)
	// The loop/switch constructs claim the pending label and register their
	// real break/continue targets under it (takeLabel); a label on any other
	// statement only serves gotos.
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushSwitch(brk *cfgBlock) {
	b.breakTargets = append(b.breakTargets, brk)
	// continue inside a switch still targets the enclosing loop; no push.
}

func (b *cfgBuilder) popSwitch() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}
