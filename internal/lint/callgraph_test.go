package lint

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// loadCallGraphFixture type-checks a small synthetic package and returns
// its program and package.
func loadCallGraphFixture(t *testing.T) (*Program, *Package) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "cgfix")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package cgfix

type counter struct{ n int }

func (c *counter) bump()    { c.n++ }
func (c *counter) bumpTwo() { c.bump(); c.bump() }

func ident[T any](x T) T { return x }

func leaf() int { return ident(1) }

func middle(c *counter) int {
	c.bumpTwo()
	return leaf()
}

func top(c *counter) int { return middle(c) }

func island() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "")
	prog, err := loader.Load("cgfix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return prog, prog.Packages["cgfix"]
}

// fnByName resolves a package-scope function, or a method via "type.name".
func fnByName(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	scope := pkg.Types.Scope()
	if obj := scope.Lookup(name); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	for _, tn := range []string{"counter"} {
		named, ok := scope.Lookup(tn).Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				return m
			}
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	prog, pkg := loadCallGraphFixture(t)
	g := prog.CallGraph()
	if g2 := prog.CallGraph(); g2 != g {
		t.Error("CallGraph() should cache and return the same graph")
	}

	middle := fnByName(t, pkg, "middle")
	leaf := fnByName(t, pkg, "leaf")
	bump := fnByName(t, pkg, "bump")

	callees := make(map[string]bool)
	for _, site := range g.CallsFrom(middle) {
		if site.Caller != middle {
			t.Errorf("CallsFrom(middle) returned a site whose caller is %v", site.Caller)
		}
		if site.Call == nil {
			t.Error("call site without its CallExpr")
		}
		callees[site.Callee.Name()] = true
	}
	if !callees["bumpTwo"] || !callees["leaf"] {
		t.Errorf("CallsFrom(middle) = %v, want bumpTwo and leaf", callees)
	}

	var bumpCallers []string
	for _, site := range g.CallsTo(bump) {
		bumpCallers = append(bumpCallers, site.Caller.Name())
	}
	if len(bumpCallers) != 2 || bumpCallers[0] != "bumpTwo" || bumpCallers[1] != "bumpTwo" {
		t.Errorf("CallsTo(bump) callers = %v, want [bumpTwo bumpTwo]", bumpCallers)
	}

	// The generic callee must resolve to its origin function.
	identCalled := false
	for _, site := range g.CallsFrom(leaf) {
		if site.Callee.Name() == "ident" {
			identCalled = true
		}
	}
	if !identCalled {
		t.Error("generic call ident(1) not resolved to its origin in CallsFrom(leaf)")
	}
}

func TestCallGraphReachable(t *testing.T) {
	prog, pkg := loadCallGraphFixture(t)
	g := prog.CallGraph()

	top := fnByName(t, pkg, "top")
	island := fnByName(t, pkg, "island")

	reach := g.Reachable([]*types.Func{top})
	for _, name := range []string{"top", "middle", "leaf", "bumpTwo", "bump", "ident"} {
		if !reach[fnByName(t, pkg, name)] {
			t.Errorf("%s should be reachable from top", name)
		}
	}
	if reach[island] {
		t.Error("island is not called by anything and must not be reachable from top")
	}
	if !g.Reachable([]*types.Func{island})[island] {
		t.Error("a root is always reachable from itself")
	}
}
