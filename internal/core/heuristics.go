// Package core implements the paper's primary contribution: the
// meta-scheduling agent that maps incoming jobs onto clusters and the two
// task-reallocation algorithms (with and without cancellation of the waiting
// queues) together with the six (re)scheduling heuristics used to order the
// jobs during a reallocation pass. It also contains the simulation driver
// that replays a trace on a platform and records per-job completion times.
package core

import (
	"fmt"
	"math"

	"gridrealloc/internal/workload"
)

// Candidate is a waiting job considered for reallocation.
type Candidate struct {
	// Job is the job itself (reference-speed runtime and walltime).
	Job workload.Job
	// OriginCluster is the name of the cluster currently (or, under the
	// cancellation algorithm, previously) holding the job.
	OriginCluster string
	// OriginECT is the job's estimated completion time on its origin
	// cluster: its planned completion when it is still queued there, or the
	// hypothetical completion time of resubmitting it there after the
	// cancellation algorithm emptied the queues.
	OriginECT int64
	// Reallocations is the number of times the job has already been moved.
	Reallocations int
}

// Estimate carries the per-candidate completion-time estimates a heuristic
// may use to order the candidates. All times are absolute virtual times.
type Estimate struct {
	// BestECT is the smallest estimated completion time across all clusters
	// (including the origin cluster's own estimate).
	BestECT int64
	// BestCluster is the name of the cluster achieving BestECT.
	BestCluster string
	// SecondECT is the second smallest estimated completion time, or
	// NoEstimate when fewer than two clusters can run the job.
	SecondECT int64
	// BestOtherECT is the smallest estimated completion time on a cluster
	// different from the origin cluster, or NoEstimate when no other cluster
	// can run the job.
	BestOtherECT int64
	// BestOtherCluster is the name of the cluster achieving BestOtherECT.
	BestOtherCluster string
}

// NoEstimate marks an absent completion-time estimate (for example the
// second-best ECT on a platform where only one cluster is large enough for
// the job).
const NoEstimate int64 = math.MaxInt64

// Gain returns the time the candidate would gain by moving to the best other
// cluster (OriginECT − BestOtherECT). A negative value means the move would
// delay the job. It returns (-NoEstimate) when no other cluster can run the
// job, so gain-ordered heuristics push such jobs last.
func (e Estimate) Gain(c Candidate) int64 {
	if e.BestOtherECT == NoEstimate {
		return -NoEstimate
	}
	return c.OriginECT - e.BestOtherECT
}

// Sufferage returns the difference between the two best estimated completion
// times, the quantity the Sufferage heuristic maximises. It returns 0 when
// only one cluster can run the job (the job does not suffer from losing a
// choice it does not have).
func (e Estimate) Sufferage() int64 {
	if e.SecondECT == NoEstimate || e.BestECT == NoEstimate {
		return 0
	}
	return e.SecondECT - e.BestECT
}

// Heuristic orders the candidates of a reallocation pass. Implementations
// must be deterministic: ties are expected to be broken by submission time
// and then job ID, which the helper pickBest guarantees.
type Heuristic interface {
	// Name returns the identifier used in the paper's tables ("Mct",
	// "MinMin", ...).
	Name() string
	// Select returns the index (into cands) of the candidate to handle
	// next. Both slices have the same length and are non-empty.
	Select(cands []Candidate, ests []Estimate) int
}

// The six heuristics of Section 2.2.2.
type (
	mctHeuristic        struct{}
	minMinHeuristic     struct{}
	maxMinHeuristic     struct{}
	maxGainHeuristic    struct{}
	maxRelGainHeuristic struct{}
	sufferageHeuristic  struct{}
)

// MCT returns the online heuristic that handles jobs in their submission
// order.
func MCT() Heuristic { return mctHeuristic{} }

// MinMin returns the heuristic that selects the job with the smallest best
// estimated completion time (gives priority to small jobs).
func MinMin() Heuristic { return minMinHeuristic{} }

// MaxMin returns the heuristic that selects the job with the largest best
// estimated completion time (gives priority to large jobs).
func MaxMin() Heuristic { return maxMinHeuristic{} }

// MaxGain returns the heuristic that selects the job with the largest
// absolute gain from moving to another cluster.
func MaxGain() Heuristic { return maxGainHeuristic{} }

// MaxRelGain returns the heuristic that selects the job with the largest
// gain divided by its processor count, preferring small tasks unless a large
// task has a very large gain.
func MaxRelGain() Heuristic { return maxRelGainHeuristic{} }

// Sufferage returns the heuristic that selects the job that would suffer the
// most from not being given its best cluster (largest difference between its
// two best estimated completion times).
func Sufferage() Heuristic { return sufferageHeuristic{} }

func (mctHeuristic) Name() string        { return "Mct" }
func (minMinHeuristic) Name() string     { return "MinMin" }
func (maxMinHeuristic) Name() string     { return "MaxMin" }
func (maxGainHeuristic) Name() string    { return "MaxGain" }
func (maxRelGainHeuristic) Name() string { return "MaxRelGain" }
func (sufferageHeuristic) Name() string  { return "Sufferage" }

// pickBest returns the index of the candidate with the highest score;
// ties are broken by earliest submission time, then smallest job ID, so that
// every heuristic is fully deterministic.
func pickBest(cands []Candidate, score func(i int) float64) int {
	best := 0
	bestScore := score(0)
	for i := 1; i < len(cands); i++ {
		s := score(i)
		switch {
		case s > bestScore:
			best, bestScore = i, s
		case s == bestScore:
			if submitsBefore(cands[i].Job, cands[best].Job) {
				best = i
			}
		}
	}
	return best
}

func submitsBefore(a, b workload.Job) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

func (mctHeuristic) Select(cands []Candidate, _ []Estimate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if submitsBefore(cands[i].Job, cands[best].Job) {
			best = i
		}
	}
	return best
}

func (minMinHeuristic) Select(cands []Candidate, ests []Estimate) int {
	return pickBest(cands, func(i int) float64 { return -float64(ests[i].BestECT) })
}

func (maxMinHeuristic) Select(cands []Candidate, ests []Estimate) int {
	return pickBest(cands, func(i int) float64 {
		if ests[i].BestECT == NoEstimate {
			// A job no cluster can estimate should not win "largest ECT".
			return -math.MaxFloat64
		}
		return float64(ests[i].BestECT)
	})
}

func (maxGainHeuristic) Select(cands []Candidate, ests []Estimate) int {
	return pickBest(cands, func(i int) float64 { return float64(ests[i].Gain(cands[i])) })
}

func (maxRelGainHeuristic) Select(cands []Candidate, ests []Estimate) int {
	return pickBest(cands, func(i int) float64 {
		procs := cands[i].Job.Procs
		if procs <= 0 {
			procs = 1
		}
		return float64(ests[i].Gain(cands[i])) / float64(procs)
	})
}

func (sufferageHeuristic) Select(cands []Candidate, ests []Estimate) int {
	return pickBest(cands, func(i int) float64 { return float64(ests[i].Sufferage()) })
}

// Heuristics returns the six heuristics in the order of the paper's tables:
// MCT, MinMin, MaxMin, MaxGain, MaxRelGain, Sufferage.
func Heuristics() []Heuristic {
	return []Heuristic{MCT(), MinMin(), MaxMin(), MaxGain(), MaxRelGain(), Sufferage()}
}

// HeuristicByName resolves a heuristic from its table name (case-sensitive).
func HeuristicByName(name string) (Heuristic, error) {
	for _, h := range Heuristics() {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("core: unknown heuristic %q", name)
}
