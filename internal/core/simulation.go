package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/sim"
	"gridrealloc/internal/workload"
)

// Config describes one simulation run: a platform, a local batch policy (the
// same on every cluster, as in the paper), a trace, an initial mapping
// policy and a reallocation configuration.
type Config struct {
	// Platform is the set of clusters. Required.
	Platform platform.Platform
	// Policy is the local batch scheduling policy used by every cluster.
	Policy batch.Policy
	// Trace is the workload to replay. Required and non-empty.
	Trace *workload.Trace
	// Mapping is the online policy the agent uses at submission time. Nil
	// defaults to MCT, the policy used throughout the paper.
	Mapping MappingPolicy
	// Realloc configures the reallocation mechanism. The zero value means no
	// reallocation (the baseline runs).
	Realloc ReallocConfig
	// OutagePolicy selects what happens to jobs caught running by an
	// unannounced capacity outage: batch.KillDisplaced (the default) or
	// batch.RequeueDisplaced. It is irrelevant on platforms without
	// capacity events.
	OutagePolicy batch.OutagePolicy
	// ClampOversized controls what happens to jobs wider than the largest
	// cluster: when true (the harness default) their processor request is
	// clamped to the largest cluster, otherwise the run fails.
	ClampOversized bool
	// VerifyInvariants runs every cluster's batch.CheckInvariants — core
	// over-subscription under the capacity ceiling, FCFS/seniority queue
	// ordering, and the incremental-vs-from-scratch profile cross-check —
	// after every reallocation pass, at every capacity-window boundary
	// (start and end), and at the end of the run. The checks are
	// behaviour-neutral (forcing the lazy plan early is bit-identical to the
	// deferred rebuild) but expensive, so only validation harnesses enable
	// them.
	VerifyInvariants bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if c.Trace == nil || len(c.Trace.Jobs) == 0 {
		return errors.New("core: configuration without a trace")
	}
	return nil
}

// JobRecord is the outcome of one job in a simulation run.
type JobRecord struct {
	// JobID identifies the job within the trace.
	JobID int
	// Submit is the grid-level submission time.
	Submit int64
	// Start is the time the job began executing, or -1 if it never started.
	Start int64
	// Completion is the time the job finished (or was killed), or -1 if it
	// never completed.
	Completion int64
	// Cluster is the cluster that finally executed the job.
	Cluster string
	// Procs is the job's processor request after any clamping.
	Procs int
	// Reallocations is the number of times the job was migrated between
	// clusters before starting.
	Reallocations int
	// Requeues is the number of times the job was pushed back from
	// execution to the waiting queue by a capacity outage.
	Requeues int
	// Killed reports whether the batch system killed the job, at its
	// walltime or in a capacity outage.
	Killed bool
}

// ResponseTime returns the time the job spent in the system from submission
// to completion, the user-centric quantity of the paper. It returns -1 for a
// job that never completed.
func (r JobRecord) ResponseTime() int64 {
	if r.Completion < 0 {
		return -1
	}
	return r.Completion - r.Submit
}

// WaitTime returns the time spent waiting before execution, or -1 for a job
// that never started.
func (r JobRecord) WaitTime() int64 {
	if r.Start < 0 {
		return -1
	}
	return r.Start - r.Submit
}

// Result is the outcome of a simulation run.
type Result struct {
	// Scenario echoes the trace name.
	Scenario string
	// PlatformName echoes the platform name.
	PlatformName string
	// Policy echoes the local batch policy.
	Policy batch.Policy
	// Algorithm and HeuristicName echo the reallocation configuration.
	Algorithm     Algorithm
	HeuristicName string
	// Jobs maps job ID to its record.
	Jobs map[int]*JobRecord
	// TotalReallocations is the number of migrations performed over the
	// whole run.
	TotalReallocations int64
	// ReallocationEvents is the number of periodic reallocation passes run.
	ReallocationEvents int64
	// OutageKills and OutageRequeues count running jobs displaced by
	// capacity outages (killed and requeued respectively); both stay zero on
	// platforms without capacity events.
	OutageKills    int64
	OutageRequeues int64
	// Makespan is the completion time of the last job.
	Makespan int64
	// ServerLoads reports the number of requests issued to each cluster's
	// batch system.
	ServerLoads []server.RequestLoad
	// EventsExecuted is the number of discrete events the engine processed.
	EventsExecuted uint64

	// digestLanes and digestFinal carry the incremental run digest: the
	// driver folds every job record into an order-independent accumulator
	// the instant the record becomes final, and finalizeDigest seals the
	// lanes together with the run-level totals when the run ends. Unexported
	// so a hand-built Result simply has no incremental digest (Digest
	// returns "").
	digestLanes [3]uint64
	digestFinal string
}

// Digest returns the run digest folded incrementally during the event loop:
// a hex SHA-256 over the run-level totals and the order-independent fold of
// every job record (see sim.DigestAcc). Two runs produce the same digest
// exactly when every job record and every run-level total agree, which is
// the identity the campaign oracles compare — without the sort-and-format
// post-pass over the records that harness.Digest pays. A Result not
// produced by Run returns "".
func (r *Result) Digest() string { return r.digestFinal }

// finalizeDigest seals the incremental record fold with the run-level
// totals. Run calls it last, after any quarantine perturbation, so the
// digest answers for exactly the Result handed back.
func (r *Result) finalizeDigest(acc *sim.DigestAcc) {
	l0, l1, n := acc.Lanes()
	r.digestLanes = [3]uint64{l0, l1, n}
	h := sha256.New()
	fmt.Fprintf(h, "run makespan=%d moves=%d events=%d kills=%d requeues=%d\n",
		r.Makespan, r.TotalReallocations, r.ReallocationEvents, r.OutageKills, r.OutageRequeues)
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:8], l0)
	binary.LittleEndian.PutUint64(buf[8:16], l1)
	binary.LittleEndian.PutUint64(buf[16:24], n)
	h.Write(buf[:])
	r.digestFinal = hex.EncodeToString(h.Sum(nil))
}

// VerifyDigest recomputes the incremental fold from the final records — the
// post-pass the event-loop fold exists to avoid — and reports whether both
// agree. It is the trust check for the incremental digest: a record folded
// before its final mutation, folded twice, or skipped shows up as a lane or
// count mismatch. The harness runs it once per campaign reference run.
func (r *Result) VerifyDigest() error {
	if r.digestFinal == "" {
		return errors.New("core: result carries no incremental digest")
	}
	var acc sim.DigestAcc
	// The fold commutes, so any iteration order would do; sorted records
	// keep the determinism analyzer's map-order rule satisfied without a
	// suppression — this is the cold trust path, run once per campaign
	// scenario, so the sort is free in practice.
	for _, rec := range r.SortedRecords() {
		acc.Add(recordFold(rec, sim.MixString(0, rec.Cluster)))
	}
	l0, l1, n := acc.Lanes()
	if want := [3]uint64{l0, l1, n}; want != r.digestLanes {
		return fmt.Errorf("core: incremental digest diverged from records: folded %d records to %x/%x, recomputed %d to %x/%x",
			r.digestLanes[2], r.digestLanes[0], r.digestLanes[1], n, l0, l1)
	}
	return nil
}

// recordFold hashes one finalized job record for the incremental digest.
// clusterHash must be sim.MixString(0, rec.Cluster); the driver passes the
// per-cluster hash it precomputed at reset so the hot fold never rescans
// the name.
func recordFold(rec *JobRecord, clusterHash uint64) uint64 {
	h := sim.Mix64(uint64(rec.JobID))
	h = sim.Mix64(h ^ uint64(rec.Submit))
	h = sim.Mix64(h ^ uint64(rec.Start))
	h = sim.Mix64(h ^ uint64(rec.Completion))
	h = sim.Mix64(h ^ clusterHash)
	h = sim.Mix64(h ^ uint64(rec.Procs))
	h = sim.Mix64(h ^ uint64(rec.Reallocations))
	h = sim.Mix64(h ^ uint64(rec.Requeues))
	if rec.Killed {
		h = sim.Mix64(h ^ 1)
	} else {
		h = sim.Mix64(h ^ 2)
	}
	return h
}

// SortedRecords returns the job records ordered by job ID.
func (r *Result) SortedRecords() []*JobRecord {
	out := make([]*JobRecord, 0, len(r.Jobs))
	//gridlint:unordered-ok records are collected then sorted by unique JobID
	for _, rec := range r.Jobs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// MeanResponseTime returns the average response time over completed jobs.
func (r *Result) MeanResponseTime() float64 {
	sum, n := 0.0, 0
	// Response times are integer-valued seconds well below 2^53, so the
	// float sum is exact in any accumulation order.
	//gridlint:unordered-ok exact-sum fold is order-insensitive
	for _, rec := range r.Jobs {
		if rt := rec.ResponseTime(); rt >= 0 {
			sum += float64(rt)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CompletedJobs returns the number of jobs that completed.
func (r *Result) CompletedJobs() int {
	n := 0
	//gridlint:unordered-ok counting is order-insensitive
	for _, rec := range r.Jobs {
		if rec.Completion >= 0 {
			n++
		}
	}
	return n
}

// Run executes one simulation and returns its result. It is shorthand for
// NewSimulator().Run(cfg); callers that run many scenarios back to back
// should keep one Simulator per worker instead, so every run after the first
// reuses the pooled schedulers, profiles and scratch state.
func Run(cfg Config) (*Result, error) {
	return NewSimulator().Run(cfg)
}

// Simulator is a reusable simulation context: the cluster servers (and their
// batch schedulers with all pooled buffers), the event engine, the
// meta-scheduling agent and the driver's scratch state survive from one Run
// to the next, so a campaign worker executes thousands of scenarios without
// reconstructing them each time. Every component is reset at the start of a
// run and a reset component is observationally identical to a fresh one, so
// Run on a reused Simulator is digest-identical to Run on a fresh one (the
// reuse-equivalence tests prove this over the 72-configuration grid and
// random harness scenarios). Only the Result escapes a run.
//
// A Simulator is not safe for concurrent use; create one per worker (the
// internal/runner worker pool does exactly that).
type Simulator struct {
	engine  *sim.Engine
	servers []*server.Server // every server ever built; runs use a prefix
	agent   *Agent
	d       driver

	// poisoned simulates a pooled context whose Reset contract is broken:
	// once set it is deliberately never cleared — not by Reset, not by a
	// new Run — and every later result is perturbed. Fault-injection
	// support only (see Poison); always false in production.
	poisoned bool
}

// NewSimulator returns an empty simulation context; pooled state accumulates
// across Run calls.
func NewSimulator() *Simulator { return &Simulator{} }

// Poison marks the pooled context as contaminated: every later Run on it
// completes but returns a deterministically perturbed result (its makespan
// is off by one), and nothing — including the per-run Reset of every
// component — clears the mark. It exists for the fault-injection harness,
// which uses it to prove the campaign runner's quarantine rule: a simulator
// suspected of corruption (a task panicked on it) must be discarded, never
// returned to a pool, because a broken Reset is exactly the fault no later
// run can detect from the inside. Production code never calls this.
func (sm *Simulator) Poison() { sm.poisoned = true }

// Run executes one simulation and returns its result, reusing the
// simulator's pooled state.
func (sm *Simulator) Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trace := cfg.Trace
	if cfg.ClampOversized {
		trace = trace.Clamp(cfg.Platform.MaxCores())
	} else if trace.MaxProcs() > cfg.Platform.MaxCores() {
		return nil, fmt.Errorf("core: trace %q contains a job wider (%d procs) than the largest cluster (%d cores)",
			trace.Name, trace.MaxProcs(), cfg.Platform.MaxCores())
	}

	// Reset the pooled servers onto this run's clusters, growing the pool on
	// first contact with a larger platform. A run uses the prefix
	// servers[:len(clusters)]; surplus servers from a previous, wider
	// platform stay banked for the next one that needs them.
	n := len(cfg.Platform.Clusters)
	for i, spec := range cfg.Platform.Clusters {
		if i < len(sm.servers) {
			if err := sm.servers[i].Reset(spec, cfg.Policy); err != nil {
				return nil, err
			}
		} else {
			srv, err := server.New(spec, cfg.Policy)
			if err != nil {
				return nil, err
			}
			sm.servers = append(sm.servers, srv)
		}
		sm.servers[i].Scheduler().SetOutagePolicy(cfg.OutagePolicy)
	}
	servers := sm.servers[:n:n]

	if sm.agent == nil {
		agent, err := NewAgent(servers, cfg.Mapping, cfg.Realloc)
		if err != nil {
			return nil, err
		}
		sm.agent = agent
	} else if err := sm.agent.reset(servers, cfg.Mapping, cfg.Realloc); err != nil {
		return nil, err
	}
	agent := sm.agent
	if sm.engine == nil {
		sm.engine = sim.NewEngine()
	} else {
		sm.engine.Reset()
	}

	result := &Result{
		Scenario:      trace.Name,
		PlatformName:  cfg.Platform.Name,
		Policy:        cfg.Policy,
		Algorithm:     cfg.Realloc.Algorithm,
		HeuristicName: agent.Realloc().Heuristic.Name(),
		Jobs:          make(map[int]*JobRecord, len(trace.Jobs)),
	}

	d := &sm.d
	d.reset(sm.engine, agent, servers, result, len(trace.Jobs), cfg.VerifyInvariants)

	// One block allocation for every record; the map holds pointers into it.
	records := make([]JobRecord, len(trace.Jobs))
	for i, job := range trace.Jobs {
		records[i] = JobRecord{
			JobID:  job.ID,
			Submit: job.Submit,
			Start:  -1, Completion: -1,
			Procs: job.Procs,
		}
		result.Jobs[job.ID] = &records[i]
	}
	// Schedule the submissions. Traces are sorted by (Submit, ID), so one
	// persistent event walks the trace: when it fires it reschedules itself
	// to the next job's submit time before handling the current one, keeping
	// the engine's queue small and the whole chain allocation-free no matter
	// how long the trace is. A hand-built unsorted trace falls back to
	// scheduling every submission upfront.
	sorted := true
	for i := 1; i < len(trace.Jobs); i++ {
		if trace.Jobs[i].Submit < trace.Jobs[i-1].Submit {
			sorted = false
			break
		}
	}
	if sorted {
		jobs := trace.Jobs
		next := 0
		var submitEv *sim.Event
		submitEv = d.engine.MustSchedule(sim.Time(jobs[0].Submit), sim.PrioritySubmission, "submit", func(now sim.Time) {
			job := jobs[next]
			next++
			if next < len(jobs) {
				// Rescheduling before handling preserves the engine-sequence
				// order the schedule-ahead pattern produced.
				if err := d.engine.Reschedule(submitEv, sim.Time(jobs[next].Submit)); err != nil {
					d.errs = append(d.errs, err)
				}
			}
			d.handleSubmission(job, int64(now))
		})
	} else {
		for _, job := range trace.Jobs {
			job := job
			d.engine.MustSchedule(sim.Time(job.Submit), sim.PrioritySubmission, fmt.Sprintf("submit-%d", job.ID), func(now sim.Time) {
				d.handleSubmission(job, int64(now))
			})
		}
	}

	// Schedule one wake per capacity event so clusters observe outages the
	// instant they strike (and maintenance boundaries the instant planning
	// could improve) instead of at the next job event. The per-cluster wake
	// refresh covers these instants too through NextEventTime, but an
	// explicit event also wakes an otherwise idle platform.
	for _, spec := range cfg.Platform.Clusters {
		for _, ev := range spec.Capacity {
			d.engine.MustSchedule(sim.Time(ev.Start), sim.PriorityFinish, "capacity-"+spec.Name, func(t sim.Time) {
				d.handleWake(int64(t))
				// A capacity boundary is where displacement, requeue seniority
				// and the reserved-cores bookkeeping can go wrong; verify
				// right after the reveal is processed.
				d.verifyInvariants()
			})
			if cfg.VerifyInvariants {
				// Capacity restoration (profile re-expansion, release of the
				// reserved outage cores) is just as fallible as the reveal;
				// check it too. The extra wake only exists on verified runs —
				// the wake handler is idempotent and observation timing never
				// changes outcomes, which the harness proves empirically by
				// comparing verified against unverified digests.
				d.engine.MustSchedule(sim.Time(ev.End), sim.PriorityFinish, "capacity-end-"+spec.Name, func(t sim.Time) {
					d.handleWake(int64(t))
					d.verifyInvariants()
				})
			}
		}
	}

	// Schedule the periodic reallocation, starting one hour (one period)
	// after the first submission, as in the paper's experiments. One
	// persistent event is rescheduled from pass to pass (tie-break-identical
	// to scheduling a fresh event each time), so a month of hourly passes
	// enqueues one event and one handler closure instead of hundreds.
	if cfg.Realloc.Algorithm != NoReallocation {
		first := trace.Jobs[0].Submit
		period := agent.Realloc().Period
		d.reallocEv = d.engine.MustSchedule(sim.Time(first+period), sim.PriorityRealloc, "realloc", d.handleReallocation)
	}

	if err := d.engine.RunAll(); err != nil {
		return nil, fmt.Errorf("core: simulation of %q failed: %w", trace.Name, err)
	}
	// Defensive drain: if any cluster still has work (should not happen,
	// wake events cover the tail), advance it to the end.
	if err := d.drain(); err != nil {
		return nil, err
	}
	if cfg.VerifyInvariants {
		for _, srv := range servers {
			if err := srv.Scheduler().CheckInvariants(); err != nil {
				return nil, fmt.Errorf("core: invariant violation on %s at end of %q: %w", srv.Name(), trace.Name, err)
			}
		}
	}

	result.ServerLoads = make([]server.RequestLoad, 0, len(servers))
	for _, srv := range servers {
		result.ServerLoads = append(result.ServerLoads, srv.Load())
	}
	result.TotalReallocations = agent.TotalReallocations()
	result.ReallocationEvents = agent.ReallocationEvents()
	result.EventsExecuted = d.engine.Steps()
	if sm.poisoned {
		// The simulated contamination: a digest-visible perturbation that
		// only the runner's quarantine (discard the simulator, never reuse
		// it) can keep out of later tasks' results.
		result.Makespan++
	}
	// Seal the incremental digest last, after the quarantine perturbation,
	// so it answers for exactly the Result handed back.
	result.finalizeDigest(&d.digest)
	return result, nil
}

// driver glues the event engine, the agent and the cluster servers together
// and records per-job outcomes. It lives inside a Simulator and is reset
// (keeping its slices) between runs.
//
//gridlint:resettable
type driver struct {
	engine  *sim.Engine
	agent   *Agent
	servers []*server.Server
	result  *Result
	// wakes holds one persistent wake-up event per cluster, rescheduled in
	// place as the cluster's next internal event moves; wakePending tracks
	// whether the event is currently queued (it is cleared when the event
	// fires or is cancelled), so the hot refresh path allocates nothing.
	wakes       []*sim.Event
	wakePending []bool
	wakeNames   []string
	// reallocEv is the single periodic reallocation event, rescheduled from
	// pass to pass.
	reallocEv *sim.Event
	// digest accumulates the incremental run digest; record folds each job
	// record in at the instant it becomes final. clusterHash carries the
	// per-cluster name hashes (index-aligned with servers), precomputed at
	// reset so the hot fold never rescans a name.
	digest      sim.DigestAcc
	clusterHash []uint64
	// waitingScratch is reused by updateReallocationCounts after every
	// reallocation pass.
	waitingScratch []batch.WaitingJob //gridlint:keep-across-reset capacity only, truncated before use
	total          int
	completed      int
	// verify runs the per-cluster invariant checks at reallocation passes
	// and capacity events (Config.VerifyInvariants).
	verify bool
	errs   []error
}

// reset prepares the driver for one run, reusing its per-cluster slices.
func (d *driver) reset(engine *sim.Engine, agent *Agent, servers []*server.Server, result *Result, total int, verify bool) {
	d.engine = engine
	d.agent = agent
	d.servers = servers
	d.result = result
	n := len(servers)
	if cap(d.wakes) < n {
		d.wakes = make([]*sim.Event, n)
		d.wakePending = make([]bool, n)
		d.wakeNames = make([]string, n)
		d.clusterHash = make([]uint64, n)
	}
	d.wakes = d.wakes[:n]
	d.wakePending = d.wakePending[:n]
	d.wakeNames = d.wakeNames[:n]
	d.clusterHash = d.clusterHash[:n]
	for i, srv := range servers {
		// The wake events of the previous run died with the engine reset;
		// fresh closures are built lazily by refreshWakes.
		d.wakes[i] = nil
		d.wakePending[i] = false
		d.wakeNames[i] = "wake-" + srv.Name()
		d.clusterHash[i] = sim.MixString(0, srv.Name())
	}
	d.reallocEv = nil
	d.digest.Reset()
	d.total = total
	d.completed = 0
	d.verify = verify
	d.errs = d.errs[:0]
}

// verifyInvariants checks every cluster's scheduler invariants when the run
// was configured to verify them; violations are collected like any other
// driver error and surfaced by drain.
func (d *driver) verifyInvariants() {
	if !d.verify {
		return
	}
	for _, srv := range d.servers {
		if err := srv.Scheduler().CheckInvariants(); err != nil {
			d.errs = append(d.errs, fmt.Errorf("core: invariant violation on %s: %w", srv.Name(), err))
		}
	}
}

// advanceAll brings every cluster to the current time and records the
// notifications they emit.
func (d *driver) advanceAll(now int64) {
	for i, srv := range d.servers {
		notes, err := srv.Scheduler().Advance(now)
		if err != nil {
			d.errs = append(d.errs, err)
			continue
		}
		d.record(srv.Name(), d.clusterHash[i], notes)
	}
}

// record applies cluster notifications to the per-job records. clusterHash
// must be sim.MixString(0, cluster); a Finished notification makes the
// record final, so that is where it is folded into the incremental digest.
func (d *driver) record(cluster string, clusterHash uint64, notes []batch.Notification) {
	for _, n := range notes {
		rec, ok := d.result.Jobs[n.JobID]
		if !ok {
			d.errs = append(d.errs, fmt.Errorf("core: notification for unknown job %d", n.JobID))
			continue
		}
		switch n.Kind {
		case batch.Started:
			rec.Start = n.Time
			rec.Cluster = cluster
		case batch.Finished:
			rec.Completion = n.Time
			rec.Killed = n.Killed
			rec.Cluster = cluster
			if n.Time > d.result.Makespan {
				d.result.Makespan = n.Time
			}
			d.completed++
			d.agent.Forget(n.JobID)
			if n.Displaced {
				d.result.OutageKills++
			}
			// Finished is terminal: nothing mutates the record afterwards
			// (reallocation counting only touches waiting jobs), so fold it
			// into the digest now.
			d.digest.Add(recordFold(rec, clusterHash))
		case batch.Requeued:
			// The job lost its execution to an outage and is waiting again;
			// its eventual restart will overwrite Start.
			rec.Start = -1
			rec.Requeues++
			d.result.OutageRequeues++
		}
	}
}

// refreshWakes re-schedules the per-cluster wake-up events according to each
// cluster's next internal event. A wake that is already pending at the right
// instant is kept rather than moved: the handler is idempotent (it advances
// every cluster to the current time), so only the fire time matters. Each
// cluster owns one persistent event that is rescheduled in place —
// semantically identical to cancel-and-reinsert (the engine hands it a fresh
// tie-breaking sequence number) but without allocating an event and handler
// closure per refresh or flooding the engine's queue with tombstones.
func (d *driver) refreshWakes(now int64) {
	for i, srv := range d.servers {
		next, ok := srv.Scheduler().NextEventTime()
		if !ok {
			if d.wakePending[i] {
				d.wakes[i].Cancel()
				d.wakePending[i] = false
			}
			continue
		}
		if next < now {
			next = now
		}
		if d.wakePending[i] && d.wakes[i].Time == sim.Time(next) {
			continue
		}
		if d.wakes[i] == nil {
			i := i
			d.wakes[i] = d.engine.MustSchedule(sim.Time(next), sim.PriorityFinish, d.wakeNames[i], func(t sim.Time) {
				// A fired event must not be mistaken for a pending one by the
				// keep-if-same-time test above.
				d.wakePending[i] = false
				d.handleWake(int64(t))
			})
		} else if err := d.engine.Reschedule(d.wakes[i], sim.Time(next)); err != nil {
			d.errs = append(d.errs, err)
			continue
		}
		d.wakePending[i] = true
	}
}

func (d *driver) handleWake(now int64) {
	d.advanceAll(now)
	d.refreshWakes(now)
}

func (d *driver) handleSubmission(job workload.Job, now int64) {
	d.advanceAll(now)
	rec := d.result.Jobs[job.ID]
	cluster, err := d.agent.SubmitJob(job, now)
	if err != nil {
		d.errs = append(d.errs, fmt.Errorf("core: job %d could not be mapped: %w", job.ID, err))
		// The job is dropped; its record keeps Start/Completion at -1 and
		// Cluster empty — final from this moment, so fold it.
		d.completed++
		d.digest.Add(recordFold(rec, sim.MixString(0, "")))
		d.refreshWakes(now)
		return
	}
	rec.Cluster = cluster
	d.refreshWakes(now)
}

func (d *driver) handleReallocation(now sim.Time) {
	t := int64(now)
	d.advanceAll(t)
	if _, err := d.agent.Reallocate(t); err != nil {
		d.errs = append(d.errs, err)
	}
	d.updateReallocationCounts()
	d.verifyInvariants()
	d.refreshWakes(t)
	// Keep reallocating while jobs remain in the system, by rescheduling the
	// one persistent reallocation event (identical in tie-breaking to
	// scheduling a fresh event, without the per-pass allocations).
	if d.completed < d.total {
		if err := d.engine.Reschedule(d.reallocEv, now+sim.Time(d.agent.Realloc().Period)); err != nil {
			d.errs = append(d.errs, err)
		}
	}
}

// updateReallocationCounts copies the per-job migration counters from the
// waiting queues into the job records, so the final records reflect how many
// times each job moved before starting.
func (d *driver) updateReallocationCounts() {
	for _, srv := range d.servers {
		if srv.Scheduler().WaitingCount() == 0 {
			// Nothing to copy; skipping the listing also leaves the cluster's
			// deferred re-plan deferred (the flush is behaviour-neutral).
			continue
		}
		d.waitingScratch = srv.Scheduler().AppendWaitingJobs(d.waitingScratch[:0])
		for _, w := range d.waitingScratch {
			if rec, ok := d.result.Jobs[w.Job.ID]; ok {
				rec.Reallocations = w.Reallocations
				rec.Cluster = w.ClusterName
			}
		}
	}
}

// drain advances the clusters past the last queued event, guarding against a
// missed wake-up. It is a no-op in normal runs.
func (d *driver) drain() error {
	for iter := 0; ; iter++ {
		if iter > 1<<22 {
			return errors.New("core: drain did not converge; a job can never start")
		}
		next := int64(-1)
		for _, srv := range d.servers {
			if t, ok := srv.Scheduler().NextEventTime(); ok && (next == -1 || t < next) {
				next = t
			}
		}
		if next == -1 {
			break
		}
		d.advanceAll(next)
	}
	if len(d.errs) > 0 {
		return fmt.Errorf("core: %d error(s) during simulation, first: %w", len(d.errs), d.errs[0])
	}
	return nil
}
