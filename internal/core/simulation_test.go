package core

import (
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// smallPlatform is a two-cluster platform small enough that the hand-built
// traces below create real queues.
func smallPlatform(het platform.Heterogeneity) platform.Platform {
	speed := 1.0
	if het == platform.Heterogeneous {
		speed = 1.5
	}
	return platform.Platform{
		Name: "small-" + het.String(),
		Clusters: []platform.ClusterSpec{
			{Name: "alpha", Cores: 8, Speed: 1.0},
			{Name: "beta", Cores: 8, Speed: speed},
		},
	}
}

// burstTrace builds a trace with a saturating burst at t=0 followed by a
// second wave, designed so that walltime over-estimation leaves holes that
// the reallocation mechanism can exploit.
func burstTrace(t *testing.T, jobs int) *workload.Trace {
	t.Helper()
	var list []workload.Job
	for i := 0; i < jobs; i++ {
		runtime := int64(200 + 50*(i%7))
		walltime := runtime * 4 // strong over-estimation
		procs := 2 + (i%3)*2    // 2, 4 or 6 procs
		submit := int64(i * 15) // a burst: one job every 15 seconds
		list = append(list, workload.Job{
			ID: i + 1, Submit: submit, Runtime: runtime, Walltime: walltime, Procs: procs,
		})
	}
	tr, err := workload.NewTrace("burst", list)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runSim(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Platform: smallPlatform(platform.Homogeneous)}); err == nil {
		t.Fatal("config without a trace accepted")
	}
	tooWide, _ := workload.NewTrace("wide", []workload.Job{{ID: 1, Submit: 0, Runtime: 10, Walltime: 20, Procs: 512}})
	if _, err := Run(Config{Platform: smallPlatform(platform.Homogeneous), Trace: tooWide}); err == nil {
		t.Fatal("oversized job accepted without ClampOversized")
	}
	res, err := Run(Config{Platform: smallPlatform(platform.Homogeneous), Trace: tooWide, ClampOversized: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Procs != 8 {
		t.Fatalf("oversized job clamped to %d procs, want 8", res.Jobs[1].Procs)
	}
}

func TestBaselineRunCompletesEveryJob(t *testing.T) {
	trace := burstTrace(t, 60)
	for _, policy := range []batch.Policy{batch.FCFS, batch.CBF} {
		res := runSim(t, Config{
			Platform: smallPlatform(platform.Homogeneous),
			Policy:   policy,
			Trace:    trace,
		})
		if res.CompletedJobs() != trace.Len() {
			t.Fatalf("[%v] completed %d of %d jobs", policy, res.CompletedJobs(), trace.Len())
		}
		if res.TotalReallocations != 0 || res.ReallocationEvents != 0 {
			t.Fatalf("[%v] baseline performed reallocations", policy)
		}
		for id, rec := range res.Jobs {
			if rec.Start < rec.Submit {
				t.Fatalf("[%v] job %d started at %d before its submission %d", policy, id, rec.Start, rec.Submit)
			}
			if rec.Completion < rec.Start {
				t.Fatalf("[%v] job %d completed before starting", policy, id)
			}
			if rec.Cluster != "alpha" && rec.Cluster != "beta" {
				t.Fatalf("[%v] job %d ran on unknown cluster %q", policy, id, rec.Cluster)
			}
		}
		if res.Makespan <= 0 {
			t.Fatalf("[%v] makespan = %d", policy, res.Makespan)
		}
		if res.MeanResponseTime() <= 0 {
			t.Fatalf("[%v] mean response time = %v", policy, res.MeanResponseTime())
		}
	}
}

func TestCBFNeverSlowerThanFCFSOnMeanResponse(t *testing.T) {
	// Backfilling can only improve (or equal) the schedule produced by plain
	// FCFS under the conservative rules with identical queues; check the
	// aggregate on the burst trace.
	trace := burstTrace(t, 80)
	fcfs := runSim(t, Config{Platform: smallPlatform(platform.Homogeneous), Policy: batch.FCFS, Trace: trace})
	cbf := runSim(t, Config{Platform: smallPlatform(platform.Homogeneous), Policy: batch.CBF, Trace: trace})
	if cbf.MeanResponseTime() > fcfs.MeanResponseTime()*1.05 {
		t.Fatalf("CBF mean response %.1f much worse than FCFS %.1f", cbf.MeanResponseTime(), fcfs.MeanResponseTime())
	}
}

func TestHeterogeneousFasterClustersShortenJobs(t *testing.T) {
	trace := burstTrace(t, 40)
	homo := runSim(t, Config{Platform: smallPlatform(platform.Homogeneous), Policy: batch.CBF, Trace: trace})
	hetero := runSim(t, Config{Platform: smallPlatform(platform.Heterogeneous), Policy: batch.CBF, Trace: trace})
	if hetero.MeanResponseTime() >= homo.MeanResponseTime() {
		t.Fatalf("heterogeneous platform (one cluster 50%% faster) not faster: %v vs %v",
			hetero.MeanResponseTime(), homo.MeanResponseTime())
	}
}

func TestDeterminism(t *testing.T) {
	trace := burstTrace(t, 50)
	cfg := Config{
		Platform: smallPlatform(platform.Heterogeneous),
		Policy:   batch.CBF,
		Trace:    trace,
		Realloc:  ReallocConfig{Algorithm: WithCancellation, Heuristic: MinMin(), Period: 600},
	}
	a := runSim(t, cfg)
	b := runSim(t, cfg)
	if a.TotalReallocations != b.TotalReallocations || a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %d/%d reallocations, %d/%d makespan",
			a.TotalReallocations, b.TotalReallocations, a.Makespan, b.Makespan)
	}
	for id, ra := range a.Jobs {
		rb := b.Jobs[id]
		if ra.Start != rb.Start || ra.Completion != rb.Completion || ra.Cluster != rb.Cluster {
			t.Fatalf("job %d differs between identical runs: %+v vs %+v", id, ra, rb)
		}
	}
}

func TestReallocationRunKeepsJobSetIntact(t *testing.T) {
	trace := burstTrace(t, 70)
	for _, alg := range []Algorithm{WithoutCancellation, WithCancellation} {
		for _, h := range Heuristics() {
			res := runSim(t, Config{
				Platform: smallPlatform(platform.Heterogeneous),
				Policy:   batch.FCFS,
				Trace:    trace,
				Realloc:  ReallocConfig{Algorithm: alg, Heuristic: h, Period: 900},
			})
			if res.CompletedJobs() != trace.Len() {
				t.Fatalf("%v/%s lost jobs: %d of %d completed", alg, h.Name(), res.CompletedJobs(), trace.Len())
			}
			if res.HeuristicName != h.Name() {
				t.Fatalf("heuristic name %q, want %q", res.HeuristicName, h.Name())
			}
			for id, rec := range res.Jobs {
				if rec.Completion < rec.Start || rec.Start < rec.Submit {
					t.Fatalf("%v/%s job %d has inconsistent times %+v", alg, h.Name(), id, rec)
				}
			}
		}
	}
}

func TestReallocationImprovesLoadedScenario(t *testing.T) {
	// An asymmetric platform (one big, one small cluster) with a burst trace:
	// MCT mapping at submission time overloads whichever cluster looked best
	// then, and early finishes create gaps. Reallocation must not make the
	// overall picture dramatically worse, and with cancellation it should
	// help the mean response time in this loaded scenario.
	plat := platform.Platform{
		Name: "asym",
		Clusters: []platform.ClusterSpec{
			{Name: "big", Cores: 16, Speed: 1.0},
			{Name: "small", Cores: 4, Speed: 1.0},
		},
	}
	trace := burstTrace(t, 120)
	baseline := runSim(t, Config{Platform: plat, Policy: batch.FCFS, Trace: trace})
	with := runSim(t, Config{
		Platform: plat, Policy: batch.FCFS, Trace: trace,
		Realloc: ReallocConfig{Algorithm: WithCancellation, Heuristic: MinMin(), Period: 600},
	})
	if with.TotalReallocations == 0 {
		t.Fatal("no reallocation happened in a loaded asymmetric scenario")
	}
	if with.MeanResponseTime() > baseline.MeanResponseTime()*1.10 {
		t.Fatalf("reallocation with cancellation degraded mean response time: %.1f -> %.1f",
			baseline.MeanResponseTime(), with.MeanResponseTime())
	}
}

func TestReallocationEventsFollowPeriod(t *testing.T) {
	trace := burstTrace(t, 30)
	res := runSim(t, Config{
		Platform: smallPlatform(platform.Homogeneous),
		Policy:   batch.CBF,
		Trace:    trace,
		Realloc:  ReallocConfig{Algorithm: WithoutCancellation, Heuristic: MCT(), Period: 300},
	})
	// The simulation spans at least the makespan; one reallocation pass per
	// 300 s is expected until the last job completes.
	if res.ReallocationEvents == 0 {
		t.Fatal("no reallocation events despite a configured period")
	}
	maxEvents := res.Makespan/300 + 2
	if res.ReallocationEvents > maxEvents {
		t.Fatalf("%d reallocation events for makespan %d and period 300", res.ReallocationEvents, res.Makespan)
	}
}

func TestServerLoadsReported(t *testing.T) {
	trace := burstTrace(t, 40)
	res := runSim(t, Config{
		Platform: smallPlatform(platform.Homogeneous),
		Policy:   batch.FCFS,
		Trace:    trace,
		Realloc:  ReallocConfig{Algorithm: WithCancellation, Heuristic: MCT(), Period: 600},
	})
	if len(res.ServerLoads) != 2 {
		t.Fatalf("%d server loads, want 2", len(res.ServerLoads))
	}
	totalSubmissions := int64(0)
	for _, l := range res.ServerLoads {
		totalSubmissions += l.Submissions
	}
	// Every job is submitted at least once; cancellations resubmit.
	if totalSubmissions < int64(trace.Len()) {
		t.Fatalf("total submissions %d below job count %d", totalSubmissions, trace.Len())
	}
	if res.EventsExecuted == 0 {
		t.Fatal("no events executed")
	}
}

func TestWalltimeKillRecorded(t *testing.T) {
	trace, _ := workload.NewTrace("bad", []workload.Job{
		{ID: 1, Submit: 0, Runtime: 1000, Walltime: 300, Procs: 2},
		{ID: 2, Submit: 0, Runtime: 100, Walltime: 300, Procs: 2},
	})
	res := runSim(t, Config{Platform: smallPlatform(platform.Homogeneous), Policy: batch.FCFS, Trace: trace})
	if !res.Jobs[1].Killed {
		t.Fatal("bad job not flagged as killed")
	}
	if res.Jobs[2].Killed {
		t.Fatal("good job flagged as killed")
	}
	if got := res.Jobs[1].Completion - res.Jobs[1].Start; got != 300 {
		t.Fatalf("killed job ran %d seconds, want its walltime 300", got)
	}
}

func TestSortedRecordsAndResponseHelpers(t *testing.T) {
	trace := burstTrace(t, 10)
	res := runSim(t, Config{Platform: smallPlatform(platform.Homogeneous), Policy: batch.CBF, Trace: trace})
	recs := res.SortedRecords()
	if len(recs) != 10 {
		t.Fatalf("%d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].JobID >= recs[i].JobID {
			t.Fatal("records not sorted by job ID")
		}
	}
	r := JobRecord{Submit: 100, Start: 150, Completion: 400}
	if r.ResponseTime() != 300 || r.WaitTime() != 50 {
		t.Fatalf("helpers: response=%d wait=%d", r.ResponseTime(), r.WaitTime())
	}
	unfinished := JobRecord{Submit: 100, Start: -1, Completion: -1}
	if unfinished.ResponseTime() != -1 || unfinished.WaitTime() != -1 {
		t.Fatal("unfinished job helpers should return -1")
	}
}

func TestGeneratedScenarioSmallFractionRuns(t *testing.T) {
	// Integration: a small slice of the April scenario through the full
	// generated-workload path, with reallocation.
	trace, err := workload.Scenario("apr", 0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, Config{
		Platform:       platform.Grid5000(platform.Heterogeneous),
		Policy:         batch.CBF,
		Trace:          trace,
		Realloc:        ReallocConfig{Algorithm: WithoutCancellation, Heuristic: Sufferage()},
		ClampOversized: true,
	})
	if res.CompletedJobs() != trace.Len() {
		t.Fatalf("completed %d of %d jobs", res.CompletedJobs(), trace.Len())
	}
}
