package core

// Tests for the parallel reallocation sweep: the per-cluster fan-out must be
// free of data races even while capacity outages displace and requeue
// running jobs mid-simulation, and it must produce results bit-identical to
// the sequential sweep (the fan-out is a wall-clock optimisation, never a
// behavioural one).

import (
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
)

// forceParallelSweep fans every sweep out over the given worker count for
// the duration of the test, regardless of sweep size, and restores the
// defaults afterwards.
func forceParallelSweep(t *testing.T, workers int) {
	t.Helper()
	SetSweepParallelism(workers)
	SetSweepParallelThreshold(1)
	t.Cleanup(func() {
		SetSweepParallelism(0)
		SetSweepParallelThreshold(0)
	})
}

// outagePlatform is the small two-cluster platform with an unannounced
// outage on each cluster, timed to strike while the burst trace keeps both
// queues deep (so reallocation sweeps, outage reveals and displacements
// interleave).
func outagePlatform() platform.Platform {
	p := smallPlatform(platform.Heterogeneous)
	p.Clusters[0].Capacity = []platform.CapacityEvent{
		{Start: 400, End: 900, Cores: 2, Kind: platform.Outage},
	}
	p.Clusters[1].Capacity = []platform.CapacityEvent{
		{Start: 600, End: 1100, Cores: 0, Kind: platform.Outage},
	}
	return p
}

// TestParallelSweepUnderOutageReveals runs a full simulation with the
// fan-out forced on while outages displace running jobs. Under -race (the
// CI short-test job) this validates that the per-cluster workers never
// touch shared state: every scheduler is owned by exactly one worker per
// sweep stage and every result lands in a per-cluster slot.
func TestParallelSweepUnderOutageReveals(t *testing.T) {
	forceParallelSweep(t, 8)
	trace := burstTrace(t, 80)
	for _, policy := range []batch.OutagePolicy{batch.KillDisplaced, batch.RequeueDisplaced} {
		res := runSim(t, Config{
			Platform:     outagePlatform(),
			Policy:       batch.CBF,
			Trace:        trace,
			Realloc:      ReallocConfig{Algorithm: WithCancellation, Heuristic: MinMin(), Period: 120},
			OutagePolicy: policy,
		})
		if res.CompletedJobs() == 0 {
			t.Fatalf("policy %v: no job completed", policy)
		}
		if policy == batch.RequeueDisplaced && res.OutageRequeues == 0 {
			t.Fatal("outages displaced nothing; the race test is not exercising reveals")
		}
	}
}

// TestParallelSweepMatchesSequential replays the same outage-heavy
// reallocation run with the fan-out forced off and on and compares every
// per-job outcome. The 72-configuration digest A/B at the repository root
// covers the full grid; this in-package variant gives the fast signal.
func TestParallelSweepMatchesSequential(t *testing.T) {
	trace := burstTrace(t, 80)
	run := func() *Result {
		return runSim(t, Config{
			Platform:     outagePlatform(),
			Policy:       batch.CBF,
			Trace:        trace,
			Realloc:      ReallocConfig{Algorithm: WithCancellation, Heuristic: MinMin(), Period: 120},
			OutagePolicy: batch.RequeueDisplaced,
		})
	}
	SetSweepParallelism(1)
	seq := run()
	forceParallelSweep(t, 8)
	par := run()
	if seq.Makespan != par.Makespan || seq.TotalReallocations != par.TotalReallocations {
		t.Fatalf("run-level divergence: sequential makespan=%d moves=%d, parallel makespan=%d moves=%d",
			seq.Makespan, seq.TotalReallocations, par.Makespan, par.TotalReallocations)
	}
	for id, s := range seq.Jobs {
		p := par.Jobs[id]
		if p == nil {
			t.Fatalf("job %d missing from parallel run", id)
		}
		if *s != *p {
			t.Fatalf("job %d diverged:\nsequential %+v\nparallel   %+v", id, *s, *p)
		}
	}
}
