package core

// Tests for the cancel/start race handling: when a reallocation sweep picks
// a job that started between the queue snapshot and the cancellation
// attempt, the agent must skip that one candidate and keep sweeping instead
// of aborting the whole pass.

import (
	"errors"
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// raceHeuristic wraps an inner heuristic and fires a callback with the
// picked candidate before returning it, giving the test a window to mutate
// the platform mid-sweep exactly like a concurrent job start would.
type raceHeuristic struct {
	inner Heuristic
	fire  func(pick Candidate)
}

func (h raceHeuristic) Name() string { return h.inner.Name() }
func (h raceHeuristic) Select(cands []Candidate, ests []Estimate) int {
	pick := h.inner.Select(cands, ests)
	if h.fire != nil {
		h.fire(cands[pick])
	}
	return pick
}

// raceServers builds a busy origin whose blocker finishes early (so the
// waiting candidate is pulled forward and started the moment time advances)
// and an idle destination that offers a much better estimate.
func raceServers(t *testing.T) (origin, idle *server.Server) {
	t.Helper()
	var err error
	origin, err = server.New(platform.ClusterSpec{Name: "busy", Cores: 1, Speed: 1}, batch.CBF)
	if err != nil {
		t.Fatal(err)
	}
	idle, err = server.New(platform.ClusterSpec{Name: "idle", Cores: 1, Speed: 1}, batch.CBF)
	if err != nil {
		t.Fatal(err)
	}
	// The blocker reserves until t=1000 but actually finishes at t=30.
	if err := origin.Submit(workload.Job{ID: 1, Submit: 0, Runtime: 30, Walltime: 1000, Procs: 1}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := origin.Scheduler().Advance(0); err != nil {
		t.Fatal(err)
	}
	// The candidate is planned at t=1000 behind the blocker's reservation.
	if err := origin.Submit(workload.Job{ID: 2, Submit: 0, Runtime: 100, Walltime: 100, Procs: 1}, 0, 0); err != nil {
		t.Fatal(err)
	}
	return origin, idle
}

func TestReallocationSkipsCancelStartRace(t *testing.T) {
	origin, idle := raceServers(t)
	servers := []*server.Server{origin, idle}
	agent, err := NewAgent(servers, MCTMapping(), ReallocConfig{
		Algorithm: WithoutCancellation,
		Heuristic: raceHeuristic{
			inner: MCT(),
			fire: func(pick Candidate) {
				// Simulate the race: the blocker's early finish is observed
				// and the candidate starts, after the sweep snapshotted the
				// queue but before the agent cancels.
				if pick.Job.ID == 2 {
					if _, err := origin.Scheduler().Advance(50); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		MinGain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	moves, err := agent.Reallocate(50)
	if err != nil {
		t.Fatalf("sweep aborted on a cancel/start race: %v", err)
	}
	if moves != 0 {
		t.Fatalf("raced job counted as moved: %d moves", moves)
	}
	if agent.SkippedRaces() != 1 {
		t.Fatalf("SkippedRaces = %d, want 1", agent.SkippedRaces())
	}
	// The job kept running on its origin cluster, untouched.
	if origin.Scheduler().RunningCount() != 1 {
		t.Fatalf("raced job not running on origin: %d running", origin.Scheduler().RunningCount())
	}
	if idle.Scheduler().WaitingCount() != 0 || idle.Scheduler().RunningCount() != 0 {
		t.Fatal("raced job leaked onto the destination cluster")
	}
}

// TestMoveJobReportsRunningRace checks the sentinel plumbing the sweep
// relies on: moveJob surfaces batch.ErrJobRunning through its wrapping so
// callers can distinguish the race from a fatal error. Algorithm 2's
// cancel-all loop uses the same errors.Is test.
func TestMoveJobReportsRunningRace(t *testing.T) {
	origin, idle := raceServers(t)
	agent, err := NewAgent([]*server.Server{origin, idle}, MCTMapping(), ReallocConfig{Algorithm: WithCancellation})
	if err != nil {
		t.Fatal(err)
	}
	// Start the candidate, then try to move it.
	if _, err := origin.Scheduler().Advance(50); err != nil {
		t.Fatal(err)
	}
	moveErr := agent.moveJob(Candidate{Job: workload.Job{ID: 2, Submit: 0, Runtime: 100, Walltime: 100, Procs: 1}}, 0, 1, 50)
	if !errors.Is(moveErr, batch.ErrJobRunning) {
		t.Fatalf("moveJob err = %v, want batch.ErrJobRunning", moveErr)
	}
}
