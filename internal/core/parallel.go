package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The reallocation sweep fans its per-cluster work — taking an
// EstimateSnapshot and filling that cluster's column of the ECT matrix —
// over a bounded worker pool. Every cluster's batch scheduler is an
// independent object and every worker writes only to its own cluster's
// slots, so the merge is order-independent and the results are bit-identical
// to the sequential loop; only wall-clock time changes. Tiny sweeps skip the
// fan-out entirely: below the work threshold the goroutine handoff costs
// more than the queries it would parallelise.
var (
	// sweepWorkers bounds the worker pool; 1 disables parallelism.
	sweepWorkers = runtime.GOMAXPROCS(0)
	// sweepMinWork is the minimum number of (candidate, cluster) pairs a
	// sweep stage must hold before it fans out.
	sweepMinWork = 2048
)

// defaultSweepMinWork restores the tuned threshold after tests force the
// parallel path.
const defaultSweepMinWork = 2048

// SetSweepParallelism bounds the worker pool the reallocation sweep fans
// per-cluster evaluation over. workers <= 0 restores the default
// (GOMAXPROCS); 1 forces the sequential path. The parallel and sequential
// paths produce bit-identical results, so this is purely a performance knob
// (and the lever determinism tests use to compare the two).
func SetSweepParallelism(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sweepWorkers = workers
}

// SetSweepParallelThreshold sets the minimum number of (candidate, cluster)
// pairs a sweep must hold before it fans out; below it the sweep runs
// sequentially because the goroutine handoff would cost more than the
// queries. pairs <= 0 restores the default. Tests set it to 1 to force the
// parallel path onto small fixtures.
func SetSweepParallelThreshold(pairs int) {
	if pairs <= 0 {
		pairs = defaultSweepMinWork
	}
	sweepMinWork = pairs
}

// forEachCluster runs fn(idx) for every idx in [0, n) with the per-agent
// parallelism settings (falling back to the process-wide defaults), fanning
// the calls over the worker pool when the estimated work (in candidate x
// cluster pairs) clears the threshold. fn must touch only per-idx state:
// each cluster's scheduler is owned by exactly one worker for the duration
// of the call, and results land in per-idx slots.
//
//gridlint:worker
func (a *Agent) forEachCluster(n, work int, fn func(idx int)) {
	workers, minWork := a.realloc.SweepWorkers, a.realloc.SweepThreshold
	if workers <= 0 {
		workers = sweepWorkers
	}
	if minWork <= 0 {
		minWork = sweepMinWork
	}
	forEachClusterWith(workers, minWork, n, work, fn)
}

// forEachClusterWith is forEachCluster with explicit parallelism settings;
// taking them as parameters (instead of reading the package globals inside)
// lets concurrent simulation runs — the fuzz harness fans whole scenarios
// over a worker pool — use different sweep parallelism without racing on
// shared state.
//
//gridlint:worker
func forEachClusterWith(workers, minWork, n, work int, fn func(idx int)) {
	if workers > n {
		workers = n
	}
	if workers < 2 || work < minWork {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
