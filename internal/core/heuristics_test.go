package core

import (
	"testing"

	"gridrealloc/internal/workload"
)

func cand(id int, submit int64, procs int, originECT int64) Candidate {
	return Candidate{
		Job:       workload.Job{ID: id, Submit: submit, Runtime: 100, Walltime: 200, Procs: procs},
		OriginECT: originECT,
	}
}

func TestHeuristicsListAndNames(t *testing.T) {
	hs := Heuristics()
	if len(hs) != 6 {
		t.Fatalf("expected the six heuristics of the paper, got %d", len(hs))
	}
	want := []string{"Mct", "MinMin", "MaxMin", "MaxGain", "MaxRelGain", "Sufferage"}
	for i, h := range hs {
		if h.Name() != want[i] {
			t.Fatalf("heuristic %d = %q, want %q (paper order)", i, h.Name(), want[i])
		}
	}
	for _, name := range want {
		h, err := HeuristicByName(name)
		if err != nil || h.Name() != name {
			t.Fatalf("HeuristicByName(%q) = %v, %v", name, h, err)
		}
	}
	if _, err := HeuristicByName("Bogus"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestMCTSelectsSubmissionOrder(t *testing.T) {
	cands := []Candidate{
		cand(3, 300, 1, 0),
		cand(1, 100, 1, 0),
		cand(2, 200, 1, 0),
	}
	if got := MCT().Select(cands, make([]Estimate, 3)); got != 1 {
		t.Fatalf("MCT selected index %d, want 1 (earliest submission)", got)
	}
	// Ties on submission time break by job ID.
	cands = []Candidate{cand(9, 100, 1, 0), cand(4, 100, 1, 0)}
	if got := MCT().Select(cands, make([]Estimate, 2)); got != 1 {
		t.Fatalf("MCT tie-break selected %d, want 1 (smaller ID)", got)
	}
}

func TestMinMinAndMaxMin(t *testing.T) {
	cands := []Candidate{cand(1, 10, 1, 0), cand(2, 20, 1, 0), cand(3, 30, 1, 0)}
	ests := []Estimate{
		{BestECT: 500},
		{BestECT: 100},
		{BestECT: 900},
	}
	if got := MinMin().Select(cands, ests); got != 1 {
		t.Fatalf("MinMin selected %d, want 1 (smallest best ECT)", got)
	}
	if got := MaxMin().Select(cands, ests); got != 2 {
		t.Fatalf("MaxMin selected %d, want 2 (largest best ECT)", got)
	}
	// MaxMin must not pick a candidate with no estimate at all.
	ests[2].BestECT = NoEstimate
	if got := MaxMin().Select(cands, ests); got != 0 {
		t.Fatalf("MaxMin selected %d, want 0 when candidate 2 has no estimate", got)
	}
}

func TestMaxGainAndRelGain(t *testing.T) {
	cands := []Candidate{
		cand(1, 10, 1, 1000), // gain 400
		cand(2, 20, 8, 2000), // gain 1200 but 8 procs -> rel 150
		cand(3, 30, 1, 500),  // gain 300
	}
	ests := []Estimate{
		{BestOtherECT: 600, BestOtherCluster: "b"},
		{BestOtherECT: 800, BestOtherCluster: "b"},
		{BestOtherECT: 200, BestOtherCluster: "b"},
	}
	if got := MaxGain().Select(cands, ests); got != 1 {
		t.Fatalf("MaxGain selected %d, want 1 (absolute gain 1200)", got)
	}
	if got := MaxRelGain().Select(cands, ests); got != 0 {
		t.Fatalf("MaxRelGain selected %d, want 0 (gain per processor 400)", got)
	}
}

func TestGainWithNoOtherCluster(t *testing.T) {
	c := cand(1, 10, 2, 1000)
	e := Estimate{BestOtherECT: NoEstimate}
	if g := e.Gain(c); g != -NoEstimate {
		t.Fatalf("gain without another cluster = %d, want the sentinel minimum", g)
	}
	// Such a candidate must lose against any candidate with a real gain.
	cands := []Candidate{c, cand(2, 20, 1, 700)}
	ests := []Estimate{e, {BestOtherECT: 650, BestOtherCluster: "b"}}
	if got := MaxGain().Select(cands, ests); got != 1 {
		t.Fatalf("MaxGain selected the unmovable candidate")
	}
}

func TestSufferage(t *testing.T) {
	cands := []Candidate{cand(1, 10, 1, 0), cand(2, 20, 1, 0), cand(3, 30, 1, 0)}
	ests := []Estimate{
		{BestECT: 100, SecondECT: 150}, // sufferage 50
		{BestECT: 200, SecondECT: 900}, // sufferage 700
		{BestECT: 300, SecondECT: NoEstimate},
	}
	if got := Sufferage().Select(cands, ests); got != 1 {
		t.Fatalf("Sufferage selected %d, want 1", got)
	}
	if s := ests[2].Sufferage(); s != 0 {
		t.Fatalf("sufferage with a single option = %d, want 0", s)
	}
}

func TestPickBestTieBreaksBySubmission(t *testing.T) {
	// Equal scores: the earliest-submitted candidate must win regardless of
	// slice order so that reallocation passes are deterministic.
	cands := []Candidate{cand(5, 500, 1, 0), cand(2, 100, 1, 0), cand(3, 300, 1, 0)}
	ests := []Estimate{{BestECT: 100}, {BestECT: 100}, {BestECT: 100}}
	if got := MinMin().Select(cands, ests); got != 1 {
		t.Fatalf("tie-break selected %d, want 1 (earliest submission)", got)
	}
}

func TestHeuristicsSingleCandidate(t *testing.T) {
	cands := []Candidate{cand(1, 10, 4, 900)}
	ests := []Estimate{{BestECT: 500, SecondECT: 600, BestOtherECT: 500, BestOtherCluster: "x"}}
	for _, h := range Heuristics() {
		if got := h.Select(cands, ests); got != 0 {
			t.Fatalf("%s selected %d for a single candidate", h.Name(), got)
		}
	}
}
