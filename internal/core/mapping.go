package core

import (
	"errors"
	"fmt"

	"gridrealloc/internal/server"
	"gridrealloc/internal/stats"
	"gridrealloc/internal/workload"
)

// MappingPolicy decides which cluster an incoming job is submitted to. The
// paper's meta-scheduler uses MCT (minimum completion time); Random and
// RoundRobin are provided as the degraded modes a middleware falls back to
// when monitoring is unavailable, and the ablation benchmarks compare them.
//
// Implementations may carry per-run state (Random's generator, RoundRobin's
// cursor), so a policy value must not be shared across runs: the fuzz
// oracle's first catch was a reused stateful policy desynchronising replay.
// The stateful marker makes a package-level policy a lint error.
//
//gridlint:stateful
type MappingPolicy interface {
	// Name identifies the policy in configuration and reports.
	Name() string
	// ChooseCluster returns the index (into servers) of the cluster to
	// submit the job to. It must only return clusters the job fits on.
	ChooseCluster(j workload.Job, servers []*server.Server, now int64) (int, error)
}

// ErrNoCluster is returned when no cluster of the platform can run the job.
var ErrNoCluster = errors.New("core: no cluster can run this job")

// mctMapping submits each job to the cluster with the minimum estimated
// completion time.
type mctMapping struct{}

// MCTMapping returns the Minimum Completion Time mapping policy used by the
// paper's meta-scheduler.
func MCTMapping() MappingPolicy { return mctMapping{} }

func (mctMapping) Name() string { return "MCT" }

func (mctMapping) ChooseCluster(j workload.Job, servers []*server.Server, now int64) (int, error) {
	best := -1
	bestECT := int64(0)
	for i, s := range servers {
		if !s.Fits(j) {
			continue
		}
		ect, ok := s.EstimateCompletion(j, now)
		if !ok {
			continue
		}
		if best == -1 || ect < bestECT {
			best, bestECT = i, ect
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: job %d (%d procs)", ErrNoCluster, j.ID, j.Procs)
	}
	return best, nil
}

// randomMapping submits each job to a uniformly random cluster among those
// it fits on.
//
//gridlint:stateful
type randomMapping struct {
	rng *stats.RNG
}

// RandomMapping returns a mapping policy choosing a random eligible cluster,
// deterministically from the seed.
func RandomMapping(seed uint64) MappingPolicy {
	return &randomMapping{rng: stats.NewRNG(seed)}
}

func (*randomMapping) Name() string { return "Random" }

func (m *randomMapping) ChooseCluster(j workload.Job, servers []*server.Server, _ int64) (int, error) {
	eligible := make([]int, 0, len(servers))
	for i, s := range servers {
		if s.Fits(j) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return 0, fmt.Errorf("%w: job %d (%d procs)", ErrNoCluster, j.ID, j.Procs)
	}
	return eligible[m.rng.Intn(len(eligible))], nil
}

// roundRobinMapping cycles through the clusters, skipping clusters the job
// does not fit on.
//
//gridlint:stateful
type roundRobinMapping struct {
	next int
}

// RoundRobinMapping returns a mapping policy selecting clusters one after
// the other.
func RoundRobinMapping() MappingPolicy { return &roundRobinMapping{} }

func (*roundRobinMapping) Name() string { return "RoundRobin" }

func (m *roundRobinMapping) ChooseCluster(j workload.Job, servers []*server.Server, _ int64) (int, error) {
	n := len(servers)
	for k := 0; k < n; k++ {
		idx := (m.next + k) % n
		if servers[idx].Fits(j) {
			m.next = (idx + 1) % n
			return idx, nil
		}
	}
	return 0, fmt.Errorf("%w: job %d (%d procs)", ErrNoCluster, j.ID, j.Procs)
}

// MappingByName resolves a mapping policy by name ("MCT", "Random",
// "RoundRobin"). The seed is only used by the Random policy.
func MappingByName(name string, seed uint64) (MappingPolicy, error) {
	switch name {
	case "MCT", "":
		return MCTMapping(), nil
	case "Random":
		return RandomMapping(seed), nil
	case "RoundRobin":
		return RoundRobinMapping(), nil
	default:
		return nil, fmt.Errorf("core: unknown mapping policy %q", name)
	}
}
