package core

import (
	"errors"
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

func twoServers(t *testing.T, policy batch.Policy) []*server.Server {
	t.Helper()
	a, err := server.New(platform.ClusterSpec{Name: "big", Cores: 16, Speed: 1.0}, policy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.New(platform.ClusterSpec{Name: "small", Cores: 4, Speed: 1.0}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return []*server.Server{a, b}
}

func mapJob(id int, procs int) workload.Job {
	return workload.Job{ID: id, Submit: 0, Runtime: 100, Walltime: 600, Procs: procs}
}

func TestMCTMappingPicksEarliestCompletion(t *testing.T) {
	servers := twoServers(t, batch.FCFS)
	// Load the big cluster completely so the small one finishes earlier.
	if err := servers[0].Submit(workload.Job{ID: 100, Submit: 0, Runtime: 5000, Walltime: 5000, Procs: 16}, 0, 0); err != nil {
		t.Fatal(err)
	}
	idx, err := MCTMapping().ChooseCluster(mapJob(1, 2), servers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("MCT chose cluster %d, want 1 (idle small cluster)", idx)
	}
	// A 10-proc job only fits on the big cluster despite its load.
	idx, err = MCTMapping().ChooseCluster(mapJob(2, 10), servers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("MCT chose cluster %d for a wide job, want 0", idx)
	}
}

func TestMCTMappingNoCluster(t *testing.T) {
	servers := twoServers(t, batch.FCFS)
	_, err := MCTMapping().ChooseCluster(mapJob(1, 64), servers, 0)
	if !errors.Is(err, ErrNoCluster) {
		t.Fatalf("err = %v, want ErrNoCluster", err)
	}
}

func TestRandomMappingEligibilityAndDeterminism(t *testing.T) {
	servers := twoServers(t, batch.FCFS)
	m1 := RandomMapping(77)
	m2 := RandomMapping(77)
	for i := 0; i < 50; i++ {
		a, err1 := m1.ChooseCluster(mapJob(i, 2), servers, 0)
		b, err2 := m2.ChooseCluster(mapJob(i, 2), servers, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatal("Random mapping is not deterministic for a fixed seed")
		}
	}
	// Only the big cluster fits a 10-proc job.
	for i := 0; i < 20; i++ {
		idx, err := m1.ChooseCluster(mapJob(100+i, 10), servers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatal("Random mapping chose a cluster the job does not fit on")
		}
	}
	if _, err := m1.ChooseCluster(mapJob(999, 64), servers, 0); !errors.Is(err, ErrNoCluster) {
		t.Fatalf("err = %v, want ErrNoCluster", err)
	}
}

func TestRoundRobinMappingCycles(t *testing.T) {
	servers := twoServers(t, batch.FCFS)
	m := RoundRobinMapping()
	var got []int
	for i := 0; i < 4; i++ {
		idx, err := m.ChooseCluster(mapJob(i+1, 2), servers, 0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, idx)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence = %v, want %v", got, want)
		}
	}
	// Oversized-for-small jobs always land on the big cluster but do not
	// break the rotation for subsequent jobs.
	idx, err := m.ChooseCluster(mapJob(10, 10), servers, 0)
	if err != nil || idx != 0 {
		t.Fatalf("wide job went to %d (%v), want 0", idx, err)
	}
	if _, err := m.ChooseCluster(mapJob(11, 99), servers, 0); !errors.Is(err, ErrNoCluster) {
		t.Fatalf("err = %v, want ErrNoCluster", err)
	}
}

func TestMappingByName(t *testing.T) {
	for _, name := range []string{"MCT", "Random", "RoundRobin"} {
		m, err := MappingByName(name, 1)
		if err != nil || m == nil {
			t.Fatalf("MappingByName(%q) failed: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("MappingByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, _ := MappingByName("", 1); m.Name() != "MCT" {
		t.Fatal("empty mapping name should default to MCT")
	}
	if _, err := MappingByName("LeastLoaded", 1); err == nil {
		t.Fatal("unknown mapping accepted")
	}
}
