package core

import (
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// buildImbalancedServers returns two equal clusters where cluster "left" is
// heavily loaded (long waiting queue) and "right" is idle, so waiting jobs on
// the left have a large reallocation gain.
func buildImbalancedServers(t *testing.T, policy batch.Policy) []*server.Server {
	t.Helper()
	left, err := server.New(platform.ClusterSpec{Name: "left", Cores: 8, Speed: 1.0}, policy)
	if err != nil {
		t.Fatal(err)
	}
	right, err := server.New(platform.ClusterSpec{Name: "right", Cores: 8, Speed: 1.0}, policy)
	if err != nil {
		t.Fatal(err)
	}
	// A long job occupies the whole left cluster.
	if err := left.Submit(workload.Job{ID: 100, Submit: 0, Runtime: 10000, Walltime: 10000, Procs: 8}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := left.Scheduler().Advance(0); err != nil {
		t.Fatal(err)
	}
	// Three jobs wait behind it.
	for i := 0; i < 3; i++ {
		j := workload.Job{ID: i + 1, Submit: int64(i), Runtime: 500, Walltime: 1000, Procs: 4}
		if err := left.Submit(j, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return []*server.Server{left, right}
}

func newTestAgent(t *testing.T, servers []*server.Server, cfg ReallocConfig) *Agent {
	t.Helper()
	a, err := NewAgent(servers, MCTMapping(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func totalJobsHeld(servers []*server.Server) int {
	total := 0
	for _, s := range servers {
		total += s.Scheduler().WaitingCount() + s.Scheduler().RunningCount()
	}
	return total
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, nil, ReallocConfig{}); err == nil {
		t.Fatal("agent without servers accepted")
	}
	servers := buildImbalancedServers(t, batch.FCFS)
	a, err := NewAgent(servers, nil, ReallocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults applied.
	rc := a.Realloc()
	if rc.Period != DefaultReallocationPeriod || rc.MinGain != DefaultMinGain || rc.Heuristic == nil {
		t.Fatalf("defaults not applied: %+v", rc)
	}
	if got := a.Servers(); len(got) != len(servers) || got[0] != servers[0] {
		t.Fatalf("Servers() = %v, want the platform order passed in", got)
	}
	if a.SkippedSweeps() != 0 {
		t.Fatalf("SkippedSweeps() = %d before any pass, want 0", a.SkippedSweeps())
	}
}

func TestSubmitJobUsesMappingAndTracksLocation(t *testing.T) {
	servers := buildImbalancedServers(t, batch.FCFS)
	a := newTestAgent(t, servers, ReallocConfig{})
	j := workload.Job{ID: 200, Submit: 10, Runtime: 100, Walltime: 300, Procs: 4}
	cluster, err := a.SubmitJob(j, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cluster != "right" {
		t.Fatalf("MCT mapped to %q, want the idle right cluster", cluster)
	}
	if a.JobCluster(200) != "right" {
		t.Fatalf("JobCluster = %q", a.JobCluster(200))
	}
	a.Forget(200)
	if a.JobCluster(200) != "" {
		t.Fatal("Forget did not clear the location")
	}
	if a.JobCluster(12345) != "" {
		t.Fatal("unknown job has a location")
	}
}

func TestSubmitJobNoClusterFits(t *testing.T) {
	servers := buildImbalancedServers(t, batch.FCFS)
	a := newTestAgent(t, servers, ReallocConfig{})
	_, err := a.SubmitJob(workload.Job{ID: 300, Submit: 0, Runtime: 10, Walltime: 20, Procs: 512}, 0)
	if err == nil {
		t.Fatal("oversized job mapped somewhere")
	}
}

func TestAlgorithm1MovesJobsWithGain(t *testing.T) {
	for _, policy := range []batch.Policy{batch.FCFS, batch.CBF} {
		servers := buildImbalancedServers(t, policy)
		a := newTestAgent(t, servers, ReallocConfig{Algorithm: WithoutCancellation, Heuristic: MCT()})
		before := totalJobsHeld(servers)

		moves, err := a.Reallocate(100)
		if err != nil {
			t.Fatal(err)
		}
		if moves == 0 {
			t.Fatalf("[%v] no job moved despite an idle cluster next door", policy)
		}
		if got := totalJobsHeld(servers); got != before {
			t.Fatalf("[%v] jobs lost or duplicated: %d -> %d", policy, before, got)
		}
		if a.TotalReallocations() != int64(moves) {
			t.Fatalf("[%v] TotalReallocations = %d, want %d", policy, a.TotalReallocations(), moves)
		}
		// The moved jobs are now on the right cluster and the agent knows it.
		rightWaiting := servers[1].WaitingJobs()
		rightRunning := servers[1].Scheduler().RunningCount()
		if len(rightWaiting)+rightRunning == 0 {
			t.Fatalf("[%v] right cluster still empty after reallocation", policy)
		}
		for _, w := range rightWaiting {
			if w.Reallocations != 1 {
				t.Fatalf("[%v] moved job %d has %d reallocations recorded, want 1", policy, w.Job.ID, w.Reallocations)
			}
			if a.JobCluster(w.Job.ID) != "right" {
				t.Fatalf("[%v] agent thinks job %d is on %q", policy, w.Job.ID, a.JobCluster(w.Job.ID))
			}
		}
		// Cluster invariants survive the reallocation.
		for _, s := range servers {
			if err := s.Scheduler().CheckInvariants(); err != nil {
				t.Fatalf("[%v] %s: %v", policy, s.Name(), err)
			}
		}
	}
}

func TestAlgorithm1RespectsMinGain(t *testing.T) {
	// Both clusters identical and both idle: ECT elsewhere equals ECT here,
	// so no job may move (the 60 s improvement threshold is not met).
	left, _ := server.New(platform.ClusterSpec{Name: "left", Cores: 8, Speed: 1}, batch.FCFS)
	right, _ := server.New(platform.ClusterSpec{Name: "right", Cores: 8, Speed: 1}, batch.FCFS)
	servers := []*server.Server{left, right}
	// One running job on each cluster with identical ends, plus one waiting
	// job on the left planned right after.
	for _, s := range servers {
		if err := s.Submit(workload.Job{ID: 500 + len(s.Name()), Submit: 0, Runtime: 1000, Walltime: 1000, Procs: 8}, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Scheduler().Advance(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Submit(workload.Job{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Procs: 2}, 0, 0); err != nil {
		t.Fatal(err)
	}
	a := newTestAgent(t, servers, ReallocConfig{Algorithm: WithoutCancellation, Heuristic: MaxGain()})
	moves, err := a.Reallocate(10)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("job moved for a gain below the one-minute threshold (moves=%d)", moves)
	}
	if left.Scheduler().WaitingCount() != 1 {
		t.Fatal("the waiting job disappeared from its cluster")
	}
}

func TestAlgorithm2CancelsAndRedistributes(t *testing.T) {
	for _, policy := range []batch.Policy{batch.FCFS, batch.CBF} {
		servers := buildImbalancedServers(t, policy)
		a := newTestAgent(t, servers, ReallocConfig{Algorithm: WithCancellation, Heuristic: MinMin()})
		before := totalJobsHeld(servers)

		moves, err := a.Reallocate(100)
		if err != nil {
			t.Fatal(err)
		}
		if got := totalJobsHeld(servers); got != before {
			t.Fatalf("[%v] jobs lost or duplicated: %d -> %d", policy, before, got)
		}
		if moves == 0 {
			t.Fatalf("[%v] cancellation algorithm moved nothing off the saturated cluster", policy)
		}
		// All three waiting jobs should now sit on (or run on) the idle
		// right cluster: its ECT is always better while left is blocked for
		// 10000 seconds.
		rightCount := servers[1].Scheduler().WaitingCount() + servers[1].Scheduler().RunningCount()
		if rightCount != 3 {
			t.Fatalf("[%v] right cluster holds %d jobs, want all 3", policy, rightCount)
		}
		for _, s := range servers {
			if err := s.Scheduler().CheckInvariants(); err != nil {
				t.Fatalf("[%v] %s: %v", policy, s.Name(), err)
			}
		}
	}
}

func TestAlgorithm2CountsOnlyRealMigrations(t *testing.T) {
	// Single cluster: Algorithm 2 cancels and resubmits everything to the
	// same place, which must count as zero reallocations.
	only, _ := server.New(platform.ClusterSpec{Name: "only", Cores: 4, Speed: 1}, batch.FCFS)
	if err := only.Submit(workload.Job{ID: 1, Submit: 0, Runtime: 1000, Walltime: 1000, Procs: 4}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := only.Scheduler().Advance(0); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 4; i++ {
		if err := only.Submit(workload.Job{ID: i, Submit: int64(i), Runtime: 100, Walltime: 200, Procs: 2}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	a := newTestAgent(t, []*server.Server{only}, ReallocConfig{Algorithm: WithCancellation, Heuristic: MCT()})
	moves, err := a.Reallocate(10)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 || a.TotalReallocations() != 0 {
		t.Fatalf("single-cluster cancellation counted %d moves", moves)
	}
	if only.Scheduler().WaitingCount() != 3 {
		t.Fatalf("jobs lost during cancel/resubmit: %d waiting", only.Scheduler().WaitingCount())
	}
}

func TestReallocateNoneIsNoOp(t *testing.T) {
	servers := buildImbalancedServers(t, batch.FCFS)
	a := newTestAgent(t, servers, ReallocConfig{Algorithm: NoReallocation})
	moves, err := a.Reallocate(100)
	if err != nil || moves != 0 {
		t.Fatalf("no-reallocation agent moved %d jobs (%v)", moves, err)
	}
	if a.ReallocationEvents() != 0 {
		t.Fatal("no-reallocation agent counted a reallocation event")
	}
}

func TestReallocateEmptyQueues(t *testing.T) {
	left, _ := server.New(platform.ClusterSpec{Name: "left", Cores: 8, Speed: 1}, batch.FCFS)
	right, _ := server.New(platform.ClusterSpec{Name: "right", Cores: 8, Speed: 1}, batch.FCFS)
	for _, alg := range []Algorithm{WithoutCancellation, WithCancellation} {
		a := newTestAgent(t, []*server.Server{left, right}, ReallocConfig{Algorithm: alg, Heuristic: MinMin()})
		moves, err := a.Reallocate(50)
		if err != nil || moves != 0 {
			t.Fatalf("%v on empty queues: moves=%d err=%v", alg, moves, err)
		}
	}
}

func TestReallocationCountAccumulatesAcrossMoves(t *testing.T) {
	// Move a job left->right, then make right worse so a later pass moves it
	// back: its per-job counter must reach 2.
	left, _ := server.New(platform.ClusterSpec{Name: "left", Cores: 4, Speed: 1}, batch.FCFS)
	right, _ := server.New(platform.ClusterSpec{Name: "right", Cores: 4, Speed: 1}, batch.FCFS)
	servers := []*server.Server{left, right}
	block := func(s *server.Server, id int, now, dur int64) {
		if err := s.Submit(workload.Job{ID: id, Submit: now, Runtime: dur, Walltime: dur, Procs: 4}, now, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Scheduler().Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	block(left, 900, 0, 5000)
	// The victim job waits on the left.
	if err := left.Submit(workload.Job{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Procs: 4}, 0, 0); err != nil {
		t.Fatal(err)
	}
	a := newTestAgent(t, servers, ReallocConfig{Algorithm: WithoutCancellation, Heuristic: MCT()})
	if _, err := a.Reallocate(10); err != nil {
		t.Fatal(err)
	}
	if got := a.JobCluster(1); got != "right" {
		t.Fatalf("after first pass job is on %q, want right", got)
	}
	// Job 1 is waiting on the idle right cluster but has not started yet (it
	// was submitted there at t=10, so it starts at t=10 only once the
	// cluster advances past that instant; keep the clock at 10 and block the
	// right cluster with a much longer job planned before it by cancelling
	// and re-adding it after the blocker).
	if _, _, err := right.Cancel(1, 10); err != nil {
		t.Fatalf("cancelling the migrated job on right: %v", err)
	}
	block(right, 901, 10, 50000)
	if err := right.Submit(workload.Job{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Procs: 4}, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Reallocate(30); err != nil {
		t.Fatal(err)
	}
	if got := a.JobCluster(1); got != "left" {
		t.Fatalf("after second pass job is on %q, want left", got)
	}
	for _, w := range left.WaitingJobs() {
		if w.Job.ID == 1 && w.Reallocations != 2 {
			t.Fatalf("job 1 reallocation counter = %d, want 2", w.Reallocations)
		}
	}
	if a.TotalReallocations() != 2 {
		t.Fatalf("total reallocations = %d, want 2", a.TotalReallocations())
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"":               NoReallocation,
		"none":           NoReallocation,
		"realloc":        WithoutCancellation,
		"algorithm1":     WithoutCancellation,
		"no-cancel":      WithoutCancellation,
		"realloc-cancel": WithCancellation,
		"cancel":         WithCancellation,
		"algorithm2":     WithCancellation,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAlgorithm("magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if NoReallocation.String() != "none" || WithoutCancellation.String() != "realloc" || WithCancellation.String() != "realloc-cancel" {
		t.Fatal("Algorithm.String broken")
	}
}
