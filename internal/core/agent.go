package core

import (
	"errors"
	"fmt"
	"sort"

	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// Algorithm selects which reallocation mechanism the agent runs at each
// periodic reallocation event.
type Algorithm int

// The reallocation algorithms compared in the paper, plus the baseline.
const (
	// NoReallocation disables the mechanism; the agent only performs the
	// initial mapping. This is the reference every metric is compared to.
	NoReallocation Algorithm = iota
	// WithoutCancellation is Algorithm 1: consider every waiting job in
	// heuristic order and move it (cancel + resubmit) only when another
	// cluster offers a completion time at least MinGain seconds better.
	WithoutCancellation
	// WithCancellation is Algorithm 2: cancel every waiting job on every
	// cluster, then re-submit them one by one in heuristic order, each to
	// the cluster with the minimum estimated completion time.
	WithCancellation
)

// String returns a short identifier ("none", "realloc", "realloc-cancel").
func (a Algorithm) String() string {
	switch a {
	case WithoutCancellation:
		return "realloc"
	case WithCancellation:
		return "realloc-cancel"
	default:
		return "none"
	}
}

// ParseAlgorithm resolves an algorithm from its string form.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "none", "":
		return NoReallocation, nil
	case "realloc", "no-cancel", "algorithm1":
		return WithoutCancellation, nil
	case "realloc-cancel", "cancel", "algorithm2":
		return WithCancellation, nil
	default:
		return NoReallocation, fmt.Errorf("core: unknown reallocation algorithm %q", s)
	}
}

// DefaultReallocationPeriod is the paper's reallocation frequency: once per
// hour.
const DefaultReallocationPeriod int64 = 3600

// DefaultMinGain is the paper's minimum improvement (one minute) required
// before Algorithm 1 moves a job.
const DefaultMinGain int64 = 60

// ReallocConfig configures the reallocation mechanism of the agent.
type ReallocConfig struct {
	// Algorithm selects the mechanism (NoReallocation disables it).
	Algorithm Algorithm
	// Heuristic orders the candidates; nil defaults to MCT.
	Heuristic Heuristic
	// Period is the interval between reallocation events in seconds;
	// non-positive values default to DefaultReallocationPeriod.
	Period int64
	// MinGain is the minimum completion-time improvement (seconds) required
	// for Algorithm 1 to move a job; non-positive values default to
	// DefaultMinGain. Algorithm 2 ignores it.
	MinGain int64
}

// normalized returns the config with defaults applied.
func (c ReallocConfig) normalized() ReallocConfig {
	if c.Heuristic == nil {
		c.Heuristic = MCT()
	}
	if c.Period <= 0 {
		c.Period = DefaultReallocationPeriod
	}
	if c.MinGain <= 0 {
		c.MinGain = DefaultMinGain
	}
	return c
}

// Agent is the meta-scheduler of the paper's architecture: it maps every
// incoming job to a cluster (MappingPolicy) and periodically reallocates
// waiting jobs between clusters (ReallocConfig).
type Agent struct {
	servers  []*server.Server
	mapping  MappingPolicy
	realloc  ReallocConfig
	location map[int]int // jobID -> server index while the job is in the system

	totalReallocations int64
	reallocationEvents int64
}

// NewAgent builds an agent over the given servers. Mapping defaults to MCT
// when nil.
func NewAgent(servers []*server.Server, mapping MappingPolicy, realloc ReallocConfig) (*Agent, error) {
	if len(servers) == 0 {
		return nil, errors.New("core: agent needs at least one server")
	}
	if mapping == nil {
		mapping = MCTMapping()
	}
	return &Agent{
		servers:  servers,
		mapping:  mapping,
		realloc:  realloc.normalized(),
		location: make(map[int]int),
	}, nil
}

// Servers returns the servers the agent manages, in platform order.
func (a *Agent) Servers() []*server.Server { return a.servers }

// Realloc returns the normalized reallocation configuration.
func (a *Agent) Realloc() ReallocConfig { return a.realloc }

// TotalReallocations returns the number of migrations performed so far. A
// job migrated several times is counted once per migration, as in the
// paper's "number of reallocations" metric.
func (a *Agent) TotalReallocations() int64 { return a.totalReallocations }

// ReallocationEvents returns the number of periodic reallocation passes run.
func (a *Agent) ReallocationEvents() int64 { return a.reallocationEvents }

// SubmitJob maps the job to a cluster using the mapping policy and submits
// it there. It returns the name of the chosen cluster.
func (a *Agent) SubmitJob(j workload.Job, now int64) (string, error) {
	idx, err := a.mapping.ChooseCluster(j, a.servers, now)
	if err != nil {
		return "", err
	}
	if err := a.servers[idx].Submit(j, now, 0); err != nil {
		return "", fmt.Errorf("core: submitting job %d to %s: %w", j.ID, a.servers[idx].Name(), err)
	}
	a.location[j.ID] = idx
	return a.servers[idx].Name(), nil
}

// JobCluster returns the name of the cluster currently holding the job, or
// "" when the agent does not know the job (never submitted or forgotten).
func (a *Agent) JobCluster(jobID int) string {
	idx, ok := a.location[jobID]
	if !ok {
		return ""
	}
	return a.servers[idx].Name()
}

// Forget drops the agent's location record for a completed job.
func (a *Agent) Forget(jobID int) { delete(a.location, jobID) }

// Reallocate runs one reallocation pass at time now using the configured
// algorithm and heuristic. It returns the number of migrations performed
// during this pass.
func (a *Agent) Reallocate(now int64) (int, error) {
	if a.realloc.Algorithm == NoReallocation {
		return 0, nil
	}
	a.reallocationEvents++
	switch a.realloc.Algorithm {
	case WithoutCancellation:
		return a.reallocateWithoutCancellation(now)
	case WithCancellation:
		return a.reallocateWithCancellation(now)
	default:
		return 0, fmt.Errorf("core: unsupported algorithm %v", a.realloc.Algorithm)
	}
}

// gatherCandidates snapshots the waiting queues of every cluster.
func (a *Agent) gatherCandidates() ([]Candidate, []int) {
	var cands []Candidate
	var origins []int
	for idx, s := range a.servers {
		for _, w := range s.WaitingJobs() {
			cands = append(cands, Candidate{
				Job:           w.Job,
				OriginCluster: s.Name(),
				OriginECT:     w.PlannedEnd,
				Reallocations: w.Reallocations,
			})
			origins = append(origins, idx)
		}
	}
	// Deterministic processing order regardless of server iteration:
	// submission time then job ID.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return submitsBefore(cands[order[x]].Job, cands[order[y]].Job)
	})
	sortedCands := make([]Candidate, len(cands))
	sortedOrigins := make([]int, len(cands))
	for i, o := range order {
		sortedCands[i] = cands[o]
		sortedOrigins[i] = origins[o]
	}
	return sortedCands, sortedOrigins
}

// estimateAll computes, for every candidate, the completion-time estimates
// across all clusters. When hypothetical is true, the origin cluster is
// queried like any other cluster (the job is no longer queued there, as in
// Algorithm 2); otherwise the origin cluster contributes the job's current
// planned completion.
func (a *Agent) estimateAll(cands []Candidate, origins []int, now int64, hypothetical bool) []Estimate {
	ests := make([]Estimate, len(cands))
	for i, c := range cands {
		ests[i] = a.estimateOne(c, origins[i], now, hypothetical)
	}
	return ests
}

func (a *Agent) estimateOne(c Candidate, origin int, now int64, hypothetical bool) Estimate {
	est := Estimate{BestECT: NoEstimate, SecondECT: NoEstimate, BestOtherECT: NoEstimate}
	consider := func(clusterName string, ect int64, other bool) {
		if ect < est.BestECT {
			est.SecondECT = est.BestECT
			est.BestECT = ect
			est.BestCluster = clusterName
		} else if ect < est.SecondECT {
			est.SecondECT = ect
		}
		if other && ect < est.BestOtherECT {
			est.BestOtherECT = ect
			est.BestOtherCluster = clusterName
		}
	}
	for idx, s := range a.servers {
		if idx == origin && !hypothetical {
			consider(s.Name(), c.OriginECT, false)
			continue
		}
		if !s.Fits(c.Job) {
			continue
		}
		ect, ok := s.EstimateCompletion(c.Job, now)
		if !ok {
			continue
		}
		consider(s.Name(), ect, idx != origin)
	}
	return est
}

// reallocateWithoutCancellation implements Algorithm 1 of the paper.
func (a *Agent) reallocateWithoutCancellation(now int64) (int, error) {
	cands, origins := a.gatherCandidates()
	if len(cands) == 0 {
		return 0, nil
	}
	moves := 0
	ests := a.estimateAll(cands, origins, now, false)
	for len(cands) > 0 {
		pick := a.realloc.Heuristic.Select(cands, ests)
		c, origin := cands[pick], origins[pick]
		est := ests[pick]

		moved := false
		if est.BestOtherECT != NoEstimate && est.BestOtherECT+a.realloc.MinGain < c.OriginECT {
			if err := a.moveJob(c, origin, est.BestOtherCluster, now); err != nil {
				return moves, err
			}
			moves++
			moved = true
		}

		// Drop the handled candidate.
		cands = append(cands[:pick], cands[pick+1:]...)
		origins = append(origins[:pick], origins[pick+1:]...)
		ests = append(ests[:pick], ests[pick+1:]...)

		// A migration changes two clusters' queues, so the remaining
		// estimates are stale; recompute them. When nothing moved, the
		// platform state is unchanged and the estimates stay valid.
		if moved && len(cands) > 0 {
			// Refresh the origin ECT of candidates still queued (their
			// planned completion may have changed after the cancellation).
			for i := range cands {
				if ect, err := a.servers[origins[i]].CurrentCompletion(cands[i].Job.ID); err == nil {
					cands[i].OriginECT = ect
				}
			}
			ests = a.estimateAll(cands, origins, now, false)
		}
	}
	return moves, nil
}

// moveJob cancels the job on its origin cluster and submits it to the named
// destination cluster, preserving and incrementing its reallocation count.
func (a *Agent) moveJob(c Candidate, origin int, destination string, now int64) error {
	destIdx := -1
	for i, s := range a.servers {
		if s.Name() == destination {
			destIdx = i
			break
		}
	}
	if destIdx == -1 {
		return fmt.Errorf("core: unknown destination cluster %q", destination)
	}
	job, migrated, err := a.servers[origin].Cancel(c.Job.ID, now)
	if err != nil {
		return fmt.Errorf("core: cancelling job %d on %s: %w", c.Job.ID, a.servers[origin].Name(), err)
	}
	if err := a.servers[destIdx].Submit(job, now, migrated+1); err != nil {
		// Try to put the job back where it was rather than losing it; this
		// should never fail because the slot was just freed.
		if backErr := a.servers[origin].Submit(job, now, migrated); backErr != nil {
			return fmt.Errorf("core: job %d lost during reallocation: %v (restore failed: %v)", job.ID, err, backErr)
		}
		return fmt.Errorf("core: resubmitting job %d to %s: %w", job.ID, destination, err)
	}
	a.location[job.ID] = destIdx
	a.totalReallocations++
	return nil
}

// reallocateWithCancellation implements Algorithm 2 of the paper: cancel all
// waiting jobs everywhere, then re-place them one at a time in heuristic
// order on the cluster with the minimum estimated completion time.
func (a *Agent) reallocateWithCancellation(now int64) (int, error) {
	cands, origins := a.gatherCandidates()
	if len(cands) == 0 {
		return 0, nil
	}
	// Cancel every waiting job.
	for i, c := range cands {
		job, migrated, err := a.servers[origins[i]].Cancel(c.Job.ID, now)
		if err != nil {
			return 0, fmt.Errorf("core: cancelling job %d on %s: %w", c.Job.ID, a.servers[origins[i]].Name(), err)
		}
		cands[i].Job = job
		cands[i].Reallocations = migrated
	}
	moves := 0
	for len(cands) > 0 {
		// Re-estimate at every iteration: each submission changes the
		// queues, and the origin cluster now answers hypothetically because
		// the job is no longer queued there.
		for i := range cands {
			if ect, ok := a.servers[origins[i]].EstimateCompletion(cands[i].Job, now); ok {
				cands[i].OriginECT = ect
			} else {
				cands[i].OriginECT = NoEstimate
			}
		}
		ests := a.estimateAll(cands, origins, now, true)
		pick := a.realloc.Heuristic.Select(cands, ests)
		c, origin, est := cands[pick], origins[pick], ests[pick]

		destIdx := origin
		if est.BestCluster != "" {
			for i, s := range a.servers {
				if s.Name() == est.BestCluster {
					destIdx = i
					break
				}
			}
		}
		migrated := c.Reallocations
		if destIdx != origin {
			migrated++
			moves++
			a.totalReallocations++
		}
		if err := a.servers[destIdx].Submit(c.Job, now, migrated); err != nil {
			return moves, fmt.Errorf("core: resubmitting job %d to %s: %w", c.Job.ID, a.servers[destIdx].Name(), err)
		}
		a.location[c.Job.ID] = destIdx

		cands = append(cands[:pick], cands[pick+1:]...)
		origins = append(origins[:pick], origins[pick+1:]...)
	}
	return moves, nil
}
