package core

import (
	"errors"
	"fmt"
	"sort"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// Algorithm selects which reallocation mechanism the agent runs at each
// periodic reallocation event.
type Algorithm int

// The reallocation algorithms compared in the paper, plus the baseline.
const (
	// NoReallocation disables the mechanism; the agent only performs the
	// initial mapping. This is the reference every metric is compared to.
	NoReallocation Algorithm = iota
	// WithoutCancellation is Algorithm 1: consider every waiting job in
	// heuristic order and move it (cancel + resubmit) only when another
	// cluster offers a completion time at least MinGain seconds better.
	WithoutCancellation
	// WithCancellation is Algorithm 2: cancel every waiting job on every
	// cluster, then re-submit them one by one in heuristic order, each to
	// the cluster with the minimum estimated completion time.
	WithCancellation
)

// String returns a short identifier ("none", "realloc", "realloc-cancel").
func (a Algorithm) String() string {
	switch a {
	case WithoutCancellation:
		return "realloc"
	case WithCancellation:
		return "realloc-cancel"
	default:
		return "none"
	}
}

// ParseAlgorithm resolves an algorithm from its string form.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "none", "":
		return NoReallocation, nil
	case "realloc", "no-cancel", "algorithm1":
		return WithoutCancellation, nil
	case "realloc-cancel", "cancel", "algorithm2":
		return WithCancellation, nil
	default:
		return NoReallocation, fmt.Errorf("core: unknown reallocation algorithm %q", s)
	}
}

// DefaultReallocationPeriod is the paper's reallocation frequency: once per
// hour.
const DefaultReallocationPeriod int64 = 3600

// DefaultMinGain is the paper's minimum improvement (one minute) required
// before Algorithm 1 moves a job.
const DefaultMinGain int64 = 60

// ReallocConfig configures the reallocation mechanism of the agent.
type ReallocConfig struct {
	// Algorithm selects the mechanism (NoReallocation disables it).
	Algorithm Algorithm
	// Heuristic orders the candidates; nil defaults to MCT.
	Heuristic Heuristic
	// Period is the interval between reallocation events in seconds;
	// non-positive values default to DefaultReallocationPeriod.
	Period int64
	// MinGain is the minimum completion-time improvement (seconds) required
	// for Algorithm 1 to move a job; non-positive values default to
	// DefaultMinGain. Algorithm 2 ignores it.
	MinGain int64
	// SweepWorkers bounds the worker pool this run's reallocation sweeps fan
	// per-cluster work over; 0 uses the process-wide default
	// (SetSweepParallelism). 1 forces the sequential path. Parallel and
	// sequential sweeps are bit-identical, so this is a performance knob and
	// the lever determinism checks flip; a per-run value lets concurrent
	// simulations (the fuzz harness) use different settings without racing
	// on the process-wide ones.
	SweepWorkers int
	// SweepThreshold is the minimum number of (candidate, cluster) pairs a
	// sweep must hold before it fans out; 0 uses the process-wide default
	// (SetSweepParallelThreshold). Tests and the fuzz harness set 1 to force
	// the parallel path onto small fixtures.
	SweepThreshold int
}

// normalized returns the config with defaults applied.
func (c ReallocConfig) normalized() ReallocConfig {
	if c.Heuristic == nil {
		c.Heuristic = MCT()
	}
	if c.Period <= 0 {
		c.Period = DefaultReallocationPeriod
	}
	if c.MinGain <= 0 {
		c.MinGain = DefaultMinGain
	}
	return c
}

// Agent is the meta-scheduler of the paper's architecture: it maps every
// incoming job to a cluster (MappingPolicy) and periodically reallocates
// waiting jobs between clusters (ReallocConfig).
//
//gridlint:resettable
type Agent struct {
	//gridlint:cluster-indexed
	servers  []*server.Server
	byName   map[string]int // cluster name -> server index
	mapping  MappingPolicy
	realloc  ReallocConfig
	location map[int]int // jobID -> server index while the job is in the system

	totalReallocations int64
	reallocationEvents int64
	skippedRaces       int64
	skippedSweeps      int64

	// Dirty-cluster tracking between reallocation passes: gatherVersion[i]
	// is servers[i]'s batch.Scheduler StateVersion at the last gather, and
	// gatherValid[i] marks the cached queue view in scratchWaiting[i] as
	// exact. A cluster whose version did not move since the last pass had no
	// submission, cancellation, start, early finish or capacity reveal, so
	// its waiting queue and every planned window in it are bit-for-bit what
	// the last gather copied — the sweep reuses the cached view instead of
	// re-listing (and re-observing) the queue.
	//gridlint:cluster-indexed
	gatherVersion []uint64 //gridlint:keep-across-reset stale versions are inert while gatherValid is false
	//gridlint:cluster-indexed
	gatherValid []bool
	sorter      candidateOrderSorter //gridlint:keep-across-reset stateless sort scratch

	// Scratch buffers reused across reallocation passes, so a sweep's
	// bookkeeping (candidate gathering, the ECT matrix, the estimate slice)
	// allocates only when the platform outgrows every previous pass.
	//gridlint:cluster-indexed
	scratchWaiting       [][]batch.WaitingJob //gridlint:keep-across-reset capacity only; contents gated by gatherValid
	scratchCands         []Candidate          //gridlint:keep-across-reset capacity only, truncated before use
	scratchOrigins       []int                //gridlint:keep-across-reset capacity only, truncated before use
	scratchSortedCands   []Candidate          //gridlint:keep-across-reset capacity only, truncated before use
	scratchSortedOrigins []int                //gridlint:keep-across-reset capacity only, truncated before use
	scratchOrder         []int                //gridlint:keep-across-reset capacity only, truncated before use
	scratchEsts          []Estimate           //gridlint:keep-across-reset capacity only, truncated before use
	//gridlint:cluster-indexed
	scratchSnaps    []batch.EstimateSnapshot //gridlint:keep-across-reset capacity only, refreshed before use
	scratchECTs     []int64                  //gridlint:keep-across-reset capacity only, truncated before use
	scratchRows     [][]int64                //gridlint:keep-across-reset capacity only, truncated before use
	scratchWalls    []int64                  //gridlint:keep-across-reset capacity only, truncated before use
	scratchWallRows [][]int64                //gridlint:keep-across-reset capacity only, truncated before use
	//gridlint:cluster-indexed
	scratchErrs []error //gridlint:keep-across-reset capacity only, truncated before use
}

// NewAgent builds an agent over the given servers. Mapping defaults to MCT
// when nil.
func NewAgent(servers []*server.Server, mapping MappingPolicy, realloc ReallocConfig) (*Agent, error) {
	a := &Agent{
		byName:   make(map[string]int, len(servers)),
		location: make(map[int]int),
	}
	if err := a.reset(servers, mapping, realloc); err != nil {
		return nil, err
	}
	return a, nil
}

// reset re-points the agent at a server set and configuration, clearing all
// per-run state (locations, counters, dirty-cluster tracking) while keeping
// every scratch buffer, so the pooled simulator reuses one agent across
// thousands of scenarios. A reset agent behaves exactly like a fresh one.
func (a *Agent) reset(servers []*server.Server, mapping MappingPolicy, realloc ReallocConfig) error {
	if len(servers) == 0 {
		return errors.New("core: agent needs at least one server")
	}
	if mapping == nil {
		mapping = MCTMapping()
	}
	a.servers = servers
	clear(a.byName)
	for i, s := range servers {
		a.byName[s.Name()] = i
	}
	a.mapping = mapping
	a.realloc = realloc.normalized()
	clear(a.location)
	a.totalReallocations = 0
	a.reallocationEvents = 0
	a.skippedRaces = 0
	a.skippedSweeps = 0
	for i := range a.gatherValid {
		a.gatherValid[i] = false
	}
	return nil
}

// Servers returns the servers the agent manages, in platform order.
func (a *Agent) Servers() []*server.Server { return a.servers }

// Realloc returns the normalized reallocation configuration.
func (a *Agent) Realloc() ReallocConfig { return a.realloc }

// TotalReallocations returns the number of migrations performed so far. A
// job migrated several times is counted once per migration, as in the
// paper's "number of reallocations" metric.
func (a *Agent) TotalReallocations() int64 { return a.totalReallocations }

// ReallocationEvents returns the number of periodic reallocation passes run.
func (a *Agent) ReallocationEvents() int64 { return a.reallocationEvents }

// SkippedRaces returns the number of reallocation moves abandoned because
// the job started between the queue snapshot and the cancellation attempt.
// Such a race skips the one candidate instead of aborting the whole sweep.
func (a *Agent) SkippedRaces() int64 { return a.skippedRaces }

// SkippedSweeps returns the number of reallocation passes skipped outright
// because no cluster held a waiting job — a no-op sweep that would otherwise
// still force every cluster's deferred re-plan. Skipped passes are counted in
// ReallocationEvents like executed ones.
func (a *Agent) SkippedSweeps() int64 { return a.skippedSweeps }

// SubmitJob maps the job to a cluster using the mapping policy and submits
// it there. It returns the name of the chosen cluster.
func (a *Agent) SubmitJob(j workload.Job, now int64) (string, error) {
	idx, err := a.mapping.ChooseCluster(j, a.servers, now)
	if err != nil {
		return "", err
	}
	if err := a.servers[idx].Submit(j, now, 0); err != nil {
		return "", fmt.Errorf("core: submitting job %d to %s: %w", j.ID, a.servers[idx].Name(), err)
	}
	a.location[j.ID] = idx
	return a.servers[idx].Name(), nil
}

// JobCluster returns the name of the cluster currently holding the job, or
// "" when the agent does not know the job (never submitted or forgotten).
func (a *Agent) JobCluster(jobID int) string {
	idx, ok := a.location[jobID]
	if !ok {
		return ""
	}
	return a.servers[idx].Name()
}

// Forget drops the agent's location record for a completed job.
func (a *Agent) Forget(jobID int) { delete(a.location, jobID) }

// Reallocate runs one reallocation pass at time now using the configured
// algorithm and heuristic. It returns the number of migrations performed
// during this pass.
func (a *Agent) Reallocate(now int64) (int, error) {
	if a.realloc.Algorithm == NoReallocation {
		return 0, nil
	}
	a.reallocationEvents++
	total := 0
	for _, s := range a.servers {
		total += s.Scheduler().WaitingCount()
	}
	if total == 0 {
		// No waiting jobs anywhere: both algorithms would gather an empty
		// candidate set and return without touching any cluster. Skipping
		// before the gather spares every cluster the queue listing that
		// would force its deferred re-plan — behaviour-neutral, because the
		// lazy plan flush is bit-identical whenever it runs.
		a.skippedSweeps++
		return 0, nil
	}
	switch a.realloc.Algorithm {
	case WithoutCancellation:
		return a.reallocateWithoutCancellation(now, total)
	case WithCancellation:
		return a.reallocateWithCancellation(now, total)
	default:
		return 0, fmt.Errorf("core: unsupported algorithm %v", a.realloc.Algorithm)
	}
}

// gatherCandidates snapshots the waiting queues of every cluster. Listing a
// queue forces that cluster's deferred re-plan, so the per-cluster listings
// are fanned over the sweep worker pool when the platform is loaded enough
// to pay for it; the per-cluster slices are then merged in platform order,
// keeping the result identical to the sequential gather. Clusters whose
// scheduler state version did not move since the last gather are not
// re-listed at all: the cached view is provably bit-for-bit what a fresh
// listing would return (no mutation means no membership change and no plan
// change), which is the dirty-cluster half of the sweep-skipping
// optimisation.
//
// total is the summed WaitingCount the caller (Reallocate) already computed
// for the empty-sweep skip; sharing it keeps the skip decision and the
// gather's sizing in agreement.
func (a *Agent) gatherCandidates(total int) ([]Candidate, []int) {
	if cap(a.scratchWaiting) < len(a.servers) {
		a.scratchWaiting = make([][]batch.WaitingJob, len(a.servers))
		a.gatherVersion = make([]uint64, len(a.servers))
		a.gatherValid = make([]bool, len(a.servers))
	}
	perCluster := a.scratchWaiting[:len(a.servers)]
	versions := a.gatherVersion[:len(a.servers)]
	valid := a.gatherValid[:len(a.servers)]
	a.forEachCluster(len(a.servers), total, func(idx int) {
		v := a.servers[idx].Scheduler().StateVersion()
		if valid[idx] && versions[idx] == v {
			return
		}
		perCluster[idx] = a.servers[idx].Scheduler().AppendWaitingJobs(perCluster[idx][:0])
		versions[idx] = v
		valid[idx] = true
	})
	cands := a.scratchCands[:0]
	if cap(cands) < total {
		cands = make([]Candidate, 0, total)
	}
	origins := a.scratchOrigins[:0]
	if cap(origins) < total {
		origins = make([]int, 0, total)
	}
	for idx, s := range a.servers {
		for _, w := range perCluster[idx] {
			cands = append(cands, Candidate{
				Job:           w.Job,
				OriginCluster: s.Name(),
				OriginECT:     w.PlannedEnd,
				Reallocations: w.Reallocations,
			})
			origins = append(origins, idx)
		}
	}
	// Deterministic processing order regardless of server iteration:
	// submission time then job ID. The sort permutes both slices through an
	// index order so candidates and origins stay aligned; the persistent
	// sorter spares the closure and header allocations sort.SliceStable
	// would pay on every pass.
	order := a.scratchOrder[:0]
	for i := range cands {
		order = append(order, i)
	}
	a.sorter.order, a.sorter.cands = order, cands
	sort.Stable(&a.sorter)
	a.sorter.cands = nil
	a.scratchOrder = order
	if cap(a.scratchSortedCands) < len(cands) {
		a.scratchSortedCands = make([]Candidate, len(cands))
		a.scratchSortedOrigins = make([]int, len(cands))
	}
	sortedCands := a.scratchSortedCands[:len(cands)]
	sortedOrigins := a.scratchSortedOrigins[:len(cands)]
	for i, o := range order {
		sortedCands[i] = cands[o]
		sortedOrigins[i] = origins[o]
	}
	a.scratchCands = cands
	a.scratchOrigins = origins
	return sortedCands, sortedOrigins
}

// candidateOrderSorter stable-sorts the gather's index permutation by
// (submission time, job ID). It lives on the agent so the per-pass sort
// allocates nothing.
type candidateOrderSorter struct {
	order []int
	cands []Candidate
}

func (s *candidateOrderSorter) Len() int { return len(s.order) }
func (s *candidateOrderSorter) Less(x, y int) bool {
	return submitsBefore(s.cands[s.order[x]].Job, s.cands[s.order[y]].Job)
}
func (s *candidateOrderSorter) Swap(x, y int) {
	s.order[x], s.order[y] = s.order[y], s.order[x]
}

// sweep is the per-pass estimation state: one availability snapshot per
// cluster, taken once and reused across every candidate job and every
// heuristic iteration, plus the ECT matrix derived from the snapshots.
// After a migration only the two touched clusters are re-snapshotted and
// only their matrix columns recomputed, so a pass over n candidates and m
// clusters costs O(n*m) slot searches up front plus O(n) per move instead
// of O(n*m) per move.
type sweep struct {
	a   *Agent
	now int64
	//gridlint:cluster-indexed
	snaps []batch.EstimateSnapshot // one per cluster, refreshed in place
	ects  [][]int64                // [candidate][cluster]; NoEstimate when unavailable
	// walls caches each candidate's scaled walltime per cluster (0 = not
	// yet computed): a column refresh after a move re-estimates every
	// remaining candidate, and the reservation length does not change.
	walls [][]int64
}

// newSweep snapshots every cluster and fills the ECT matrix for the given
// candidates. The matrix backing is one flat allocation (reused across
// passes), and the per-cluster work — one snapshot plus that cluster's
// matrix column — is fanned over the bounded worker pool on sweeps large
// enough to pay for it. Each worker touches exactly one cluster's scheduler
// and writes only its own column and error slot, so the merged result is
// bit-identical to the sequential sweep regardless of scheduling order;
// errors are surfaced in platform order for the same reason.
func (a *Agent) newSweep(now int64, cands []Candidate) (*sweep, error) {
	n, m := len(cands), len(a.servers)
	if cap(a.scratchSnaps) < m {
		// Carry the old snapshots into the grown slice: they still hold
		// references on plan profiles, and the next EstimateSnapshotInto
		// refresh releases those only if the snapshot structs survive.
		snaps := make([]batch.EstimateSnapshot, m)
		copy(snaps, a.scratchSnaps)
		a.scratchSnaps = snaps
		a.scratchErrs = make([]error, m)
	}
	if cap(a.scratchECTs) < n*m {
		a.scratchECTs = make([]int64, n*m)
		a.scratchWalls = make([]int64, n*m)
	}
	if cap(a.scratchRows) < n {
		a.scratchRows = make([][]int64, n)
		a.scratchWallRows = make([][]int64, n)
	}
	sw := &sweep{
		a:     a,
		now:   now,
		snaps: a.scratchSnaps[:m],
		ects:  a.scratchRows[:n],
		walls: a.scratchWallRows[:n],
	}
	flat := a.scratchECTs[:n*m]
	flatW := a.scratchWalls[:n*m]
	for i := range flatW {
		flatW[i] = 0
	}
	for i := range sw.ects {
		sw.ects[i] = flat[i*m : (i+1)*m : (i+1)*m]
		sw.walls[i] = flatW[i*m : (i+1)*m : (i+1)*m]
	}
	errs := a.scratchErrs[:m]
	a.forEachCluster(m, n*m, func(idx int) {
		if err := a.servers[idx].EstimateSnapshotInto(&sw.snaps[idx], now); err != nil {
			errs[idx] = err
			return
		}
		errs[idx] = nil
		for i := range cands {
			sw.ects[i][idx] = sw.query(i, idx, cands[i].Job)
		}
	})
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: snapshotting %s: %w", a.servers[idx].Name(), err)
		}
	}
	return sw, nil
}

// query answers one (job, cluster) ECT from the cluster's snapshot,
// returning NoEstimate when the job can never run there. A snapshot whose
// plan changed under it — which only happens when a capacity event fires at
// the sweep instant, as the sweep itself refreshes the clusters it mutates —
// is re-taken first, so estimates never reflect capacity the cluster lost.
func (sw *sweep) query(i, idx int, j workload.Job) int64 {
	if sw.snaps[idx].Stale() {
		if err := sw.a.servers[idx].EstimateSnapshotInto(&sw.snaps[idx], sw.now); err != nil {
			return NoEstimate
		}
	}
	wall := sw.walls[i][idx]
	if wall == 0 {
		wall = sw.snaps[idx].ScaledWalltime(j)
		sw.walls[i][idx] = wall
	}
	ect, ok := sw.snaps[idx].TryEstimateCompletionScaled(j.Procs, wall)
	if !ok {
		return NoEstimate
	}
	return ect
}

// refreshCluster re-snapshots one cluster (whose queue just changed) and
// recomputes its matrix column for the remaining candidates.
func (sw *sweep) refreshCluster(idx int, cands []Candidate) error {
	if err := sw.a.servers[idx].EstimateSnapshotInto(&sw.snaps[idx], sw.now); err != nil {
		return fmt.Errorf("core: snapshotting %s: %w", sw.a.servers[idx].Name(), err)
	}
	for i := range cands {
		sw.ects[i][idx] = sw.query(i, idx, cands[i].Job)
	}
	return nil
}

// remove drops the candidate's matrix and wall-cache rows, mirroring the
// caller's removal from the candidate slice.
func (sw *sweep) remove(i int) {
	sw.ects = append(sw.ects[:i], sw.ects[i+1:]...)
	sw.walls = append(sw.walls[:i], sw.walls[i+1:]...)
}

// estimate builds the Estimate for one candidate from its matrix row. When
// hypothetical is true, the origin cluster is treated like any other cluster
// (the job is no longer queued there, as in Algorithm 2); otherwise the
// origin cluster contributes originECT, the job's current planned
// completion.
func (sw *sweep) estimate(i, origin int, originECT int64, hypothetical bool) Estimate {
	est := Estimate{BestECT: NoEstimate, SecondECT: NoEstimate, BestOtherECT: NoEstimate}
	for idx, s := range sw.a.servers {
		ect := sw.ects[i][idx]
		other := idx != origin
		if idx == origin && !hypothetical {
			ect = originECT
		}
		if ect == NoEstimate {
			continue
		}
		if ect < est.BestECT {
			est.SecondECT = est.BestECT
			est.BestECT = ect
			est.BestCluster = s.Name()
		} else if ect < est.SecondECT {
			est.SecondECT = ect
		}
		if other && ect < est.BestOtherECT {
			est.BestOtherECT = ect
			est.BestOtherCluster = s.Name()
		}
	}
	return est
}

// reallocateWithoutCancellation implements Algorithm 1 of the paper.
func (a *Agent) reallocateWithoutCancellation(now int64, totalWaiting int) (int, error) {
	cands, origins := a.gatherCandidates(totalWaiting)
	if len(cands) == 0 {
		return 0, nil
	}
	sw, err := a.newSweep(now, cands)
	if err != nil {
		return 0, err
	}
	if cap(a.scratchEsts) < len(cands) {
		a.scratchEsts = make([]Estimate, len(cands))
	}
	ests := a.scratchEsts[:len(cands)]
	for i := range cands {
		ests[i] = sw.estimate(i, origins[i], cands[i].OriginECT, false)
	}
	moves := 0
	for len(cands) > 0 {
		pick := a.realloc.Heuristic.Select(cands, ests)
		c, origin := cands[pick], origins[pick]
		est := ests[pick]

		moved := false
		destIdx := -1
		if est.BestOtherECT != NoEstimate && est.BestOtherECT+a.realloc.MinGain < c.OriginECT {
			var ok bool
			destIdx, ok = a.byName[est.BestOtherCluster]
			if !ok {
				return moves, fmt.Errorf("core: unknown destination cluster %q", est.BestOtherCluster)
			}
			switch err := a.moveJob(c, origin, destIdx, now); {
			case err == nil:
				moves++
				moved = true
			case errors.Is(err, batch.ErrJobRunning):
				// The job started between the queue snapshot and the cancel;
				// it is no longer a candidate. Skip it, keep the sweep going.
				a.skippedRaces++
			default:
				return moves, err
			}
		}

		// Drop the handled candidate.
		cands = append(cands[:pick], cands[pick+1:]...)
		origins = append(origins[:pick], origins[pick+1:]...)
		ests = append(ests[:pick], ests[pick+1:]...)
		sw.remove(pick)

		// A migration changes exactly two clusters' queues; refresh their
		// snapshots and matrix columns and rebuild the estimates. Estimates
		// against untouched clusters are reused from the matrix. When
		// nothing moved, the platform state is unchanged and everything
		// stays valid.
		if moved && len(cands) > 0 {
			if err := sw.refreshCluster(origin, cands); err != nil {
				return moves, err
			}
			if err := sw.refreshCluster(destIdx, cands); err != nil {
				return moves, err
			}
			for i := range cands {
				// Only jobs queued on a touched cluster can have a changed
				// planned completion.
				if origins[i] == origin || origins[i] == destIdx {
					if ect, err := a.servers[origins[i]].CurrentCompletion(cands[i].Job.ID); err == nil {
						cands[i].OriginECT = ect
					}
				}
				ests[i] = sw.estimate(i, origins[i], cands[i].OriginECT, false)
			}
		}
	}
	return moves, nil
}

// moveJob cancels the job on its origin cluster and submits it to the
// destination cluster, preserving and incrementing its reallocation count.
// A batch.ErrJobRunning from the cancellation is passed through unwrapped in
// meaning (via errors.Is) so the caller can skip the candidate.
func (a *Agent) moveJob(c Candidate, origin, destIdx int, now int64) error {
	job, migrated, err := a.servers[origin].Cancel(c.Job.ID, now)
	if err != nil {
		return fmt.Errorf("core: cancelling job %d on %s: %w", c.Job.ID, a.servers[origin].Name(), err)
	}
	if err := a.servers[destIdx].Submit(job, now, migrated+1); err != nil {
		// Try to put the job back where it was rather than losing it; this
		// should never fail because the slot was just freed.
		if backErr := a.servers[origin].Submit(job, now, migrated); backErr != nil {
			return fmt.Errorf("core: job %d lost during reallocation: %v (restore failed: %v)", job.ID, err, backErr)
		}
		return fmt.Errorf("core: resubmitting job %d to %s: %w", job.ID, a.servers[destIdx].Name(), err)
	}
	a.location[job.ID] = destIdx
	a.totalReallocations++
	return nil
}

// reallocateWithCancellation implements Algorithm 2 of the paper: cancel all
// waiting jobs everywhere, then re-place them one at a time in heuristic
// order on the cluster with the minimum estimated completion time.
func (a *Agent) reallocateWithCancellation(now int64, totalWaiting int) (int, error) {
	cands, origins := a.gatherCandidates(totalWaiting)
	if len(cands) == 0 {
		return 0, nil
	}
	// Cancel every waiting job. A job that started since the queue snapshot
	// is skipped (it is no longer reallocatable), not a fatal error.
	keptC := cands[:0]
	keptO := origins[:0]
	for i, c := range cands {
		job, migrated, err := a.servers[origins[i]].Cancel(c.Job.ID, now)
		if errors.Is(err, batch.ErrJobRunning) {
			a.skippedRaces++
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("core: cancelling job %d on %s: %w", c.Job.ID, a.servers[origins[i]].Name(), err)
		}
		c.Job = job
		c.Reallocations = migrated
		keptC = append(keptC, c)
		keptO = append(keptO, origins[i])
	}
	cands, origins = keptC, keptO
	if len(cands) == 0 {
		return 0, nil
	}
	// Snapshot the emptied queues once; each placement below changes exactly
	// one cluster, whose snapshot and matrix column are then refreshed.
	sw, err := a.newSweep(now, cands)
	if err != nil {
		return 0, err
	}
	moves := 0
	if cap(a.scratchEsts) < len(cands) {
		a.scratchEsts = make([]Estimate, len(cands))
	}
	ests := a.scratchEsts[:len(cands)]
	for len(cands) > 0 {
		// The origin cluster answers hypothetically because the job is no
		// longer queued there.
		ests = ests[:len(cands)]
		for i := range cands {
			cands[i].OriginECT = sw.ects[i][origins[i]]
			ests[i] = sw.estimate(i, origins[i], cands[i].OriginECT, true)
		}
		pick := a.realloc.Heuristic.Select(cands, ests)
		c, origin, est := cands[pick], origins[pick], ests[pick]

		destIdx := origin
		if est.BestCluster != "" {
			if idx, ok := a.byName[est.BestCluster]; ok {
				destIdx = idx
			}
		}
		migrated := c.Reallocations
		if destIdx != origin {
			migrated++
			moves++
			a.totalReallocations++
		}
		if err := a.servers[destIdx].Submit(c.Job, now, migrated); err != nil {
			return moves, fmt.Errorf("core: resubmitting job %d to %s: %w", c.Job.ID, a.servers[destIdx].Name(), err)
		}
		a.location[c.Job.ID] = destIdx

		cands = append(cands[:pick], cands[pick+1:]...)
		origins = append(origins[:pick], origins[pick+1:]...)
		sw.remove(pick)
		if len(cands) > 0 {
			if err := sw.refreshCluster(destIdx, cands); err != nil {
				return moves, err
			}
		}
	}
	return moves, nil
}
