package experiment

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// TestCampaignCapacityScenarios runs the campaign harness over the two
// capacity-dynamics scenarios under the cancellation algorithm, with a
// severity override and the requeue policy, covering the sweep path the
// -outage-* flags drive.
func TestCampaignCapacityScenarios(t *testing.T) {
	camp, err := Run(CampaignConfig{
		Fraction:   0.02,
		Scenarios:  []workload.ScenarioName{"jan-maint", "jan-outage"},
		Algorithms: []core.Algorithm{core.WithCancellation},
		Heuristics: []core.Heuristic{core.MinMin()},
		Outage:     &OutageSpec{Severity: 0.75, Policy: "requeue"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios x 2 het x 2 policies x (baseline + MinMin-C) = 16 runs.
	if camp.Experiments != 16 {
		t.Fatalf("experiments = %d, want 16", camp.Experiments)
	}
	for _, sc := range []workload.ScenarioName{"jan-maint", "jan-outage"} {
		key := Key{Scenario: string(sc), Het: "homogeneous", Policy: "FCFS",
			Algorithm: core.WithCancellation.String(), Heuristic: "MinMin"}
		cmp, ok := camp.Comparisons[key]
		if !ok {
			t.Fatalf("no comparison stored for %v", key)
		}
		if cmp.TotalJobs == 0 {
			t.Fatalf("%s: comparison over zero jobs", sc)
		}
	}
}

// TestCampaignOutageSpecValidation checks that a bad outage cluster surfaces
// as a campaign error instead of a silent static run.
func TestCampaignOutageSpecValidation(t *testing.T) {
	_, err := Run(CampaignConfig{
		Fraction:  0.01,
		Scenarios: []workload.ScenarioName{"jan"},
		Outage:    &OutageSpec{Cluster: "atlantis", Start: 100, Duration: 100, Severity: 1},
	})
	if err == nil {
		t.Fatal("unknown outage cluster accepted")
	}
}

func TestEnumerateMatchesPaperCount(t *testing.T) {
	exps := Enumerate(DefaultScenarios(), DefaultHeterogeneities(), DefaultPolicies(), DefaultAlgorithms(), core.Heuristics())
	if len(exps) != PaperExperimentCount {
		t.Fatalf("enumerated %d experiments, the paper runs %d", len(exps), PaperExperimentCount)
	}
	baselines := 0
	for _, e := range exps {
		if e.IsBaseline() {
			baselines++
		}
	}
	if baselines != 28 {
		t.Fatalf("%d baselines, the paper has 28 reference experiments", baselines)
	}
}

func TestExperimentNaming(t *testing.T) {
	e := Experiment{
		Scenario:      "apr",
		Heterogeneity: platform.Heterogeneous,
		Policy:        batch.CBF,
		Algorithm:     core.WithCancellation,
		Heuristic:     core.MinMin(),
	}
	if e.HeuristicName() != "MinMin-C" {
		t.Fatalf("HeuristicName = %q, want MinMin-C (cancellation postfix)", e.HeuristicName())
	}
	if !strings.Contains(e.String(), "apr/heterogeneous/CBF") {
		t.Fatalf("String = %q", e.String())
	}
	base := Experiment{Scenario: "apr", Algorithm: core.NoReallocation}
	if base.HeuristicName() != "none" || !base.IsBaseline() {
		t.Fatalf("baseline naming broken: %q", base.HeuristicName())
	}
	e.Algorithm = core.WithoutCancellation
	if e.HeuristicName() != "MinMin" {
		t.Fatalf("HeuristicName = %q, want MinMin without postfix", e.HeuristicName())
	}
}

func TestTablesSpecs(t *testing.T) {
	tables := Tables()
	if len(tables) != 16 {
		t.Fatalf("%d tables, the paper has 16 result tables (2..17)", len(tables))
	}
	for i, spec := range tables {
		if spec.ID != i+2 {
			t.Fatalf("table %d has ID %d", i, spec.ID)
		}
		if spec.Caption == "" {
			t.Fatalf("table %d has no caption", spec.ID)
		}
		if spec.Metric == MetricReallocations && spec.HasAverage {
			t.Fatalf("table %d: reallocation-count tables have no AVG column in the paper", spec.ID)
		}
	}
	if _, err := TableByID(1); err == nil {
		t.Fatal("table 1 is not a result table")
	}
	if _, err := TableByID(18); err == nil {
		t.Fatal("table 18 does not exist")
	}
	spec, err := TableByID(16)
	if err != nil || spec.Metric != MetricResponse || spec.Algorithm != core.WithCancellation || spec.Heterogeneity != platform.Homogeneous {
		t.Fatalf("table 16 spec = %+v, %v", spec, err)
	}
}

func TestMetricKindString(t *testing.T) {
	for _, k := range []MetricKind{MetricImpacted, MetricReallocations, MetricEarlier, MetricResponse} {
		if k.String() == "unknown" {
			t.Fatalf("metric %d has no name", k)
		}
	}
	if MetricKind(99).String() != "unknown" {
		t.Fatal("invalid metric kind not flagged")
	}
}

// runTinyCampaign runs a reduced campaign once and shares it across the
// table-oriented tests (building the campaign dominates the test time).
var tinyCampaign *Campaign

func getTinyCampaign(t *testing.T) *Campaign {
	t.Helper()
	if tinyCampaign != nil {
		return tinyCampaign
	}
	var buf bytes.Buffer
	camp, err := Run(CampaignConfig{
		Fraction:  0.004,
		Seed:      7,
		Scenarios: []workload.ScenarioName{"jan", "apr"},
		Heuristics: []core.Heuristic{
			core.MCT(), core.MinMin(),
		},
		Progress: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no progress output written")
	}
	tinyCampaign = camp
	return camp
}

func TestCampaignRunCountsAndKeys(t *testing.T) {
	camp := getTinyCampaign(t)
	// 2 scenarios x 2 het x 2 policies = 8 cells; each cell = 1 baseline +
	// 2 algorithms x 2 heuristics = 5 experiments.
	if camp.Experiments != 40 {
		t.Fatalf("campaign ran %d experiments, want 40", camp.Experiments)
	}
	if len(camp.Baselines) != 8 {
		t.Fatalf("%d baselines, want 8", len(camp.Baselines))
	}
	if len(camp.Comparisons) != 32 {
		t.Fatalf("%d comparisons, want 32", len(camp.Comparisons))
	}
	keys := camp.SortedKeys()
	if len(keys) != 32 {
		t.Fatalf("SortedKeys returned %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Fatal("duplicate keys")
		}
	}
	// Every comparison is retrievable through the typed accessor.
	if _, ok := camp.Comparison("apr", platform.Heterogeneous, batch.CBF, core.WithCancellation, "MinMin"); !ok {
		t.Fatal("expected comparison missing")
	}
	if _, ok := camp.Comparison("apr", platform.Heterogeneous, batch.CBF, core.WithCancellation, "Sufferage"); ok {
		t.Fatal("comparison for a heuristic outside the campaign reported present")
	}
}

func TestCampaignMetricsSanity(t *testing.T) {
	camp := getTinyCampaign(t)
	for k, cmp := range camp.Comparisons {
		if cmp.ImpactedPercent < 0 || cmp.ImpactedPercent > 100 {
			t.Fatalf("%v: impacted%% out of range: %v", k, cmp.ImpactedPercent)
		}
		if cmp.EarlierPercent < 0 || cmp.EarlierPercent > 100 {
			t.Fatalf("%v: earlier%% out of range: %v", k, cmp.EarlierPercent)
		}
		if cmp.RelativeResponseTime < 0 {
			t.Fatalf("%v: negative relative response time", k)
		}
		if cmp.Reallocations < 0 {
			t.Fatalf("%v: negative reallocation count", k)
		}
		if cmp.TotalJobs == 0 {
			t.Fatalf("%v: comparison covers no jobs", k)
		}
	}
}

func TestBuildAndFormatTables(t *testing.T) {
	camp := getTinyCampaign(t)
	for id := 2; id <= 17; id++ {
		table, err := camp.BuildTable(id)
		if err != nil {
			t.Fatalf("table %d: %v", id, err)
		}
		// Rows: 2 policies x 2 heuristics of the reduced campaign.
		if len(table.Rows) != 4 {
			t.Fatalf("table %d has %d rows, want 4", id, len(table.Rows))
		}
		if len(table.Scenarios) != 2 {
			t.Fatalf("table %d has %d scenario columns", id, len(table.Scenarios))
		}
		text := table.Format()
		if !strings.Contains(text, "Table") || !strings.Contains(text, "Heuristic") {
			t.Fatalf("table %d formatting missing headers:\n%s", id, text)
		}
		if table.Spec.Algorithm == core.WithCancellation && !strings.Contains(text, "-C") {
			t.Fatalf("table %d (cancellation) rows lack the -C postfix:\n%s", id, text)
		}
		csv := table.CSV()
		if !strings.HasPrefix(csv, "table,policy,heuristic") {
			t.Fatalf("table %d CSV header wrong", id)
		}
		if got := strings.Count(csv, "\n"); got != 5 { // header + 4 rows
			t.Fatalf("table %d CSV has %d lines, want 5", id, got)
		}
	}
	if _, err := camp.BuildTable(42); err == nil {
		t.Fatal("invalid table ID accepted")
	}
}

func TestCompareAlgorithmsSection(t *testing.T) {
	camp := getTinyCampaign(t)
	rows := CompareAlgorithms(camp)
	if len(rows) == 0 {
		t.Fatal("no comparison rows")
	}
	// 2 het x 2 policies x 2 heuristics = 8 aggregate rows.
	if len(rows) != 8 {
		t.Fatalf("%d aggregate rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.ScenariosUsed != 2 {
			t.Fatalf("row %+v aggregates %d scenarios, want 2", r, r.ScenariosUsed)
		}
		if r.ResponseAlg1 <= 0 || r.ResponseAlg2 <= 0 {
			t.Fatalf("row %+v has non-positive response ratios", r)
		}
	}
	text := FormatComparison(rows)
	if !strings.Contains(text, "RespAlg1") || !strings.Contains(text, "CancellationWins") {
		t.Fatalf("comparison formatting missing columns:\n%s", text)
	}
}

// CompareAlgorithms is a method; this helper keeps the test readable.
func CompareAlgorithms(c *Campaign) []AlgorithmComparison { return c.CompareAlgorithms() }

func TestTable1Rendering(t *testing.T) {
	out, err := Table1(0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paper reference counts") || !strings.Contains(out, "generated traces") {
		t.Fatalf("Table 1 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "33250") {
		t.Fatal("paper reference count for April missing")
	}
}

func TestCampaignConfigDefaults(t *testing.T) {
	cfg := CampaignConfig{}.withDefaults()
	if cfg.Fraction != 1 || cfg.Seed == 0 || cfg.Parallelism <= 0 || cfg.Mapping != "MCT" {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.Scenarios) != 7 || len(cfg.Heterogeneities) != 2 || len(cfg.Policies) != 2 ||
		len(cfg.Algorithms) != 2 || len(cfg.Heuristics) != 6 {
		t.Fatalf("default dimensions wrong: %+v", cfg)
	}
}

// TestCampaignRunCtxCancelled checks the campaign's cancellation contract:
// a cancelled context aborts the fan-out but the partial Campaign (with
// every completed cell merged) still comes back alongside the stats.
func TestCampaignRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // before the first cell starts: everything must be skipped
	camp, stats, err := RunCtx(ctx, CampaignConfig{
		Fraction:  0.003,
		Scenarios: []workload.ScenarioName{"jan", "feb"},
		Policies:  []batch.Policy{batch.FCFS},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if camp == nil {
		t.Fatal("cancelled campaign returned no partial Campaign")
	}
	if stats.Skipped != stats.Tasks || stats.Completed != 0 {
		t.Fatalf("pre-cancelled campaign ran cells: %+v", stats)
	}
	if len(camp.Comparisons) != 0 || camp.Experiments != 0 {
		t.Fatalf("skipped cells still produced results: %d comparisons, %d experiments",
			len(camp.Comparisons), camp.Experiments)
	}
}
