package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/workload"
)

// CampaignConfig parameterises a campaign run.
type CampaignConfig struct {
	// Fraction scales the workload sizes; 1.0 reproduces the paper's trace
	// sizes, smaller values are used by the test-suite and the benchmarks.
	Fraction float64
	// Seed makes the synthetic traces reproducible.
	Seed uint64
	// Scenarios, Heterogeneities, Policies, Algorithms, Heuristics restrict
	// the campaign; empty slices select the paper's defaults.
	Scenarios       []workload.ScenarioName
	Heterogeneities []platform.Heterogeneity
	Policies        []batch.Policy
	Algorithms      []core.Algorithm
	Heuristics      []core.Heuristic
	// Parallelism bounds the number of simulations run concurrently; 0
	// means one worker per CPU.
	Parallelism int
	// Progress, when non-nil, receives one line per finished experiment.
	Progress io.Writer
	// ReallocPeriod and MinGain override the paper's defaults (3600 s and
	// 60 s) when positive; the ablation benchmarks use them.
	ReallocPeriod int64
	MinGain       int64
	// Mapping overrides the initial mapping policy name ("MCT" by default).
	Mapping string
	// Outage, when non-nil, applies one capacity window to every platform
	// of the campaign; severity sweeps run one campaign per severity value.
	// Scenario names with a "-maint"/"-outage" suffix get their default
	// window even when Outage is nil.
	Outage *OutageSpec
}

// OutageSpec describes the capacity window a campaign applies to its
// platforms, in façade-style plain values so it can be driven from flags.
type OutageSpec struct {
	// Cluster names the affected cluster ("" = the platform's first).
	Cluster string
	// Start and Duration place the window in trace time (seconds).
	Start, Duration int64
	// Severity is the fraction of cores lost in (0, 1]; non-positive
	// values mean a full outage.
	Severity float64
	// Announced selects a maintenance window instead of a surprise outage.
	Announced bool
	// Policy is "kill" (default) or "requeue" for displaced running jobs.
	Policy string
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Fraction <= 0 {
		c.Fraction = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = DefaultScenarios()
	}
	if len(c.Heterogeneities) == 0 {
		c.Heterogeneities = DefaultHeterogeneities()
	}
	if len(c.Policies) == 0 {
		c.Policies = DefaultPolicies()
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = DefaultAlgorithms()
	}
	if len(c.Heuristics) == 0 {
		c.Heuristics = core.Heuristics()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Mapping == "" {
		c.Mapping = "MCT"
	}
	return c
}

// Key identifies one non-baseline experiment inside a campaign.
type Key struct {
	Scenario  string
	Het       string
	Policy    string
	Algorithm string
	Heuristic string // plain heuristic name, without the "-C" postfix
}

// Campaign holds the outcome of a campaign: one metrics.Comparison per
// non-baseline experiment and one summary per baseline.
type Campaign struct {
	Config      CampaignConfig
	Comparisons map[Key]metrics.Comparison
	Baselines   map[Key]metrics.Summary
	Experiments int
}

// Run executes the campaign described by cfg. Baselines are computed once
// per (scenario, heterogeneity, policy) triple and shared by the twelve
// reallocation runs compared against them.
func Run(cfg CampaignConfig) (*Campaign, error) {
	camp, _, err := RunCtx(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return camp, nil
}

// RunCtx is Run under a context. Cancelling ctx stops new cells from
// starting; cells already running finish and their results are merged, so
// the returned Campaign holds every completed cell even on cancellation
// (RunStats say how many cells completed, failed or were skipped). The
// error is the lowest-index cell failure, or the cancellation when the
// campaign was cut short without one — in both cases alongside the partial
// Campaign, which a CLI can still summarise before exiting non-zero.
func RunCtx(ctx context.Context, cfg CampaignConfig) (*Campaign, runner.RunStats, error) {
	cfg = cfg.withDefaults()
	camp := &Campaign{
		Config:      cfg,
		Comparisons: make(map[Key]metrics.Comparison),
		Baselines:   make(map[Key]metrics.Summary),
	}

	// Pre-generate the traces once per scenario.
	traces := make(map[workload.ScenarioName]*workload.Trace, len(cfg.Scenarios))
	for _, sc := range cfg.Scenarios {
		t, err := workload.Scenario(sc, cfg.Fraction, cfg.Seed)
		if err != nil {
			return nil, runner.RunStats{}, fmt.Errorf("experiment: generating scenario %s: %w", sc, err)
		}
		traces[sc] = t
	}

	type cell struct {
		scenario workload.ScenarioName
		het      platform.Heterogeneity
		policy   batch.Policy
	}
	var cells []cell
	for _, sc := range cfg.Scenarios {
		for _, het := range cfg.Heterogeneities {
			for _, pol := range cfg.Policies {
				cells = append(cells, cell{sc, het, pol})
			}
		}
	}

	// The cells fan out over the campaign runner: every worker owns one
	// pooled simulator that all thirteen runs of each of its cells reuse,
	// and finished cells stream into the campaign maps as they complete.
	type cellOutcome struct {
		comparisons map[Key]metrics.Comparison
		baseline    metrics.Summary
		experiments int
	}
	var firstErr runner.FirstError
	stats, cerr := runner.StreamCtx(ctx, len(cells), runner.Options{Workers: cfg.Parallelism},
		func(_ context.Context, i int, sim *core.Simulator) (cellOutcome, error) {
			cl := cells[i]
			comparisons, baseline, n, err := runCell(sim, cfg, traces[cl.scenario], cl.scenario, cl.het, cl.policy)
			return cellOutcome{comparisons, baseline, n}, err
		},
		func(i int, out cellOutcome, err error) {
			if err != nil {
				firstErr.Observe(i, err)
				return
			}
			cl := cells[i]
			//gridlint:unordered-ok map-to-map merge of disjoint keys
			for k, v := range out.comparisons {
				camp.Comparisons[k] = v
			}
			baseKey := Key{Scenario: string(cl.scenario), Het: cl.het.String(), Policy: cl.policy.String(), Algorithm: core.NoReallocation.String(), Heuristic: "none"}
			camp.Baselines[baseKey] = out.baseline
			camp.Experiments += out.experiments
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "done %s/%s/%s (%d experiments)\n", cl.scenario, cl.het, cl.policy, out.experiments)
			}
		})
	// runCell errors are already "experiment:"-prefixed and self-locating.
	if err := firstErr.Err(); err != nil {
		return camp, stats, err
	}
	if cerr != nil {
		return camp, stats, fmt.Errorf("experiment: campaign cancelled after %d of %d cells: %w",
			stats.Completed, stats.Tasks, cerr)
	}
	return camp, stats, nil
}

// runCell runs the baseline plus every (algorithm, heuristic) variant for
// one (scenario, heterogeneity, policy) triple, all on the worker's pooled
// simulator.
func runCell(sim *core.Simulator, cfg CampaignConfig, trace *workload.Trace, sc workload.ScenarioName,
	het platform.Heterogeneity, policy batch.Policy) (map[Key]metrics.Comparison, metrics.Summary, int, error) {

	plat := platform.ForScenario(string(sc), het)
	plat, outagePolicy, err := applyCampaignCapacity(cfg, plat, trace, string(sc))
	if err != nil {
		return nil, metrics.Summary{}, 0, err
	}
	mapping, err := core.MappingByName(cfg.Mapping, cfg.Seed)
	if err != nil {
		return nil, metrics.Summary{}, 0, err
	}

	baselineCfg := core.Config{
		Platform:       plat,
		Policy:         policy,
		Trace:          trace,
		Mapping:        mapping,
		OutagePolicy:   outagePolicy,
		ClampOversized: true,
	}
	baseline, err := sim.Run(baselineCfg)
	if err != nil {
		return nil, metrics.Summary{}, 0, fmt.Errorf("experiment: baseline %s/%s/%s: %w", sc, het, policy, err)
	}
	count := 1
	comparisons := make(map[Key]metrics.Comparison)

	for _, alg := range cfg.Algorithms {
		if alg == core.NoReallocation {
			continue
		}
		for _, h := range cfg.Heuristics {
			runCfg := baselineCfg
			// Each run needs a fresh mapping policy instance so stateful
			// policies (RoundRobin, Random) do not leak state across runs.
			runCfg.Mapping, err = core.MappingByName(cfg.Mapping, cfg.Seed)
			if err != nil {
				return nil, metrics.Summary{}, 0, err
			}
			runCfg.Realloc = core.ReallocConfig{
				Algorithm: alg,
				Heuristic: h,
				Period:    cfg.ReallocPeriod,
				MinGain:   cfg.MinGain,
			}
			res, err := sim.Run(runCfg)
			if err != nil {
				return nil, metrics.Summary{}, 0, fmt.Errorf("experiment: %s/%s/%s/%s/%s: %w", sc, het, policy, alg, h.Name(), err)
			}
			count++
			cmp, err := metrics.Compare(baseline, res)
			if err != nil {
				return nil, metrics.Summary{}, 0, err
			}
			key := Key{
				Scenario:  string(sc),
				Het:       het.String(),
				Policy:    policy.String(),
				Algorithm: alg.String(),
				Heuristic: h.Name(),
			}
			comparisons[key] = cmp
		}
	}
	return comparisons, metrics.Summarize(baseline), count, nil
}

// applyCampaignCapacity resolves the campaign's OutageSpec and scenario
// variant through the shared platform.ApplyCapacityRequest (the same
// resolution the façade uses) and the displaced-job policy. Static
// campaigns pass through untouched.
func applyCampaignCapacity(cfg CampaignConfig, plat platform.Platform, trace *workload.Trace,
	scenario string) (platform.Platform, batch.OutagePolicy, error) {

	var req platform.CapacityRequest
	policyName := ""
	if cfg.Outage != nil {
		req = platform.CapacityRequest{
			Cluster:   cfg.Outage.Cluster,
			Start:     cfg.Outage.Start,
			Duration:  cfg.Outage.Duration,
			Severity:  cfg.Outage.Severity,
			Announced: cfg.Outage.Announced,
		}
		policyName = cfg.Outage.Policy
	}
	outagePolicy, err := batch.ParseOutagePolicy(policyName)
	if err != nil {
		return platform.Platform{}, 0, err
	}
	plat, err = platform.ApplyCapacityRequest(plat, scenario, trace.LastSubmit(), req)
	if err != nil {
		return platform.Platform{}, 0, fmt.Errorf("experiment: %w", err)
	}
	return plat, outagePolicy, nil
}

// Comparison returns the stored comparison for the given coordinates.
func (c *Campaign) Comparison(scenario workload.ScenarioName, het platform.Heterogeneity,
	policy batch.Policy, alg core.Algorithm, heuristic string) (metrics.Comparison, bool) {
	k := Key{
		Scenario:  string(scenario),
		Het:       het.String(),
		Policy:    policy.String(),
		Algorithm: alg.String(),
		Heuristic: heuristic,
	}
	cmp, ok := c.Comparisons[k]
	return cmp, ok
}

// SortedKeys returns the comparison keys in a deterministic order.
func (c *Campaign) SortedKeys() []Key {
	keys := make([]Key, 0, len(c.Comparisons))
	//gridlint:unordered-ok keys are collected then sorted
	for k := range c.Comparisons {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Het != b.Het {
			return a.Het < b.Het
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Heuristic < b.Heuristic
	})
	return keys
}
