package experiment

import (
	"fmt"
	"sort"
	"strings"

	"gridrealloc/internal/core"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/stats"
	"gridrealloc/internal/workload"
)

// MetricKind selects which of the paper's four metrics a table reports.
type MetricKind int

// The four metrics of the paper's tables.
const (
	// MetricImpacted is the percentage of jobs whose completion time changed
	// (Tables 2, 3, 10, 11).
	MetricImpacted MetricKind = iota
	// MetricReallocations is the number of migrations (Tables 4, 5, 12, 13).
	MetricReallocations
	// MetricEarlier is the percentage of impacted jobs finishing earlier
	// (Tables 6, 7, 14, 15).
	MetricEarlier
	// MetricResponse is the relative average response time (Tables 8, 9, 16,
	// 17).
	MetricResponse
)

// String returns a short metric label.
func (m MetricKind) String() string {
	switch m {
	case MetricImpacted:
		return "impacted %"
	case MetricReallocations:
		return "reallocations"
	case MetricEarlier:
		return "earlier %"
	case MetricResponse:
		return "relative response time"
	default:
		return "unknown"
	}
}

// TableSpec describes one of the paper's result tables.
type TableSpec struct {
	// ID is the table number in the paper (2..17).
	ID int
	// Metric is the value reported in every cell.
	Metric MetricKind
	// Algorithm is the reallocation algorithm of the table.
	Algorithm core.Algorithm
	// Heterogeneity is the platform variant of the table.
	Heterogeneity platform.Heterogeneity
	// Caption is the paper's caption.
	Caption string
	// HasAverage reports whether the table carries an AVG column (the
	// reallocation-count tables do not).
	HasAverage bool
}

// Tables lists the sixteen result tables of the paper in order.
func Tables() []TableSpec {
	return []TableSpec{
		{2, MetricImpacted, core.WithoutCancellation, platform.Homogeneous, "Percentage of jobs that have their completion time changed when reallocation is performed on homogeneous platforms.", true},
		{3, MetricImpacted, core.WithoutCancellation, platform.Heterogeneous, "Percentage of jobs that have their completion time changed when reallocation is performed on heterogeneous platforms.", true},
		{4, MetricReallocations, core.WithoutCancellation, platform.Homogeneous, "Number of reallocations on homogeneous platforms.", false},
		{5, MetricReallocations, core.WithoutCancellation, platform.Heterogeneous, "Number of reallocations on heterogeneous platforms.", false},
		{6, MetricEarlier, core.WithoutCancellation, platform.Homogeneous, "Percentage of jobs finishing earlier when reallocation is performed on homogeneous platforms.", true},
		{7, MetricEarlier, core.WithoutCancellation, platform.Heterogeneous, "Percentage of jobs finishing earlier when reallocation is performed on heterogeneous platforms.", true},
		{8, MetricResponse, core.WithoutCancellation, platform.Homogeneous, "Relative average response time on homogeneous platforms.", true},
		{9, MetricResponse, core.WithoutCancellation, platform.Heterogeneous, "Relative average response time on heterogeneous platforms.", true},
		{10, MetricImpacted, core.WithCancellation, platform.Homogeneous, "Percentage of jobs that have their completion time changed when reallocation with cancellation is performed on homogeneous platforms.", true},
		{11, MetricImpacted, core.WithCancellation, platform.Heterogeneous, "Percentage of jobs that have their completion time changed when reallocation with cancellation is performed on heterogeneous platforms.", true},
		{12, MetricReallocations, core.WithCancellation, platform.Homogeneous, "Number of reallocations with cancellation on homogeneous platforms.", false},
		{13, MetricReallocations, core.WithCancellation, platform.Heterogeneous, "Number of reallocations with cancellation on heterogeneous platforms.", false},
		{14, MetricEarlier, core.WithCancellation, platform.Homogeneous, "Percentage of jobs finishing earlier when reallocation with cancellation is performed on homogeneous platforms.", true},
		{15, MetricEarlier, core.WithCancellation, platform.Heterogeneous, "Percentage of jobs finishing earlier when reallocation with cancellation is performed on heterogeneous platforms.", true},
		{16, MetricResponse, core.WithCancellation, platform.Homogeneous, "Relative average response time with cancellation on homogeneous platforms.", true},
		{17, MetricResponse, core.WithCancellation, platform.Heterogeneous, "Relative average response time with cancellation on heterogeneous platforms.", true},
	}
}

// TableByID returns the spec of the numbered table.
func TableByID(id int) (TableSpec, error) {
	for _, t := range Tables() {
		if t.ID == id {
			return t, nil
		}
	}
	return TableSpec{}, fmt.Errorf("experiment: no table %d in the paper (valid: 2..17)", id)
}

// Table is a rendered result table: one row per (batch policy, heuristic),
// one column per scenario, plus an optional average column.
type Table struct {
	Spec      TableSpec
	Scenarios []string
	Rows      []TableRow
}

// TableRow is one line of a result table.
type TableRow struct {
	Policy    string
	Heuristic string
	Values    []float64 // one per scenario, in Scenarios order
	Average   float64
	Missing   []bool // true where the campaign did not include the cell
}

// BuildTable assembles the numbered table from the campaign's comparisons.
func (c *Campaign) BuildTable(id int) (Table, error) {
	spec, err := TableByID(id)
	if err != nil {
		return Table{}, err
	}
	cfg := c.Config
	table := Table{Spec: spec}
	for _, sc := range cfg.Scenarios {
		table.Scenarios = append(table.Scenarios, string(sc))
	}
	for _, policy := range cfg.Policies {
		for _, h := range cfg.Heuristics {
			row := TableRow{Policy: policy.String(), Heuristic: heuristicLabel(h.Name(), spec.Algorithm)}
			var present []float64
			for _, sc := range cfg.Scenarios {
				cmp, ok := c.Comparison(sc, spec.Heterogeneity, policy, spec.Algorithm, h.Name())
				if !ok {
					row.Values = append(row.Values, 0)
					row.Missing = append(row.Missing, true)
					continue
				}
				v := metricValue(cmp, spec.Metric)
				row.Values = append(row.Values, v)
				row.Missing = append(row.Missing, false)
				present = append(present, v)
			}
			if spec.HasAverage {
				row.Average = stats.Mean(present)
			}
			table.Rows = append(table.Rows, row)
		}
	}
	return table, nil
}

func heuristicLabel(name string, alg core.Algorithm) string {
	if alg == core.WithCancellation {
		return name + "-C"
	}
	return name
}

func metricValue(cmp metrics.Comparison, kind MetricKind) float64 {
	switch kind {
	case MetricImpacted:
		return stats.Round2(cmp.ImpactedPercent)
	case MetricReallocations:
		return float64(cmp.Reallocations)
	case MetricEarlier:
		return stats.Round2(cmp.EarlierPercent)
	case MetricResponse:
		return stats.Round2(cmp.RelativeResponseTime)
	default:
		return 0
	}
}

// Format renders the table as fixed-width text in the paper's layout
// (rows grouped by batch policy, one column per scenario, optional AVG).
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s\n", t.Spec.ID, t.Spec.Caption)
	header := fmt.Sprintf("%-6s %-14s", "Batch", "Heuristic")
	for _, sc := range t.Scenarios {
		header += fmt.Sprintf(" %10s", sc)
	}
	if t.Spec.HasAverage {
		header += fmt.Sprintf(" %10s", "AVG")
	}
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	lastPolicy := ""
	for _, row := range t.Rows {
		policy := row.Policy
		if policy == lastPolicy {
			policy = ""
		} else {
			lastPolicy = row.Policy
		}
		line := fmt.Sprintf("%-6s %-14s", policy, row.Heuristic)
		for i, v := range row.Values {
			if row.Missing[i] {
				line += fmt.Sprintf(" %10s", "-")
				continue
			}
			line += " " + formatCell(v, t.Spec.Metric)
		}
		if t.Spec.HasAverage {
			line += " " + formatCell(row.Average, t.Spec.Metric)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

func formatCell(v float64, kind MetricKind) string {
	if kind == MetricReallocations {
		return fmt.Sprintf("%10.0f", v)
	}
	return fmt.Sprintf("%10.2f", v)
}

// CSV renders the table as comma-separated values with a header row.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("table,policy,heuristic")
	for _, sc := range t.Scenarios {
		b.WriteString("," + sc)
	}
	if t.Spec.HasAverage {
		b.WriteString(",avg")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%d,%s,%s", t.Spec.ID, row.Policy, row.Heuristic)
		for i, v := range row.Values {
			if row.Missing[i] {
				b.WriteString(",")
				continue
			}
			fmt.Fprintf(&b, ",%g", v)
		}
		if t.Spec.HasAverage {
			fmt.Fprintf(&b, ",%g", row.Average)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AlgorithmComparison aggregates, per (heterogeneity, policy, heuristic),
// the average relative response time of the two algorithms, backing the
// Section 4.3 comparison of the paper.
type AlgorithmComparison struct {
	Het                  string
	Policy               string
	Heuristic            string
	ResponseAlg1         float64
	ResponseAlg2         float64
	ReallocAlg1          float64
	ReallocAlg2          float64
	ScenariosUsed        int
	CancellationIsBetter bool
}

// CompareAlgorithms builds the Section 4.3 style comparison between the
// algorithm without cancellation and the algorithm with cancellation.
func (c *Campaign) CompareAlgorithms() []AlgorithmComparison {
	type aggKey struct{ het, policy, heuristic string }
	type agg struct {
		resp1, resp2, realloc1, realloc2 []float64
	}
	// Aggregate in sorted key order: the per-group float slices feed means
	// whose rounding depends on accumulation order, and the emitted table
	// must be bit-identical across runs.
	byKey := make(map[aggKey]*agg)
	for _, k := range c.SortedKeys() {
		cmp := c.Comparisons[k]
		ak := aggKey{k.Het, k.Policy, k.Heuristic}
		a := byKey[ak]
		if a == nil {
			a = &agg{}
			byKey[ak] = a
		}
		switch k.Algorithm {
		case core.WithoutCancellation.String():
			a.resp1 = append(a.resp1, cmp.RelativeResponseTime)
			a.realloc1 = append(a.realloc1, float64(cmp.Reallocations))
		case core.WithCancellation.String():
			a.resp2 = append(a.resp2, cmp.RelativeResponseTime)
			a.realloc2 = append(a.realloc2, float64(cmp.Reallocations))
		}
	}
	var out []AlgorithmComparison
	//gridlint:unordered-ok rows are collected then sorted by their unique key
	for ak, a := range byKey {
		cmp := AlgorithmComparison{
			Het:           ak.het,
			Policy:        ak.policy,
			Heuristic:     ak.heuristic,
			ResponseAlg1:  stats.Round2(stats.Mean(a.resp1)),
			ResponseAlg2:  stats.Round2(stats.Mean(a.resp2)),
			ReallocAlg1:   stats.Round2(stats.Mean(a.realloc1)),
			ReallocAlg2:   stats.Round2(stats.Mean(a.realloc2)),
			ScenariosUsed: len(a.resp1),
		}
		cmp.CancellationIsBetter = cmp.ResponseAlg2 < cmp.ResponseAlg1
		out = append(out, cmp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Het != out[j].Het {
			return out[i].Het < out[j].Het
		}
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		return out[i].Heuristic < out[j].Heuristic
	})
	return out
}

// FormatComparison renders the Section 4.3 comparison as fixed-width text.
func FormatComparison(rows []AlgorithmComparison) string {
	var b strings.Builder
	b.WriteString("Section 4.3 comparison: average relative response time and reallocations per algorithm\n")
	header := fmt.Sprintf("%-14s %-6s %-12s %12s %12s %12s %12s %s",
		"Platform", "Batch", "Heuristic", "RespAlg1", "RespAlg2", "MovesAlg1", "MovesAlg2", "CancellationWins")
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-6s %-12s %12.2f %12.2f %12.0f %12.0f %v\n",
			r.Het, r.Policy, r.Heuristic, r.ResponseAlg1, r.ResponseAlg2, r.ReallocAlg1, r.ReallocAlg2, r.CancellationIsBetter)
	}
	return b.String()
}

// Table1 renders the reproduction of Table 1 (job counts of the generated
// monthly traces) together with the paper's reference counts.
func Table1(fraction float64, seed uint64) (string, error) {
	if fraction <= 0 {
		fraction = 1
	}
	measured := make(map[string][4]int)
	for _, m := range workload.Months() {
		traces, err := workload.MonthScenario(m, fraction, seed)
		if err != nil {
			return "", err
		}
		var counts [4]int
		for i, t := range traces {
			counts[i] = t.Len()
			counts[3] += t.Len()
		}
		measured[m.String()] = counts
	}
	var b strings.Builder
	b.WriteString("Table 1 (paper reference counts):\n")
	b.WriteString(workload.FormatTable1(workload.Table1Counts()))
	fmt.Fprintf(&b, "\nTable 1 (generated traces, fraction=%.3f):\n", fraction)
	b.WriteString(workload.FormatTable1(measured))
	return b.String(), nil
}
