// Package experiment enumerates and runs the simulation campaign of the
// paper's evaluation (Section 4): 364 simulations covering seven workload
// scenarios, homogeneous and heterogeneous platforms, FCFS and CBF local
// policies, the two reallocation algorithms and the six heuristics, plus the
// 28 no-reallocation baselines. It renders the results in the exact layout
// of Tables 2 through 17.
package experiment

import (
	"fmt"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// Experiment identifies one simulation run of the campaign.
type Experiment struct {
	// Scenario is one of the seven workload scenarios ("jan".."jun",
	// "pwa-g5k").
	Scenario workload.ScenarioName
	// Heterogeneity selects the homogeneous or heterogeneous platform
	// variant.
	Heterogeneity platform.Heterogeneity
	// Policy is the local batch policy used on every cluster.
	Policy batch.Policy
	// Algorithm is the reallocation algorithm (NoReallocation for the
	// baselines).
	Algorithm core.Algorithm
	// Heuristic is nil for the baselines.
	Heuristic core.Heuristic
}

// HeuristicName returns the heuristic's table name, postfixed with "-C" for
// the cancellation algorithm as in the paper, or "none" for baselines.
func (e Experiment) HeuristicName() string {
	if e.Heuristic == nil {
		return "none"
	}
	name := e.Heuristic.Name()
	if e.Algorithm == core.WithCancellation {
		name += "-C"
	}
	return name
}

// String renders a compact identifier such as
// "apr/heterogeneous/CBF/realloc-cancel/MinMin-C".
func (e Experiment) String() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", e.Scenario, e.Heterogeneity, e.Policy, e.Algorithm, e.HeuristicName())
}

// IsBaseline reports whether the experiment is one of the 28 reference runs
// without reallocation.
func (e Experiment) IsBaseline() bool { return e.Algorithm == core.NoReallocation }

// Enumerate lists the full campaign: for every scenario, heterogeneity and
// batch policy, one baseline plus one run per (algorithm, heuristic) pair.
// With the paper's parameters this yields 7×2×2×(1+2×6) = 364 experiments.
func Enumerate(scenarios []workload.ScenarioName, hets []platform.Heterogeneity, policies []batch.Policy,
	algorithms []core.Algorithm, heuristics []core.Heuristic) []Experiment {

	var out []Experiment
	for _, sc := range scenarios {
		for _, het := range hets {
			for _, pol := range policies {
				out = append(out, Experiment{Scenario: sc, Heterogeneity: het, Policy: pol, Algorithm: core.NoReallocation})
				for _, alg := range algorithms {
					if alg == core.NoReallocation {
						continue
					}
					for _, h := range heuristics {
						out = append(out, Experiment{Scenario: sc, Heterogeneity: het, Policy: pol, Algorithm: alg, Heuristic: h})
					}
				}
			}
		}
	}
	return out
}

// DefaultScenarios returns the seven scenarios of the paper.
func DefaultScenarios() []workload.ScenarioName { return workload.ScenarioNames() }

// DefaultHeterogeneities returns the homogeneous and heterogeneous variants.
func DefaultHeterogeneities() []platform.Heterogeneity {
	return []platform.Heterogeneity{platform.Homogeneous, platform.Heterogeneous}
}

// DefaultPolicies returns FCFS and CBF.
func DefaultPolicies() []batch.Policy { return []batch.Policy{batch.FCFS, batch.CBF} }

// DefaultAlgorithms returns the two reallocation algorithms.
func DefaultAlgorithms() []core.Algorithm {
	return []core.Algorithm{core.WithoutCancellation, core.WithCancellation}
}

// PaperExperimentCount is the number of simulations of the full campaign,
// including the 28 baselines.
const PaperExperimentCount = 364
