package experiment

import (
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/golden"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// goldenCampaign hand-builds a small campaign with fixed comparison values,
// so the golden files pin the rendering — column layout, rounding, missing
// cells, the AVG column, heuristic "-C" postfixes — without depending on
// simulation results.
func goldenCampaign() *Campaign {
	cfg := CampaignConfig{
		Scenarios:       []workload.ScenarioName{"jan", "apr"},
		Heterogeneities: []platform.Heterogeneity{platform.Homogeneous},
		Policies:        []batch.Policy{batch.FCFS, batch.CBF},
		Algorithms:      []core.Algorithm{core.WithoutCancellation, core.WithCancellation},
		Heuristics:      []core.Heuristic{core.MCT(), core.MinMin()},
	}.withDefaults()
	// withDefaults fills the sweep lists we left empty on purpose; restore
	// the restricted ones so the table stays small.
	cfg.Scenarios = []workload.ScenarioName{"jan", "apr"}
	cfg.Heterogeneities = []platform.Heterogeneity{platform.Homogeneous}
	cfg.Policies = []batch.Policy{batch.FCFS, batch.CBF}
	cfg.Algorithms = []core.Algorithm{core.WithoutCancellation, core.WithCancellation}
	cfg.Heuristics = []core.Heuristic{core.MCT(), core.MinMin()}

	camp := &Campaign{Config: cfg, Comparisons: make(map[Key]metrics.Comparison)}
	add := func(sc, alg, heur string, impacted float64, moves int64, earlier, resp float64) {
		camp.Comparisons[Key{Scenario: sc, Het: "homogeneous", Policy: "FCFS", Algorithm: alg, Heuristic: heur}] = metrics.Comparison{
			ImpactedPercent: impacted, Reallocations: moves, EarlierPercent: earlier, RelativeResponseTime: resp,
		}
	}
	add("jan", "realloc", "Mct", 12.345, 42, 61.5, 0.934)
	add("jan", "realloc", "MinMin", 10.2, 37, 55.25, 0.967)
	add("apr", "realloc", "Mct", 30.0, 128, 48.125, 0.851)
	// apr/realloc/MinMin intentionally missing: the table must render "-".
	add("jan", "realloc-cancel", "Mct", 44.44, 301, 52.0, 1.049)
	add("apr", "realloc-cancel", "Mct", 18.75, 99, 67.8, 0.992)
	add("jan", "realloc-cancel", "MinMin", 9.999, 12, 50.0, 1.0)
	add("apr", "realloc-cancel", "MinMin", 21.5, 57, 49.5, 0.875)
	// CBF rows are left entirely missing so the policy grouping with "-"
	// cells is pinned too.
	return camp
}

func TestGoldenTableFormat(t *testing.T) {
	camp := goldenCampaign()
	t2, err := camp.BuildTable(2) // impacted %, Algorithm 1, homogeneous, AVG column
	if err != nil {
		t.Fatal(err)
	}
	golden.Compare(t, "table2_format.golden", t2.Format())

	t4, err := camp.BuildTable(4) // reallocation counts, no AVG column
	if err != nil {
		t.Fatal(err)
	}
	golden.Compare(t, "table4_format.golden", t4.Format())

	t10, err := camp.BuildTable(10) // with-cancellation, "-C" heuristic labels
	if err != nil {
		t.Fatal(err)
	}
	golden.Compare(t, "table10_format.golden", t10.Format())
}

func TestGoldenTableCSV(t *testing.T) {
	camp := goldenCampaign()
	t2, err := camp.BuildTable(2)
	if err != nil {
		t.Fatal(err)
	}
	golden.Compare(t, "table2_csv.golden", t2.CSV())
	t4, err := camp.BuildTable(4)
	if err != nil {
		t.Fatal(err)
	}
	golden.Compare(t, "table4_csv.golden", t4.CSV())
}

func TestGoldenComparisonSection(t *testing.T) {
	camp := goldenCampaign()
	golden.Compare(t, "section43_comparison.golden", FormatComparison(camp.CompareAlgorithms()))
}
