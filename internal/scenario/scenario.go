// Package scenario resolves façade-level scenario descriptions — plain
// strings and values that can come from flags, configuration files or JSON
// request bodies — into the typed core configuration one simulation run
// needs. It is the single place where scenario names, policy spellings,
// heuristic names and capacity knobs are validated, shared by the root
// gridrealloc façade (whose ScenarioConfig is an alias of Config) and by the
// gridd service, whose campaign endpoint decodes Config values straight from
// JSON. Keeping the resolution below the façade lets internal packages
// (service, harness) build runnable configurations without importing the
// public API surface.
package scenario

import (
	"fmt"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/workload"
)

// Config describes one simulation run. All fields are strings or plain
// values so it can be driven directly from flags, configuration files or
// JSON (the field tags name the wire form the gridd campaign endpoint
// accepts); the underlying typed API lives in internal/core for use by the
// experiment harness.
type Config struct {
	// Scenario names the workload ("jan".."jun", "pwa-g5k"); it selects the
	// platform the paper pairs with it. Ignored when Platform is non-nil.
	Scenario string `json:"scenario,omitempty"`
	// Heterogeneity is "homogeneous" (default) or "heterogeneous"; any
	// other string is rejected by BuildRunConfig. Ignored when Platform is
	// non-nil.
	Heterogeneity string `json:"heterogeneity,omitempty"`
	// Policy is the local batch policy, "FCFS" (default) or "CBF".
	Policy string `json:"policy,omitempty"`
	// Trace is the workload to replay. When nil, a synthetic trace for
	// Scenario is generated with TraceFraction and Seed.
	Trace *workload.Trace `json:"trace,omitempty"`
	// TraceFraction scales the generated trace when Trace is nil (default
	// 0.02, which keeps the quickstart fast).
	TraceFraction float64 `json:"trace_fraction,omitempty"`
	// Seed drives the synthetic generators (default 42).
	Seed uint64 `json:"seed,omitempty"`
	// Platform overrides the paper's platform when non-nil.
	Platform *platform.Platform `json:"platform,omitempty"`
	// Algorithm is "none" (default), "realloc" (Algorithm 1, without
	// cancellation) or "realloc-cancel" (Algorithm 2, with cancellation).
	Algorithm string `json:"algorithm,omitempty"`
	// Heuristic is one of "Mct", "MinMin", "MaxMin", "MaxGain",
	// "MaxRelGain", "Sufferage" (default "Mct"). Ignored when Algorithm is
	// "none".
	Heuristic string `json:"heuristic,omitempty"`
	// Mapping is the online mapping policy: "MCT" (default), "Random" or
	// "RoundRobin".
	Mapping string `json:"mapping,omitempty"`
	// ReallocPeriodSeconds overrides the hourly reallocation period.
	ReallocPeriodSeconds int64 `json:"realloc_period_seconds,omitempty"`
	// MinGainSeconds overrides the one-minute improvement threshold of
	// Algorithm 1.
	MinGainSeconds int64 `json:"min_gain_seconds,omitempty"`

	// Capacity dynamics. A scenario name with a "-maint" or "-outage"
	// suffix ("jan-maint", "jan-outage") attaches a default capacity window
	// to the platform's first cluster; the fields below override or replace
	// that default. All fields are inert at their zero values, keeping runs
	// without capacity events bit-identical to the static simulator.

	// OutageCluster names the cluster whose capacity changes (default: the
	// platform's first cluster).
	OutageCluster string `json:"outage_cluster,omitempty"`
	// OutageStartSeconds is the instant the capacity window opens.
	OutageStartSeconds int64 `json:"outage_start_seconds,omitempty"`
	// OutageDurationSeconds is the window length; a positive value enables
	// the explicit window.
	OutageDurationSeconds int64 `json:"outage_duration_seconds,omitempty"`
	// OutageSeverity is the fraction of the cluster's cores lost during the
	// window, in (0, 1]; non-positive values default to 1 (full outage).
	OutageSeverity float64 `json:"outage_severity,omitempty"`
	// OutageAnnounced marks the window as a maintenance window the batch
	// scheduler knows in advance and plans around, instead of a surprise
	// outage that displaces running jobs.
	OutageAnnounced bool `json:"outage_announced,omitempty"`
	// OutagePolicy is what happens to running jobs displaced by an
	// unannounced outage: "kill" (default) or "requeue".
	OutagePolicy string `json:"outage_policy,omitempty"`
}

// EffectiveSeed returns the seed the run will actually use (the documented
// default 42 when the field is zero); TaskError reports and replay hints
// must name this value, not the raw field.
func (c Config) EffectiveSeed() uint64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// BuildRunConfig resolves a façade Config (plain strings and values) into
// the typed core configuration one run needs. Each call builds a fresh
// mapping-policy instance, so configurations can be resolved repeatedly
// without leaking mapping state between runs.
func BuildRunConfig(cfg Config) (core.Config, error) {
	if cfg.Scenario == "" && cfg.Trace == nil && cfg.Platform == nil {
		return core.Config{}, fmt.Errorf("gridrealloc: ScenarioConfig needs at least a Scenario, a Trace or a Platform")
	}
	seed := cfg.EffectiveSeed()
	trace := cfg.Trace
	if trace == nil {
		fraction := cfg.TraceFraction
		if fraction <= 0 {
			fraction = 0.02
		}
		scenario := cfg.Scenario
		if scenario == "" {
			scenario = "jan"
		}
		var err error
		trace, err = workload.Scenario(workload.ScenarioName(scenario), fraction, seed)
		if err != nil {
			return core.Config{}, err
		}
	}

	var plat platform.Platform
	switch {
	case cfg.Platform != nil:
		plat = *cfg.Platform
	case cfg.Scenario == "":
		// A custom trace alone does not determine the platform; silently
		// defaulting to Grid'5000 would simulate hardware the caller never
		// chose.
		return core.Config{}, fmt.Errorf("gridrealloc: ScenarioConfig with a custom Trace needs a Scenario or a Platform to pick the clusters")
	default:
		// With a custom Trace the scenario name is only consulted for the
		// platform pairing, which would otherwise accept any typo and hand
		// back Grid'5000; validate it on every path.
		if !workload.KnownScenario(workload.ScenarioName(cfg.Scenario)) {
			return core.Config{}, fmt.Errorf("gridrealloc: unknown scenario %q", cfg.Scenario)
		}
		het, err := platform.ParseHeterogeneity(cfg.Heterogeneity)
		if err != nil {
			return core.Config{}, fmt.Errorf("gridrealloc: %w", err)
		}
		plat = platform.ForScenario(cfg.Scenario, het)
	}
	plat, err := applyCapacityConfig(plat, cfg, trace)
	if err != nil {
		return core.Config{}, err
	}
	outagePolicy, err := batch.ParseOutagePolicy(cfg.OutagePolicy)
	if err != nil {
		return core.Config{}, err
	}

	policy := batch.FCFS
	if cfg.Policy != "" {
		var err error
		policy, err = batch.ParsePolicy(cfg.Policy)
		if err != nil {
			return core.Config{}, err
		}
	}

	algorithm, err := core.ParseAlgorithm(cfg.Algorithm)
	if err != nil {
		return core.Config{}, err
	}
	var heuristic core.Heuristic
	if algorithm != core.NoReallocation {
		name := cfg.Heuristic
		if name == "" {
			name = "Mct"
		}
		heuristic, err = core.HeuristicByName(name)
		if err != nil {
			return core.Config{}, err
		}
	}
	mapping, err := core.MappingByName(cfg.Mapping, seed)
	if err != nil {
		return core.Config{}, err
	}

	return core.Config{
		Platform: plat,
		Policy:   policy,
		Trace:    trace,
		Mapping:  mapping,
		Realloc: core.ReallocConfig{
			Algorithm: algorithm,
			Heuristic: heuristic,
			Period:    cfg.ReallocPeriodSeconds,
			MinGain:   cfg.MinGainSeconds,
		},
		OutagePolicy:   outagePolicy,
		ClampOversized: true,
	}, nil
}

// applyCapacityConfig resolves the capacity knobs through the shared
// platform.ApplyCapacityRequest: an explicit window when
// OutageDurationSeconds is set, otherwise the default schedule implied by a
// "-maint"/"-outage" scenario variant (sized relative to the trace's
// submission span, with the other Outage* fields overriding the default).
// Without either, the platform is returned untouched, so static runs stay
// bit-identical.
func applyCapacityConfig(plat platform.Platform, cfg Config, trace *workload.Trace) (platform.Platform, error) {
	req := platform.CapacityRequest{
		Cluster:   cfg.OutageCluster,
		Start:     cfg.OutageStartSeconds,
		Duration:  cfg.OutageDurationSeconds,
		Severity:  cfg.OutageSeverity,
		Announced: cfg.OutageAnnounced,
	}
	return platform.ApplyCapacityRequest(plat, cfg.Scenario, trace.LastSubmit(), req)
}
