package metrics

import (
	"fmt"
	"strings"

	"gridrealloc/internal/runner"
)

// Health grades a campaign execution's fault-tolerance outcome so reports
// and CLIs can surface degradation next to the paper metrics: a campaign
// whose numbers were computed over a partial scenario set is not comparable
// to a clean one, and the grade makes that visible.
type Health struct {
	// Grade is the one-word summary: "clean" (every task completed on its
	// first attempt), "recovered" (faults occurred but every task still
	// completed) or "degraded" (tasks failed or were skipped, so results
	// are partial).
	Grade string
	// Stats are the campaign counters the grade was derived from.
	Stats runner.RunStats
}

// HealthOf grades a campaign's RunStats.
func HealthOf(s runner.RunStats) Health {
	h := Health{Stats: s}
	switch {
	case s.Failed != 0 || s.Skipped != 0:
		h.Grade = "degraded"
	case s.Degraded():
		h.Grade = "recovered"
	default:
		h.Grade = "clean"
	}
	return h
}

// Clean reports whether every task completed on its first attempt.
func (h Health) Clean() bool { return h.Grade == "clean" }

// Partial reports whether the campaign's results cover fewer tasks than
// were requested (failed or skipped tasks exist).
func (h Health) Partial() bool { return h.Grade == "degraded" }

// String renders the grade with the non-zero fault counters, e.g.
// "degraded: 70/72 completed (1 failed, 1 skipped; 1 panic recovered,
// 1 simulator discarded)". A clean campaign renders as
// "clean: 72/72 completed".
func (h Health) String() string {
	s := h.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d completed", h.Grade, s.Completed, s.Tasks)
	var parts []string
	add := func(n int64, singular, plural string) {
		if n == 0 {
			return
		}
		if n == 1 {
			parts = append(parts, fmt.Sprintf("1 %s", singular))
		} else {
			parts = append(parts, fmt.Sprintf("%d %s", n, plural))
		}
	}
	add(s.Failed, "failed", "failed")
	add(s.Skipped, "skipped", "skipped")
	add(s.RecoveredPanics, "panic recovered", "panics recovered")
	add(s.Retries, "retry", "retries")
	add(s.Timeouts, "timeout", "timeouts")
	add(s.DiscardedSims, "simulator discarded", "simulators discarded")
	if len(parts) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	return b.String()
}
