package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic latency buckets: bucket i holds
// observations whose nanosecond value has bit length i, so bucket 0 is
// [0, 0], bucket 1 is [1ns, 1ns], bucket 11 is [1.024µs, 2.047µs], and the
// last bucket absorbs everything from ~146h up. Power-of-two bucketing keeps
// Observe allocation-free and lock-free while bounding quantile error to the
// bucket width (a factor of two), which is plenty for serving-latency p50/p99
// on a health endpoint.
const histBuckets = 50

// Histogram is a concurrency-safe latency histogram with logarithmic
// buckets. The zero value is ready to use; Observe may be called from any
// number of goroutines (it is a handful of atomic adds), and Snapshot reads
// a consistent-enough view for monitoring without stopping writers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample. Negative durations are clamped to
// zero (a clock anomaly must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram, shaped for
// the gridd /stats endpoint (all durations in nanoseconds so the JSON is
// unit-unambiguous).
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snapshot summarises the histogram: sample count, mean, estimated p50 and
// p99 (bucket-interpolated, so accurate to the bucket's factor-of-two
// width and never above the observed maximum), and the exact maximum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), MaxNs: h.max.Load()}
	if s.Count == 0 {
		return s
	}
	s.MeanNs = h.sum.Load() / s.Count
	var counts [histBuckets]int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	s.P50Ns = quantile(counts[:], s.Count, 0.50, s.MaxNs)
	s.P99Ns = quantile(counts[:], s.Count, 0.99, s.MaxNs)
	return s
}

// quantile estimates the q-quantile from bucket counts by walking the
// cumulative distribution and interpolating linearly inside the bucket the
// rank lands in. The estimate is clamped to the observed maximum so a
// sparse top bucket cannot report a latency no request ever had.
func quantile(counts []int64, total int64, q float64, maxNs int64) int64 {
	// Nearest-rank: the q-quantile of n samples is the ceil(q*n)-th smallest
	// (1-indexed), so 99 fast samples and one outlier give a p99 that is
	// still a fast sample.
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	rank--
	if rank < 0 {
		rank = 0
	}
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			lo, hi := bucketBounds(i)
			// Position of the rank inside this bucket, in [0, 1).
			frac := float64(rank-seen) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v > maxNs {
				v = maxNs
			}
			return v
		}
		seen += c
	}
	return maxNs
}

// bucketBounds returns the nanosecond range [lo, hi] covered by bucket i
// (values whose bit length is i).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	hi = lo<<1 - 1
	return lo, hi
}
