package metrics

import (
	"errors"
	"math"
	"testing"

	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// fabricate builds a Result with the given per-job (submit, completion)
// pairs. Completion -1 marks a job that never finished.
func fabricate(scenario string, reallocs int64, jobs map[int][2]int64) *core.Result {
	res := &core.Result{
		Scenario:           scenario,
		Jobs:               make(map[int]*core.JobRecord, len(jobs)),
		TotalReallocations: reallocs,
	}
	for id, sc := range jobs {
		rec := &core.JobRecord{JobID: id, Submit: sc[0], Completion: sc[1], Start: sc[0]}
		if sc[1] < 0 {
			rec.Start = -1
		}
		res.Jobs[id] = rec
		if sc[1] > res.Makespan {
			res.Makespan = sc[1]
		}
	}
	return res
}

func TestCompareBasicMetrics(t *testing.T) {
	baseline := fabricate("t", 0, map[int][2]int64{
		1: {0, 100},  // unchanged
		2: {0, 200},  // improves to 150
		3: {0, 300},  // worsens to 400
		4: {0, 1000}, // improves to 500
	})
	with := fabricate("t", 7, map[int][2]int64{
		1: {0, 100},
		2: {0, 150},
		3: {0, 400},
		4: {0, 500},
	})
	with.Algorithm = core.WithCancellation
	with.HeuristicName = "MinMin"

	cmp, err := Compare(baseline, with)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TotalJobs != 4 {
		t.Fatalf("TotalJobs = %d", cmp.TotalJobs)
	}
	if cmp.ImpactedJobs != 3 || math.Abs(cmp.ImpactedPercent-75) > 1e-9 {
		t.Fatalf("impacted = %d (%.2f%%), want 3 (75%%)", cmp.ImpactedJobs, cmp.ImpactedPercent)
	}
	if cmp.EarlierJobs != 2 || math.Abs(cmp.EarlierPercent-2.0/3.0*100) > 1e-6 {
		t.Fatalf("earlier = %d (%.2f%%)", cmp.EarlierJobs, cmp.EarlierPercent)
	}
	if cmp.Reallocations != 7 {
		t.Fatalf("reallocations = %d", cmp.Reallocations)
	}
	// Impacted jobs: baseline mean response = (200+300+1000)/3 = 500,
	// with-reallocation mean = (150+400+500)/3 = 350 -> ratio 0.7.
	if math.Abs(cmp.RelativeResponseTime-0.7) > 1e-9 {
		t.Fatalf("relative response time = %v, want 0.7", cmp.RelativeResponseTime)
	}
	if cmp.MeanResponseWithout != 500 || cmp.MeanResponseWith != 350 {
		t.Fatalf("means = %v / %v", cmp.MeanResponseWith, cmp.MeanResponseWithout)
	}
	if cmp.Algorithm != "realloc-cancel" || cmp.Heuristic != "MinMin" {
		t.Fatalf("identity fields = %q %q", cmp.Algorithm, cmp.Heuristic)
	}
}

func TestCompareNoImpact(t *testing.T) {
	baseline := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {10, 50}})
	with := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {10, 50}})
	cmp, err := Compare(baseline, with)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ImpactedJobs != 0 || cmp.ImpactedPercent != 0 {
		t.Fatalf("impacted = %+v", cmp)
	}
	if cmp.EarlierPercent != 0 {
		t.Fatalf("earlier%% = %v", cmp.EarlierPercent)
	}
	if cmp.RelativeResponseTime != 1 {
		t.Fatalf("relative response time = %v, want 1 when nothing changed", cmp.RelativeResponseTime)
	}
}

func TestCompareExcludesUnfinishedJobs(t *testing.T) {
	baseline := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {0, -1}, 3: {0, 200}})
	with := fabricate("t", 1, map[int][2]int64{1: {0, 90}, 2: {0, 500}, 3: {0, -1}})
	cmp, err := Compare(baseline, with)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 2 and 3 are excluded (unfinished in one run); only job 1 counts.
	if cmp.TotalJobs != 1 || cmp.ImpactedJobs != 1 || cmp.EarlierJobs != 1 {
		t.Fatalf("cmp = %+v", cmp)
	}
}

func TestCompareMismatchedRuns(t *testing.T) {
	baseline := fabricate("t", 0, map[int][2]int64{1: {0, 100}})
	with := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {0, 50}})
	if _, err := Compare(baseline, with); !errors.Is(err, ErrMismatchedRuns) {
		t.Fatalf("err = %v, want ErrMismatchedRuns", err)
	}
	withOther := fabricate("t", 0, map[int][2]int64{9: {0, 100}})
	if _, err := Compare(baseline, withOther); !errors.Is(err, ErrMismatchedRuns) {
		t.Fatalf("err = %v, want ErrMismatchedRuns (different IDs)", err)
	}
	if _, err := Compare(nil, baseline); err == nil {
		t.Fatal("nil baseline accepted")
	}
}

func TestSummarize(t *testing.T) {
	res := fabricate("s", 3, map[int][2]int64{
		1: {0, 100},
		2: {50, 250},
		3: {0, -1},
	})
	res.Jobs[1].Start = 20
	res.Jobs[2].Start = 50
	res.Jobs[1].Killed = true
	res.ReallocationEvents = 4
	sum := Summarize(res)
	if sum.Jobs != 3 || sum.Completed != 2 || sum.Killed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.MeanResponseTime != 150 { // (100 + 200)/2
		t.Fatalf("mean response = %v", sum.MeanResponseTime)
	}
	if sum.MedianResponseTime != 150 {
		t.Fatalf("median response = %v", sum.MedianResponseTime)
	}
	if sum.MeanWaitTime != 10 { // (20 + 0)/2
		t.Fatalf("mean wait = %v", sum.MeanWaitTime)
	}
	if sum.Reallocations != 3 || sum.ReallocationEvents != 4 {
		t.Fatalf("realloc counters = %d/%d", sum.Reallocations, sum.ReallocationEvents)
	}
}

func TestDeltas(t *testing.T) {
	baseline := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {0, 200}, 3: {0, 300}})
	with := fabricate("t", 0, map[int][2]int64{1: {0, 100}, 2: {0, 150}, 3: {0, 350}})
	with.Jobs[2].Reallocations = 2
	deltas := Deltas(baseline, with)
	if len(deltas) != 2 {
		t.Fatalf("%d deltas, want 2", len(deltas))
	}
	if deltas[0].JobID != 2 || deltas[0].Delta != -50 || deltas[0].Reallocations != 2 {
		t.Fatalf("delta[0] = %+v", deltas[0])
	}
	if deltas[1].JobID != 3 || deltas[1].Delta != 50 {
		t.Fatalf("delta[1] = %+v", deltas[1])
	}
}

func TestSummarizeLoad(t *testing.T) {
	res := &core.Result{
		ServerLoads: []server.RequestLoad{
			{Cluster: "a", Submissions: 10, Cancellations: 4, ECTQueries: 100, SnapshotHits: 80, PlanRebuilds: 5, PlanReuses: 15},
			{Cluster: "b", Submissions: 6, Cancellations: 2, ECTQueries: 100, SnapshotHits: 70, PlanRebuilds: 5, PlanReuses: 25},
		},
	}
	got := SummarizeLoad(res)
	if got.Submissions != 16 || got.Cancellations != 6 || got.ECTQueries != 200 {
		t.Fatalf("request totals = %+v", got)
	}
	if got.SnapshotHits != 150 || got.SnapshotHitPercent != 75 {
		t.Fatalf("snapshot stats = %+v", got)
	}
	if got.PlanRebuilds != 10 || got.PlanReuses != 40 || got.PlanReusePercent != 80 {
		t.Fatalf("plan stats = %+v", got)
	}
	if zero := SummarizeLoad(nil); zero != (LoadSummary{}) {
		t.Fatalf("nil result summary = %+v", zero)
	}
}

// TestLoadCountersFlowThroughRun checks the counters survive the trip from
// the batch scheduler through the server layer into the run result: a run
// with reallocation answers most ECT queries from per-sweep snapshots.
func TestLoadCountersFlowThroughRun(t *testing.T) {
	var jobs []workload.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, workload.Job{
			ID: i + 1, Submit: int64(i * 5), Runtime: 200, Walltime: 1200, Procs: 1 + i%8,
		})
	}
	trace, err := workload.NewTrace("load", jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Platform: platform.Platform{Name: "test", Clusters: []platform.ClusterSpec{
			{Name: "a", Cores: 8, Speed: 1}, {Name: "b", Cores: 8, Speed: 1},
		}},
		Policy:  batch.CBF,
		Trace:   trace,
		Realloc: core.ReallocConfig{Algorithm: core.WithCancellation, Period: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeLoad(res)
	if sum.Submissions == 0 || sum.ECTQueries == 0 {
		t.Fatalf("no load recorded: %+v", sum)
	}
	if sum.SnapshotHits == 0 {
		t.Fatalf("reallocating run answered no queries from snapshots: %+v", sum)
	}
	if sum.PlanReuses == 0 {
		t.Fatalf("no plan reuse recorded: %+v", sum)
	}
}
