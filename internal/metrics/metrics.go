// Package metrics computes the evaluation metrics of the paper (Section
// 3.4) by comparing a simulation run that used reallocation against the
// reference run without reallocation on the same trace, platform and batch
// policy:
//
//   - the percentage of jobs whose completion time changed (system metric),
//   - the number of reallocations performed (system metric),
//   - the percentage of impacted jobs that finish earlier (user metric),
//   - the relative average response time of impacted jobs (user metric).
package metrics

import (
	"errors"
	"fmt"
	"sort"

	"gridrealloc/internal/core"
	"gridrealloc/internal/stats"
)

// Comparison holds the four metrics of one experiment against its baseline.
type Comparison struct {
	// Scenario, Policy and Heuristic identify the experiment.
	Scenario  string
	Policy    string
	Algorithm string
	Heuristic string

	// TotalJobs is the number of jobs in the trace that completed in both
	// runs (the comparable population).
	TotalJobs int
	// ImpactedJobs is the number of jobs whose completion time changed.
	ImpactedJobs int
	// ImpactedPercent is 100*ImpactedJobs/TotalJobs ("Jobs impacted by
	// reallocation" in the paper).
	ImpactedPercent float64
	// Reallocations is the total number of migrations performed ("Number of
	// reallocations").
	Reallocations int64
	// EarlierJobs is the number of impacted jobs that finished earlier with
	// reallocation.
	EarlierJobs int
	// EarlierPercent is 100*EarlierJobs/ImpactedJobs ("Jobs finishing
	// earlier"); 0 when no job was impacted.
	EarlierPercent float64
	// RelativeResponseTime is the ratio of the mean response time of the
	// impacted jobs with reallocation over the mean response time of the
	// same jobs without reallocation ("Gain on average job response time").
	// A value of 0.85 means a 15% gain; a value above 1 means reallocation
	// made the impacted jobs slower on average. It is 1 when no job was
	// impacted.
	RelativeResponseTime float64
	// MeanResponseWith / MeanResponseWithout are the raw averages behind the
	// ratio, over the impacted jobs only.
	MeanResponseWith    float64
	MeanResponseWithout float64
	// MakespanWith / MakespanWithout compare the completion of the last job.
	MakespanWith    int64
	MakespanWithout int64
}

// ErrMismatchedRuns is returned when the two runs do not cover the same set
// of jobs.
var ErrMismatchedRuns = errors.New("metrics: runs cover different job sets")

// Compare computes the paper's metrics from a baseline run (no reallocation)
// and a run with reallocation of the same scenario.
func Compare(baseline, with *core.Result) (Comparison, error) {
	if baseline == nil || with == nil {
		return Comparison{}, errors.New("metrics: nil result")
	}
	cmp := Comparison{
		Scenario:  with.Scenario,
		Policy:    with.Policy.String(),
		Algorithm: with.Algorithm.String(),
		Heuristic: with.HeuristicName,
	}
	if len(baseline.Jobs) != len(with.Jobs) {
		return cmp, fmt.Errorf("%w: baseline has %d jobs, reallocated run has %d", ErrMismatchedRuns, len(baseline.Jobs), len(with.Jobs))
	}

	// Iterate job IDs in sorted order: respWith/respWithout feed floating
	// sums whose rounding depends on accumulation order, and metric values
	// must be bit-identical across runs.
	ids := make([]int, 0, len(baseline.Jobs))
	//gridlint:unordered-ok keys are collected then sorted
	for id := range baseline.Jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var respWith, respWithout []float64
	for _, id := range ids {
		base := baseline.Jobs[id]
		other, ok := with.Jobs[id]
		if !ok {
			return cmp, fmt.Errorf("%w: job %d missing from reallocated run", ErrMismatchedRuns, id)
		}
		if base.Completion < 0 || other.Completion < 0 {
			// Jobs that never completed in one of the runs are not
			// comparable; they are excluded from the population as the paper
			// excludes jobs still running at the end of the trace window.
			continue
		}
		cmp.TotalJobs++
		if base.Completion == other.Completion {
			continue
		}
		cmp.ImpactedJobs++
		if other.Completion < base.Completion {
			cmp.EarlierJobs++
		}
		respWith = append(respWith, float64(other.ResponseTime()))
		respWithout = append(respWithout, float64(base.ResponseTime()))
	}

	cmp.ImpactedPercent = stats.Percent(float64(cmp.ImpactedJobs), float64(cmp.TotalJobs))
	cmp.EarlierPercent = stats.Percent(float64(cmp.EarlierJobs), float64(cmp.ImpactedJobs))
	cmp.Reallocations = with.TotalReallocations
	cmp.MeanResponseWith = stats.Mean(respWith)
	cmp.MeanResponseWithout = stats.Mean(respWithout)
	if cmp.ImpactedJobs == 0 || cmp.MeanResponseWithout == 0 {
		cmp.RelativeResponseTime = 1
	} else {
		cmp.RelativeResponseTime = cmp.MeanResponseWith / cmp.MeanResponseWithout
	}
	cmp.MakespanWith = with.Makespan
	cmp.MakespanWithout = baseline.Makespan
	return cmp, nil
}

// Summary aggregates user-facing statistics of a single run (used by the
// examples and the CLI when no baseline is available).
type Summary struct {
	Scenario           string
	Jobs               int
	Completed          int
	Killed             int
	MeanResponseTime   float64
	MedianResponseTime float64
	MeanWaitTime       float64
	Makespan           int64
	Reallocations      int64
	ReallocationEvents int64
}

// Summarize computes a Summary for one run.
func Summarize(r *core.Result) Summary {
	s := Summary{
		Scenario:           r.Scenario,
		Jobs:               len(r.Jobs),
		Makespan:           r.Makespan,
		Reallocations:      r.TotalReallocations,
		ReallocationEvents: r.ReallocationEvents,
	}
	var resp, wait []float64
	// Response and wait times are integer-valued (sim.Time seconds), so the
	// float sums behind Mean are exact in any order, and Median sorts.
	//gridlint:unordered-ok counting and exact-sum folds are order-insensitive
	for _, rec := range r.Jobs {
		if rec.Completion < 0 {
			continue
		}
		s.Completed++
		if rec.Killed {
			s.Killed++
		}
		resp = append(resp, float64(rec.ResponseTime()))
		if rec.Start >= 0 {
			wait = append(wait, float64(rec.WaitTime()))
		}
	}
	s.MeanResponseTime = stats.Mean(resp)
	s.MedianResponseTime = stats.Median(resp)
	s.MeanWaitTime = stats.Mean(wait)
	return s
}

// LoadSummary aggregates, across every cluster of a run, the request load
// the reallocation mechanism put on the local batch systems (the paper's
// system-load concern) together with the scheduler-internal counters that
// show how much of that load the incremental plan machinery absorbed.
type LoadSummary struct {
	// Submissions, Cancellations and ECTQueries total the middleware
	// requests served by all clusters.
	Submissions   int64
	Cancellations int64
	ECTQueries    int64
	// SnapshotHits is the number of ECT queries answered from a per-sweep
	// availability snapshot instead of a direct scheduler consultation.
	SnapshotHits int64
	// SnapshotHitPercent is 100*SnapshotHits/ECTQueries (0 when no queries).
	SnapshotHitPercent float64
	// PlanRebuilds and PlanReuses count full waiting-queue re-plans versus
	// observations served from the cached plan.
	PlanRebuilds int64
	PlanReuses   int64
	// PlanReusePercent is 100*PlanReuses/(PlanRebuilds+PlanReuses).
	PlanReusePercent float64
}

// SummarizeLoad totals the per-cluster request loads of a run.
func SummarizeLoad(r *core.Result) LoadSummary {
	var s LoadSummary
	if r == nil {
		return s
	}
	for _, l := range r.ServerLoads {
		s.Submissions += l.Submissions
		s.Cancellations += l.Cancellations
		s.ECTQueries += l.ECTQueries
		s.SnapshotHits += l.SnapshotHits
		s.PlanRebuilds += l.PlanRebuilds
		s.PlanReuses += l.PlanReuses
	}
	s.SnapshotHitPercent = stats.Percent(float64(s.SnapshotHits), float64(s.ECTQueries))
	s.PlanReusePercent = stats.Percent(float64(s.PlanReuses), float64(s.PlanRebuilds+s.PlanReuses))
	return s
}

// PerJobDelta describes how one job fared with reallocation compared to the
// baseline; used by the detailed CLI output.
type PerJobDelta struct {
	JobID              int
	BaselineCompletion int64
	Completion         int64
	Delta              int64 // negative = finished earlier with reallocation
	Reallocations      int
}

// Deltas lists the impacted jobs sorted by job ID.
func Deltas(baseline, with *core.Result) []PerJobDelta {
	var out []PerJobDelta
	//gridlint:unordered-ok entries are collected then sorted by unique JobID
	for id, base := range baseline.Jobs {
		other, ok := with.Jobs[id]
		if !ok || base.Completion < 0 || other.Completion < 0 || base.Completion == other.Completion {
			continue
		}
		out = append(out, PerJobDelta{
			JobID:              id,
			BaselineCompletion: base.Completion,
			Completion:         other.Completion,
			Delta:              other.Completion - base.Completion,
			Reallocations:      other.Reallocations,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}
