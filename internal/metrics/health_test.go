package metrics

import (
	"testing"

	"gridrealloc/internal/runner"
)

func TestHealthOfGrades(t *testing.T) {
	cases := []struct {
		name  string
		stats runner.RunStats
		grade string
	}{
		{"clean", runner.RunStats{Tasks: 72, Completed: 72}, "clean"},
		{"recovered-retries", runner.RunStats{Tasks: 72, Completed: 72, Retries: 3}, "recovered"},
		{"degraded-failed", runner.RunStats{Tasks: 72, Completed: 70, Failed: 2, RecoveredPanics: 2, DiscardedSims: 2}, "degraded"},
		{"degraded-skipped", runner.RunStats{Tasks: 72, Completed: 10, Skipped: 62}, "degraded"},
	}
	for _, tc := range cases {
		h := HealthOf(tc.stats)
		if h.Grade != tc.grade {
			t.Errorf("%s: grade = %q, want %q", tc.name, h.Grade, tc.grade)
		}
		if h.Clean() != (tc.grade == "clean") {
			t.Errorf("%s: Clean() = %v", tc.name, h.Clean())
		}
		if h.Partial() != (tc.grade == "degraded") {
			t.Errorf("%s: Partial() = %v", tc.name, h.Partial())
		}
	}
}

func TestHealthString(t *testing.T) {
	clean := HealthOf(runner.RunStats{Tasks: 72, Completed: 72})
	if got, want := clean.String(), "clean: 72/72 completed"; got != want {
		t.Errorf("clean: %q, want %q", got, want)
	}
	h := HealthOf(runner.RunStats{
		Tasks: 72, Completed: 70, Failed: 1, Skipped: 1,
		RecoveredPanics: 1, Retries: 2, Timeouts: 1, DiscardedSims: 1,
	})
	want := "degraded: 70/72 completed (1 failed, 1 skipped, 1 panic recovered, 2 retries, 1 timeout, 1 simulator discarded)"
	if got := h.String(); got != want {
		t.Errorf("degraded:\n got %q\nwant %q", got, want)
	}
}
