package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.MeanNs != 0 || s.P50Ns != 0 || s.P99Ns != 0 || s.MaxNs != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.MeanNs != 3_000_000 || s.MaxNs != 3_000_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// With one sample every quantile is that sample's bucket, clamped to max.
	if s.P50Ns <= 0 || s.P50Ns > s.MaxNs || s.P99Ns <= 0 || s.P99Ns > s.MaxNs {
		t.Fatalf("quantiles out of range: %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 99 fast samples and one slow outlier: p50 must stay near 1ms (within
	// its factor-of-two bucket), p99 must not be dragged to the outlier's
	// 10s, and max must be exact.
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(10 * time.Second)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNs != int64(10*time.Second) {
		t.Fatalf("max = %d", s.MaxNs)
	}
	if s.P50Ns < int64(time.Millisecond)/2 || s.P50Ns > 2*int64(time.Millisecond) {
		t.Fatalf("p50 = %v, want within a bucket of 1ms", time.Duration(s.P50Ns))
	}
	if s.P99Ns > 2*int64(time.Millisecond) {
		t.Fatalf("p99 = %v, want the 99th of 100 samples (the last fast one)", time.Duration(s.P99Ns))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.MeanNs != 0 || s.MaxNs != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.MaxNs != int64(goroutines)*int64(time.Microsecond) {
		t.Fatalf("max = %d", s.MaxNs)
	}
	if s.P99Ns > s.MaxNs {
		t.Fatalf("p99 %d above max %d", s.P99Ns, s.MaxNs)
	}
}
