package workload

import "testing"

func TestUnknownScenarioIsRejected(t *testing.T) {
	// A typo'd month must error out instead of silently running January.
	for _, name := range []ScenarioName{"jann", "january", "jul", "jan-", "jan-typo", "pwa-g5k-outage", ""} {
		if _, err := Scenario(name, 0.01, 1); err == nil {
			t.Errorf("scenario %q accepted", name)
		}
	}
}

func TestCapacityScenarioVariants(t *testing.T) {
	for _, name := range CapacityScenarioNames() {
		tr, err := Scenario(name, 0.02, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != string(name) {
			t.Fatalf("trace name %q, want %q", tr.Name, name)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
	// The suffixes work for every month, not just January.
	if _, err := Scenario("apr-outage", 0.01, 42); err != nil {
		t.Fatal(err)
	}
}

func TestBurstyVariantTightensArrivals(t *testing.T) {
	p := defaultProfile("site", 1000, MonthSeconds, 128)
	b := BurstyVariant(p)
	if b.BurstFraction <= p.BurstFraction {
		t.Fatalf("bursty fraction %g not above default %g", b.BurstFraction, p.BurstFraction)
	}
	if b.BurstSize != 2*p.BurstSize {
		t.Fatalf("bursty size %d, want %d", b.BurstSize, 2*p.BurstSize)
	}
	// Variant traces differ from the plain month (same seed, different
	// arrival knobs) but keep the same job count.
	plain, err := Scenario("jan", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := Scenario("jan-outage", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != bursty.Len() {
		t.Fatalf("job counts diverge: %d vs %d", plain.Len(), bursty.Len())
	}
	same := true
	for i := range plain.Jobs {
		if plain.Jobs[i].Submit != bursty.Jobs[i].Submit {
			same = false
			break
		}
	}
	if same {
		t.Fatal("bursty variant produced identical arrivals")
	}
}

func TestMonthFromName(t *testing.T) {
	if m, ok := monthFromName("apr"); !ok || m != April {
		t.Fatalf("apr = %v/%v", m, ok)
	}
	if _, ok := monthFromName("nope"); ok {
		t.Fatal("unknown month resolved")
	}
}
