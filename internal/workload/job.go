// Package workload defines the job model used throughout the simulator, the
// Standard Workload Format (SWF) reader and writer, and the calibrated
// synthetic trace generators that substitute for the Grid'5000 and Parallel
// Workload Archive traces the paper uses (see DESIGN.md §4 for the
// substitution rationale).
package workload

import (
	"errors"
	"fmt"
	"sort"
)

// Job is a rigid parallel job as submitted to the grid. Runtime and Walltime
// are expressed in seconds on a reference-speed cluster (speed 1.0); the
// batch layer rescales them to the speed of the cluster that actually
// executes the job.
type Job struct {
	// ID is unique within a trace. IDs are positive.
	ID int
	// Submit is the submission time in seconds from the start of the trace.
	Submit int64
	// Runtime is the actual execution time on a reference-speed cluster. The
	// scheduler never sees this value directly; it only observes the job
	// finishing. A runtime larger than the walltime models the "bad" jobs of
	// the raw Parallel Workload Archive logs: such a job is killed at its
	// walltime.
	Runtime int64
	// Walltime is the user-requested execution time bound on a
	// reference-speed cluster. The batch system kills the job when it is
	// exceeded, so users over-estimate it; the gap between Walltime and
	// Runtime is what creates reallocation opportunities.
	Walltime int64
	// Procs is the number of processors the job needs for its whole
	// execution (rigid job).
	Procs int
	// User is an opaque user identifier carried over from the trace. It is
	// informational only.
	User int
	// Site is the name of the site the job was originally submitted to in
	// the trace. The meta-scheduler ignores it (the paper routes every job
	// through the agent), but trace statistics such as Table 1 group by it.
	Site string
}

// Validate checks the structural invariants of a job. It does not reject
// "bad" jobs (runtime exceeding walltime) because the paper deliberately
// keeps them; it rejects jobs the simulator cannot represent at all.
func (j Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive ID", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	case j.Procs <= 0:
		return fmt.Errorf("job %d: non-positive processor count %d", j.ID, j.Procs)
	case j.Walltime <= 0:
		return fmt.Errorf("job %d: non-positive walltime %d", j.ID, j.Walltime)
	case j.Runtime < 0:
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	}
	return nil
}

// EffectiveRuntime returns the time the job actually occupies processors on
// a reference-speed cluster: its runtime bounded by its walltime (walltime
// kill).
func (j Job) EffectiveRuntime() int64 {
	if j.Runtime > j.Walltime {
		return j.Walltime
	}
	return j.Runtime
}

// KilledByWalltime reports whether the job would be killed by the batch
// system because its real execution exceeds its requested walltime.
func (j Job) KilledByWalltime() bool { return j.Runtime > j.Walltime }

// Trace is an ordered collection of jobs. Jobs are kept sorted by submission
// time (ties broken by ID) which is the order the client replays them in.
type Trace struct {
	// Name identifies the trace in tables and file names (e.g. "jan",
	// "pwa-g5k").
	Name string
	// Jobs is sorted by (Submit, ID).
	Jobs []Job
}

// ErrEmptyTrace is returned when an operation needs at least one job.
var ErrEmptyTrace = errors.New("workload: empty trace")

// NewTrace builds a trace from jobs, copying and sorting them by submission
// time. Jobs failing validation are rejected.
func NewTrace(name string, jobs []Job) (*Trace, error) {
	cp := append([]Job(nil), jobs...)
	for _, j := range cp {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace %q: %w", name, err)
		}
	}
	sortJobs(cp)
	if err := checkUniqueIDs(cp); err != nil {
		return nil, fmt.Errorf("workload: trace %q: %w", name, err)
	}
	return &Trace{Name: name, Jobs: cp}, nil
}

func sortJobs(jobs []Job) {
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
}

func checkUniqueIDs(jobs []Job) error {
	seen := make(map[int]struct{}, len(jobs))
	for _, j := range jobs {
		if _, dup := seen[j.ID]; dup {
			return fmt.Errorf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = struct{}{}
	}
	return nil
}

// Len returns the number of jobs in the trace.
func (t *Trace) Len() int { return len(t.Jobs) }

// Span returns the submission time of the first and last job. It returns an
// error for an empty trace.
func (t *Trace) Span() (first, last int64, err error) {
	if len(t.Jobs) == 0 {
		return 0, 0, ErrEmptyTrace
	}
	return t.Jobs[0].Submit, t.Jobs[len(t.Jobs)-1].Submit, nil
}

// LastSubmit returns the submission instant of the last job, or 0 for an
// empty trace. It is the span the scenario-variant default capacity windows
// are sized against (an empty trace is rejected by the core configuration
// check before any window matters).
func (t *Trace) LastSubmit() int64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Submit
}

// MaxProcs returns the largest processor request in the trace (0 for an
// empty trace).
func (t *Trace) MaxProcs() int {
	maxP := 0
	for _, j := range t.Jobs {
		if j.Procs > maxP {
			maxP = j.Procs
		}
	}
	return maxP
}

// Scale returns a new trace containing approximately fraction of the jobs
// (every k-th job, preserving order and relative burstiness). A fraction
// >= 1 returns a copy of the whole trace; a fraction <= 0 returns an empty
// trace. Scaling is used by the test-suite and the benchmarks, which replay
// the paper's scenarios on reduced trace sizes.
func (t *Trace) Scale(fraction float64) *Trace {
	out := &Trace{Name: t.Name}
	if fraction <= 0 || len(t.Jobs) == 0 {
		return out
	}
	if fraction >= 1 {
		out.Jobs = append([]Job(nil), t.Jobs...)
		return out
	}
	stride := 1.0 / fraction
	next := 0.0
	for i, j := range t.Jobs {
		if float64(i) >= next {
			out.Jobs = append(out.Jobs, j)
			next += stride
		}
	}
	return out
}

// Clamp returns a copy of the trace in which no job requests more than
// maxProcs processors. Jobs larger than the largest cluster could never be
// scheduled anywhere; the experiment harness clamps them, mimicking what a
// production middleware does when it refuses oversized requests.
func (t *Trace) Clamp(maxProcs int) *Trace {
	// Most traces fit their platform; returning the trace unchanged then
	// avoids copying every job on every simulation run.
	clamped := false
	for _, j := range t.Jobs {
		if j.Procs > maxProcs {
			clamped = true
			break
		}
	}
	if !clamped {
		return t
	}
	out := &Trace{Name: t.Name, Jobs: make([]Job, 0, len(t.Jobs))}
	for _, j := range t.Jobs {
		if j.Procs > maxProcs {
			j.Procs = maxProcs
		}
		out.Jobs = append(out.Jobs, j)
	}
	return out
}

// Merge combines several traces into one, re-assigning IDs so they stay
// unique while preserving each job's submission time and originating site.
// The result is sorted by submission time. The merged trace is what the
// seventh scenario of the paper uses (Bordeaux + CTC + SDSC over six
// months).
func Merge(name string, traces ...*Trace) *Trace {
	var jobs []Job
	id := 1
	for _, t := range traces {
		if t == nil {
			continue
		}
		for _, j := range t.Jobs {
			j.ID = id
			id++
			jobs = append(jobs, j)
		}
	}
	sortJobs(jobs)
	// Re-assign IDs after sorting so that submission order and ID order
	// agree, which keeps the MCT heuristic's "submission order" selection
	// unambiguous.
	for i := range jobs {
		jobs[i].ID = i + 1
	}
	return &Trace{Name: name, Jobs: jobs}
}
