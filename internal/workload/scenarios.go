package workload

import (
	"fmt"
	"strings"
)

// The paper evaluates seven scenarios: the first six months of 2008 on three
// Grid'5000 sites (Bordeaux, Lyon, Toulouse), plus a six-month scenario
// mixing the Bordeaux trace with the CTC and SDSC traces of the Parallel
// Workload Archive. Table 1 gives the per-site job counts reproduced below.
// Since the original traces cannot be redistributed, the scenario
// constructors generate calibrated synthetic traces with exactly these
// counts (scaled by the caller-provided fraction for tests and benchmarks).

// Month identifies one of the six monthly scenarios.
type Month int

// The six months covered by the Grid'5000 traces (first half of 2008).
const (
	January Month = iota
	February
	March
	April
	May
	June
)

// String returns the short lowercase month name used in the paper's tables.
func (m Month) String() string {
	names := [...]string{"jan", "feb", "mar", "apr", "may", "jun"}
	if m < January || m > June {
		return fmt.Sprintf("month(%d)", int(m))
	}
	return names[m]
}

// Months lists the six monthly scenarios in order.
func Months() []Month {
	return []Month{January, February, March, April, May, June}
}

// table1 holds the job counts of Table 1 (jobs per month and per site).
var table1 = map[Month][3]int{
	January:  {13084, 583, 488},
	February: {5822, 2695, 1123},
	March:    {11673, 8315, 949},
	April:    {33250, 1330, 1461},
	May:      {6765, 2179, 1573},
	June:     {4094, 3540, 1548},
}

// Grid'5000 and PWA cluster sizes used to bound generated job widths; they
// match the platform definitions in internal/platform.
const (
	bordeauxCores = 640
	lyonCores     = 270
	toulouseCores = 434
	ctcCores      = 430
	sdscCores     = 128
)

// PWA six-month job counts from Section 3.3 of the paper.
const (
	bordeauxSixMonthJobs = 74647
	ctcJobs              = 42873
	sdscJobs             = 15615
)

// Table1Counts returns the job counts of Table 1: per month, the counts for
// Bordeaux, Lyon and Toulouse (in that order) and the total.
func Table1Counts() map[string][4]int {
	out := make(map[string][4]int, len(table1))
	//gridlint:unordered-ok map-to-map rebuild; per-key values are independent
	for m, c := range table1 {
		out[m.String()] = [4]int{c[0], c[1], c[2], c[0] + c[1] + c[2]}
	}
	return out
}

// ScenarioName is the identifier of one of the seven workloads of the paper
// ("jan" ... "jun", "pwa-g5k").
type ScenarioName string

// PWAG5K is the name of the seventh, six-month scenario.
const PWAG5K ScenarioName = "pwa-g5k"

// ScenarioNames lists the seven scenarios in the order of the paper's table
// columns.
func ScenarioNames() []ScenarioName {
	return []ScenarioName{"jan", "feb", "mar", "apr", "may", "jun", PWAG5K}
}

// Capacity-dynamics variants: every monthly scenario also exists in a
// "<month>-maint" and a "<month>-outage" form, whose traces are generated
// with a burstier arrival profile so that reduced capacity meets peak load
// (the platform layer pairs the names with the corresponding capacity
// windows).
const (
	maintSuffix  = "-maint"
	outageSuffix = "-outage"
)

// CapacityScenarioNames lists the canonical capacity-dynamics scenarios
// (the January workload under an announced maintenance window and under an
// unannounced outage). Every other month accepts the same suffixes.
func CapacityScenarioNames() []ScenarioName {
	return []ScenarioName{"jan" + maintSuffix, "jan" + outageSuffix}
}

// KnownScenario reports whether the name denotes a workload the generator
// can produce: one of the seven paper scenarios, or a month with a
// "-maint"/"-outage" capacity-variant suffix. The façade uses it to reject
// typo'd scenario names even on paths that never generate the trace (a
// custom Trace paired with a Scenario that only selects the platform).
func KnownScenario(name ScenarioName) bool {
	base, variant := splitScenarioVariant(name)
	if _, ok := monthFromName(base); ok {
		return true
	}
	return base == PWAG5K && variant == ""
}

// splitScenarioVariant separates a scenario name into its base workload name
// and its capacity-variant suffix ("" when the name has none).
func splitScenarioVariant(name ScenarioName) (base ScenarioName, variant string) {
	s := string(name)
	switch {
	case strings.HasSuffix(s, maintSuffix):
		return ScenarioName(strings.TrimSuffix(s, maintSuffix)), maintSuffix
	case strings.HasSuffix(s, outageSuffix):
		return ScenarioName(strings.TrimSuffix(s, outageSuffix)), outageSuffix
	default:
		return name, ""
	}
}

// scaleDuration shortens the submission window proportionally to the job
// count fraction so that reduced traces keep the full-scale offered load
// (jobs per core-second): cutting only the job count would leave the
// platform nearly idle and no reallocation would ever trigger. A floor keeps
// the window long enough for several hourly reallocation events.
func scaleDuration(full int64, fraction float64, floor int64) int64 {
	if fraction >= 1 {
		return full
	}
	if fraction <= 0 {
		return floor
	}
	d := int64(float64(full) * fraction)
	if d < floor {
		d = floor
	}
	return d
}

// MonthScenario generates the three per-site traces of one monthly scenario.
// Fraction scales the job counts (1.0 reproduces the counts of Table 1) and
// the submission window together, preserving the offered load; seeds are
// derived from the month so each scenario is independent yet reproducible.
func MonthScenario(m Month, fraction float64, seed uint64) ([]*Trace, error) {
	return monthScenario(m, fraction, seed, false)
}

// monthScenario generates the per-site traces of one monthly scenario; when
// bursty is set the behavioural knobs are tightened so submissions pile up
// in storms, the arrival pattern the capacity-dynamics scenarios use so
// degraded capacity meets peak load.
func monthScenario(m Month, fraction float64, seed uint64, bursty bool) ([]*Trace, error) {
	counts, ok := table1[m]
	if !ok {
		return nil, fmt.Errorf("workload: unknown month %v", m)
	}
	duration := scaleDuration(MonthSeconds, fraction, 6*3600)
	sites := []struct {
		name  string
		count int
		cores int
		mean  int64
	}{
		{"bordeaux", counts[0], bordeauxCores, 1300},
		{"lyon", counts[1], lyonCores, 1600},
		{"toulouse", counts[2], toulouseCores, 1800},
	}
	traces := make([]*Trace, 0, len(sites))
	for i, s := range sites {
		p := defaultProfile(s.name, scaleCount(s.count, fraction), duration, s.cores)
		p.MeanRuntime = s.mean
		p.MaxRuntime = 12 * 3600
		if bursty {
			p = BurstyVariant(p)
		}
		t, err := GenerateSite(p, seed^uint64(m)<<8^uint64(i+1)*0x9e37)
		if err != nil {
			return nil, err
		}
		traces = append(traces, t)
	}
	return traces, nil
}

// BurstyVariant returns the profile with its arrival knobs tightened: most
// jobs arrive inside submission storms twice the usual size. Deep queues
// form at the peaks, which is exactly when a capacity window hurts most —
// and when the reallocation mechanism has the most to win.
func BurstyVariant(p SiteProfile) SiteProfile {
	p.BurstFraction = 0.65
	p.BurstSize = 2 * p.BurstSize
	return p
}

// PWAScenario generates the three traces of the six-month pwa-g5k scenario:
// Bordeaux (Grid'5000 style), CTC-like and SDSC-like. The two archive-style
// traces include a fraction of "bad" jobs whose runtime exceeds the
// walltime, as the paper keeps the raw unclean logs.
func PWAScenario(fraction float64, seed uint64) ([]*Trace, error) {
	duration := scaleDuration(SixMonthSeconds, fraction, 12*3600)
	bordeaux := defaultProfile("bordeaux", scaleCount(bordeauxSixMonthJobs, fraction), duration, bordeauxCores)
	bordeaux.MeanRuntime = 1300
	bordeaux.MaxRuntime = 12 * 3600

	ctc := GenerateCTCLikeProfile(scaleCount(ctcJobs, fraction))
	ctc.Duration = duration
	sdsc := GenerateSDSCLikeProfile(scaleCount(sdscJobs, fraction))
	sdsc.Duration = duration

	profiles := []SiteProfile{bordeaux, ctc, sdsc}
	traces := make([]*Trace, 0, len(profiles))
	for i, p := range profiles {
		t, err := GenerateSite(p, seed^0xbeef^uint64(i+1)*0x85eb)
		if err != nil {
			return nil, err
		}
		traces = append(traces, t)
	}
	return traces, nil
}

// GenerateCTCLikeProfile returns a profile mimicking the CTC SP2 archive
// trace: longer jobs, larger over-estimation, a small fraction of bad jobs.
func GenerateCTCLikeProfile(jobs int) SiteProfile {
	p := defaultProfile("ctc", jobs, SixMonthSeconds, ctcCores)
	p.MeanRuntime = 3600
	p.MaxRuntime = 12 * 3600
	p.SerialFraction = 0.25
	p.OverestimationMax = 6.0
	p.BadJobFraction = 0.03
	p.Users = 120
	return p
}

// GenerateSDSCLikeProfile returns a profile mimicking the SDSC SP2 archive
// trace: a small cluster with long jobs and heavy over-estimation.
func GenerateSDSCLikeProfile(jobs int) SiteProfile {
	p := defaultProfile("sdsc", jobs, SixMonthSeconds, sdscCores)
	p.MeanRuntime = 3000
	p.MaxRuntime = 12 * 3600
	p.SerialFraction = 0.30
	p.OverestimationMax = 6.0
	p.BadJobFraction = 0.04
	p.Users = 90
	return p
}

// Scenario generates the merged grid-level trace for the named scenario
// (jobs from every site interleaved by submission time, as the paper routes
// all submissions through the meta-scheduler). Fraction scales the number
// of jobs. Besides the paper's seven names, every month also accepts the
// "-maint" and "-outage" capacity-variant suffixes, which select the bursty
// arrival profile.
func Scenario(name ScenarioName, fraction float64, seed uint64) (*Trace, error) {
	base, variant := splitScenarioVariant(name)
	var traces []*Trace
	var err error
	if base == PWAG5K && variant == "" {
		traces, err = PWAScenario(fraction, seed)
	} else if m, ok := monthFromName(base); ok {
		traces, err = monthScenario(m, fraction, seed, variant != "")
	} else {
		return nil, fmt.Errorf("workload: unknown scenario %q", name)
	}
	if err != nil {
		return nil, err
	}
	merged := Merge(string(name), traces...)
	return merged, nil
}

// monthFromName resolves a month scenario name ("jan".."jun"), reporting
// whether the name is known. A typo'd name must surface as an error instead
// of silently running the January workload.
func monthFromName(name ScenarioName) (Month, bool) {
	for _, m := range Months() {
		if m.String() == string(name) {
			return m, true
		}
	}
	return January, false
}

func scaleCount(count int, fraction float64) int {
	if fraction >= 1 {
		return count
	}
	if fraction <= 0 {
		return 0
	}
	scaled := int(float64(count) * fraction)
	if scaled < 1 && count > 0 {
		scaled = 1
	}
	return scaled
}
