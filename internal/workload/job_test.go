package workload

import (
	"strings"
	"testing"
)

func validJob(id int) Job {
	return Job{ID: id, Submit: int64(id * 10), Runtime: 100, Walltime: 200, Procs: 4, Site: "test"}
}

func TestJobValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Job)
		ok   bool
	}{
		{"valid", func(*Job) {}, true},
		{"zero id", func(j *Job) { j.ID = 0 }, false},
		{"negative id", func(j *Job) { j.ID = -1 }, false},
		{"negative submit", func(j *Job) { j.Submit = -5 }, false},
		{"zero procs", func(j *Job) { j.Procs = 0 }, false},
		{"negative procs", func(j *Job) { j.Procs = -2 }, false},
		{"zero walltime", func(j *Job) { j.Walltime = 0 }, false},
		{"negative runtime", func(j *Job) { j.Runtime = -1 }, false},
		{"zero runtime ok", func(j *Job) { j.Runtime = 0 }, true},
		{"bad job ok", func(j *Job) { j.Runtime = j.Walltime + 100 }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := validJob(1)
			c.mut(&j)
			err := j.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

func TestEffectiveRuntimeAndKill(t *testing.T) {
	j := Job{ID: 1, Runtime: 100, Walltime: 200, Procs: 1}
	if j.EffectiveRuntime() != 100 {
		t.Fatalf("EffectiveRuntime = %d, want 100", j.EffectiveRuntime())
	}
	if j.KilledByWalltime() {
		t.Fatal("job within walltime flagged as killed")
	}
	bad := Job{ID: 2, Runtime: 500, Walltime: 200, Procs: 1}
	if bad.EffectiveRuntime() != 200 {
		t.Fatalf("bad job EffectiveRuntime = %d, want walltime 200", bad.EffectiveRuntime())
	}
	if !bad.KilledByWalltime() {
		t.Fatal("bad job not flagged as killed")
	}
}

func TestNewTraceSortsBySubmit(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 300, Runtime: 10, Walltime: 20, Procs: 1},
		{ID: 2, Submit: 100, Runtime: 10, Walltime: 20, Procs: 1},
		{ID: 3, Submit: 200, Runtime: 10, Walltime: 20, Procs: 1},
	}
	tr, err := NewTrace("t", jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []int{2, 3, 1}
	for i, j := range tr.Jobs {
		if j.ID != wantOrder[i] {
			t.Fatalf("position %d has job %d, want %d", i, j.ID, wantOrder[i])
		}
	}
	// The input slice must not be reordered.
	if jobs[0].ID != 1 {
		t.Fatal("NewTrace mutated its input slice")
	}
}

func TestNewTraceTieBreakByID(t *testing.T) {
	jobs := []Job{
		{ID: 5, Submit: 100, Runtime: 10, Walltime: 20, Procs: 1},
		{ID: 2, Submit: 100, Runtime: 10, Walltime: 20, Procs: 1},
	}
	tr, err := NewTrace("t", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].ID != 2 || tr.Jobs[1].ID != 5 {
		t.Fatalf("tie not broken by ID: %v", []int{tr.Jobs[0].ID, tr.Jobs[1].ID})
	}
}

func TestNewTraceRejectsInvalidAndDuplicate(t *testing.T) {
	if _, err := NewTrace("t", []Job{{ID: 1, Procs: 0, Walltime: 10}}); err == nil {
		t.Fatal("invalid job accepted")
	}
	dup := []Job{validJob(1), validJob(1)}
	if _, err := NewTrace("t", dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate IDs accepted: %v", err)
	}
}

func TestTraceSpanAndEmpty(t *testing.T) {
	tr, _ := NewTrace("t", []Job{validJob(1), validJob(5)})
	first, last, err := tr.Span()
	if err != nil {
		t.Fatal(err)
	}
	if first != 10 || last != 50 {
		t.Fatalf("span = %d..%d, want 10..50", first, last)
	}
	empty := &Trace{Name: "empty"}
	if _, _, err := empty.Span(); err != ErrEmptyTrace {
		t.Fatalf("empty span error = %v, want ErrEmptyTrace", err)
	}
	if empty.MaxProcs() != 0 {
		t.Fatal("MaxProcs of empty trace should be 0")
	}
}

func TestTraceScale(t *testing.T) {
	var jobs []Job
	for i := 1; i <= 100; i++ {
		jobs = append(jobs, validJob(i))
	}
	tr, _ := NewTrace("t", jobs)

	full := tr.Scale(1.0)
	if full.Len() != 100 {
		t.Fatalf("Scale(1) kept %d jobs", full.Len())
	}
	half := tr.Scale(0.5)
	if half.Len() < 45 || half.Len() > 55 {
		t.Fatalf("Scale(0.5) kept %d jobs", half.Len())
	}
	none := tr.Scale(0)
	if none.Len() != 0 {
		t.Fatalf("Scale(0) kept %d jobs", none.Len())
	}
	over := tr.Scale(2)
	if over.Len() != 100 {
		t.Fatalf("Scale(2) kept %d jobs", over.Len())
	}
	// Order is preserved.
	prev := int64(-1)
	for _, j := range half.Jobs {
		if j.Submit < prev {
			t.Fatal("Scale broke submission order")
		}
		prev = j.Submit
	}
}

func TestTraceClamp(t *testing.T) {
	tr, _ := NewTrace("t", []Job{
		{ID: 1, Submit: 0, Runtime: 10, Walltime: 20, Procs: 1000},
		{ID: 2, Submit: 1, Runtime: 10, Walltime: 20, Procs: 4},
	})
	clamped := tr.Clamp(128)
	if clamped.Jobs[0].Procs != 128 {
		t.Fatalf("oversized job clamped to %d, want 128", clamped.Jobs[0].Procs)
	}
	if clamped.Jobs[1].Procs != 4 {
		t.Fatalf("small job modified: %d", clamped.Jobs[1].Procs)
	}
	// The original trace is untouched.
	if tr.Jobs[0].Procs != 1000 {
		t.Fatal("Clamp mutated the original trace")
	}
}

func TestMergeReassignsIDsAndSorts(t *testing.T) {
	t1, _ := NewTrace("a", []Job{
		{ID: 1, Submit: 100, Runtime: 10, Walltime: 20, Procs: 1, Site: "a"},
		{ID: 2, Submit: 300, Runtime: 10, Walltime: 20, Procs: 1, Site: "a"},
	})
	t2, _ := NewTrace("b", []Job{
		{ID: 1, Submit: 200, Runtime: 10, Walltime: 20, Procs: 1, Site: "b"},
	})
	merged := Merge("m", t1, nil, t2)
	if merged.Len() != 3 {
		t.Fatalf("merged %d jobs, want 3", merged.Len())
	}
	// IDs are 1..n in submission order, sites preserved.
	wantSites := []string{"a", "b", "a"}
	for i, j := range merged.Jobs {
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Site != wantSites[i] {
			t.Fatalf("job %d site = %q, want %q", i, j.Site, wantSites[i])
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	merged := Merge("m")
	if merged.Len() != 0 {
		t.Fatalf("empty merge has %d jobs", merged.Len())
	}
}
