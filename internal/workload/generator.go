package workload

import (
	"fmt"
	"math"

	"gridrealloc/internal/stats"
)

// SiteProfile parameterises the synthetic generator for one site of the
// platform. The defaults produced by the G5K*/PWA* constructors are
// calibrated so that the generated traces reproduce the job counts of
// Table 1 of the paper and exhibit the three properties its results depend
// on: load imbalance between sites, user walltime over-estimation, and
// submission bursts.
type SiteProfile struct {
	// Site is the name recorded in every generated job.
	Site string
	// Jobs is the number of jobs to generate.
	Jobs int
	// Duration is the length of the submission window in seconds.
	Duration int64
	// MaxProcs bounds the processor request of a single job (normally the
	// size of the site's cluster).
	MaxProcs int
	// MeanRuntime is the mean of the log-uniform runtime distribution, in
	// seconds on the reference-speed cluster.
	MeanRuntime int64
	// MaxRuntime caps the runtime distribution.
	MaxRuntime int64
	// SerialFraction is the fraction of single-processor jobs.
	SerialFraction float64
	// PowerOfTwoFraction is the fraction of parallel jobs whose size is a
	// power of two, the dominant pattern in real parallel workloads.
	PowerOfTwoFraction float64
	// BurstFraction is the fraction of jobs submitted inside bursts (many
	// jobs from one user within a few minutes). The rest follow a diurnal
	// arrival process.
	BurstFraction float64
	// BurstSize is the mean number of jobs per burst.
	BurstSize int
	// OverestimationMax is the largest walltime/runtime over-estimation
	// factor users apply. Walltimes are drawn between 1x and this factor,
	// then rounded up to a "round" request (15 min granularity).
	OverestimationMax float64
	// ExactWalltimeFraction is the fraction of jobs whose walltime equals
	// the runtime exactly (scripted submissions).
	ExactWalltimeFraction float64
	// BadJobFraction is the fraction of jobs whose recorded runtime exceeds
	// the walltime ("bad" jobs of the raw archive logs, killed at the
	// walltime by the batch system).
	BadJobFraction float64
	// Users is the number of distinct users submitting.
	Users int
}

// Validate reports whether the profile can be generated from.
func (p SiteProfile) Validate() error {
	switch {
	case p.Site == "":
		return fmt.Errorf("workload: site profile without a name")
	case p.Jobs < 0:
		return fmt.Errorf("workload: site %q: negative job count", p.Site)
	case p.Duration <= 0:
		return fmt.Errorf("workload: site %q: non-positive duration", p.Site)
	case p.MaxProcs <= 0:
		return fmt.Errorf("workload: site %q: non-positive max procs", p.Site)
	case p.MeanRuntime <= 0 || p.MaxRuntime < p.MeanRuntime:
		return fmt.Errorf("workload: site %q: invalid runtime bounds", p.Site)
	case p.Users <= 0:
		return fmt.Errorf("workload: site %q: non-positive user count", p.Site)
	}
	return nil
}

// MonthSeconds is the length of the one-month scenarios (30 days).
const MonthSeconds int64 = 30 * 24 * 3600

// SixMonthSeconds is the length of the six-month pwa-g5k scenario.
const SixMonthSeconds int64 = 6 * MonthSeconds

// defaultProfile fills in the behavioural knobs shared by all sites; only
// the size-related fields differ between sites.
func defaultProfile(site string, jobs int, duration int64, maxProcs int) SiteProfile {
	return SiteProfile{
		Site:                  site,
		Jobs:                  jobs,
		Duration:              duration,
		MaxProcs:              maxProcs,
		MeanRuntime:           1800,
		MaxRuntime:            12 * 3600,
		SerialFraction:        0.35,
		PowerOfTwoFraction:    0.70,
		BurstFraction:         0.40,
		BurstSize:             60,
		OverestimationMax:     4.0,
		ExactWalltimeFraction: 0.15,
		BadJobFraction:        0.0,
		Users:                 40,
	}
}

// GenerateSite produces a synthetic trace for one site according to the
// profile, deterministically from the seed.
func GenerateSite(p SiteProfile, seed uint64) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	arrivalRNG := rng.Split()
	sizeRNG := rng.Split()
	timeRNG := rng.Split()
	userRNG := rng.Split()

	submits := generateArrivals(arrivalRNG, p)
	jobs := make([]Job, 0, p.Jobs)
	for i, submit := range submits {
		procs := generateProcs(sizeRNG, p)
		runtime := generateRuntime(timeRNG, p)
		walltime, runtime := generateWalltime(timeRNG, p, runtime)
		jobs = append(jobs, Job{
			ID:       i + 1,
			Submit:   submit,
			Runtime:  runtime,
			Walltime: walltime,
			Procs:    procs,
			User:     1 + userRNG.Intn(p.Users),
			Site:     p.Site,
		})
	}
	return NewTrace(p.Site, jobs)
}

// generateArrivals returns p.Jobs submission instants in [0, p.Duration),
// sorted, mixing a diurnal background process with bursts.
func generateArrivals(rng *stats.RNG, p SiteProfile) []int64 {
	if p.Jobs == 0 {
		return nil
	}
	submits := make([]int64, 0, p.Jobs)
	burstJobs := int(float64(p.Jobs) * p.BurstFraction)
	background := p.Jobs - burstJobs

	// Background: thinned diurnal process. Draw candidate instants uniformly
	// and accept them with a probability that follows a day/night and
	// weekday/weekend modulation, so the platform alternates between loaded
	// and idle phases (the paper relies on low-load phases to drain queues).
	for len(submits) < background {
		t := rng.Int63n(p.Duration)
		if rng.Float64() < diurnalWeight(t) {
			submits = append(submits, t)
		}
	}

	// Bursts: pick a burst start, then submit a group of jobs within a few
	// minutes of it. Bursts model the submission storms the paper cites as a
	// motivation for reallocation.
	for len(submits) < p.Jobs {
		start := rng.Int63n(p.Duration)
		size := 1 + int(rng.Exponential(float64(maxInt(p.BurstSize, 1))))
		for k := 0; k < size && len(submits) < p.Jobs; k++ {
			offset := rng.Int63n(1800) // burst spread over half an hour
			t := start + offset
			if t >= p.Duration {
				t = p.Duration - 1
			}
			submits = append(submits, t)
		}
	}
	sortInt64(submits)
	return submits
}

// diurnalWeight modulates arrival acceptance over the day (peak at working
// hours) and the week (lower on weekends). The trace clock starts on a
// Monday at midnight.
func diurnalWeight(t int64) float64 {
	daySecond := t % 86400
	hour := float64(daySecond) / 3600
	// Smooth day curve peaking around 15:00.
	day := 0.25 + 0.75*math.Exp(-((hour-15)*(hour-15))/(2*4.5*4.5))
	weekday := (t / 86400) % 7
	week := 1.0
	if weekday >= 5 {
		week = 0.45
	}
	return day * week
}

func generateProcs(rng *stats.RNG, p SiteProfile) int {
	if p.MaxProcs == 1 || rng.Bool(p.SerialFraction) {
		return 1
	}
	maxLog := int(math.Floor(math.Log2(float64(p.MaxProcs))))
	if rng.Bool(p.PowerOfTwoFraction) {
		// Power-of-two sizes, biased towards small jobs.
		exp := 1 + rng.Intn(maxLog)
		if rng.Bool(0.5) && exp > 1 {
			exp = 1 + rng.Intn(exp)
		}
		procs := 1 << exp
		if procs > p.MaxProcs {
			procs = p.MaxProcs
		}
		return procs
	}
	// Otherwise uniform in [2, maxProcs/4] to keep most jobs well below the
	// cluster size, with the occasional near-full-cluster job.
	if rng.Bool(0.03) {
		return p.MaxProcs
	}
	upper := p.MaxProcs / 4
	if upper < 2 {
		upper = 2
	}
	return 2 + rng.Intn(upper-1)
}

func generateRuntime(rng *stats.RNG, p SiteProfile) int64 {
	lo := 30.0
	hi := float64(p.MaxRuntime)
	// Log-uniform runtimes rescaled so that the sample mean is close to
	// MeanRuntime: draw, then mix in a fraction of very short jobs.
	r := rng.LogUniform(lo, hi)
	// Re-centre the distribution around the requested mean: the raw
	// log-uniform mean is (hi-lo)/ln(hi/lo); scale the draw accordingly and
	// clamp back into bounds.
	rawMean := (hi - lo) / math.Log(hi/lo)
	r = r * float64(p.MeanRuntime) / rawMean
	if r < 1 {
		r = 1
	}
	if r > hi {
		r = hi
	}
	return int64(r)
}

// generateWalltime returns the requested walltime and possibly adjusts the
// runtime for "bad" jobs. Walltimes are rounded up to 15-minute multiples
// (never below 5 minutes), as users request round values.
func generateWalltime(rng *stats.RNG, p SiteProfile, runtime int64) (walltime, adjustedRuntime int64) {
	adjustedRuntime = runtime
	switch {
	case rng.Bool(p.BadJobFraction):
		// Bad job: the recorded runtime exceeds the request; the batch
		// system will kill it at the walltime.
		walltime = roundWalltime(int64(float64(runtime) * (0.3 + 0.5*rng.Float64())))
		if walltime >= runtime {
			walltime = stats.MaxInt64(runtime/2, 300)
		}
	case rng.Bool(p.ExactWalltimeFraction):
		walltime = roundWalltime(runtime)
	default:
		factor := 1.0 + rng.Float64()*(p.OverestimationMax-1.0)
		walltime = roundWalltime(int64(float64(runtime) * factor))
	}
	if walltime <= 0 {
		walltime = 300
	}
	return walltime, adjustedRuntime
}

func roundWalltime(w int64) int64 {
	const quantum = 900 // 15 minutes
	if w < 300 {
		return 300
	}
	return ((w + quantum - 1) / quantum) * quantum
}

func sortInt64(xs []int64) {
	// Insertion into sorted order is too slow for large traces; use the
	// standard library sort via a tiny shim to avoid importing sort twice in
	// the generated docs.
	quickSortInt64(xs, 0, len(xs)-1)
}

func quickSortInt64(xs []int64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		// Median-of-three pivot.
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse on the smaller half, loop on the larger one.
		if j-lo < hi-i {
			quickSortInt64(xs, lo, j)
			lo = i
		} else {
			quickSortInt64(xs, i, hi)
			hi = j
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
