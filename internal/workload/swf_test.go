package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Comment header line
; another ; comment
1 0 5 3600 8 -1 -1 8 7200 -1 1 17 -1 -1 -1 -1 -1 -1
2 60 -1 100 -1 -1 -1 4 900 -1 1 18 -1 -1 -1 -1 -1 -1
3 120 0 50 2 -1 -1 -1 -1 -1 0 19 -1 -1 -1 -1 -1 -1
`

func TestReadSWFBasic(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader(sampleSWF), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("read %d jobs, want 3", tr.Len())
	}
	j1 := tr.Jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.Runtime != 3600 || j1.Procs != 8 || j1.Walltime != 7200 || j1.User != 17 {
		t.Fatalf("job 1 parsed as %+v", j1)
	}
	// Job 2 has requested procs 4 and no allocated procs.
	if tr.Jobs[1].Procs != 4 {
		t.Fatalf("job 2 procs = %d, want 4", tr.Jobs[1].Procs)
	}
	// Job 3 has no requested procs; falls back to allocated (2), and no
	// walltime; falls back to runtime (50).
	j3 := tr.Jobs[2]
	if j3.Procs != 2 {
		t.Fatalf("job 3 procs = %d, want 2 (allocated fallback)", j3.Procs)
	}
	if j3.Walltime != 50 {
		t.Fatalf("job 3 walltime = %d, want runtime fallback 50", j3.Walltime)
	}
	// Site is set to the trace name.
	for _, j := range tr.Jobs {
		if j.Site != "sample" {
			t.Fatalf("job %d site = %q", j.ID, j.Site)
		}
	}
}

func TestReadSWFRepairsBadValues(t *testing.T) {
	raw := "7 -10 0 -1 0 -1 -1 0 0 -1 0 5 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(raw), "bad")
	if err != nil {
		t.Fatal(err)
	}
	j := tr.Jobs[0]
	if j.Submit != 0 {
		t.Fatalf("negative submit not repaired: %d", j.Submit)
	}
	if j.Procs != 1 {
		t.Fatalf("zero procs not repaired: %d", j.Procs)
	}
	if j.Runtime != 0 {
		t.Fatalf("negative runtime not repaired: %d", j.Runtime)
	}
	if j.Walltime != 1 {
		t.Fatalf("zero walltime not repaired: %d", j.Walltime)
	}
}

func TestReadSWFRenumbersDuplicates(t *testing.T) {
	raw := "1 0 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"1 5 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(raw), "dup")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("read %d jobs, want 2", tr.Len())
	}
	if tr.Jobs[0].ID == tr.Jobs[1].ID {
		t.Fatal("duplicate IDs not renumbered")
	}
}

func TestReadSWFMalformedLine(t *testing.T) {
	raw := "1 0 0\n"
	if _, err := ReadSWF(strings.NewReader(raw), "short"); err == nil {
		t.Fatal("short line accepted")
	}
	raw = "1 0 0 x 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	if _, err := ReadSWF(strings.NewReader(raw), "notanumber"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed number: err = %v, want mention of line 1", err)
	}
}

func TestReadSWFEmpty(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader("; nothing here\n\n"), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty input produced %d jobs", tr.Len())
	}
}

func TestSWFRoundTrip(t *testing.T) {
	original, err := GenerateSite(SiteProfile{
		Site: "rt", Jobs: 200, Duration: 86400, MaxProcs: 64,
		MeanRuntime: 600, MaxRuntime: 7200,
		SerialFraction: 0.3, PowerOfTwoFraction: 0.7,
		BurstFraction: 0.2, BurstSize: 10,
		OverestimationMax: 3, ExactWalltimeFraction: 0.2,
		Users: 5,
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, original); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadSWF(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != original.Len() {
		t.Fatalf("round trip lost jobs: %d -> %d", original.Len(), parsed.Len())
	}
	for i := range original.Jobs {
		a, b := original.Jobs[i], parsed.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Runtime != b.Runtime ||
			a.Walltime != b.Walltime || a.Procs != b.Procs || a.User != b.User {
			t.Fatalf("job %d changed in round trip:\n  wrote %+v\n  read  %+v", a.ID, a, b)
		}
	}
}

func TestWriteSWFHeader(t *testing.T) {
	tr, _ := NewTrace("hdr", []Job{validJob(1)})
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, ";") {
		t.Fatal("SWF output does not start with a comment header")
	}
	if !strings.Contains(out, "hdr") {
		t.Fatal("SWF header does not mention the trace name")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if len(strings.Fields(last)) != swfFields {
		t.Fatalf("record line has %d fields, want %d", len(strings.Fields(last)), swfFields)
	}
}
