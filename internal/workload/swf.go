package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) is the plain-text format of the
// Parallel Workload Archive: one job per line, 18 whitespace-separated
// fields, ';' starting comment lines. Only the fields the simulator needs
// are interpreted; the others are preserved as -1 ("unknown") when writing.
//
// Field indices (0-based) used here:
//
//	0  job number
//	1  submit time (seconds)
//	3  run time (seconds)
//	4  number of allocated processors
//	7  requested number of processors
//	8  requested time / walltime (seconds)
//	11 user ID
//
// The reader mirrors the paper's choice of keeping the raw, unclean logs:
// jobs with missing runtimes or processor counts are repaired with
// conservative defaults instead of being dropped, because "these jobs would
// have been submitted in reality".

// SWF field count per record line.
const swfFields = 18

// ReadSWF parses an SWF stream into a trace named name. Malformed lines
// produce an error mentioning the line number. Header comments (";" lines)
// are ignored. Lines may be arbitrarily long: the reader accumulates each
// line in full instead of capping it at a scanner buffer size, so an
// oversized comment or record either parses or fails with a real parse
// error naming its line, never with a bare bufio.ErrTooLong.
func ReadSWF(r io.Reader, name string) (*Trace, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var jobs []Job
	lineNo := 0
	for {
		line, readErr := readFullLine(br)
		if readErr != nil && readErr != io.EOF {
			return nil, fmt.Errorf("workload: swf %q line %d: %w", name, lineNo+1, readErr)
		}
		if readErr == io.EOF && line == "" {
			break // stream ended on a newline; no final fragment
		}
		lineNo++
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, ";") {
			job, err := parseSWFLine(trimmed)
			if err != nil {
				return nil, fmt.Errorf("workload: swf %q line %d: %w", name, lineNo, err)
			}
			jobs = append(jobs, job)
		}
		if readErr == io.EOF {
			break
		}
	}
	return repairAndBuild(name, jobs)
}

// readFullLine reads one line of any length (without the trailing newline);
// ReadString grows past the reader's buffer as needed, unlike a Scanner
// token. It returns io.EOF together with the final line when the stream
// ends without a newline.
func readFullLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	return strings.TrimSuffix(line, "\n"), err
}

func parseSWFLine(line string) (Job, error) {
	fields := strings.Fields(line)
	if len(fields) < 9 {
		return Job{}, fmt.Errorf("expected at least 9 fields, got %d", len(fields))
	}
	get := func(i int) (int64, error) {
		if i >= len(fields) {
			return -1, nil
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, fmt.Errorf("field %d %q: %w", i, fields[i], err)
		}
		// Conversion of an out-of-range float to int64 is
		// implementation-defined (amd64 and arm64 disagree), so NaN,
		// infinities and values outside int64 must be rejected here or the
		// same file would parse differently per CPU architecture. 2^63
		// floats are exact, so the bounds test is itself exact.
		const bound = float64(1 << 63)
		if math.IsNaN(v) || v < -bound || v >= bound {
			return 0, fmt.Errorf("field %d %q: value out of range", i, fields[i])
		}
		return int64(v), nil
	}
	id, err := get(0)
	if err != nil {
		return Job{}, err
	}
	submit, err := get(1)
	if err != nil {
		return Job{}, err
	}
	runtime, err := get(3)
	if err != nil {
		return Job{}, err
	}
	allocProcs, err := get(4)
	if err != nil {
		return Job{}, err
	}
	reqProcs, err := get(7)
	if err != nil {
		return Job{}, err
	}
	walltime, err := get(8)
	if err != nil {
		return Job{}, err
	}
	// -1 is the SWF "unknown" sentinel and is repaired downstream (runtime
	// fallback); any other negative request is a corrupt record, not a
	// cleanable one, and must fail loudly rather than be silently patched.
	if walltime < -1 {
		return Job{}, fmt.Errorf("field 8: negative requested time %d (only -1 marks an unknown value)", walltime)
	}
	user, err := get(11)
	if err != nil {
		return Job{}, err
	}
	procs := reqProcs
	if procs <= 0 {
		procs = allocProcs
	}
	return Job{
		ID:       int(id),
		Submit:   submit,
		Runtime:  runtime,
		Walltime: walltime,
		Procs:    int(procs),
		User:     int(user),
	}, nil
}

// repairAndBuild applies the minimal sanitation required for the simulator
// to accept the raw logs without discarding any submission, then builds the
// trace. The repairs mirror the treatment the paper describes: bad jobs stay
// in, impossible values are replaced by the smallest value that keeps the
// job representable.
func repairAndBuild(name string, jobs []Job) (*Trace, error) {
	repaired := make([]Job, 0, len(jobs))
	nextID := 1
	for _, j := range jobs {
		if j.ID <= 0 {
			j.ID = nextID
		}
		if j.ID >= nextID {
			nextID = j.ID + 1
		}
		if j.Submit < 0 {
			j.Submit = 0
		}
		if j.Procs <= 0 {
			j.Procs = 1
		}
		if j.Runtime < 0 {
			j.Runtime = 0
		}
		if j.Walltime <= 0 {
			// No requested time recorded: fall back to the runtime (or one
			// second for instantly-failing jobs) so the batch system has a
			// reservation length to work with.
			j.Walltime = j.Runtime
			if j.Walltime <= 0 {
				j.Walltime = 1
			}
		}
		j.Site = name
		repaired = append(repaired, j)
	}
	// Duplicate IDs do occur in concatenated archive fragments; renumber in
	// that case rather than failing.
	if err := checkUniqueIDs(repaired); err != nil {
		for i := range repaired {
			repaired[i].ID = i + 1
		}
	}
	return NewTrace(name, repaired)
}

// WriteSWF writes the trace in Standard Workload Format. Fields the
// simulator does not track are emitted as -1, per the SWF convention for
// unknown values. A short comment header records the trace name and size.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; SWF trace %q, %d jobs, generated by gridrealloc\n", t.Name, len(t.Jobs)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "; fields: id submit wait runtime procs cpu mem reqprocs walltime reqmem status user group app queue partition prev think\n"); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		fields := make([]string, swfFields)
		for i := range fields {
			fields[i] = "-1"
		}
		fields[0] = strconv.Itoa(j.ID)
		fields[1] = strconv.FormatInt(j.Submit, 10)
		fields[3] = strconv.FormatInt(j.Runtime, 10)
		fields[4] = strconv.Itoa(j.Procs)
		fields[7] = strconv.Itoa(j.Procs)
		fields[8] = strconv.FormatInt(j.Walltime, 10)
		fields[11] = strconv.Itoa(j.User)
		if _, err := fmt.Fprintln(bw, strings.Join(fields, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
