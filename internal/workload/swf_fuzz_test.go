package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestReadSWFMalformedInputs pins the reader's error behaviour over the
// classes of corruption real archive fragments exhibit. Every rejection must
// name the offending line so a multi-gigabyte log can be fixed without
// bisecting it by hand.
func TestReadSWFMalformedInputs(t *testing.T) {
	valid := "1 0 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1"
	cases := []struct {
		name     string
		input    string
		wantLine int // 0 = must parse without error
	}{
		{"too few fields", "1 0 0 10\n", 1},
		{"single field", "42\n", 1},
		{"non-numeric id", "x 0 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"non-numeric submit", "1 zero 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"non-numeric runtime", "1 0 0 ten 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"non-numeric procs", "1 0 0 10 1 -1 -1 ?? 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"non-numeric walltime", "1 0 0 10 1 -1 -1 1 NaN. -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"negative walltime", "1 0 0 10 1 -1 -1 1 -300 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"error on second line", valid + "\n2 0 0\n", 2},
		{"error after comment and blank", "; header\n\n" + valid + "\n3 bad 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 4},
		{"error on unterminated last line", valid + "\n4 0 0 10 1 -1 -1 1 -99 -1 1 1 -1 -1 -1 -1 -1 -1", 2},
		{"unknown walltime sentinel accepted", "1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n", 0},
		{"infinite walltime rejected", "1 0 0 10 1 -1 -1 1 +Inf -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"NaN submit rejected", "1 NaN 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"submit beyond int64 rejected", "1 1e300 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 1},
		{"runtime at -2^63 boundary accepted", "1 0 0 -9223372036854775808 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1\n", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSWF(strings.NewReader(tc.input), tc.name)
			if tc.wantLine == 0 {
				if err != nil {
					t.Fatalf("want clean parse, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			want := fmt.Sprintf("line %d", tc.wantLine)
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not mention %q", err, want)
			}
		})
	}
}

// TestReadSWFHugeLines exercises the paths the old 1 MiB bufio.Scanner cap
// used to break: comment and record lines far larger than any internal
// buffer must parse (or fail) on their own merits.
func TestReadSWFHugeLines(t *testing.T) {
	hugeComment := "; " + strings.Repeat("x", 4<<20)
	record := "1 0 0 10 1 -1 -1 1 20 -1 1 1 -1 -1 -1 -1 -1 -1"
	paddedRecord := record + strings.Repeat(" ", 2<<20) + "-1"
	input := hugeComment + "\n" + paddedRecord + "\n"
	tr, err := ReadSWF(strings.NewReader(input), "huge")
	if err != nil {
		t.Fatalf("huge lines rejected: %v", err)
	}
	if tr.Len() != 1 || tr.Jobs[0].Walltime != 20 {
		t.Fatalf("huge-line trace parsed as %+v", tr.Jobs)
	}

	// A huge malformed record must still report its line number.
	bad := hugeComment + "\n" + "1 bad" + strings.Repeat(" -1", 1<<20) + "\n"
	if _, err := ReadSWF(strings.NewReader(bad), "hugebad"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("huge malformed line: err = %v, want mention of line 2", err)
	}
}

// TestReadSWFCountsBlankLines pins that blank and comment lines advance the
// reported line number, so editors and the archive's own headers agree with
// the reader about where the corruption sits.
func TestReadSWFCountsBlankLines(t *testing.T) {
	input := "\n\n; c\n1 0 0\n"
	_, err := ReadSWF(strings.NewReader(input), "blank")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want mention of line 4", err)
	}
}

// FuzzReadSWF feeds arbitrary bytes through the SWF reader: it must never
// panic, and anything it accepts must be a valid trace that survives a
// write/read round trip with the same job count and per-job fields.
func FuzzReadSWF(f *testing.F) {
	f.Add([]byte(sampleSWF))
	f.Add([]byte("; comment only\n"))
	f.Add([]byte(""))
	f.Add([]byte("1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1"))
	f.Add([]byte("7 -10 0 -1 0 -1 -1 0 0 -1 0 5 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 0 0 10\n"))
	f.Add([]byte("1 0 0 10 1 -1 -1 1 -300 -1 1 1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 1e3 0 2.5 1 -1 -1 4 9e2 -1 1 1 -1 -1 -1 -1 -1 -1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadSWF(bytes.NewReader(data), "fuzz")
		if err != nil {
			if tr != nil {
				t.Fatalf("non-nil trace alongside error %v", err)
			}
			return
		}
		for _, j := range tr.Jobs {
			if verr := j.Validate(); verr != nil {
				t.Fatalf("accepted invalid job %+v: %v", j, verr)
			}
		}
		var buf bytes.Buffer
		if werr := WriteSWF(&buf, tr); werr != nil {
			t.Fatalf("writing accepted trace: %v", werr)
		}
		back, rerr := ReadSWF(&buf, "fuzz")
		if rerr != nil {
			t.Fatalf("re-reading written trace: %v", rerr)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d -> %d", tr.Len(), back.Len())
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], back.Jobs[i]
			if a.ID != b.ID || a.Submit != b.Submit || a.Runtime != b.Runtime ||
				a.Walltime != b.Walltime || a.Procs != b.Procs || a.User != b.User {
				t.Fatalf("job %d changed in round trip:\n  first  %+v\n  second %+v", a.ID, a, b)
			}
		}
	})
}
