package workload

import (
	"fmt"
	"sort"
	"strings"

	"gridrealloc/internal/stats"
)

// TraceStats summarises a trace: job counts per site, mean sizes and the
// over-estimation ratio. It backs the reproduction of Table 1 and the trace
// sanity checks of the experiment harness.
type TraceStats struct {
	Name             string
	Jobs             int
	JobsPerSite      map[string]int
	MeanProcs        float64
	MaxProcs         int
	MeanRuntime      float64
	MeanWalltime     float64
	MeanOverestimate float64
	BadJobs          int
	SpanSeconds      int64
}

// Stats computes summary statistics for the trace.
func Stats(t *Trace) TraceStats {
	s := TraceStats{Name: t.Name, Jobs: len(t.Jobs), JobsPerSite: make(map[string]int)}
	if len(t.Jobs) == 0 {
		return s
	}
	var procs, runtimes, walltimes, ratios []float64
	for _, j := range t.Jobs {
		s.JobsPerSite[j.Site]++
		procs = append(procs, float64(j.Procs))
		runtimes = append(runtimes, float64(j.Runtime))
		walltimes = append(walltimes, float64(j.Walltime))
		if j.Runtime > 0 {
			ratios = append(ratios, float64(j.Walltime)/float64(j.Runtime))
		}
		if j.KilledByWalltime() {
			s.BadJobs++
		}
		if j.Procs > s.MaxProcs {
			s.MaxProcs = j.Procs
		}
	}
	s.MeanProcs = stats.Mean(procs)
	s.MeanRuntime = stats.Mean(runtimes)
	s.MeanWalltime = stats.Mean(walltimes)
	s.MeanOverestimate = stats.Mean(ratios)
	first, last, _ := t.Span()
	s.SpanSeconds = last - first
	return s
}

// FormatTable1 renders the job counts of the six monthly scenarios in the
// layout of Table 1 of the paper (rows: months; columns: Bordeaux, Lyon,
// Toulouse, Total). The counts argument normally comes from Table1Counts
// (the paper's reference numbers) or from generated traces for a
// measured-vs-paper comparison.
func FormatTable1(counts map[string][4]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s\n", "Month/Site", "Bordeaux", "Lyon", "Toulouse", "Total")
	order := []string{"jan", "feb", "mar", "apr", "may", "jun"}
	labels := map[string]string{
		"jan": "January", "feb": "February", "mar": "March",
		"apr": "April", "may": "May", "jun": "June",
	}
	for _, key := range order {
		c, ok := counts[key]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %10d\n", labels[key], c[0], c[1], c[2], c[3])
	}
	return b.String()
}

// SiteCounts returns, for a merged scenario trace, the number of jobs that
// originated on each site, in deterministic (sorted) site order.
func SiteCounts(t *Trace) []SiteCount {
	byName := make(map[string]int)
	for _, j := range t.Jobs {
		byName[j.Site]++
	}
	names := make([]string, 0, len(byName))
	//gridlint:unordered-ok names are collected then sorted
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SiteCount, 0, len(names))
	for _, n := range names {
		out = append(out, SiteCount{Site: n, Jobs: byName[n]})
	}
	return out
}

// SiteCount pairs a site name with a job count.
type SiteCount struct {
	Site string
	Jobs int
}
