package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testProfile(jobs int) SiteProfile {
	return SiteProfile{
		Site: "gen", Jobs: jobs, Duration: 7 * 86400, MaxProcs: 128,
		MeanRuntime: 900, MaxRuntime: 4 * 3600,
		SerialFraction: 0.3, PowerOfTwoFraction: 0.7,
		BurstFraction: 0.3, BurstSize: 20,
		OverestimationMax: 4, ExactWalltimeFraction: 0.1,
		BadJobFraction: 0.05, Users: 10,
	}
}

func TestGenerateSiteCountAndBounds(t *testing.T) {
	p := testProfile(500)
	tr, err := GenerateSite(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("generated %d jobs, want 500", tr.Len())
	}
	for _, j := range tr.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
		if j.Submit < 0 || j.Submit >= p.Duration {
			t.Fatalf("job %d submitted at %d outside [0,%d)", j.ID, j.Submit, p.Duration)
		}
		if j.Procs > p.MaxProcs {
			t.Fatalf("job %d requests %d procs, max %d", j.ID, j.Procs, p.MaxProcs)
		}
		if j.User < 1 || j.User > p.Users {
			t.Fatalf("job %d has user %d", j.ID, j.User)
		}
		if j.Site != "gen" {
			t.Fatalf("job %d has site %q", j.ID, j.Site)
		}
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	p := testProfile(300)
	a, err := GenerateSite(p, 1234)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSite(p, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	c, err := GenerateSite(p, 9999)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Submit == c.Jobs[i].Submit && a.Jobs[i].Runtime == c.Jobs[i].Runtime {
			same++
		}
	}
	if same == a.Len() {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateSiteWalltimeOverestimation(t *testing.T) {
	p := testProfile(2000)
	tr, err := GenerateSite(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	over, bad := 0, 0
	for _, j := range tr.Jobs {
		if j.Walltime > j.Runtime {
			over++
		}
		if j.KilledByWalltime() {
			bad++
		}
	}
	if float64(over) < 0.6*float64(tr.Len()) {
		t.Fatalf("only %d/%d jobs over-estimate their walltime; the reallocation mechanism needs the gap", over, tr.Len())
	}
	// BadJobFraction is 5%: expect some but not too many bad jobs.
	if bad == 0 {
		t.Fatal("no bad jobs generated despite BadJobFraction > 0")
	}
	if float64(bad) > 0.15*float64(tr.Len()) {
		t.Fatalf("too many bad jobs: %d/%d", bad, tr.Len())
	}
}

func TestGenerateSiteWalltimesAreRounded(t *testing.T) {
	tr, err := GenerateSite(testProfile(500), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.KilledByWalltime() {
			// Bad jobs deliberately carry an under-estimated, unrounded
			// walltime; only well-formed requests are rounded.
			continue
		}
		if j.Walltime < 300 {
			t.Fatalf("job %d walltime %d below the 5-minute floor", j.ID, j.Walltime)
		}
		if j.Walltime%900 != 0 && j.Walltime != 300 {
			t.Fatalf("job %d walltime %d not rounded to 15-minute quanta", j.ID, j.Walltime)
		}
	}
}

func TestGenerateSiteZeroJobs(t *testing.T) {
	p := testProfile(0)
	tr, err := GenerateSite(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("zero-job profile generated %d jobs", tr.Len())
	}
}

func TestGenerateSiteValidation(t *testing.T) {
	bad := []func(*SiteProfile){
		func(p *SiteProfile) { p.Site = "" },
		func(p *SiteProfile) { p.Jobs = -1 },
		func(p *SiteProfile) { p.Duration = 0 },
		func(p *SiteProfile) { p.MaxProcs = 0 },
		func(p *SiteProfile) { p.MeanRuntime = 0 },
		func(p *SiteProfile) { p.MaxRuntime = p.MeanRuntime - 1 },
		func(p *SiteProfile) { p.Users = 0 },
	}
	for i, mut := range bad {
		p := testProfile(10)
		mut(&p)
		if _, err := GenerateSite(p, 1); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestDiurnalWeightShape(t *testing.T) {
	// 15:00 on a Monday should be the peak; 03:00 should be much lower; a
	// Saturday afternoon lower than a Monday afternoon.
	monday15 := int64(15 * 3600)
	monday03 := int64(3 * 3600)
	saturday15 := int64(5*86400 + 15*3600)
	if diurnalWeight(monday15) <= diurnalWeight(monday03) {
		t.Fatal("afternoon not busier than night")
	}
	if diurnalWeight(saturday15) >= diurnalWeight(monday15) {
		t.Fatal("weekend not quieter than weekday")
	}
}

func TestMonthScenarioCountsMatchTable1(t *testing.T) {
	for _, m := range Months() {
		traces, err := MonthScenario(m, 1.0, 11)
		if err != nil {
			t.Fatal(err)
		}
		want := table1[m]
		if len(traces) != 3 {
			t.Fatalf("%v: %d traces, want 3", m, len(traces))
		}
		for i, tr := range traces {
			if tr.Len() != want[i] {
				t.Fatalf("%v site %d: %d jobs, want %d (Table 1)", m, i, tr.Len(), want[i])
			}
		}
	}
}

func TestMonthScenarioFraction(t *testing.T) {
	traces, err := MonthScenario(April, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := traces[0].Len(), table1[April][0]/100; got != want {
		t.Fatalf("fraction 0.01: bordeaux has %d jobs, want %d", got, want)
	}
}

func TestPWAScenarioCounts(t *testing.T) {
	traces, err := PWAScenario(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("%d traces, want 3", len(traces))
	}
	wants := []int{bordeauxSixMonthJobs / 100, ctcJobs / 100, sdscJobs / 100}
	for i, tr := range traces {
		if tr.Len() != wants[i] {
			t.Fatalf("site %d has %d jobs, want %d", i, tr.Len(), wants[i])
		}
	}
	// The archive-style traces must include some bad jobs.
	badCTC := 0
	for _, j := range traces[1].Jobs {
		if j.KilledByWalltime() {
			badCTC++
		}
	}
	if badCTC == 0 {
		t.Fatal("CTC-like trace contains no bad jobs")
	}
}

func TestScenarioMergedAndNamed(t *testing.T) {
	for _, name := range ScenarioNames() {
		tr, err := Scenario(name, 0.005, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != string(name) {
			t.Fatalf("trace name %q, want %q", tr.Name, name)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: empty merged trace", name)
		}
		prev := int64(-1)
		for _, j := range tr.Jobs {
			if j.Submit < prev {
				t.Fatalf("%s: merged trace not sorted", name)
			}
			prev = j.Submit
		}
	}
	if _, err := Scenario("bogus", 1, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestTable1CountsComplete(t *testing.T) {
	counts := Table1Counts()
	if len(counts) != 6 {
		t.Fatalf("Table1Counts has %d months, want 6", len(counts))
	}
	if counts["apr"][0] != 33250 || counts["apr"][3] != 36041 {
		t.Fatalf("april counts wrong: %v", counts["apr"])
	}
	total := 0
	for _, c := range counts {
		total += c[3]
	}
	if total != 14155+9640+20937+36041+10517+9182 {
		t.Fatalf("total job count %d does not match the paper", total)
	}
}

func TestMonthString(t *testing.T) {
	if January.String() != "jan" || June.String() != "jun" {
		t.Fatal("month names wrong")
	}
	if Month(99).String() == "jan" {
		t.Fatal("out-of-range month not flagged")
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(1000, 1.5) != 1000 {
		t.Fatal("fraction > 1 should not inflate counts")
	}
	if scaleCount(1000, 0.25) != 250 {
		t.Fatal("fraction 0.25 wrong")
	}
	if scaleCount(10, 0.001) != 1 {
		t.Fatal("tiny fractions must keep at least one job")
	}
	if scaleCount(10, 0) != 0 {
		t.Fatal("zero fraction must drop all jobs")
	}
}

// TestPropertyGeneratedTracesAlwaysValid: any sane profile yields a trace of
// the requested size whose jobs all validate and respect the bounds.
func TestPropertyGeneratedTracesAlwaysValid(t *testing.T) {
	f := func(seed uint64, jobs uint16, maxProcsRaw uint16) bool {
		n := int(jobs%200) + 1
		maxProcs := int(maxProcsRaw%512) + 1
		p := SiteProfile{
			Site: "prop", Jobs: n, Duration: 86400, MaxProcs: maxProcs,
			MeanRuntime: 300, MaxRuntime: 3600,
			SerialFraction: 0.4, PowerOfTwoFraction: 0.6,
			BurstFraction: 0.3, BurstSize: 5,
			OverestimationMax: 3, ExactWalltimeFraction: 0.2,
			BadJobFraction: 0.02, Users: 3,
		}
		tr, err := GenerateSite(p, seed)
		if err != nil || tr.Len() != n {
			return false
		}
		for _, j := range tr.Jobs {
			if j.Validate() != nil || j.Procs > maxProcs || j.Submit >= p.Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt64(t *testing.T) {
	f := func(xs []int64) bool {
		cp := append([]int64(nil), xs...)
		sortInt64(cp)
		for i := 1; i < len(cp); i++ {
			if cp[i-1] > cp[i] {
				return false
			}
		}
		return len(cp) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
